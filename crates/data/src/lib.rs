//! # zeppelin-data
//!
//! Variable-length sequence dataset substrate.
//!
//! The paper trains on synthetic batches matching the binned length
//! distributions of real corpora (its Table 2). This crate provides:
//!
//! - [`distribution`]: binned length distributions with validation,
//!   log-uniform within-bin sampling, and tail-mass queries;
//! - [`datasets`]: the Table 2 presets (ArXiv, GitHub, ProLong64k) plus
//!   Fig.-1-style web corpora;
//! - [`batch`]: token-budgeted batch sampling and the Balanced/Skewed
//!   generators of Table 3;
//! - [`stats`]: histograms and imbalance metrics for verifying samplers
//!   against their specifications.
//!
//! # Examples
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use zeppelin_data::{datasets::arxiv, batch::sample_batch};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let batch = sample_batch(&arxiv(), &mut rng, 65_536);
//! assert_eq!(batch.total_tokens(), 65_536);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod datasets;
pub mod distribution;
pub mod mixture;
pub mod stats;

pub use batch::{balanced_batch, parse_lengths, sample_batch, skewed_batch, Batch};
pub use datasets::{
    arxiv, fig1_datasets, fineweb, github, openwebmath, paper_datasets, prolong64k, stackexchange,
};
pub use distribution::{table2_bins, DistError, LengthBin, LengthDistribution};
pub use mixture::{pretraining_mix, Mixture};
pub use stats::{cv, load_imbalance, mean, percentile, table2_edges, Histogram};

//! Binned sequence-length distributions.
//!
//! The paper publishes its datasets as binned length distributions
//! (Table 2): for each `[lo, hi)` token range, the fraction of sequences
//! falling in it. We mirror that representation and sample synthetic
//! sequence lengths from it, log-uniformly within each bin (long-tailed
//! text-length data is closer to log-uniform than uniform inside a
//! power-of-two bin).

use rand::{Rng, RngExt};

/// One length bin: sequences with `lo <= len < hi` occur with `prob`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LengthBin {
    /// Inclusive lower bound, tokens.
    pub lo: u64,
    /// Exclusive upper bound, tokens.
    pub hi: u64,
    /// Probability mass of the bin.
    pub prob: f64,
}

/// A named, binned sequence-length distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct LengthDistribution {
    /// Dataset name (e.g. `"ArXiv"`).
    pub name: String,
    /// Bins in ascending, non-overlapping order.
    pub bins: Vec<LengthBin>,
}

/// Error from distribution validation.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// Bins are empty, unordered, overlapping, or have `lo >= hi`.
    MalformedBins(String),
    /// Probabilities are negative or do not sum to ~1.
    BadProbabilities(f64),
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::MalformedBins(msg) => write!(f, "malformed bins: {msg}"),
            DistError::BadProbabilities(sum) => {
                write!(f, "probabilities sum to {sum}, expected ~1.0")
            }
        }
    }
}

impl std::error::Error for DistError {}

impl LengthDistribution {
    /// Creates and validates a distribution.
    ///
    /// # Errors
    ///
    /// Returns [`DistError`] if bins are malformed or probabilities are
    /// negative / don't sum to 1 within 1e-6.
    pub fn new(
        name: impl Into<String>,
        bins: Vec<LengthBin>,
    ) -> Result<LengthDistribution, DistError> {
        let d = LengthDistribution {
            name: name.into(),
            bins,
        };
        d.validate()?;
        Ok(d)
    }

    /// Validates bin structure and probability mass.
    pub fn validate(&self) -> Result<(), DistError> {
        if self.bins.is_empty() {
            return Err(DistError::MalformedBins("no bins".into()));
        }
        let mut prev_hi = 0;
        for b in &self.bins {
            if b.lo >= b.hi {
                return Err(DistError::MalformedBins(format!(
                    "bin [{}, {}) is empty or inverted",
                    b.lo, b.hi
                )));
            }
            if b.lo < prev_hi {
                return Err(DistError::MalformedBins(format!(
                    "bin [{}, {}) overlaps or is out of order",
                    b.lo, b.hi
                )));
            }
            if b.prob < 0.0 || !b.prob.is_finite() {
                return Err(DistError::BadProbabilities(b.prob));
            }
            prev_hi = b.hi;
        }
        let sum: f64 = self.bins.iter().map(|b| b.prob).sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(DistError::BadProbabilities(sum));
        }
        Ok(())
    }

    /// Samples one sequence length.
    ///
    /// The bin is chosen by probability mass; the length within the bin is
    /// log-uniform. Lengths of at least 1 token are always returned.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut u: f64 = rng.random_range(0.0..1.0);
        let mut chosen = self.bins.last().expect("validated: non-empty");
        for b in &self.bins {
            if u < b.prob {
                chosen = b;
                break;
            }
            u -= b.prob;
        }
        let lo = chosen.lo.max(1) as f64;
        let hi = chosen.hi as f64;
        let x = rng.random_range(lo.ln()..hi.ln()).exp();
        (x as u64).clamp(chosen.lo.max(1), chosen.hi - 1)
    }

    /// Expected sequence length under a log-uniform-within-bin model.
    pub fn mean(&self) -> f64 {
        self.bins
            .iter()
            .map(|b| {
                let lo = b.lo.max(1) as f64;
                let hi = b.hi as f64;
                // Mean of a log-uniform on [lo, hi): (hi - lo) / ln(hi / lo).
                let m = if (hi - lo).abs() < 1e-9 {
                    lo
                } else {
                    (hi - lo) / (hi / lo).ln()
                };
                b.prob * m
            })
            .sum()
    }

    /// Probability mass of sequences with `len >= threshold`.
    pub fn tail_mass(&self, threshold: u64) -> f64 {
        self.bins
            .iter()
            .map(|b| {
                if b.lo >= threshold {
                    b.prob
                } else if b.hi <= threshold {
                    0.0
                } else {
                    // Log-uniform partial mass above the threshold.
                    let lo = b.lo.max(1) as f64;
                    let hi = b.hi as f64;
                    let t = threshold as f64;
                    b.prob * ((hi.ln() - t.ln()) / (hi.ln() - lo.ln()))
                }
            })
            .sum()
    }

    /// Index of the bin containing `len`, if any.
    pub fn bin_of(&self, len: u64) -> Option<usize> {
        self.bins.iter().position(|b| b.lo <= len && len < b.hi)
    }
}

/// Builds the paper's standard bin edges `<1k, 1-2k, ..., 128-256k` from a
/// row of nine proportions (Table 2's format; lengths in tokens).
///
/// # Panics
///
/// Panics if `props` does not have nine entries; Table 2 rows always do.
pub fn table2_bins(props: [f64; 9]) -> Vec<LengthBin> {
    const K: u64 = 1024;
    let edges = [
        (1, K),
        (K, 2 * K),
        (2 * K, 4 * K),
        (4 * K, 8 * K),
        (8 * K, 16 * K),
        (16 * K, 32 * K),
        (32 * K, 64 * K),
        (64 * K, 128 * K),
        (128 * K, 256 * K),
    ];
    edges
        .iter()
        .zip(props.iter())
        .filter(|(_, &p)| p > 0.0)
        .map(|(&(lo, hi), &p)| LengthBin { lo, hi, prob: p })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn simple() -> LengthDistribution {
        LengthDistribution::new(
            "test",
            vec![
                LengthBin {
                    lo: 1,
                    hi: 1024,
                    prob: 0.5,
                },
                LengthBin {
                    lo: 1024,
                    hi: 4096,
                    prob: 0.5,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn validation_accepts_good_bins() {
        simple().validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_mass() {
        let err = LengthDistribution::new(
            "bad",
            vec![LengthBin {
                lo: 1,
                hi: 10,
                prob: 0.7,
            }],
        )
        .unwrap_err();
        assert!(matches!(err, DistError::BadProbabilities(_)));
    }

    #[test]
    fn validation_rejects_overlap_and_inversion() {
        let overlap = LengthDistribution::new(
            "o",
            vec![
                LengthBin {
                    lo: 1,
                    hi: 100,
                    prob: 0.5,
                },
                LengthBin {
                    lo: 50,
                    hi: 200,
                    prob: 0.5,
                },
            ],
        );
        assert!(overlap.is_err());
        let inverted = LengthDistribution::new(
            "i",
            vec![LengthBin {
                lo: 10,
                hi: 10,
                prob: 1.0,
            }],
        );
        assert!(inverted.is_err());
        assert!(LengthDistribution::new("e", vec![]).is_err());
    }

    #[test]
    fn samples_stay_in_declared_bins() {
        let d = simple();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let s = d.sample(&mut rng);
            assert!((1..4096).contains(&s), "sample {s} out of range");
        }
    }

    #[test]
    fn empirical_bin_frequencies_match_probs() {
        let d = simple();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20000;
        let short = (0..n).filter(|_| d.sample(&mut rng) < 1024).count() as f64;
        let frac = short / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "short fraction {frac}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = simple();
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }

    #[test]
    fn mean_is_between_extremes() {
        let d = simple();
        let m = d.mean();
        assert!(m > 1.0 && m < 4096.0);
    }

    #[test]
    fn tail_mass_is_monotone_decreasing() {
        let d = simple();
        let mut last = 1.01;
        for t in [1u64, 512, 1024, 2048, 4096, 8192] {
            let m = d.tail_mass(t);
            assert!(m <= last + 1e-12, "tail mass must decrease");
            assert!((0.0..=1.0).contains(&m));
            last = m;
        }
        assert!((d.tail_mass(1) - 1.0).abs() < 1e-9);
        assert_eq!(d.tail_mass(4096), 0.0);
        assert!((d.tail_mass(1024) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn bin_of_locates_lengths() {
        let d = simple();
        assert_eq!(d.bin_of(1), Some(0));
        assert_eq!(d.bin_of(1023), Some(0));
        assert_eq!(d.bin_of(1024), Some(1));
        assert_eq!(d.bin_of(4096), None);
    }

    #[test]
    fn table2_bins_skip_zero_mass() {
        let bins = table2_bins([0.5, 0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[0].lo, 1);
        assert_eq!(bins[1].hi, 2048);
    }
}

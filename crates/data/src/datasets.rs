//! Dataset presets.
//!
//! The three evaluation datasets come directly from the paper's Table 2
//! (proportion of sequences per power-of-two length bin, lengths in tokens).
//! The additional Fig.-1-style corpora (StackExchange, OpenWebMath, FineWeb)
//! are plausible binned reconstructions of the public datasets' length
//! profiles, used by the Fig. 1 and Fig. 3 reproductions.

use crate::distribution::{table2_bins, LengthBin, LengthDistribution};

/// ArXiv (Table 2, row 1): mid-length papers, balanced 4–32k mass.
pub fn arxiv() -> LengthDistribution {
    LengthDistribution::new(
        "ArXiv",
        table2_bins([0.032, 0.03, 0.08, 0.219, 0.338, 0.224, 0.077, 0.0, 0.0]),
    )
    .expect("preset is valid")
}

/// GitHub (Table 2, row 2): long-tailed code, sequences beyond 128k.
pub fn github() -> LengthDistribution {
    LengthDistribution::new(
        "GitHub",
        table2_bins([
            // Table 2 row sums to 0.945; the remaining 0.055 mass is not
            // printed in the paper. We renormalize proportionally.
            0.0 / 0.945,
            0.34 / 0.945,
            0.095 / 0.945,
            0.104 / 0.945,
            0.107 / 0.945,
            0.102 / 0.945,
            0.088 / 0.945,
            0.064 / 0.945,
            0.045 / 0.945,
        ]),
    )
    .expect("preset is valid")
}

/// ProLong64k (Table 2, row 3): bimodal — many short, a 0.673 spike at
/// 32–64k (the ProLong recipe packs long documents to 64k).
pub fn prolong64k() -> LengthDistribution {
    LengthDistribution::new(
        "ProLong64k",
        table2_bins([0.231, 0.042, 0.021, 0.012, 0.013, 0.008, 0.673, 0.0, 0.0]),
    )
    .expect("preset is valid")
}

/// StackExchange (Fig. 1 style): Q&A text, overwhelmingly short.
pub fn stackexchange() -> LengthDistribution {
    LengthDistribution::new(
        "StackExchange",
        vec![
            LengthBin {
                lo: 1,
                hi: 512,
                prob: 0.62,
            },
            LengthBin {
                lo: 512,
                hi: 1024,
                prob: 0.21,
            },
            LengthBin {
                lo: 1024,
                hi: 2048,
                prob: 0.11,
            },
            LengthBin {
                lo: 2048,
                hi: 4096,
                prob: 0.045,
            },
            LengthBin {
                lo: 4096,
                hi: 8192,
                prob: 0.012,
            },
            LengthBin {
                lo: 8192,
                hi: 16384,
                prob: 0.003,
            },
        ],
    )
    .expect("preset is valid")
}

/// OpenWebMath (Fig. 1 style): math web pages, mostly 1–8k.
pub fn openwebmath() -> LengthDistribution {
    LengthDistribution::new(
        "OpenWebMath",
        vec![
            LengthBin {
                lo: 1,
                hi: 1024,
                prob: 0.30,
            },
            LengthBin {
                lo: 1024,
                hi: 2048,
                prob: 0.27,
            },
            LengthBin {
                lo: 2048,
                hi: 4096,
                prob: 0.22,
            },
            LengthBin {
                lo: 4096,
                hi: 8192,
                prob: 0.13,
            },
            LengthBin {
                lo: 8192,
                hi: 16384,
                prob: 0.06,
            },
            LengthBin {
                lo: 16384,
                hi: 65536,
                prob: 0.02,
            },
        ],
    )
    .expect("preset is valid")
}

/// FineWeb (Fig. 1 style): filtered web text, short with a thin tail.
pub fn fineweb() -> LengthDistribution {
    LengthDistribution::new(
        "FineWeb",
        vec![
            LengthBin {
                lo: 1,
                hi: 512,
                prob: 0.40,
            },
            LengthBin {
                lo: 512,
                hi: 1024,
                prob: 0.25,
            },
            LengthBin {
                lo: 1024,
                hi: 2048,
                prob: 0.18,
            },
            LengthBin {
                lo: 2048,
                hi: 4096,
                prob: 0.10,
            },
            LengthBin {
                lo: 4096,
                hi: 16384,
                prob: 0.06,
            },
            LengthBin {
                lo: 16384,
                hi: 131072,
                prob: 0.01,
            },
        ],
    )
    .expect("preset is valid")
}

/// The three evaluation datasets of Table 2, in paper order.
pub fn paper_datasets() -> Vec<LengthDistribution> {
    vec![arxiv(), github(), prolong64k()]
}

/// Dataset names accepted by [`by_name`] (canonical spellings).
pub const DATASET_NAMES: [&str; 6] = [
    "arxiv",
    "github",
    "prolong64k",
    "stackexchange",
    "openwebmath",
    "fineweb",
];

/// Resolves a dataset preset by its CLI/protocol/trace name. Shared by the
/// serving registry, the CLI, and per-job dataset resolution in the cluster
/// simulation, so every layer accepts one vocabulary.
///
/// # Errors
///
/// Returns the offending name for unknown datasets.
pub fn by_name(name: &str) -> Result<LengthDistribution, String> {
    match name.to_ascii_lowercase().as_str() {
        "arxiv" => Ok(arxiv()),
        "github" => Ok(github()),
        "prolong64k" | "prolong" => Ok(prolong64k()),
        "stackexchange" => Ok(stackexchange()),
        "openwebmath" => Ok(openwebmath()),
        "fineweb" => Ok(fineweb()),
        other => Err(other.to_string()),
    }
}

/// The wider Fig. 1 mixture (evaluation datasets + web corpora).
pub fn fig1_datasets() -> Vec<LengthDistribution> {
    vec![
        arxiv(),
        github(),
        prolong64k(),
        stackexchange(),
        openwebmath(),
        fineweb(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        for d in fig1_datasets() {
            d.validate().unwrap_or_else(|e| panic!("{}: {e}", d.name));
        }
    }

    #[test]
    fn table2_proportions_round_trip() {
        // Spot-check that the ArXiv preset carries Table 2's exact masses.
        let a = arxiv();
        let bin_8_16k = a
            .bins
            .iter()
            .find(|b| b.lo == 8192 && b.hi == 16384)
            .expect("8-16k bin present");
        assert!((bin_8_16k.prob - 0.338).abs() < 1e-12);
    }

    #[test]
    fn github_is_renormalized() {
        let g = github();
        let sum: f64 = g.bins.iter().map(|b| b.prob).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // The >64k tail survives renormalization.
        assert!(g.tail_mass(65536) > 0.10);
    }

    #[test]
    fn prolong_is_bimodal() {
        let p = prolong64k();
        // Heavy short mass and a heavy 32-64k spike.
        assert!(p.bins[0].prob > 0.2);
        let spike = p
            .bins
            .iter()
            .find(|b| b.lo == 32 * 1024)
            .expect("32-64k bin");
        assert!(spike.prob > 0.6);
    }

    #[test]
    fn dataset_character_ordering() {
        // Mean lengths should order: stackexchange < fineweb < arxiv.
        let se = stackexchange().mean();
        let fw = fineweb().mean();
        let ax = arxiv().mean();
        assert!(se < fw && fw < ax, "{se} {fw} {ax}");
    }

    #[test]
    fn paper_datasets_are_three() {
        let names: Vec<String> = paper_datasets().into_iter().map(|d| d.name).collect();
        assert_eq!(names, vec!["ArXiv", "GitHub", "ProLong64k"]);
    }
}

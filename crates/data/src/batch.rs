//! Batch construction: sampling variable-length sequences to a token budget.
//!
//! The paper fixes the *total context length* per iteration (e.g. 64k–256k
//! tokens with 4k per GPU) and fills it with sequences "sampled
//! proportionally to dataset distributions". [`sample_batch`] reproduces
//! that: draw lengths until the budget is met, trimming the final sequence
//! to land exactly on the budget. Special generators build the Balanced and
//! Skewed batches of Table 3.

use rand::Rng;

use crate::distribution::LengthDistribution;

/// A training batch: the sequence lengths of one iteration, in tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Sequence lengths; order is not meaningful.
    pub seqs: Vec<u64>,
}

impl Batch {
    /// Creates a batch from raw lengths.
    ///
    /// # Panics
    ///
    /// Panics if any length is zero: zero-length sequences cannot exist in
    /// a tokenized corpus and break downstream invariants.
    pub fn new(seqs: Vec<u64>) -> Batch {
        assert!(
            seqs.iter().all(|&s| s > 0),
            "batch contains a zero-length sequence"
        );
        Batch { seqs }
    }

    /// Total tokens in the batch.
    pub fn total_tokens(&self) -> u64 {
        self.seqs.iter().sum()
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// True if the batch holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// Longest sequence, or 0 for an empty batch.
    pub fn max_len(&self) -> u64 {
        self.seqs.iter().copied().max().unwrap_or(0)
    }

    /// Lengths sorted descending (the order partitioners consume).
    pub fn sorted_desc(&self) -> Vec<u64> {
        let mut v = self.seqs.clone();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }
}

/// Parses a batch from trace text: one sequence length per line, with
/// blank lines and `#` comments ignored — the format produced by dumping a
/// real dataloader's per-document token counts.
///
/// # Errors
///
/// Returns a message naming the first bad line (non-integer or zero).
pub fn parse_lengths(text: &str) -> Result<Batch, String> {
    let mut lens = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let len: u64 = line
            .parse()
            .map_err(|_| format!("line {}: '{}' is not a length", lineno + 1, line))?;
        if len == 0 {
            return Err(format!("line {}: zero-length sequence", lineno + 1));
        }
        lens.push(len);
    }
    if lens.is_empty() {
        return Err("no sequence lengths found".to_string());
    }
    Ok(Batch::new(lens))
}

/// Samples a batch of exactly `target_tokens` tokens from `dist`.
///
/// Lengths are drawn i.i.d. from the distribution; the last draw is trimmed
/// so the total lands exactly on the budget (mirroring how a fixed context
/// window truncates the final document). Draws longer than the remaining
/// budget are likewise trimmed, so a single long document can fill the whole
/// window.
///
/// # Panics
///
/// Panics if `target_tokens == 0`.
pub fn sample_batch<R: Rng + ?Sized>(
    dist: &LengthDistribution,
    rng: &mut R,
    target_tokens: u64,
) -> Batch {
    assert!(target_tokens > 0, "target_tokens must be positive");
    let mut seqs = Vec::new();
    let mut total = 0u64;
    while total < target_tokens {
        let remaining = target_tokens - total;
        let s = dist.sample(rng).min(remaining);
        seqs.push(s);
        total += s;
    }
    Batch::new(seqs)
}

/// Builds Table 3's *Balanced* batch: one sequence per distribution bin
/// (its geometric midpoint), repeated round-robin until `target_tokens` is
/// reached, final sequence trimmed.
pub fn balanced_batch(dist: &LengthDistribution, target_tokens: u64) -> Batch {
    assert!(target_tokens > 0, "target_tokens must be positive");
    let mids: Vec<u64> = dist
        .bins
        .iter()
        .map(|b| {
            let lo = b.lo.max(1) as f64;
            let hi = (b.hi - 1) as f64;
            (lo * hi).sqrt().round().max(1.0) as u64
        })
        .collect();
    let mut seqs = Vec::new();
    let mut total = 0u64;
    let mut i = 0usize;
    while total < target_tokens {
        let remaining = target_tokens - total;
        let s = mids[i % mids.len()].min(remaining);
        seqs.push(s);
        total += s;
        i += 1;
    }
    Batch::new(seqs)
}

/// Builds Table 3's *Skewed* batch: one very long sequence taking
/// `long_frac` of the budget plus short 1k sequences filling the rest.
///
/// # Panics
///
/// Panics if `long_frac` is not in `(0, 1]` or the budget is zero.
pub fn skewed_batch(target_tokens: u64, long_frac: f64) -> Batch {
    assert!(target_tokens > 0, "target_tokens must be positive");
    assert!(
        long_frac > 0.0 && long_frac <= 1.0,
        "long_frac must be in (0, 1], got {long_frac}"
    );
    let long = ((target_tokens as f64 * long_frac) as u64).max(1);
    let mut seqs = vec![long];
    let mut total = long;
    const SHORT: u64 = 1024;
    while total < target_tokens {
        let s = SHORT.min(target_tokens - total);
        seqs.push(s);
        total += s;
    }
    Batch::new(seqs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{arxiv, github, stackexchange};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_batch_hits_budget_exactly() {
        let mut rng = StdRng::seed_from_u64(1);
        for dist in [arxiv(), github(), stackexchange()] {
            for target in [4096u64, 65536, 262144] {
                let b = sample_batch(&dist, &mut rng, target);
                assert_eq!(b.total_tokens(), target, "{} @ {target}", dist.name);
                assert!(b.seqs.iter().all(|&s| s > 0));
            }
        }
    }

    #[test]
    fn short_dataset_yields_many_sequences() {
        let mut rng = StdRng::seed_from_u64(2);
        let se = sample_batch(&stackexchange(), &mut rng, 65536);
        let ax = sample_batch(&arxiv(), &mut rng, 65536);
        assert!(
            se.len() > 2 * ax.len(),
            "stackexchange {} vs arxiv {}",
            se.len(),
            ax.len()
        );
    }

    #[test]
    fn sampling_is_deterministic() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        assert_eq!(
            sample_batch(&github(), &mut a, 131072),
            sample_batch(&github(), &mut b, 131072)
        );
    }

    #[test]
    fn balanced_batch_covers_all_bins() {
        let b = balanced_batch(&arxiv(), 262144);
        assert_eq!(b.total_tokens(), 262144);
        // One sequence near each bin midpoint appears.
        let n_bins = arxiv().bins.len();
        assert!(b.len() >= n_bins);
    }

    #[test]
    fn skewed_batch_has_one_dominant_sequence() {
        let b = skewed_batch(131072, 0.75);
        assert_eq!(b.total_tokens(), 131072);
        let max = b.max_len();
        assert!((max as f64 / 131072.0 - 0.75).abs() < 0.01);
        // The rest are short.
        assert!(b.seqs.iter().filter(|&&s| s != max).all(|&s| s <= 1024));
    }

    #[test]
    fn parse_lengths_accepts_trace_format() {
        let b = parse_lengths("# doc lengths\n4096\n\n  128  \n77\n").unwrap();
        assert_eq!(b.seqs, vec![4096, 128, 77]);
    }

    #[test]
    fn parse_lengths_reports_bad_lines() {
        let err = parse_lengths("10\nx\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = parse_lengths("10\n0\n").unwrap_err();
        assert!(err.contains("zero-length"), "{err}");
        assert!(parse_lengths("# only comments\n").is_err());
    }

    #[test]
    fn batch_accessors() {
        let b = Batch::new(vec![5, 3, 9]);
        assert_eq!(b.total_tokens(), 17);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.max_len(), 9);
        assert_eq!(b.sorted_desc(), vec![9, 5, 3]);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_length_sequence_panics() {
        Batch::new(vec![4, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_budget_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        sample_batch(&arxiv(), &mut rng, 0);
    }

    #[test]
    #[should_panic(expected = "long_frac")]
    fn bad_long_frac_panics() {
        skewed_batch(1000, 1.5);
    }
}

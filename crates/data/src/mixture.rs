//! Weighted dataset mixtures.
//!
//! Pre-training batches draw from *mixtures* of corpora (Fig. 1's
//! motivation: "typical LLM training involves a mixture of datasets with
//! diverse and often long-tailed sequence length distributions"). A
//! [`Mixture`] samples each sequence's source distribution by weight, then
//! its length from that distribution.

use rand::Rng;
use rand::RngExt;

use crate::batch::Batch;
use crate::distribution::{DistError, LengthDistribution};

/// A weighted mixture of length distributions.
#[derive(Debug, Clone, PartialEq)]
pub struct Mixture {
    components: Vec<(LengthDistribution, f64)>,
    total_weight: f64,
}

impl Mixture {
    /// Creates a mixture from `(distribution, weight)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::BadProbabilities`] if any weight is
    /// non-positive or non-finite, or the component list is empty.
    pub fn new(components: Vec<(LengthDistribution, f64)>) -> Result<Mixture, DistError> {
        if components.is_empty() {
            return Err(DistError::BadProbabilities(0.0));
        }
        let mut total = 0.0;
        for (dist, w) in &components {
            dist.validate()?;
            if !(*w > 0.0 && w.is_finite()) {
                return Err(DistError::BadProbabilities(*w));
            }
            total += w;
        }
        Ok(Mixture {
            components,
            total_weight: total,
        })
    }

    /// Number of component distributions.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True if the mixture has no components (never; kept for API shape).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Normalized weight of component `i`.
    pub fn weight(&self, i: usize) -> f64 {
        self.components[i].1 / self.total_weight
    }

    /// Samples one sequence length (component by weight, then length).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut u = rng.random_range(0.0..self.total_weight);
        for (dist, w) in &self.components {
            if u < *w {
                return dist.sample(rng);
            }
            u -= w;
        }
        // Floating-point edge: fall back to the last component.
        self.components.last().expect("non-empty").0.sample(rng)
    }

    /// Samples a batch of exactly `target_tokens` (final draw trimmed).
    ///
    /// # Panics
    ///
    /// Panics if `target_tokens == 0`.
    pub fn sample_batch<R: Rng + ?Sized>(&self, rng: &mut R, target_tokens: u64) -> Batch {
        assert!(target_tokens > 0, "target_tokens must be positive");
        let mut seqs = Vec::new();
        let mut total = 0u64;
        while total < target_tokens {
            let s = self.sample(rng).min(target_tokens - total);
            seqs.push(s);
            total += s;
        }
        Batch::new(seqs)
    }

    /// Weight-averaged expected sequence length.
    pub fn mean(&self) -> f64 {
        self.components
            .iter()
            .map(|(d, w)| d.mean() * w / self.total_weight)
            .sum()
    }
}

/// A representative pre-training mixture over the built-in corpora
/// (web-heavy with code and long-context components).
pub fn pretraining_mix() -> Mixture {
    use crate::datasets::{fineweb, github, prolong64k, stackexchange};
    Mixture::new(vec![
        (fineweb(), 0.4),
        (stackexchange(), 0.2),
        (github(), 0.25),
        (prolong64k(), 0.15),
    ])
    .expect("preset is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{arxiv, stackexchange};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mixture_samples_both_components() {
        // StackExchange (short) + ArXiv (long): both regimes must appear.
        let mix = Mixture::new(vec![(stackexchange(), 1.0), (arxiv(), 1.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<u64> = (0..4000).map(|_| mix.sample(&mut rng)).collect();
        let short = samples.iter().filter(|&&s| s < 1024).count();
        let long = samples.iter().filter(|&&s| s > 8192).count();
        assert!(short > 800, "short {short}");
        assert!(long > 400, "long {long}");
    }

    #[test]
    fn weights_steer_component_frequency() {
        let heavy_short = Mixture::new(vec![(stackexchange(), 9.0), (arxiv(), 1.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 10_000;
        let short = (0..n)
            .filter(|_| heavy_short.sample(&mut rng) < 2048)
            .count() as f64;
        // ~90% StackExchange (almost all < 2k) + ~10% ArXiv (few < 2k).
        assert!((short / n as f64) > 0.8);
        assert!((heavy_short.weight(0) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn batches_hit_token_budget() {
        let mix = pretraining_mix();
        let mut rng = StdRng::seed_from_u64(3);
        for target in [8_192u64, 131_072] {
            let b = mix.sample_batch(&mut rng, target);
            assert_eq!(b.total_tokens(), target);
        }
    }

    #[test]
    fn mean_interpolates_components() {
        let se = stackexchange();
        let ax = arxiv();
        let mix = Mixture::new(vec![(se.clone(), 1.0), (ax.clone(), 1.0)]).unwrap();
        let m = mix.mean();
        assert!(m > se.mean() && m < ax.mean());
        assert!((m - (se.mean() + ax.mean()) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn bad_mixtures_are_rejected() {
        assert!(Mixture::new(vec![]).is_err());
        assert!(Mixture::new(vec![(arxiv(), 0.0)]).is_err());
        assert!(Mixture::new(vec![(arxiv(), f64::NAN)]).is_err());
    }

    #[test]
    fn sampling_is_deterministic() {
        let mix = pretraining_mix();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(
            mix.sample_batch(&mut a, 65_536),
            mix.sample_batch(&mut b, 65_536)
        );
    }
}

//! Descriptive statistics over sequence-length samples.
//!
//! Used by the Fig. 1 / Table 2 reproductions to histogram sampled batches
//! and compare them against their generating distributions.

/// A histogram over explicit `[lo, hi)` edges.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Bin edges: bin `i` covers `[edges[i], edges[i+1])`.
    pub edges: Vec<u64>,
    /// Counts per bin; values outside all bins are dropped (tracked in
    /// `outliers`).
    pub counts: Vec<u64>,
    /// Number of values outside the edge range.
    pub outliers: u64,
}

impl Histogram {
    /// Builds a histogram of `values` over `edges` (ascending, ≥ 2 entries).
    ///
    /// # Panics
    ///
    /// Panics if edges are not strictly ascending or fewer than two.
    pub fn new(values: &[u64], edges: &[u64]) -> Histogram {
        assert!(edges.len() >= 2, "need at least two edges");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly ascending"
        );
        let mut counts = vec![0u64; edges.len() - 1];
        let mut outliers = 0u64;
        for &v in values {
            match edges.binary_search(&v) {
                // Exactly on edge i: belongs to bin i (edge is inclusive lo),
                // except the last edge which is exclusive.
                Ok(i) if i + 1 < edges.len() => counts[i] += 1,
                Ok(_) => outliers += 1,
                Err(0) => outliers += 1,
                Err(i) if i < edges.len() => counts[i - 1] += 1,
                Err(_) => outliers += 1,
            }
        }
        Histogram {
            edges: edges.to_vec(),
            counts,
            outliers,
        }
    }

    /// Fraction of in-range values per bin (zeros if empty).
    pub fn fractions(&self) -> Vec<f64> {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }
}

/// The paper's standard power-of-two edges: 1, 1k, 2k, ..., 256k.
pub fn table2_edges() -> Vec<u64> {
    const K: u64 = 1024;
    vec![
        1,
        K,
        2 * K,
        4 * K,
        8 * K,
        16 * K,
        32 * K,
        64 * K,
        128 * K,
        256 * K,
    ]
}

/// Arithmetic mean of a slice (0 for empty input).
pub fn mean(values: &[u64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<u64>() as f64 / values.len() as f64
}

/// The `p`-th percentile (0–100) by nearest-rank on a sorted copy.
///
/// # Panics
///
/// Panics if `values` is empty or `p` is outside `[0, 100]`.
pub fn percentile(values: &[u64], p: f64) -> u64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let mut v = values.to_vec();
    v.sort_unstable();
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    v[rank]
}

/// Coefficient of variation (stddev / mean); 0 for constant or empty input.
pub fn cv(values: &[u64]) -> f64 {
    let m = mean(values);
    if m == 0.0 || values.len() < 2 {
        return 0.0;
    }
    let var = values
        .iter()
        .map(|&v| {
            let d = v as f64 - m;
            d * d
        })
        .sum::<f64>()
        / values.len() as f64;
    var.sqrt() / m
}

/// Max/mean imbalance of per-worker loads; 1.0 for empty or all-zero loads.
pub fn load_imbalance(loads: &[f64]) -> f64 {
    if loads.is_empty() {
        return 1.0;
    }
    let sum: f64 = loads.iter().sum();
    if sum <= 0.0 {
        return 1.0;
    }
    let mean = sum / loads.len() as f64;
    let max = loads.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    max / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_and_outliers() {
        let h = Histogram::new(&[1, 5, 10, 15, 99, 100], &[1, 10, 100]);
        assert_eq!(h.counts, vec![2, 3]);
        assert_eq!(h.outliers, 1); // 100 is outside [1, 100).
    }

    #[test]
    fn histogram_fractions_sum_to_one() {
        let h = Histogram::new(&[2, 3, 50, 60, 70], &[1, 10, 100]);
        let f = h.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((f[0] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_fractions_are_zero() {
        let h = Histogram::new(&[], &[1, 10]);
        assert_eq!(h.fractions(), vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_edges_panic() {
        Histogram::new(&[1], &[10, 5]);
    }

    #[test]
    fn table2_edges_have_nine_bins() {
        let e = table2_edges();
        assert_eq!(e.len(), 10);
        assert_eq!(e[0], 1);
        assert_eq!(*e.last().unwrap(), 256 * 1024);
    }

    #[test]
    fn mean_and_percentile() {
        let v = vec![1, 2, 3, 4, 100];
        assert!((mean(&v) - 22.0).abs() < 1e-12);
        assert_eq!(percentile(&v, 50.0), 3);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn cv_detects_dispersion() {
        assert_eq!(cv(&[5, 5, 5, 5]), 0.0);
        assert!(cv(&[1, 100]) > 0.9);
        assert_eq!(cv(&[]), 0.0);
    }

    #[test]
    fn load_imbalance_basics() {
        assert_eq!(load_imbalance(&[]), 1.0);
        assert_eq!(load_imbalance(&[0.0, 0.0]), 1.0);
        assert!((load_imbalance(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((load_imbalance(&[3.0, 1.0]) - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_of_empty_panics() {
        percentile(&[], 50.0);
    }
}

//! Smoke tests of the bench harness: every exhibit's plumbing must run on
//! a miniature configuration, so the figure binaries cannot rot silently.

use zeppelin_bench::harness::{methods, run_method, ClusterKind, Method, PAPER_SEED};
use zeppelin_bench::table::Table;
use zeppelin_core::zeppelin::ZeppelinConfig;
use zeppelin_data::datasets::paper_datasets;
use zeppelin_exec::trainer::RunConfig;
use zeppelin_exec::StepConfig;
use zeppelin_model::config::llama_3b;

fn mini_cfg() -> RunConfig {
    RunConfig {
        steps: 2,
        tokens_per_step: 32_768,
        seed: PAPER_SEED,
        step: StepConfig::default(),
    }
}

#[test]
fn every_method_runs_on_every_cluster_kind() {
    let model = llama_3b();
    let dist = &paper_datasets()[0];
    for kind in [ClusterKind::A, ClusterKind::B, ClusterKind::C] {
        let cluster = kind.build(1);
        for method in methods() {
            let out = run_method(&method, dist, &cluster, &model, &mini_cfg());
            assert!(
                out.throughput.unwrap_or(0.0) > 0.0,
                "{} on {}",
                out.name,
                kind.label()
            );
        }
    }
}

#[test]
fn extended_methods_run_too() {
    let model = llama_3b();
    let cluster = ClusterKind::A.build(2);
    let dist = &paper_datasets()[1];
    for method in [
        Method::TeCpRouting,
        Method::Packing,
        Method::Zeppelin(ZeppelinConfig {
            routing: false,
            remapping: true,
        }),
    ] {
        let out = run_method(&method, dist, &cluster, &model, &mini_cfg());
        assert!(out.throughput.unwrap_or(0.0) > 0.0, "{}", out.name);
    }
}

#[test]
fn method_roster_matches_paper_baselines() {
    let names: Vec<&str> = methods().iter().map(|m| m.name()).collect();
    assert_eq!(names, vec!["TE CP", "LLaMA CP", "Hybrid DP", "Zeppelin"]);
}

#[test]
fn oom_points_surface_as_none_not_panic() {
    // 30B on a single tiny node cannot fit large batches with TE CP.
    let model = zeppelin_model::config::llama_30b();
    let cluster = ClusterKind::A.build(1);
    let mut cfg = mini_cfg();
    cfg.tokens_per_step = 1 << 22; // 4M tokens on 8 GPUs: hopeless.
    let out = run_method(&Method::TeCp, &paper_datasets()[0], &cluster, &model, &cfg);
    assert!(out.throughput.is_none());
    assert!(out.report.is_none());
}

#[test]
fn table_rendering_is_stable() {
    let mut t = Table::new(vec!["a", "bb"]);
    t.row(vec!["1", "2"]);
    let first = t.render();
    let second = t.render();
    assert_eq!(first, second);
    assert_eq!(first.lines().count(), 3);
}

//! # zeppelin-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation. Each `src/bin/figN.rs` / `src/bin/tableN.rs` binary prints
//! the rows or series of the corresponding exhibit; this library holds the
//! shared experiment plumbing (method roster, cluster/model/dataset lookup,
//! run orchestration, table rendering).
//!
//! Run an exhibit with e.g. `cargo run --release -p zeppelin-bench --bin
//! fig8`. Criterion micro-benchmarks of the algorithms themselves live in
//! `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod table;

pub use harness::{
    methods, quick_run_config, run_method, ClusterKind, Method, MethodOutcome, PAPER_SEED,
};
pub use table::Table;

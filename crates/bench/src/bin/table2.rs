//! Table 2: dataset length-bin proportions — specification vs sampler.
//!
//! Prints, for each evaluation dataset, the proportions published in the
//! paper's Table 2 next to the empirical proportions of our synthetic
//! sampler, with the maximum absolute deviation. This validates the
//! dataset substitution (the paper itself trains on synthetic batches
//! matched to these distributions).

use rand::rngs::StdRng;
use rand::SeedableRng;

use zeppelin_bench::harness::PAPER_SEED;
use zeppelin_bench::table::Table;
use zeppelin_data::datasets::paper_datasets;
use zeppelin_data::stats::{table2_edges, Histogram};

fn main() {
    const SAMPLES: usize = 200_000;
    let edges = table2_edges();
    let mut rng = StdRng::seed_from_u64(PAPER_SEED);

    println!("Table 2 — sequence length distribution of three datasets");
    println!("(spec = paper's proportions; sampled = {SAMPLES} draws)\n");

    for dist in paper_datasets() {
        let mut table = Table::new(vec!["bin", "spec", "sampled", "|diff|"]);
        let samples: Vec<u64> = (0..SAMPLES).map(|_| dist.sample(&mut rng)).collect();
        let hist = Histogram::new(&samples, &edges);
        let fracs = hist.fractions();
        let mut max_dev = 0.0f64;
        for (i, w) in edges.windows(2).enumerate() {
            let spec = dist
                .bins
                .iter()
                .find(|b| b.lo == w[0].max(1) && b.hi == w[1])
                .map(|b| b.prob)
                .unwrap_or(0.0);
            let got = fracs[i];
            let dev = (spec - got).abs();
            max_dev = max_dev.max(dev);
            table.row(vec![
                format!("{}-{}k", w[0] / 1024, w[1] / 1024),
                format!("{spec:.3}"),
                format!("{got:.3}"),
                format!("{dev:.4}"),
            ]);
        }
        println!("{}:", dist.name);
        println!("{}", table.render());
        println!("max deviation: {max_dev:.4}\n");
        assert!(
            max_dev < 0.01,
            "{} sampler deviates from Table 2 by {max_dev}",
            dist.name
        );
    }
    println!("all samplers match Table 2 within 1%");
}

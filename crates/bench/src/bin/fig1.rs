//! Fig. 1: sequence-length distributions of the training corpora.
//!
//! Samples each dataset's synthetic distribution and prints the fraction of
//! sequences per power-of-two length bin, reproducing the histograms of the
//! paper's Fig. 1 (long-tailed, highly diverse mixtures).

use rand::rngs::StdRng;
use rand::SeedableRng;

use zeppelin_bench::harness::PAPER_SEED;
use zeppelin_bench::table::Table;
use zeppelin_data::datasets::fig1_datasets;
use zeppelin_data::stats::{table2_edges, Histogram};

fn main() {
    const SAMPLES: usize = 50_000;
    let edges = table2_edges();
    let mut header: Vec<String> = vec!["dataset".into(), "mean".into()];
    for w in edges.windows(2) {
        header.push(format!("{}-{}k", w[0] / 1024, w[1] / 1024));
    }
    let mut table = Table::new(header);

    let mut rng = StdRng::seed_from_u64(PAPER_SEED);
    for dist in fig1_datasets() {
        let samples: Vec<u64> = (0..SAMPLES).map(|_| dist.sample(&mut rng)).collect();
        let hist = Histogram::new(&samples, &edges);
        let mut row = vec![
            dist.name.clone(),
            format!("{:.0}", zeppelin_data::stats::mean(&samples)),
        ];
        for f in hist.fractions() {
            row.push(if f > 0.0005 {
                format!("{f:.3}")
            } else {
                ".".into()
            });
        }
        table.row(row);
    }
    println!("Fig. 1 — sequence length distribution per dataset");
    println!("(fraction of sequences per bin; {SAMPLES} samples each)\n");
    println!("{}", table.render());
}

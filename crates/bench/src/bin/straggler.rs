//! Extension exhibit: straggler tolerance.
//!
//! One GPU in a 2-node Cluster A runs degraded (thermal throttling, a bad
//! HBM stack — a routine production event). Compares TE CP (every sequence
//! crosses the slow GPU), Zeppelin planned *unaware* of the defect, and
//! Zeppelin planned with straggler-aware placement (degraded ranks get
//! lighter local queues and join intra-node rings last).

use zeppelin_baselines::te_cp::TeCp;
use zeppelin_bench::harness::{paper_rng, paper_testbed};
use zeppelin_bench::table::Table;
use zeppelin_core::scheduler::{Scheduler, SchedulerCtx};
use zeppelin_core::zeppelin::Zeppelin;
use zeppelin_data::batch::sample_batch;
use zeppelin_data::datasets::{arxiv, openwebmath, stackexchange};
use zeppelin_exec::step::{simulate_step, StepConfig};

fn main() {
    const SLOW_RANK: usize = 5;
    let slow_factor: f64 = std::env::var("STRAGGLER_FACTOR")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);
    let (cluster, _, healthy_ctx) = paper_testbed();
    let mut speed = vec![1.0; cluster.total_gpus()];
    speed[SLOW_RANK] = slow_factor;

    let aware_ctx = healthy_ctx.clone().with_rank_speed(speed.clone());
    let mut cfg = StepConfig::default();
    cfg.exec.rank_speed = speed.clone();
    let mut aware_cfg = cfg.clone();
    aware_cfg.exec.speed_aware_remap = true;
    let healthy_cfg = StepConfig::default();

    println!(
        "Straggler study — rank {SLOW_RANK} at {:.0}% speed, 3B, 2 nodes Cluster A, 64k\n",
        slow_factor * 100.0
    );
    let mut table = Table::new(vec![
        "dataset",
        "TE CP healthy",
        "TE CP degraded",
        "Zeppelin unaware",
        "Zeppelin aware",
        "aware vs unaware",
    ]);
    let mut rng = paper_rng(0);
    for dist in [stackexchange(), openwebmath(), arxiv()] {
        let batch = sample_batch(&dist, &mut rng, 65_536);
        // A failed point is reported explicitly, never rendered as NaN.
        let run = |s: &dyn Scheduler, ctx: &SchedulerCtx, c: &StepConfig| {
            simulate_step(s, &batch, ctx, c).map(|r| r.throughput)
        };
        let cell = |r: &Result<f64, _>| match r {
            Ok(tput) => format!("{tput:.0}"),
            Err(_) => "failed".to_string(),
        };
        let te_h = run(&TeCp::new(), &healthy_ctx, &healthy_cfg);
        let te_d = run(&TeCp::new(), &healthy_ctx, &cfg);
        let zep_unaware = run(&Zeppelin::new(), &healthy_ctx, &cfg);
        let zep_aware = run(&Zeppelin::new(), &aware_ctx, &aware_cfg);
        for (label, r) in [
            ("TE CP healthy", &te_h),
            ("TE CP degraded", &te_d),
            ("Zeppelin unaware", &zep_unaware),
            ("Zeppelin aware", &zep_aware),
        ] {
            if let Err(e) = r {
                eprintln!("{}: {label} failed: {e}", dist.name);
            }
        }
        let delta = match (&zep_aware, &zep_unaware) {
            (Ok(a), Ok(u)) => format!("{:+.1}%", 100.0 * (a / u - 1.0)),
            _ => "n/a".to_string(),
        };
        table.row(vec![
            dist.name.clone(),
            cell(&te_h),
            cell(&te_d),
            cell(&zep_unaware),
            cell(&zep_aware),
            delta,
        ]);
    }
    println!("{}", table.render());
    println!("reading: a ring is as slow as its slowest member, so on");
    println!("ring-heavy batches (ArXiv) both TE CP and Zeppelin pay the full");
    println!("straggler tax and awareness cannot help — equal-split zigzag");
    println!("chunks assume homogeneity. Awareness pays on local-heavy");
    println!("batches (StackExchange): the slow GPU's local queue lightens");
    println!("and the remapping layer sets speed-proportional linear-module");
    println!("targets. The zeppelin-het scheduler closes the ring-heavy gap");
    println!("with speed-proportional chunk sizes — see the hetero exhibit.");
}

//! Fig. 10: speedup comparison on Clusters A and B.
//!
//! Same 3B workload on both clusters (4 nodes, 4k tokens/GPU). Cluster B's
//! Hopper GPUs and one-NIC-per-GPU fabric raise absolute throughput for
//! everyone; Cluster A's larger computation-to-communication gap gives
//! Zeppelin a larger *relative* speedup — the paper's §5.2 observation.

use zeppelin_bench::harness::{methods, run_method, ClusterKind, PAPER_SEED};
use zeppelin_bench::table::{fmt_speedup, fmt_tput, Table};
use zeppelin_data::datasets::paper_datasets;
use zeppelin_exec::trainer::RunConfig;
use zeppelin_exec::StepConfig;
use zeppelin_model::config::llama_3b;

fn main() {
    const NODES: usize = 4;
    const TOKENS_PER_GPU: u64 = 4096;
    let steps: usize = std::env::var("FIG10_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let model = llama_3b();
    let tokens = TOKENS_PER_GPU * (NODES * 8) as u64;

    println!("Fig. 10 — Cluster A vs Cluster B, LLaMA 3B, {NODES} nodes");
    println!("({steps} sampled steps per cell)\n");

    let mut avg_speedup = std::collections::BTreeMap::new();
    for kind in [ClusterKind::A, ClusterKind::B] {
        let cluster = kind.build(NODES);
        let cfg = RunConfig {
            steps,
            tokens_per_step: tokens,
            seed: PAPER_SEED,
            step: StepConfig::default(),
        };
        let mut table = Table::new(vec![
            "dataset",
            "TE CP",
            "LLaMA CP",
            "Hybrid DP",
            "Zeppelin",
            "speedup",
        ]);
        let mut speedups = Vec::new();
        for dist in paper_datasets() {
            let tputs: Vec<Option<f64>> = methods()
                .iter()
                .map(|m| run_method(m, &dist, &cluster, &model, &cfg).throughput)
                .collect();
            if let (Some(te), Some(z)) = (tputs[0], tputs[3]) {
                speedups.push(z / te);
            }
            table.row(vec![
                dist.name.clone(),
                fmt_tput(tputs[0]),
                fmt_tput(tputs[1]),
                fmt_tput(tputs[2]),
                fmt_tput(tputs[3]),
                fmt_speedup(tputs[3], tputs[0]),
            ]);
        }
        let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
        avg_speedup.insert(kind.label(), avg);
        println!("{} (avg Zeppelin speedup {avg:.2}x):", kind.label());
        println!("{}", table.render());
    }
    println!(
        "avg Zeppelin speedup: {:.2}x on Cluster A vs {:.2}x on Cluster B",
        avg_speedup["Cluster A"], avg_speedup["Cluster B"]
    );
    println!(
        "KNOWN DEVIATION: the paper measures the larger *relative* speedup on\n\
         Cluster A. Its profiled ring-attention kernels run at ~8% of peak\n\
         (Fig. 12: 4.41 ms compute vs 2.18 ms comm per round), leaving TE CP\n\
         partially compute-bound, so Hopper GPUs lift the baseline on B. Our\n\
         kernel model uses healthy FlashAttention efficiency (~50%), which\n\
         makes TE CP communication-bound on both clusters — its throughput\n\
         barely moves from A to B, and Zeppelin's gain grows with B's extra\n\
         NICs instead. See EXPERIMENTS.md."
    );
}

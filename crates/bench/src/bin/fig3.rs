//! Fig. 3: where existing balancing schemes spend their attention budget.
//!
//! Setup mirrors the paper: 2 nodes × 8 A800 GPUs, 64k total context,
//! costs aggregated over many sampled batches and normalized to each
//! dataset's total attention cost, split across sequence-length bins.
//!
//! (a) **Packing**: useful causal pairs vs redundant cross-sequence pairs
//!     per length bin — short-sequence corpora waste most of their budget.
//! (b) **Even-split CP (TE)**: attention compute time vs ring send-receive
//!     time per length bin — short sequences drown in communication.

use rand::rngs::StdRng;

use zeppelin_baselines::packing::pack_into_bins_tagged;
use zeppelin_bench::harness::{paper_rng, paper_testbed};
use zeppelin_bench::table::Table;
use zeppelin_data::batch::sample_batch;
use zeppelin_data::datasets::{fig1_datasets, paper_datasets};
use zeppelin_data::distribution::LengthDistribution;
use zeppelin_data::stats::table2_edges;
use zeppelin_model::flops::{causal_pairs_full, flops_per_pair};
use zeppelin_model::kernel::KernelModel;
use zeppelin_model::memory::kv_bytes;

const RANKS: usize = 16;
const TOTAL: u64 = 65_536;
const BATCHES: usize = 30;

fn bin_label(edges: &[u64], len: u64) -> usize {
    edges
        .windows(2)
        .position(|w| len >= w[0] && len < w[1])
        .unwrap_or(edges.len() - 2)
}

/// Fig. 3a: per-bin useful vs redundant packed-attention FLOPs.
fn packing_analysis(dist: &LengthDistribution, rng: &mut StdRng, edges: &[u64]) -> Vec<(f64, f64)> {
    let nbins = edges.len() - 1;
    let mut useful = vec![0.0f64; nbins];
    let mut redundant = vec![0.0f64; nbins];
    for _ in 0..BATCHES {
        let batch = sample_batch(dist, rng, TOTAL);
        let windows = pack_into_bins_tagged(&batch.seqs, RANKS);
        for window in windows {
            let mut before = 0u64;
            for (orig, len) in window {
                let bin = bin_label(edges, batch.seqs[orig]);
                // Within-segment causal pairs are useful; attention to the
                // earlier (foreign) tokens of the window is pure waste.
                useful[bin] += causal_pairs_full(len) as f64;
                redundant[bin] += (len * before) as f64;
                before += len;
            }
        }
    }
    let total: f64 = useful.iter().sum::<f64>() + redundant.iter().sum::<f64>();
    useful
        .iter()
        .zip(&redundant)
        .map(|(&u, &r)| (u / total, r / total))
        .collect()
}

/// Fig. 3b: per-bin attention compute time vs ring communication time under
/// even-split CP across all 16 ranks.
fn cp_analysis(dist: &LengthDistribution, rng: &mut StdRng, edges: &[u64]) -> Vec<(f64, f64)> {
    let (cluster, cfg, _) = paper_testbed();
    let kernel = KernelModel::attention();
    let peak = cluster.node.gpu.peak_flops;
    let inter_bw = cluster.direct_internode_bw();
    let nbins = edges.len() - 1;
    let mut compute = vec![0.0f64; nbins];
    let mut comm = vec![0.0f64; nbins];
    for _ in 0..BATCHES {
        let batch = sample_batch(dist, rng, TOTAL);
        for &len in &batch.seqs {
            let bin = bin_label(edges, len);
            // Whole-sequence attention compute, spread over the group.
            let flops = causal_pairs_full(len) as f64 * flops_per_pair(&cfg);
            compute[bin] += kernel.kernel_time(flops / RANKS as f64, peak) * RANKS as f64;
            // Each rank ships the sequence's full KV once around the ring;
            // the slowest hops are the NIC-limited inter-node crossings.
            comm[bin] += kv_bytes(&cfg, len) / inter_bw * 2.0; // two crossings.
        }
    }
    let total: f64 = compute.iter().sum::<f64>() + comm.iter().sum::<f64>();
    compute
        .iter()
        .zip(&comm)
        .map(|(&c, &m)| (c / total, m / total))
        .collect()
}

fn main() {
    let edges = table2_edges();
    let mut rng = paper_rng(0);

    println!("Fig. 3 — attention cost distribution per length bin");
    println!("(2 nodes x 8 A800, 64k total context, {BATCHES} sampled batches)\n");

    println!("(a) packing: share of attention FLOPs, useful vs redundant");
    let mut datasets = paper_datasets();
    // StackExchange is the paper's worst case for packing waste.
    datasets.extend(
        fig1_datasets()
            .into_iter()
            .filter(|d| d.name == "StackExchange"),
    );
    for dist in &datasets {
        let rows = packing_analysis(dist, &mut rng, &edges);
        let mut table = Table::new(vec!["bin", "useful", "redundant", "waste frac"]);
        for (i, w) in edges.windows(2).enumerate() {
            let (u, r) = rows[i];
            if u + r < 1e-6 {
                continue;
            }
            table.row(vec![
                format!("{}-{}k", w[0] / 1024, w[1] / 1024),
                format!("{u:.3}"),
                format!("{r:.3}"),
                format!("{:.0}%", 100.0 * r / (u + r)),
            ]);
        }
        let waste: f64 = rows.iter().map(|(_, r)| r).sum();
        println!(
            "\n{} (total redundant share {:.0}%):",
            dist.name,
            100.0 * waste
        );
        println!("{}", table.render());
    }

    println!("\n(b) even-split CP: share of attention time, compute vs communication");
    for dist in paper_datasets() {
        let rows = cp_analysis(&dist, &mut rng, &edges);
        let mut table = Table::new(vec!["bin", "compute", "comm", "comm frac"]);
        for (i, w) in edges.windows(2).enumerate() {
            let (c, m) = rows[i];
            if c + m < 1e-6 {
                continue;
            }
            table.row(vec![
                format!("{}-{}k", w[0] / 1024, w[1] / 1024),
                format!("{c:.3}"),
                format!("{m:.3}"),
                format!("{:.0}%", 100.0 * m / (c + m)),
            ]);
        }
        let comm: f64 = rows.iter().map(|(_, m)| m).sum();
        println!(
            "\n{} (total communication share {:.0}%):",
            dist.name,
            100.0 * comm
        );
        println!("{}", table.render());
    }
}

//! Extension exhibit: Zeppelin against the wider related-work field.
//!
//! Beyond the paper's three baselines, this compares DeepSpeed-Ulysses
//! all-to-all sequence parallelism and LoongTrain-style double-ring
//! attention (both cited in §6) across the three datasets and two scales.

use zeppelin_baselines::{DoubleRingCp, HybridDp, LlamaCp, TeCp, Ulysses};
use zeppelin_bench::harness::{ClusterKind, PAPER_SEED};
use zeppelin_bench::table::{fmt_speedup, fmt_tput, Table};
use zeppelin_core::scheduler::Scheduler;
use zeppelin_core::zeppelin::Zeppelin;
use zeppelin_data::datasets::paper_datasets;
use zeppelin_exec::trainer::{run_training, RunConfig};
use zeppelin_exec::StepConfig;
use zeppelin_model::config::llama_3b;

fn main() {
    const TOKENS_PER_GPU: u64 = 4096;
    let steps: usize = std::env::var("RW_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let model = llama_3b();

    println!("Related-work comparison — LLaMA 3B on Cluster A, 4k tokens/GPU");
    println!("({steps} sampled steps per cell)\n");

    for nodes in [2usize, 8] {
        let cluster = ClusterKind::A.build(nodes);
        let cfg = RunConfig {
            steps,
            tokens_per_step: TOKENS_PER_GPU * (nodes * 8) as u64,
            seed: PAPER_SEED,
            step: StepConfig::default(),
        };
        let schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(TeCp::new()),
            Box::new(DoubleRingCp::new()),
            Box::new(Ulysses::new()),
            Box::new(LlamaCp::new()),
            Box::new(HybridDp::new()),
            Box::new(Zeppelin::new()),
        ];
        let mut table = Table::new(vec!["dataset", "method", "tokens/s", "vs TE CP"]);
        for dist in paper_datasets() {
            let mut te = None;
            for s in &schedulers {
                let ctx = zeppelin_core::scheduler::SchedulerCtx::new(&cluster, &model);
                let tput = run_training(s.as_ref(), &dist, &ctx, &cfg)
                    .map_err(|e| eprintln!("{}: {} failed: {e}", dist.name, s.name()))
                    .ok()
                    .map(|r| r.mean_throughput);
                if s.name() == "TE CP" {
                    te = tput;
                }
                table.row(vec![
                    dist.name.clone(),
                    s.name().to_string(),
                    fmt_tput(tput),
                    fmt_speedup(tput, te),
                ]);
            }
        }
        println!("{} GPUs:", nodes * 8);
        println!("{}", table.render());
    }
}

//! Fig. 2: how each balancing philosophy leaves hardware on the table.
//!
//! Quantifies the cartoon of the paper's Fig. 2 on a real mixed batch
//! (3B model, 2 nodes of Cluster A, 64k tokens): per-method
//!
//! - redundant attention FLOPs (packing's waste, Fig. 2a),
//! - mean compute-stream busy fraction (even splitting's stalls, Fig. 2b),
//! - NIC utilization mean and imbalance (hybrid's idle NICs, Fig. 2c),
//!
//! and the resulting throughput. Zeppelin should sit in the
//! high-compute-busy / high-NIC-balance corner.

use zeppelin_baselines::{DoubleRingCp, HybridDp, LlamaCp, Packing, TeCp, Ulysses};
use zeppelin_bench::harness::{paper_rng, paper_testbed};
use zeppelin_bench::table::Table;
use zeppelin_core::scheduler::Scheduler;
use zeppelin_core::zeppelin::Zeppelin;
use zeppelin_data::batch::sample_batch;
use zeppelin_data::datasets::arxiv;
use zeppelin_exec::step::{simulate_step, StepConfig};

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

fn main() {
    let (_, _, ctx) = paper_testbed();
    let mut rng = paper_rng(0);
    let batch = sample_batch(&arxiv(), &mut rng, 65_536);
    let cfg = StepConfig::default();

    println!("Fig. 2 — hardware utilization per balancing approach");
    println!("(3B, 2 nodes Cluster A, 64k ArXiv batch)\n");

    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Packing::new()),
        Box::new(TeCp::new()),
        Box::new(LlamaCp::new()),
        Box::new(Ulysses::new()),
        Box::new(DoubleRingCp::new()),
        Box::new(HybridDp::new()),
        Box::new(Zeppelin::new()),
    ];
    let mut table = Table::new(vec![
        "method",
        "redundant attn",
        "compute busy",
        "NIC util (mean)",
        "NIC util (min-max)",
        "tokens/s",
    ]);
    for s in schedulers {
        let Ok(r) = simulate_step(s.as_ref(), &batch, &ctx, &cfg) else {
            table.row(vec![
                s.name().to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "OOM".into(),
            ]);
            continue;
        };
        let nic_min = r
            .nic_tx_utilization
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let nic_max = r.nic_tx_utilization.iter().cloned().fold(0.0f64, f64::max);
        table.row(vec![
            r.scheduler.clone(),
            format!("{:.0}%", 100.0 * r.plan.redundant_attn_frac),
            format!("{:.0}%", 100.0 * mean(&r.compute_busy_frac)),
            format!("{:.0}%", 100.0 * mean(&r.nic_tx_utilization)),
            format!("{:.0}% - {:.0}%", 100.0 * nic_min, 100.0 * nic_max),
            if r.scheduler == "Packing" {
                format!("{:.0}*", r.throughput)
            } else {
                format!("{:.0}", r.throughput)
            },
        ]);
    }
    println!("{}", table.render());
    println!("* packing is not training-equivalent: chunked documents lose");
    println!("  cross-window attention, so its token rate overstates useful work.");
    println!();
    println!("reading: even-split CP idles compute behind its boundary hop and");
    println!("saturates one NIC while others sleep; hybrid leaves NICs dark and");
    println!("uneven; Zeppelin keeps compute busy -- and its near-zero NIC use");
    println!("shows the partitioner removed inter-node traffic for this batch.");
}

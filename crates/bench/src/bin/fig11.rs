//! Fig. 11: component ablation on the 3B model, 32 GPUs of Cluster A.
//!
//! Five configurations per dataset:
//!   1. TE CP (baseline);
//!   2. TE CP + Routing Layer (paper: consistent ~1.6×);
//!   3. Zeppelin partitioner + attention engine only (no routing/remap);
//!   4. engine + routing;
//!   5. full Zeppelin (engine + routing + remapping).
//!
//! The paper's shape: routing alone gives a flat gain, the engine gives the
//! biggest jump on balanced datasets, remapping adds a final increment on
//! right-skewed data and almost nothing on long-dominated GitHub.

use zeppelin_bench::harness::{run_method, ClusterKind, Method, PAPER_SEED};
use zeppelin_bench::table::{fmt_speedup, fmt_tput, Table};
use zeppelin_core::zeppelin::ZeppelinConfig;
use zeppelin_data::datasets::paper_datasets;
use zeppelin_exec::trainer::RunConfig;
use zeppelin_exec::StepConfig;
use zeppelin_model::config::llama_3b;

fn variants() -> Vec<(&'static str, Method)> {
    vec![
        ("TE CP", Method::TeCp),
        ("TE CP + Routing", Method::TeCpRouting),
        (
            "Engine only",
            Method::Zeppelin(ZeppelinConfig {
                routing: false,
                remapping: false,
            }),
        ),
        (
            "Engine + Routing",
            Method::Zeppelin(ZeppelinConfig {
                routing: true,
                remapping: false,
            }),
        ),
        (
            "Full Zeppelin",
            Method::Zeppelin(ZeppelinConfig {
                routing: true,
                remapping: true,
            }),
        ),
    ]
}

fn main() {
    const NODES: usize = 4; // 32 GPUs.
    const TOKENS_PER_GPU: u64 = 4096;
    let steps: usize = std::env::var("FIG11_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let model = llama_3b();
    let cluster = ClusterKind::A.build(NODES);
    let cfg = RunConfig {
        steps,
        tokens_per_step: TOKENS_PER_GPU * (NODES * 8) as u64,
        seed: PAPER_SEED,
        step: StepConfig::default(),
    };

    println!("Fig. 11 — ablation, LLaMA 3B on 32 GPUs (Cluster A)");
    println!("({steps} sampled steps per cell)\n");

    let mut table = Table::new(vec!["variant", "ArXiv", "GitHub", "ProLong64k"]);
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut te: Vec<Option<f64>> = vec![None; 3];
    for (label, method) in variants() {
        let mut row = vec![label.to_string()];
        for (d, dist) in paper_datasets().iter().enumerate() {
            let tput = run_method(&method, dist, &cluster, &model, &cfg).throughput;
            if label == "TE CP" {
                te[d] = tput;
            }
            row.push(format!("{} ({})", fmt_tput(tput), fmt_speedup(tput, te[d])));
        }
        rows.push(row);
    }
    for row in rows {
        table.row(row);
    }
    println!("{}", table.render());
    println!("(paper: routing alone ~1.6x; engine up to 3.2x on ArXiv;");
    println!(" remapping lifts ArXiv 3.51x -> 3.64x, negligible on GitHub)");
}

//! Load exhibit: the async single-flight serving front-end under a
//! ≥1M-request mixed workload (DESIGN.md §12).
//!
//! One request stream, four measurements:
//!
//! 1. **uncached** — the raw planner on a sample of the distinct shapes:
//!    the floor every cached path is measured against.
//! 2. **before** — the PR 3 serving discipline: the canonicalizing
//!    [`PlanCache`] behind one global mutex, hammered by the same client
//!    threads. This is what the previous thread-per-connection front-end
//!    did per request.
//! 3. **after (direct)** — the same threads through the N-way
//!    [`ShardedPlanCache`]: isolates what digest sharding buys with zero
//!    transport noise.
//! 4. **server** — end-to-end over loopback TCP against the readiness
//!    event loop: permuted hot-window shapes plus a cold tail, a
//!    single-flight barrage proving coalescing, client-measured latency
//!    percentiles, and the server's own planner-run accounting.
//!
//! The workload mixes hot and cold keys deterministically: consecutive
//! `WINDOW`-sized index ranges share one hot shape (so every window
//! boundary lands a fresh key on all connections at once — the
//! single-flight case), roughly 1 in 16 requests draws from a cold pool,
//! and every request permutes its sequence order (so hits exercise the
//! re-index path, not just shared handles).
//!
//! Honest-reporting rules (same as the scale exhibit): wall-clock wins for
//! the sharded cache over the global mutex are only asserted when the host
//! exposes ≥ 2 CPUs — on a single CPU all threads timeshare and lock
//! contention costs almost nothing. Coalescing and planner-run frugality
//! are scheduling facts, not timing facts, and are asserted everywhere.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::{Barrier, Mutex};
use std::time::Instant;

use zeppelin_bench::harness::paper_rng;
use zeppelin_core::scheduler::SchedulerCtx;
use zeppelin_data::batch::{sample_batch, Batch};
use zeppelin_data::datasets::arxiv;
use zeppelin_model::config::llama_3b;
use zeppelin_serve::cache::{PlanCache, ShardedPlanCache};
use zeppelin_serve::registry;
use zeppelin_serve::{PlannerChaos, Server, ServerConfig};
use zeppelin_sim::topology::cluster_a;

/// Consecutive requests sharing one hot shape; every boundary is a fresh
/// key arriving on all connections at once.
const WINDOW: usize = 1024;
/// Distinct hot shapes cycled through the windows.
const HOT_SHAPES: usize = 256;
/// Distinct cold-tail shapes (1 in 16 requests draws one).
const COLD_SHAPES: usize = 512;
/// Direct planner runs timed for the uncached floor.
const UNCACHED_RUNS: usize = 128;

struct Args {
    requests: usize,
    conns: usize,
    workers: usize,
    tokens: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 1_000_000,
        conns: 8,
        workers: 4,
        tokens: 262_144,
        out: "BENCH_serve.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--requests" => args.requests = val().parse().expect("--requests"),
            "--conns" => args.conns = val().parse::<usize>().expect("--conns").max(1),
            "--workers" => args.workers = val().parse::<usize>().expect("--workers").max(1),
            "--tokens" => args.tokens = val().parse::<u64>().expect("--tokens").max(1024),
            "--out" => args.out = val(),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The deterministic request stream: shape and permutation for index `i`.
fn seqs_for(i: usize, hot: &[Vec<u64>], cold: &[Vec<u64>]) -> Vec<u64> {
    let h = splitmix64(i as u64);
    let lens = if i % 16 == 7 {
        &cold[(h % cold.len() as u64) as usize]
    } else {
        &hot[(i / WINDOW) % hot.len()]
    };
    let mut seqs = lens.clone();
    let n = seqs.len();
    seqs.rotate_left((h >> 32) as usize % n.max(1));
    seqs
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Merged latency stats for one phase.
struct Phase {
    wall_s: f64,
    count: usize,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
}

impl Phase {
    fn from_lats(wall_s: f64, mut lats: Vec<u64>) -> Phase {
        lats.sort_unstable();
        Phase {
            wall_s,
            count: lats.len(),
            p50_us: percentile(&lats, 0.50),
            p99_us: percentile(&lats, 0.99),
            p999_us: percentile(&lats, 0.999),
        }
    }

    fn per_sec(&self) -> f64 {
        self.count as f64 / self.wall_s.max(1e-9)
    }

    fn json(&self, label: &str, uncached_per_sec: f64) -> String {
        format!(
            "  \"{label}\": {{\"requests\": {}, \"wall_s\": {:.3}, \"reqs_per_sec\": {:.0}, \
             \"speedup_vs_uncached\": {:.2}, \
             \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}}}",
            self.count,
            self.wall_s,
            self.per_sec(),
            self.per_sec() / uncached_per_sec.max(1e-9),
            self.p50_us,
            self.p99_us,
            self.p999_us,
        )
    }
}

/// Runs the stream through `serve_one` on `conns` threads (round-robin
/// index partition), collecting per-request latencies.
fn run_direct(
    requests: usize,
    conns: usize,
    hot: &[Vec<u64>],
    cold: &[Vec<u64>],
    ctx: &SchedulerCtx,
    serve_one: impl Fn(&Batch) + Sync,
) -> Phase {
    let _ = ctx;
    let t0 = Instant::now();
    let all: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(requests));
    std::thread::scope(|scope| {
        for t in 0..conns {
            let serve_one = &serve_one;
            let all = &all;
            scope.spawn(move || {
                let mut lats = Vec::with_capacity(requests / conns + 1);
                let mut i = t;
                while i < requests {
                    let batch = Batch::new(seqs_for(i, hot, cold));
                    let r0 = Instant::now();
                    serve_one(&batch);
                    lats.push(r0.elapsed().as_micros() as u64);
                    i += conns;
                }
                all.lock().expect("lats").extend(lats);
            });
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();
    Phase::from_lats(wall_s, all.into_inner().expect("lats"))
}

/// One client connection: line out, line back, latency recorded.
struct Client {
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
    line: String,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client {
            writer: BufWriter::new(stream),
            reader,
            line: String::new(),
        }
    }

    fn round_trip(&mut self, request: &str) -> &str {
        self.writer.write_all(request.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send");
        self.writer.flush().expect("flush");
        self.line.clear();
        let n = self.reader.read_line(&mut self.line).expect("reply");
        assert!(n > 0, "server closed the connection mid-stream");
        self.line.trim_end()
    }
}

fn plan_line(seqs: &[u64]) -> String {
    let lens: Vec<String> = seqs.iter().map(u64::to_string).collect();
    format!("{{\"op\":\"plan\",\"seqs\":[{}]}}", lens.join(","))
}

fn main() {
    let args = parse_args();
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cluster = cluster_a(2);
    let model = llama_3b();
    let ctx = SchedulerCtx::new(&cluster, &model);

    println!(
        "Serve load exhibit — {} requests, {} connections, {} planner workers, {} host CPU(s)",
        args.requests, args.conns, args.workers, host_cpus
    );
    println!(
        "workload: {HOT_SHAPES} hot shapes in windows of {WINDOW}, \
         {COLD_SHAPES}-shape cold tail (1 in 16), all orders permuted\n"
    );

    // Deterministic shape pools (the paper RNG, offsets keep them disjoint).
    let dist = arxiv();
    let mut rng = paper_rng(17);
    let hot: Vec<Vec<u64>> = (0..HOT_SHAPES)
        .map(|_| sample_batch(&dist, &mut rng, args.tokens).seqs)
        .collect();
    let mut rng = paper_rng(18);
    let cold: Vec<Vec<u64>> = (0..COLD_SHAPES)
        .map(|_| sample_batch(&dist, &mut rng, args.tokens).seqs)
        .collect();

    // 1. Uncached floor: the raw planner on a sample of distinct shapes.
    let scheduler = registry::scheduler_by_name("zeppelin").expect("zeppelin resolves");
    let sample: Vec<&Vec<u64>> = hot.iter().chain(cold.iter()).take(UNCACHED_RUNS).collect();
    let t0 = Instant::now();
    let mut lats = Vec::with_capacity(sample.len());
    for lens in &sample {
        let batch = Batch::new((*lens).clone());
        let r0 = Instant::now();
        scheduler
            .plan(&batch, &ctx)
            .expect("uncached planning succeeds");
        lats.push(r0.elapsed().as_micros() as u64);
    }
    let uncached = Phase::from_lats(t0.elapsed().as_secs_f64(), lats);
    let uncached_per_sec = uncached.per_sec();
    println!(
        "uncached planner: {:>8.0} plans/s   (p50 {}us p99 {}us, {} runs)",
        uncached_per_sec, uncached.p50_us, uncached.p99_us, uncached.count
    );

    // 2. Before: the PR 3 discipline — one PlanCache behind a global mutex,
    //    shared by every client thread (per-thread scheduler instances, as
    //    in the old worker pool).
    let global = Mutex::new(PlanCache::new(1024));
    let before = run_direct(args.requests, args.conns, &hot, &cold, &ctx, |batch| {
        let scheduler = registry::scheduler_by_name("zeppelin").expect("resolves");
        global
            .lock()
            .expect("global cache")
            .get_or_plan(scheduler.as_ref(), batch, &ctx)
            .expect("cached planning succeeds");
    });
    println!(
        "before (global-mutex cache): {:>8.0} reqs/s   (p50 {}us p99 {}us p999 {}us)",
        before.per_sec(),
        before.p50_us,
        before.p99_us,
        before.p999_us
    );

    // 3. After, transport-free: the sharded cache, no outer lock.
    let sharded = ShardedPlanCache::new(1024, 8);
    let after_direct = run_direct(args.requests, args.conns, &hot, &cold, &ctx, |batch| {
        let scheduler = registry::scheduler_by_name("zeppelin").expect("resolves");
        sharded
            .get_or_plan(scheduler.as_ref(), batch, &ctx)
            .expect("cached planning succeeds");
    });
    println!(
        "after (sharded cache):       {:>8.0} reqs/s   (p50 {}us p99 {}us p999 {}us)",
        after_direct.per_sec(),
        after_direct.p50_us,
        after_direct.p99_us,
        after_direct.p999_us
    );

    // 4. End-to-end: the event-loop server over loopback TCP.
    //
    // The barrage leader gets one injected 100ms planner stall (the seeded
    // chaos hook, consumed by exactly the first planner run, which happens
    // before the timed stream starts). Without it the window is unfair to
    // measure: a µs-scale planner run on a single-CPU host always finishes
    // before the OS lets another follower arrive, so coalescing would be a
    // lottery on the host scheduler rather than a property of the server.
    let chaos = std::sync::Arc::new(PlannerChaos::new());
    chaos.push_stall(100);
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: args.workers,
        max_queue: 1024,
        chaos: Some(chaos.clone()),
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr().to_string();
    let server_thread = std::thread::spawn(move || server.run().expect("server runs clean"));

    // Single-flight barrage: every connection fires the same fresh key at
    // the same instant; exactly one planner run may serve them all. The
    // batch is 2x the stream size (capped under the default context
    // capacity) so its planner run outlasts the clients' arrival spread.
    let barrage_tokens = (args.tokens * 2).min(524_288);
    let barrage: Vec<u64> = sample_batch(&arxiv(), &mut paper_rng(19), barrage_tokens).seqs;
    let gate = Barrier::new(args.conns);
    std::thread::scope(|scope| {
        for _ in 0..args.conns {
            let gate = &gate;
            let addr = addr.as_str();
            let line = plan_line(&barrage);
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                gate.wait();
                let reply = client.round_trip(&line);
                assert!(reply.starts_with("{\"ok\":true"), "barrage reply: {reply}");
            });
        }
    });
    assert_eq!(chaos.pending(), 0, "the barrage leader consumed the stall");

    let t0 = Instant::now();
    let all: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(args.requests));
    std::thread::scope(|scope| {
        for t in 0..args.conns {
            let addr = addr.as_str();
            let (hot, cold, all) = (&hot, &cold, &all);
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                let mut lats = Vec::with_capacity(args.requests / args.conns + 1);
                let mut i = t;
                while i < args.requests {
                    let line = plan_line(&seqs_for(i, hot, cold));
                    let r0 = Instant::now();
                    let reply = client.round_trip(&line);
                    lats.push(r0.elapsed().as_micros() as u64);
                    assert!(
                        reply.starts_with("{\"ok\":true"),
                        "request {i} failed: {reply}"
                    );
                    i += args.conns;
                }
                all.lock().expect("lats").extend(lats);
            });
        }
    });
    let served = Phase::from_lats(t0.elapsed().as_secs_f64(), all.into_inner().expect("lats"));

    let mut shutdown = Client::connect(&addr);
    let reply = shutdown.round_trip("{\"op\":\"shutdown\"}");
    assert!(reply.contains("shutting_down"), "shutdown ack: {reply}");
    drop(shutdown);
    let report = server_thread.join().expect("server thread");
    let m = &report.metrics;

    println!(
        "server (event loop, TCP):    {:>8.0} reqs/s   (p50 {}us p99 {}us p999 {}us)",
        served.per_sec(),
        served.p50_us,
        served.p99_us,
        served.p999_us
    );
    println!(
        "\nserver accounting: {} plan requests, {} cache hits ({:.1}% hit rate)",
        m.plan_requests,
        m.cache_hits,
        m.hit_rate() * 100.0
    );
    println!(
        "  planner runs: {} ({:.2}% of requests) — {} coalesced onto another's run",
        m.planner_runs,
        m.planner_runs as f64 / m.plan_requests.max(1) as f64 * 100.0,
        m.coalesced
    );

    // Invariants that hold regardless of host CPU count.
    assert_eq!(
        m.plan_requests as usize,
        args.requests + args.conns,
        "every request (stream + barrage) served a plan"
    );
    assert_eq!(m.errors, 0, "no request errored");
    assert_eq!(m.worker_respawns, 0, "no worker died");
    if args.conns >= 2 {
        assert!(
            m.coalesced >= 1,
            "the barrage must coalesce at least one follower"
        );
    }
    assert!(
        (m.planner_runs as usize) <= args.requests / 20,
        "hot-key mix must keep planner runs well under requests: {} runs for {} requests",
        m.planner_runs,
        args.requests
    );
    assert!(
        served.p999_us < 5_000_000,
        "p999 {}us breaches the generous 5s bound",
        served.p999_us
    );
    // Timing claims only where timing is observable.
    if host_cpus >= 2 {
        assert!(
            after_direct.per_sec() >= before.per_sec() * 0.9,
            "sharded cache fell behind the global mutex: {:.0} vs {:.0} reqs/s",
            after_direct.per_sec(),
            before.per_sec()
        );
    } else {
        println!(
            "note: host exposes 1 CPU; threads timeshare, so the sharded-vs-global \
             wall-clock comparison is not asserted here (scheduling invariants still are)"
        );
    }

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"exhibit\": \"serve_load\",").unwrap();
    writeln!(
        json,
        "  \"requests\": {}, \"conns\": {}, \"workers\": {}, \"host_cpus\": {},",
        args.requests, args.conns, args.workers, host_cpus
    )
    .unwrap();
    writeln!(
        json,
        "  \"hot_shapes\": {HOT_SHAPES}, \"cold_shapes\": {COLD_SHAPES}, \
         \"window\": {WINDOW}, \"tokens_per_request\": {},",
        args.tokens
    )
    .unwrap();
    writeln!(
        json,
        "  \"uncached\": {{\"runs\": {}, \"plans_per_sec\": {:.0}, \
         \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}}},",
        uncached.count, uncached_per_sec, uncached.p50_us, uncached.p99_us, uncached.p999_us
    )
    .unwrap();
    writeln!(
        json,
        "{},",
        before.json("before_global_mutex_cache", uncached_per_sec)
    )
    .unwrap();
    writeln!(
        json,
        "{},",
        after_direct.json("after_sharded_cache", uncached_per_sec)
    )
    .unwrap();
    writeln!(json, "{},", served.json("server", uncached_per_sec)).unwrap();
    writeln!(
        json,
        "  \"server_stats\": {{\"plan_requests\": {}, \"cache_hits\": {}, \
         \"hit_rate\": {:.4}, \"planner_runs\": {}, \"coalesced\": {}, \
         \"errors\": {}, \"worker_respawns\": {}, \"cached_plans\": {}}}",
        m.plan_requests,
        m.cache_hits,
        m.hit_rate(),
        m.planner_runs,
        m.coalesced,
        m.errors,
        m.worker_respawns,
        report.cached_plans
    )
    .unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write(&args.out, json).expect("write BENCH json");
    println!("\nwrote {}", args.out);
    println!("ok");
}

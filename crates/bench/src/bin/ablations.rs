//! Design-choice ablations beyond the paper's Fig. 11 (DESIGN.md §6):
//!
//! 1. routing proxy-count sweep (Eq. 1 analytic vs simulated);
//! 2. routing pipeline depth;
//! 3. zigzag vs contiguous causal chunking (balance analysis);
//! 4. attention-engine queue ordering;
//! 5. gradient-sync overlap;
//! 6. remapping slack threshold;
//! 7. hierarchical vs flat (topology-blind) quadratic partitioning.

use zeppelin_bench::harness::{paper_rng, paper_testbed};
use zeppelin_bench::table::Table;
use zeppelin_core::chunking::{contiguous_position_flops, position_total_flops};
use zeppelin_core::routing::{direct_cost, eq1_cost};
use zeppelin_core::scheduler::{Scheduler, SchedulerCtx};
use zeppelin_core::zeppelin::Zeppelin;
use zeppelin_data::batch::{sample_batch, Batch};
use zeppelin_data::datasets::{arxiv, paper_datasets};
use zeppelin_exec::lower::{ExecConfig, GradSync, QueueOrder};
use zeppelin_exec::step::{simulate_step, StepConfig};
use zeppelin_model::config::llama_3b;
use zeppelin_sim::topology::{cluster_a, gbit, ClusterSpec, NicSpec};

fn step_with(
    cluster: &ClusterSpec,
    batch: &Batch,
    exec: ExecConfig,
) -> zeppelin_exec::step::StepReport {
    let model = llama_3b();
    let ctx = SchedulerCtx::new(cluster, &model);
    let cfg = StepConfig {
        exec,
        ..StepConfig::default()
    };
    simulate_step(&Zeppelin::new(), batch, &ctx, &cfg).expect("step")
}

fn proxy_sweep() {
    println!("1. routing proxy count (Eq. 1, 52 MB round, Cluster A rates)");
    let b_intra = 1.0 / 400e9;
    let b_inter = 1.0 / 25e9;
    let n = 52e6;
    let mut table = Table::new(vec!["proxies", "Eq.1 (us)", "vs direct", "measured (us)"]);
    for x in [1usize, 2, 4, 8] {
        // Measured: a cluster with x NICs (affinity spread over 8 GPUs).
        let mut cluster = cluster_a(2);
        cluster.node.nic_count = x;
        cluster.node.nic = NicSpec { bw: gbit(200.0) };
        cluster.node.nic_affinity = (0..8).map(|g| g * x / 8).collect();
        let batch = Batch::new(vec![65_536]);
        let r = step_with(&cluster, &batch, ExecConfig::default());
        // Mean routed inter-node stage duration × pipeline ≈ per-round time.
        let stages: Vec<f64> = r
            .trace_forward
            .events()
            .iter()
            .filter(|e| e.category == zeppelin_sim::trace::TraceCategory::InterNode)
            .map(|e| e.duration().as_micros_f64())
            .collect();
        // No inter-node stage in the trace is reported as such, not as NaN.
        let measured = if stages.is_empty() {
            "no inter-node stages".to_string()
        } else {
            format!(
                "{:.0}",
                stages.iter().sum::<f64>() / stages.len() as f64 * 4.0
            )
        };
        let analytic = eq1_cost(n, x, x, b_intra, b_inter) * 1e6;
        table.row(vec![
            format!("{x}"),
            format!("{analytic:.0}"),
            format!("{:.2}x", direct_cost(n, b_inter) * 1e6 / analytic),
            measured,
        ]);
    }
    println!("{}", table.render());
}

fn pipeline_sweep() {
    println!("2. routed-transfer pipeline depth (single 64k sequence)");
    let (cluster, _, _) = paper_testbed();
    let batch = Batch::new(vec![65_536]);
    let mut table = Table::new(vec!["chunks", "layer fwd (ms)", "tokens/s"]);
    for depth in [1usize, 2, 4, 8, 16] {
        let exec = ExecConfig {
            routing_pipeline: depth,
            ..ExecConfig::default()
        };
        let r = step_with(&cluster, &batch, exec);
        table.row(vec![
            format!("{depth}"),
            format!("{:.2}", r.layer_forward.as_millis_f64()),
            format!("{:.0}", r.throughput),
        ]);
    }
    println!("{}", table.render());
}

fn chunking_balance() {
    println!("3. zigzag vs contiguous chunking (per-position FLOP imbalance)");
    let model = llama_3b();
    let mut table = Table::new(vec!["group", "zigzag max/mean", "contiguous max/mean"]);
    for g in [4usize, 8, 16, 32] {
        let len = 131_072u64;
        let imb = |f: &dyn Fn(usize) -> f64| {
            let per: Vec<f64> = (0..g).map(f).collect();
            let mean = per.iter().sum::<f64>() / g as f64;
            per.iter().cloned().fold(0.0f64, f64::max) / mean
        };
        let zig = imb(&|i| position_total_flops(&model, len, g, i));
        let contig = imb(&|i| contiguous_position_flops(&model, len, g, i));
        table.row(vec![
            format!("{g}"),
            format!("{zig:.3}"),
            format!("{contig:.3}"),
        ]);
    }
    println!("{}", table.render());
    println!("(a ring is as slow as its busiest rank: contiguous splitting");
    println!(" costs ~2x at scale; zigzag stays within rounding)\n");
}

fn ordering_ablation() {
    println!("4. attention-engine queue ordering (Zeppelin, 2 nodes, 64k)");
    let (cluster, _, _) = paper_testbed();
    let mut rng = paper_rng(0);
    let mut table = Table::new(vec![
        "dataset",
        "inter-first (ms)",
        "local-first (ms)",
        "delta",
    ]);
    for dist in paper_datasets() {
        let batch = sample_batch(&dist, &mut rng, 65_536);
        let t = |order| {
            let exec = ExecConfig {
                queue_order: order,
                ..ExecConfig::default()
            };
            step_with(&cluster, &batch, exec)
                .layer_forward
                .as_millis_f64()
        };
        let inter = t(QueueOrder::InterFirst);
        let local = t(QueueOrder::LocalFirst);
        table.row(vec![
            dist.name.clone(),
            format!("{inter:.2}"),
            format!("{local:.2}"),
            format!("{:+.1}%", 100.0 * (local - inter) / inter),
        ]);
    }
    println!("{}", table.render());
    println!("(this executor tracks dependencies per round, so ordering");
    println!(" matters far less than in the paper's coarse-stream engine)\n");
}

fn grad_sync_ablation() {
    println!("5. gradient synchronization (3B, 2 nodes, 64k ArXiv)");
    let (cluster, _, _) = paper_testbed();
    let mut rng = paper_rng(0);
    let batch = sample_batch(&arxiv(), &mut rng, 65_536);
    let mut table = Table::new(vec!["mode", "layer bwd (ms)", "tokens/s"]);
    for (name, sync) in [
        ("off", GradSync::Off),
        ("overlapped", GradSync::Overlapped),
        ("blocking", GradSync::Blocking),
    ] {
        let exec = ExecConfig {
            grad_sync: sync,
            ..ExecConfig::default()
        };
        let r = step_with(&cluster, &batch, exec);
        table.row(vec![
            name.to_string(),
            format!("{:.2}", r.layer_backward.as_millis_f64()),
            format!("{:.0}", r.throughput),
        ]);
    }
    println!("{}", table.render());
}

fn remap_slack_sweep() {
    println!("6. remapping slack threshold (ArXiv, 2 nodes, 64k)");
    let (cluster, _, _) = paper_testbed();
    let mut rng = paper_rng(1);
    let batch = sample_batch(&arxiv(), &mut rng, 65_536);
    let mut table = Table::new(vec!["slack", "remap flows", "tokens/s"]);
    for slack in [0.0, 0.02, 0.1, 0.5, 2.0] {
        let exec = ExecConfig {
            remap_slack: slack,
            ..ExecConfig::default()
        };
        let r = step_with(&cluster, &batch, exec);
        let flows = r
            .trace_forward
            .events()
            .iter()
            .filter(|e| e.category == zeppelin_sim::trace::TraceCategory::Remap)
            .count();
        table.row(vec![
            format!("{slack}"),
            format!("{flows}"),
            format!("{:.0}", r.throughput),
        ]);
    }
    println!("{}", table.render());
}

fn hierarchy_ablation() {
    println!("7. hierarchical (Zeppelin) vs flat quadratic partitioning");
    let (_, _, ctx) = paper_testbed();
    let mut rng = paper_rng(2);
    let mut table = Table::new(vec!["dataset", "flat (tok/s)", "hierarchical", "gain"]);
    for dist in paper_datasets() {
        let batch = sample_batch(&dist, &mut rng, 65_536);
        // Failures become explicit "failed" cells, not NaN.
        let run = |s: &dyn zeppelin_core::scheduler::Scheduler, label: &str| {
            simulate_step(s, &batch, &ctx, &StepConfig::default())
                .map(|r| r.throughput)
                .map_err(|e| eprintln!("{}: {label} failed: {e}", dist.name))
                .ok()
        };
        let flat = run(&zeppelin_baselines::FlatQuadratic::new(), "flat");
        let hier = run(&Zeppelin::new(), "hierarchical");
        let cell = |v: Option<f64>| v.map_or("failed".to_string(), |t| format!("{t:.0}"));
        let gain = match (hier, flat) {
            (Some(h), Some(f)) => format!("{:.2}x", h / f),
            _ => "n/a".to_string(),
        };
        table.row(vec![dist.name.clone(), cell(flat), cell(hier), gain]);
    }
    println!("{}", table.render());
    println!("(both balance quadratic FLOPs per sequence; the hierarchy keeps");
    println!(" short rings inside nodes instead of across the NIC fabric)");
}

fn main() {
    println!("Design-choice ablations (DESIGN.md §6)\n");
    // Keep Zeppelin's scheduler quiet about batches: fixed seeds throughout.
    let _ = Zeppelin::new().name();
    proxy_sweep();
    println!();
    pipeline_sweep();
    println!();
    chunking_balance();
    ordering_ablation();
    grad_sync_ablation();
    println!();
    remap_slack_sweep();
    println!();
    hierarchy_ablation();
}

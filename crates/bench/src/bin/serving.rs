//! Serving exhibit: what the canonicalizing plan cache and the pipelined
//! planner buy an online planning service (DESIGN.md §8).
//!
//! 1. Per-dataset planner throughput on repeated-shape request streams —
//!    `SERVING_ROUNDS` rounds over a small pool of distinct batch shapes,
//!    once verbatim (hits are zero-copy shared handles) and once re-ordered
//!    every round (hits re-index through the sort permutation). Uncached
//!    replans every request; cached plans each distinct shape once.
//! 2. The pipelined trainer: planner-hidden vs planner-exposed wall time
//!    when step N+1 plans while step N simulates.

use std::time::Instant;

use zeppelin_bench::harness::{paper_rng, paper_testbed, paper_testbed_nodes, PAPER_SEED};
use zeppelin_bench::table::Table;
use zeppelin_core::scheduler::Scheduler;
use zeppelin_core::zeppelin::Zeppelin;
use zeppelin_data::batch::{sample_batch, Batch};
use zeppelin_data::datasets::{arxiv, paper_datasets};
use zeppelin_exec::step::StepConfig;
use zeppelin_exec::trainer::RunConfig;
use zeppelin_serve::cache::PlanCache;
use zeppelin_serve::pipeline::{run_training_pipelined, PipelineConfig};

const DISTINCT_SHAPES: usize = 6;
/// Cache study scale: a production-sized planning problem (8 nodes, 2M-token
/// global batches) where the partitioner itself is the bottleneck.
const CACHE_NODES: usize = 8;
const CACHE_TOKENS: u64 = 2_097_152;
/// Pipeline study scale: the 2-node paper testbed.
const TOKENS: u64 = 65_536;

fn rounds() -> usize {
    std::env::var("SERVING_ROUNDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(25)
}

/// A same-multiset, differently-ordered view of `batch`: forces the cache
/// hit path through the canonical permutation instead of a verbatim copy.
fn rotated(batch: &Batch, k: usize) -> Batch {
    let mut seqs = batch.seqs.clone();
    let n = seqs.len();
    seqs.rotate_left(k % n.max(1));
    Batch::new(seqs)
}

fn main() {
    let (_, _, ctx) = paper_testbed();
    let (_, _, cache_ctx) = paper_testbed_nodes(CACHE_NODES);
    let zeppelin = Zeppelin::new();
    let rounds = rounds();

    println!("Serving study — Zeppelin planner as an online service");
    println!("(3B on Cluster A, {DISTINCT_SHAPES} distinct shapes x {rounds} rounds)\n");

    println!(
        "1. plan-cache throughput on repeated-shape request streams \
         ({CACHE_NODES} nodes, {CACHE_TOKENS} tokens/batch)"
    );
    let mut table = Table::new(vec![
        "dataset",
        "uncached plans/s",
        "repeated (hits)",
        "reordered (hits)",
        "speedup",
        "hit rate",
    ]);
    for dist in paper_datasets() {
        let mut rng = paper_rng(0);
        let shapes: Vec<Batch> = (0..DISTINCT_SHAPES)
            .map(|_| sample_batch(&dist, &mut rng, CACHE_TOKENS))
            .collect();
        // Repeated stream: a length-bucketed loader re-emits identical
        // descending-sorted batches — hits are zero-copy shared handles.
        // Reordered stream: the same multisets in a different order each
        // round — hits re-index through the sort permutation (the cache's
        // worst case).
        let repeated: Vec<Batch> = (0..rounds)
            .flat_map(|_| {
                shapes.iter().map(|b| {
                    let mut seqs = b.seqs.clone();
                    seqs.sort_unstable_by(|a, b| b.cmp(a));
                    Batch::new(seqs)
                })
            })
            .collect();
        let reordered: Vec<Batch> = (0..rounds)
            .flat_map(|r| shapes.iter().map(move |b| rotated(b, r + 1)))
            .collect();

        let start = Instant::now();
        for batch in &repeated {
            zeppelin.plan(batch, &cache_ctx).expect("uncached plan");
        }
        let uncached = repeated.len() as f64 / start.elapsed().as_secs_f64();

        let throughput = |stream: &[Batch]| {
            let mut cache = PlanCache::new(256);
            let start = Instant::now();
            for batch in stream {
                cache
                    .get_or_plan(&zeppelin, batch, &cache_ctx)
                    .expect("cached plan");
            }
            let rate = stream.len() as f64 / start.elapsed().as_secs_f64();
            (rate, cache.stats())
        };
        let (hot, stats) = throughput(&repeated);
        let (reidx, _) = throughput(&reordered);

        table.row(vec![
            dist.name.clone(),
            format!("{uncached:.0}"),
            format!("{hot:.0}"),
            format!("{reidx:.0}"),
            format!("{:.1}x", hot / uncached),
            format!("{:.1}%", stats.hit_rate() * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!("(speedup = repeated-stream plans/s over uncached; reordered");
    println!(" hits pay one placement re-index through the sort permutation)\n");

    println!("2. pipelined planner overlap (ArXiv, 12 steps, 2 nodes, {TOKENS} tokens/step)");
    let cfg = PipelineConfig {
        run: RunConfig {
            steps: 12,
            tokens_per_step: TOKENS,
            seed: PAPER_SEED,
            step: StepConfig::default(),
        },
        ..PipelineConfig::default()
    };
    let report = run_training_pipelined(&zeppelin, &arxiv(), &ctx, &cfg).expect("pipelined run");
    println!(
        "  plan total {:.2}ms = hidden {:.2}ms + exposed {:.2}ms ({:.1}% hidden)",
        report.plan_total.as_secs_f64() * 1e3,
        report.plan_hidden.as_secs_f64() * 1e3,
        report.plan_exposed.as_secs_f64() * 1e3,
        report.hidden_fraction() * 100.0,
    );
    println!(
        "  sim wall {:.2}ms over {} steps; cache {} hits / {} misses",
        report.sim_wall.as_secs_f64() * 1e3,
        report.run.steps.len(),
        report.cache.hits,
        report.cache.misses,
    );
    println!(
        "  mean simulated step {} at {:.0} tokens/s (identical to the sequential trainer)",
        report.run.mean_step_time, report.run.mean_throughput,
    );
}

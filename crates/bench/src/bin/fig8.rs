//! Fig. 8: end-to-end throughput across models, datasets, and context
//! lengths.
//!
//! Four model configurations (7B and 13B+TP2 on Cluster A; 30B+TP2 and the
//! 8×550M MoE on Cluster C) × three datasets × total context 64k/128k/256k
//! at 4k tokens per physical GPU. Reports tokens/second per method and
//! Zeppelin's speedup over the TE CP baseline, plus the overall average —
//! the paper's headline is an average of 2.80× (up to 6.60×).

use zeppelin_bench::harness::{methods, run_method, ClusterKind, PAPER_SEED};
use zeppelin_bench::table::{fmt_speedup, fmt_tput, Table};
use zeppelin_data::datasets::paper_datasets;
use zeppelin_exec::tp::{fold_tp, tp_linear_overhead_per_token};
use zeppelin_exec::trainer::RunConfig;
use zeppelin_exec::StepConfig;
use zeppelin_model::config::{llama_13b, llama_30b, llama_7b, moe_8x550m, ModelConfig};

struct Setting {
    model: ModelConfig,
    cluster: ClusterKind,
    tp: usize,
}

fn settings() -> Vec<Setting> {
    vec![
        Setting {
            model: llama_7b(),
            cluster: ClusterKind::A,
            tp: 1,
        },
        Setting {
            model: llama_13b(),
            cluster: ClusterKind::A,
            tp: 2,
        },
        Setting {
            model: llama_30b(),
            cluster: ClusterKind::C,
            tp: 2,
        },
        Setting {
            model: moe_8x550m(),
            cluster: ClusterKind::C,
            tp: 1,
        },
    ]
}

fn main() {
    const TOKENS_PER_GPU: u64 = 4096;
    let contexts: [u64; 3] = [65_536, 131_072, 262_144];
    let steps: usize = std::env::var("FIG8_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    println!("Fig. 8 — end-to-end training throughput (tokens/s)");
    println!("(4k tokens per physical GPU; {steps} sampled steps per cell)\n");

    let mut zeppelin_speedups: Vec<f64> = Vec::new();
    for setting in settings() {
        let mut table = Table::new(vec![
            "dataset",
            "context",
            "TE CP",
            "LLaMA CP",
            "Hybrid DP",
            "Zeppelin",
            "speedup",
        ]);
        for dist in paper_datasets() {
            for &ctx_tokens in &contexts {
                let gpus = (ctx_tokens / TOKENS_PER_GPU) as usize;
                let nodes = gpus / 8;
                let physical = setting.cluster.build(nodes);
                let cluster = fold_tp(&physical, setting.tp).expect("tp folds");
                let mut cfg = RunConfig {
                    steps,
                    tokens_per_step: ctx_tokens,
                    seed: PAPER_SEED,
                    step: StepConfig::default(),
                };
                cfg.step.exec.tp_overhead_per_token = tp_linear_overhead_per_token(
                    &setting.model,
                    setting.tp,
                    physical.node.gpu.nvlink_bw,
                );
                let mut tputs: Vec<Option<f64>> = Vec::new();
                for method in methods() {
                    let out = run_method(&method, &dist, &cluster, &setting.model, &cfg);
                    tputs.push(out.throughput);
                }
                if let (Some(te), Some(zep)) = (tputs[0], tputs[3]) {
                    zeppelin_speedups.push(zep / te);
                }
                table.row(vec![
                    dist.name.clone(),
                    format!("{}k", ctx_tokens / 1024),
                    fmt_tput(tputs[0]),
                    fmt_tput(tputs[1]),
                    fmt_tput(tputs[2]),
                    fmt_tput(tputs[3]),
                    fmt_speedup(tputs[3], tputs[0]),
                ]);
            }
        }
        println!(
            "{} on {} (tp={}):",
            setting.model.name,
            setting.cluster.label(),
            setting.tp
        );
        println!("{}", table.render());
    }

    let avg = zeppelin_speedups.iter().sum::<f64>() / zeppelin_speedups.len() as f64;
    let max = zeppelin_speedups.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "Zeppelin vs TE CP over {} cells: average {avg:.2}x, max {max:.2}x",
        zeppelin_speedups.len()
    );
    println!("(paper reports average 2.80x, up to 6.60x)");
}

//! Fast end-to-end self-check: exercises every subsystem on small
//! configurations and prints PASS/FAIL per invariant. Intended as a
//! 30-second smoke test after changes (`cargo run --release -p
//! zeppelin-bench --bin selfcheck`); exits non-zero on any failure.

use zeppelin_baselines::{DoubleRingCp, FlatQuadratic, HybridDp, LlamaCp, Packing, TeCp, Ulysses};
use zeppelin_bench::harness::{paper_rng, paper_testbed};
use zeppelin_core::analysis::analyze;
use zeppelin_core::plan_io::{plan_from_json, plan_to_json};
use zeppelin_core::scheduler::Scheduler;
use zeppelin_core::zeppelin::Zeppelin;
use zeppelin_data::batch::sample_batch;
use zeppelin_data::datasets::paper_datasets;
use zeppelin_data::stats::{table2_edges, Histogram};
use zeppelin_exec::step::{simulate_step, StepConfig};

struct Checker {
    failures: usize,
}

impl Checker {
    fn check(&mut self, name: &str, ok: bool, detail: String) {
        if ok {
            println!("PASS  {name}");
        } else {
            println!("FAIL  {name}: {detail}");
            self.failures += 1;
        }
    }
}

fn main() {
    let mut c = Checker { failures: 0 };
    let (cluster, model, ctx) = paper_testbed();
    let cfg = StepConfig::default();
    let mut rng = paper_rng(0);

    // 1. Samplers track Table 2.
    for dist in paper_datasets() {
        let samples: Vec<u64> = (0..50_000).map(|_| dist.sample(&mut rng)).collect();
        let hist = Histogram::new(&samples, &table2_edges());
        let max_dev = hist
            .fractions()
            .iter()
            .enumerate()
            .map(|(i, &f)| {
                let edges = table2_edges();
                let spec = dist
                    .bins
                    .iter()
                    .find(|b| b.lo == edges[i].max(1) && b.hi == edges[i + 1])
                    .map(|b| b.prob)
                    .unwrap_or(0.0);
                (spec - f).abs()
            })
            .fold(0.0f64, f64::max);
        c.check(
            &format!("sampler matches Table 2 ({})", dist.name),
            max_dev < 0.01,
            format!("max deviation {max_dev}"),
        );
    }

    // 2. Every scheduler plans and simulates every dataset.
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(TeCp::new()),
        Box::new(TeCp::with_routing()),
        Box::new(LlamaCp::new()),
        Box::new(HybridDp::new()),
        Box::new(Packing::new()),
        Box::new(Ulysses::new()),
        Box::new(DoubleRingCp::new()),
        Box::new(FlatQuadratic::new()),
        Box::new(Zeppelin::new()),
    ];
    let mut te = 0.0;
    let mut zep = f64::MAX;
    for dist in paper_datasets() {
        let batch = sample_batch(&dist, &mut rng, 32_768);
        for s in &schedulers {
            match simulate_step(s.as_ref(), &batch, &ctx, &cfg) {
                Ok(r) => {
                    c.check(
                        &format!("{} on {}", s.name(), dist.name),
                        r.throughput > 0.0 && r.tokens == 32_768,
                        format!("tput {} tokens {}", r.throughput, r.tokens),
                    );
                    if s.name() == "TE CP" {
                        te = r.throughput;
                    }
                    if s.name() == "Zeppelin" {
                        zep = r.throughput;
                    }
                }
                Err(e) => c.check(
                    &format!("{} on {}", s.name(), dist.name),
                    false,
                    e.to_string(),
                ),
            }
        }
        c.check(
            &format!("Zeppelin beats TE CP on {}", dist.name),
            zep > te,
            format!("zeppelin {zep} vs te {te}"),
        );
    }

    // 2b. Every scheduler's plan passes the full audit (no validator
    // false positives on trusted output).
    for dist in paper_datasets() {
        let batch = sample_batch(&dist, &mut rng, 32_768);
        for s in &schedulers {
            if let Ok(plan) = s.plan(&batch, &ctx) {
                let audit = zeppelin_core::validate::validate_with_batch(&plan, &ctx, &batch);
                c.check(
                    &format!("{} plan audits clean on {}", s.name(), dist.name),
                    audit.is_ok(),
                    format!("{:?}", audit.err()),
                );
            }
        }
    }

    // 3. Static analysis pins the simulated attention busy time.
    let batch = sample_batch(&paper_datasets()[1], &mut rng, 32_768);
    let plan = Zeppelin::new().plan(&batch, &ctx).expect("plan");
    let a = analyze(&plan, &model, &cluster);
    let report = zeppelin_exec::step::simulate_plan(&plan, &batch, &ctx, &cfg).expect("simulate");
    let max_diff = a
        .ranks
        .iter()
        .zip(&report.forward_phase.attention)
        .map(|(est, sim)| (est.attn_secs - sim.as_secs_f64()).abs())
        .fold(0.0f64, f64::max);
    c.check(
        "analyzer matches simulator attention accounting",
        max_diff < 5e-6,
        format!("max per-rank diff {max_diff}s"),
    );

    // 4. Plan JSON round trip.
    let back = plan_from_json(&plan_to_json(&plan));
    c.check(
        "plan JSON round trip",
        back.as_ref() == Ok(&plan),
        format!("{back:?}"),
    );

    // 5. Routing ablation direction.
    let single = zeppelin_data::batch::Batch::new(vec![65_536]);
    let plain = simulate_step(&TeCp::new(), &single, &ctx, &cfg).expect("plain");
    let routed = simulate_step(&TeCp::with_routing(), &single, &ctx, &cfg).expect("routed");
    c.check(
        "routing layer accelerates the inter-node ring",
        routed.throughput > plain.throughput,
        format!("routed {} vs plain {}", routed.throughput, plain.throughput),
    );

    println!();
    if c.failures == 0 {
        println!("selfcheck: all invariants hold");
    } else {
        println!("selfcheck: {} FAILURES", c.failures);
        std::process::exit(1);
    }
}

//! Scale exhibit: parallel sharded rebalances at 1k–10k-GPU cluster sizes.
//!
//! Builds a synthetic large-scale training workload on Cluster A — by
//! default 512 nodes / 4096 ranks — and sweeps the simulator's rebalance
//! worker pool over `--workers 1,2,4,8`. The workload is engineered to
//! stress the component-partitioned allocator the way real data-parallel
//! training does:
//!
//! - ranks are organized into replica groups of `--group` nodes whose
//!   traffic never leaves the group, so every rebalance commit splits into
//!   `nodes / group` disjoint connected components;
//! - all groups are structurally identical (durations and byte sizes depend
//!   only on intra-group indices), so compute finishes and flow drains
//!   coincide bit-exactly across groups and every commit barrier closes
//!   over a cluster-wide wave of same-instant mutations;
//! - per-rank fan-out and transfer sizes vary within a group, giving the
//!   progressive filling multiple freeze levels per component.
//!
//! Every worker count must reproduce the 1-worker run bit-exactly (the bin
//! asserts makespan and span equality); only wall-clock time may differ.
//! Results go to stdout as a table and to `--out` (default
//! `BENCH_scale.json`) as machine-readable JSON with events/sec,
//! rebalances/sec, per-worker pool utilization, speedups, and the host CPU
//! count — wall-clock speedup is only observable when the host exposes at
//! least as many CPUs as workers; on smaller hosts the exhibit still
//! verifies determinism and reports how the pool distributed the work.

use std::fmt::Write as _;
use std::time::Instant;

use zeppelin_bench::table::Table;
use zeppelin_sim::engine::{SimReport, Simulator, Stream, TaskId};
use zeppelin_sim::time::SimDuration;
use zeppelin_sim::topology::{cluster_a, ClusterSpec};

const GPUS_PER_NODE: usize = 8;

struct Args {
    nodes: usize,
    iters: usize,
    group: usize,
    workers: Vec<usize>,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        nodes: 512,
        iters: 3,
        group: 16,
        workers: vec![1, 2, 4, 8],
        out: "BENCH_scale.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--nodes" => args.nodes = val().parse().expect("--nodes"),
            "--iters" => args.iters = val().parse().expect("--iters"),
            "--group" => args.group = val().parse().expect("--group"),
            "--workers" => {
                args.workers = val()
                    .split(',')
                    .map(|w| w.trim().parse().expect("--workers"))
                    .collect();
            }
            "--out" => args.out = val(),
            other => panic!("unknown flag {other} (try --nodes/--iters/--group/--workers/--out)"),
        }
    }
    assert!(args.group >= 2, "--group must be at least 2 nodes");
    assert!(
        args.nodes % args.group == 0,
        "--nodes must be a multiple of --group"
    );
    args
}

/// Builds the replicated-group workload described in the module docs.
fn build(cluster: &ClusterSpec, nodes: usize, iters: usize, group: usize) -> Simulator {
    let mut sim = Simulator::new(cluster);
    let ranks = nodes * GPUS_PER_NODE;
    let groups = nodes / group;
    // Per group: all of last iteration's transfers, folded into a
    // zero-duration barrier task (the replica group's "gradient ready"
    // point) so every iteration's waves stay aligned across the cluster.
    let mut grp_sends: Vec<Vec<TaskId>> = vec![Vec::new(); groups];
    for it in 0..iters {
        let barriers: Vec<Option<TaskId>> = grp_sends
            .iter_mut()
            .enumerate()
            .map(|(grp, sends)| {
                (!sends.is_empty()).then(|| {
                    sim.compute(
                        grp * group * GPUS_PER_NODE,
                        Stream::Compute,
                        SimDuration::from_micros(0),
                        std::mem::take(sends),
                        None,
                    )
                    .expect("barrier task")
                })
            })
            .collect();
        // Compute phase: one kernel per rank, identical duration everywhere
        // so every group's transfer wave starts at the same instant.
        let mut compute = Vec::with_capacity(ranks);
        for r in 0..ranks {
            let deps = barriers[r / (group * GPUS_PER_NODE)].into_iter().collect();
            let id = sim
                .compute(
                    r,
                    Stream::Compute,
                    SimDuration::from_micros(400),
                    deps,
                    None,
                )
                .expect("compute task");
            compute.push(id);
        }
        // Transfer phase: each rank sends to 2–8 peer nodes inside its
        // group. Fan-out varies with both the local GPU and the local node
        // so port loads fall into many classes and the progressive filling
        // cascades through many freeze levels; sizes and peers depend only
        // on intra-group indices so groups stay bit-identical replicas of
        // each other.
        for n in 0..nodes {
            let grp = n / group;
            let grp_base = grp * group;
            let local = n - grp_base;
            for g in 0..GPUS_PER_NODE {
                let r = n * GPUS_PER_NODE + g;
                let fanout = (group - 1).min(2 + (g + 2 * local + it) % 7);
                for p in 0..fanout {
                    let dst_node = grp_base + (local + 1 + p) % group;
                    let dst = dst_node * GPUS_PER_NODE + (g + p) % GPUS_PER_NODE;
                    let mbytes = 2 + (g + 3 * p + local + it) % 5;
                    let id = sim
                        .transfer(
                            mbytes as f64 * 1e6,
                            cluster.direct_path(r, dst),
                            vec![compute[r]],
                            None,
                        )
                        .expect("transfer task");
                    grp_sends[grp].push(id);
                }
            }
        }
    }
    sim
}

struct Sample {
    workers: usize,
    wall_s: f64,
    report: SimReport,
}

fn json_sample(s: &Sample, base_wall: f64) -> String {
    let stats = &s.report.stats;
    let util: Vec<String> = stats
        .net
        .worker_busy_ns
        .iter()
        .map(|&b| format!("{:.4}", b as f64 / 1e9 / s.wall_s))
        .collect();
    let mut j = String::new();
    write!(
        j,
        "    {{\"workers\": {}, \"wall_s\": {:.4}, \"speedup\": {:.3}, \
         \"events\": {}, \"events_per_sec\": {:.0}, \
         \"rebalances\": {}, \"rebalances_per_sec\": {:.0}, \
         \"parallel_rebalances\": {}, \"components\": {}, \"filled_flows\": {}, \
         \"worker_utilization\": [{}]}}",
        s.workers,
        s.wall_s,
        base_wall / s.wall_s,
        stats.events,
        stats.events as f64 / s.wall_s,
        stats.net.rebalances,
        stats.net.rebalances as f64 / s.wall_s,
        stats.net.parallel_rebalances,
        stats.net.components,
        stats.net.filled_flows,
        util.join(", "),
    )
    .unwrap();
    j
}

fn main() {
    let args = parse_args();
    let cluster = cluster_a(args.nodes);
    let ranks = args.nodes * GPUS_PER_NODE;
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "Scale exhibit — Cluster A x{} ({} ranks), {} iterations, groups of {} nodes ({} components per wave)",
        args.nodes,
        ranks,
        args.iters,
        args.group,
        args.nodes / args.group,
    );
    let max_workers = args.workers.iter().copied().max().unwrap_or(1);
    if host_cpus < max_workers {
        println!(
            "note: host exposes {host_cpus} CPU(s) < {max_workers} workers; threads timeshare, \
             so wall-clock speedup is not observable here (determinism still is)",
        );
    }
    println!();

    let mut samples: Vec<Sample> = Vec::new();
    for &workers in &args.workers {
        let mut sim = build(&cluster, args.nodes, args.iters, args.group);
        sim.set_workers(workers);
        let t0 = Instant::now();
        let report = sim.run().expect("scale workload runs clean");
        let wall_s = t0.elapsed().as_secs_f64();
        if let Some(base) = samples.first() {
            assert_eq!(
                report.makespan, base.report.makespan,
                "makespan must be bit-identical across worker counts"
            );
            assert_eq!(
                report.spans, base.report.spans,
                "spans must be bit-identical across worker counts"
            );
        }
        samples.push(Sample {
            workers,
            wall_s,
            report,
        });
    }

    let base_wall = samples[0].wall_s;
    let mut table = Table::new(vec![
        "workers",
        "wall (s)",
        "speedup",
        "events/s",
        "rebal/s",
        "par rebal",
        "pool util",
    ]);
    for s in &samples {
        let stats = &s.report.stats;
        let util = if stats.net.worker_busy_ns.is_empty() {
            "-".to_string()
        } else {
            let busy: u64 = stats.net.worker_busy_ns.iter().sum();
            format!(
                "{:.0}%",
                busy as f64 / 1e9 / (s.wall_s * stats.net.worker_busy_ns.len() as f64) * 100.0
            )
        };
        table.row(vec![
            format!("{}", s.workers),
            format!("{:.3}", s.wall_s),
            format!("{:.2}x", base_wall / s.wall_s),
            format!("{:.0}", stats.events as f64 / s.wall_s),
            format!("{:.0}", stats.net.rebalances as f64 / s.wall_s),
            format!("{}", stats.net.parallel_rebalances),
            util,
        ]);
    }
    println!("{}", table.render());
    println!(
        "makespan {} (bit-identical across all {} worker counts)",
        samples[0].report.makespan,
        samples.len()
    );

    let rows: Vec<String> = samples.iter().map(|s| json_sample(s, base_wall)).collect();
    let json = format!(
        "{{\n  \"exhibit\": \"scale\",\n  \"nodes\": {},\n  \"ranks\": {},\n  \"iters\": {},\n  \"group\": {},\n  \"host_cpus\": {},\n  \"makespan_ns\": {},\n  \"samples\": [\n{}\n  ]\n}}\n",
        args.nodes,
        ranks,
        args.iters,
        args.group,
        host_cpus,
        samples[0].report.makespan.as_nanos(),
        rows.join(",\n"),
    );
    std::fs::write(&args.out, json).expect("write BENCH json");
    println!("wrote {}", args.out);
}

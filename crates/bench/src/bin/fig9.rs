//! Fig. 9: scalability of the LLaMA 3B model on Cluster A.
//!
//! Throughput vs GPU count (16–128, i.e. 2–16 nodes) with the context fixed
//! at 4k tokens per GPU, for each dataset and method. The paper's shape:
//! TE CP stays flat (cross-node ring bottleneck), LLaMA CP grows modestly,
//! Hybrid DP fails to beat LLaMA CP even at small scale, and Zeppelin
//! scales best everywhere.

use zeppelin_bench::harness::{methods, run_method, ClusterKind, PAPER_SEED};
use zeppelin_bench::table::{fmt_speedup, fmt_tput, Table};
use zeppelin_data::datasets::paper_datasets;
use zeppelin_exec::trainer::RunConfig;
use zeppelin_exec::StepConfig;
use zeppelin_model::config::llama_3b;

fn main() {
    const TOKENS_PER_GPU: u64 = 4096;
    let gpu_counts = [16usize, 32, 64, 128];
    let steps: usize = std::env::var("FIG9_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let model = llama_3b();

    println!("Fig. 9 — scalability, LLaMA 3B on Cluster A (4k tokens/GPU)");
    println!("({steps} sampled steps per point)\n");

    for dist in paper_datasets() {
        let mut table = Table::new(vec![
            "GPUs",
            "TE CP",
            "LLaMA CP",
            "Hybrid DP",
            "Zeppelin",
            "speedup",
        ]);
        for &gpus in &gpu_counts {
            let cluster = ClusterKind::A.build(gpus / 8);
            let cfg = RunConfig {
                steps,
                tokens_per_step: TOKENS_PER_GPU * gpus as u64,
                seed: PAPER_SEED,
                step: StepConfig::default(),
            };
            let tputs: Vec<Option<f64>> = methods()
                .iter()
                .map(|m| run_method(m, &dist, &cluster, &model, &cfg).throughput)
                .collect();
            table.row(vec![
                format!("{gpus}"),
                fmt_tput(tputs[0]),
                fmt_tput(tputs[1]),
                fmt_tput(tputs[2]),
                fmt_tput(tputs[3]),
                fmt_speedup(tputs[3], tputs[0]),
            ]);
        }
        println!("{}:", dist.name);
        println!("{}", table.render());
    }
}

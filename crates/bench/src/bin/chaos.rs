//! Chaos exhibit: the serving front-end under a seeded fault storm
//! (DESIGN.md §11).
//!
//! For each seed, a deterministic [`ServeFaultSchedule`] — dropped
//! connections, byte-dribbling slow clients, malformed and oversized
//! frames, injected planner stalls and panics, interleaved with clean
//! traffic — is fired against a live loopback server with chaos-tuned
//! timeouts. The exhibit asserts the serving invariants and exits nonzero
//! if any is violated:
//!
//! 1. every fault resolves typed (error code, degraded plan, or clean
//!    close) within the SLO — nothing hangs;
//! 2. the worker pool never shrinks (concurrent liveness probe);
//! 3. after the storm, a clean request is served primary
//!    (`degraded: false`) within the SLO.
//!
//! `CHAOS_SEEDS` (comma-separated, default `11,23,47`) and `CHAOS_EVENTS`
//! (default 12) scale the storm.

use zeppelin_serve::chaos::{run_chaos, ServeFaultSchedule};

fn seeds() -> Vec<u64> {
    std::env::var("CHAOS_SEEDS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|p| p.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![11, 23, 47])
}

fn events() -> usize {
    std::env::var("CHAOS_EVENTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12)
}

fn main() {
    let seeds = seeds();
    let events = events();
    println!("Chaos study — the serving front-end under seeded fault storms");
    println!(
        "({} seed(s) x {events} events; typed-resolution SLO, worker liveness, \
         post-storm recovery)\n",
        seeds.len()
    );

    let mut failed = false;
    for seed in seeds {
        let schedule = ServeFaultSchedule::random(seed, events);
        schedule.validate().expect("random schedules validate");
        match run_chaos(&schedule) {
            Ok(report) => {
                print!("{}", report.summary());
                if report.passed() {
                    println!("  PASS: chaos invariant held for seed {seed}\n");
                } else {
                    println!("  FAIL: chaos invariant violated for seed {seed}\n");
                    failed = true;
                }
            }
            Err(e) => {
                println!("  FAIL: chaos run for seed {seed} errored: {e}\n");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "every seed held the invariant: faults resolve typed, workers survive, service recovers"
    );
}

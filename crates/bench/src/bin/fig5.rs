//! Fig. 5: attention compute vs send-receive cost curves and the three-zone
//! split.
//!
//! For sequence lengths from 256 to 256k tokens, prints the attention
//! computation time on one A800 against the KV send-receive time at
//! intra-node (400 GB/s) and inter-node (200 Gb/s) bandwidths, then the
//! crossover-derived zone thresholds for each paper model.

use zeppelin_bench::harness::paper_testbed;
use zeppelin_bench::table::Table;
use zeppelin_core::zones::{attn_compute_time, kv_transfer_time, zone_thresholds};
use zeppelin_model::config::{llama_3b, llama_7b, paper_models};
use zeppelin_model::kernel::KernelModel;

fn main() {
    let (cluster, _, _) = paper_testbed();
    let kernel = KernelModel::attention();
    let peak = cluster.node.gpu.peak_flops;
    let intra_bw = cluster.intranode_bw();
    let inter_bw = cluster.direct_internode_bw();

    println!("Fig. 5 — attention compute vs KV send-receive cost (A800)");
    println!("(400 GB/s intra-node, 200 Gb/s inter-node)\n");

    for cfg in [llama_3b(), llama_7b()] {
        let mut table = Table::new(vec![
            "seq len",
            "compute (ms)",
            "intra xfer (ms)",
            "inter xfer (ms)",
            "zone",
        ]);
        let thresholds = zone_thresholds(&cfg, &cluster);
        let mut s = 256u64;
        while s <= 256 * 1024 {
            let compute = attn_compute_time(&cfg, &kernel, peak, s) * 1e3;
            let intra = kv_transfer_time(&cfg, intra_bw, s) * 1e3;
            let inter = kv_transfer_time(&cfg, inter_bw, s) * 1e3;
            table.row(vec![
                format!("{s}"),
                format!("{compute:.3}"),
                format!("{intra:.3}"),
                format!("{inter:.3}"),
                format!("{:?}", thresholds.classify(s)),
            ]);
            s *= 2;
        }
        println!(
            "{} (zones: local < {}, intra-node < {}, inter-node above)",
            cfg.name, thresholds.local_max, thresholds.intra_max
        );
        println!("{}", table.render());
    }

    println!("zone thresholds per model (Cluster A):");
    let mut table = Table::new(vec!["model", "local max", "intra-node max"]);
    for cfg in paper_models() {
        let t = zone_thresholds(&cfg, &cluster);
        table.row(vec![
            cfg.name.clone(),
            format!("{}", t.local_max),
            format!("{}", t.intra_max),
        ]);
    }
    println!("{}", table.render());
}

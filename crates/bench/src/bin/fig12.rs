//! Fig. 12: attention-phase timeline study — 3B model, 16 GPUs (2 nodes of
//! Cluster A), 64k total context.
//!
//! Three executions, as in the paper:
//!   (a) TE CP with a single 64k sequence: the cross-node hop dominates
//!       every ring round;
//!   (b) Zeppelin with the same sequence and routing on: the cross-node
//!       hop splits across all four NICs (the paper measures the per-round
//!       inter-node transfer dropping 2.18 ms → 411 µs);
//!   (c) Zeppelin with a multi-sequence 64k batch: sequences land on
//!       separate nodes with no inter-node traffic at all.
//!
//! Prints per-round communication statistics, ASCII timelines, and writes
//! Chrome-trace JSON files under `target/fig12/`.

use zeppelin_baselines::te_cp::TeCp;
use zeppelin_bench::harness::paper_testbed;
use zeppelin_core::zeppelin::Zeppelin;
use zeppelin_data::batch::Batch;
use zeppelin_exec::step::{simulate_step, StepConfig, StepReport};
use zeppelin_sim::topology::ClusterSpec;
use zeppelin_sim::trace::{Trace, TraceCategory};

/// Mean/max duration in microseconds of events in a category, filtered on
/// whether the `src->dst` pair in the label crosses nodes.
fn comm_stats(
    trace: &Trace,
    cluster: &ClusterSpec,
    category: TraceCategory,
    cross_node: Option<bool>,
) -> Option<(usize, f64, f64)> {
    let mut durations = Vec::new();
    for ev in trace.events() {
        if ev.category != category {
            continue;
        }
        if let Some(want_cross) = cross_node {
            let Some((src, dst)) = parse_endpoints(&ev.label) else {
                continue;
            };
            if cluster.same_node(src, dst) == want_cross {
                continue;
            }
        }
        durations.push(ev.duration().as_micros_f64());
    }
    if durations.is_empty() {
        return None;
    }
    let n = durations.len();
    let mean = durations.iter().sum::<f64>() / n as f64;
    let max = durations.iter().cloned().fold(0.0f64, f64::max);
    Some((n, mean, max))
}

/// Parses `... 7->8` endpoint suffixes from trace labels.
fn parse_endpoints(label: &str) -> Option<(usize, usize)> {
    let arrow = label.rfind("->")?;
    let dst: usize = label[arrow + 2..].trim().parse().ok()?;
    let before = &label[..arrow];
    let src_start = before.rfind(|c: char| !c.is_ascii_digit())? + 1;
    let src: usize = before[src_start..].parse().ok()?;
    Some((src, dst))
}

fn describe(name: &str, report: &StepReport, cluster: &ClusterSpec) {
    println!("== {name} ==");
    println!(
        "layer forward {}, backward {}",
        report.layer_forward, report.layer_backward
    );
    let zones: std::collections::BTreeMap<String, usize> = {
        let mut m = std::collections::BTreeMap::new();
        for p in &report.plan.placements {
            *m.entry(format!("{:?}", p.zone)).or_insert(0) += 1;
        }
        m
    };
    println!("placements by zone: {zones:?}");
    let t = &report.trace_forward;
    if let Some((n, mean, max)) = comm_stats(t, cluster, TraceCategory::RingComm, Some(true)) {
        println!("direct cross-node ring hops: {n}, mean {mean:.0}us, max {max:.0}us");
    }
    if let Some((n, mean, max)) = comm_stats(t, cluster, TraceCategory::RingComm, Some(false)) {
        println!("intra-node ring hops:        {n}, mean {mean:.0}us, max {max:.0}us");
    }
    if let Some((n, mean, max)) = comm_stats(t, cluster, TraceCategory::InterNode, None) {
        println!("routed inter-node stages:    {n}, mean {mean:.0}us, max {max:.0}us");
    }
    if let Some((n, mean, max)) = comm_stats(t, cluster, TraceCategory::Dispatch, None) {
        println!("routed dispatch stages:      {n}, mean {mean:.0}us, max {max:.0}us");
    }
    // The paper's §5.4.1 "bubbles": idle gaps on the compute streams.
    let bubble = t.total_bubble_time(zeppelin_sim::time::SimDuration::from_micros(50));
    println!("compute bubbles (>50us gaps across ranks): {bubble}");
    println!(
        "\nforward timeline (A=attention L=linear r=ring d=dispatch N=inter c=combine m=remap):"
    );
    print!("{}", t.to_ascii(100));
    println!();
}

fn main() {
    let (cluster, _, ctx) = paper_testbed();
    let cfg = StepConfig::default();

    let single = Batch::new(vec![65_536]);
    let multi = Batch::new(vec![
        12_000, 9_000, 8_000, 7_000, 6_000, 5_000, 4_500, 4_000, 3_000, 2_500, 2_000, 1_500, 1_000,
        36,
    ]);
    assert_eq!(multi.total_tokens(), 65_536);

    let te = simulate_step(&TeCp::new(), &single, &ctx, &cfg).expect("te run");
    let zep_single = simulate_step(&Zeppelin::new(), &single, &ctx, &cfg).expect("zeppelin run");
    let zep_multi = simulate_step(&Zeppelin::new(), &multi, &ctx, &cfg).expect("zeppelin run");

    println!("Fig. 12 — attention timelines, 3B model, 16 GPUs, 64k tokens\n");
    describe("(a) TE CP, single 64k sequence", &te, &cluster);
    describe(
        "(b) Zeppelin, single 64k sequence (routed)",
        &zep_single,
        &cluster,
    );
    describe("(c) Zeppelin, 14-sequence 64k batch", &zep_multi, &cluster);

    // The paper's headline per-round reduction: direct cross-node hop time
    // vs the routed inter-node stage time.
    let direct = comm_stats(
        &te.trace_forward,
        &cluster,
        TraceCategory::RingComm,
        Some(true),
    )
    .map(|(_, mean, _)| mean)
    .unwrap_or(0.0);
    let routed = comm_stats(
        &zep_single.trace_forward,
        &cluster,
        TraceCategory::InterNode,
        None,
    )
    .map(|(_, mean, _)| mean)
    .unwrap_or(0.0);
    // A routed round pipelines `routing_pipeline` chunks per NIC lane; the
    // round's inter-node phase spans roughly chunk-duration × chunks.
    let routed_round = routed * cfg.exec.routing_pipeline as f64;
    println!(
        "per-round inter-node transfer: {direct:.0}us direct -> ~{routed_round:.0}us routed \
         ({:.1}x reduction; paper: 2180us -> 411us, 5.3x)",
        direct / routed_round.max(1e-9)
    );
    println!(
        "per-layer forward+backward: TE CP {} vs Zeppelin (multi-seq) {}",
        te.layer_forward.saturating_add(te.layer_backward),
        zep_multi
            .layer_forward
            .saturating_add(zep_multi.layer_backward),
    );

    // Chrome traces for visual inspection.
    let dir = std::path::Path::new("target/fig12");
    std::fs::create_dir_all(dir).expect("create trace dir");
    for (name, report) in [
        ("te_cp_single", &te),
        ("zeppelin_single", &zep_single),
        ("zeppelin_multi", &zep_multi),
    ] {
        let path = dir.join(format!("{name}.json"));
        std::fs::write(&path, report.trace_forward.to_chrome_json()).expect("write trace");
        println!("wrote {}", path.display());
    }
}

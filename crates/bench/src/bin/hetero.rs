//! Extension exhibit: heterogeneity tolerance.
//!
//! How much of a cluster's *homogeneous* throughput does each scheduler
//! recover when the hardware stops being uniform? Two regimes:
//!
//! - **Spread sweep**: every fourth GPU of the 2-node Cluster A testbed
//!   runs at a fraction `s ∈ {1.0, 0.9, 0.7, 0.5, 0.3}` of full speed
//!   (thermal throttling, bad HBM stacks — stragglers land inside nodes,
//!   not on node boundaries). The recovered fraction is the degraded
//!   throughput divided by the same scheduler's throughput on the healthy
//!   cluster.
//! - **Mixed tiers**: Cluster M — an H800 fabric where every third node is
//!   an A800-generation straggler ([`cluster_mixed`]) — against the
//!   all-H800 Cluster B baseline.
//!
//! Every scheduler plans *aware* of the speed vector (it is in the
//! `SchedulerCtx`); what differs is what they can do with it. Static
//! Zeppelin lightens slow local queues but keeps equal-split zigzag
//! chunks, Straggler-Remap adds speed-proportional linear-module targets,
//! and Zeppelin-Het additionally sizes ring chunks speed-proportionally —
//! the exhibit asserts that weighted chunking strictly beats equal-split
//! Zeppelin once the spread reaches 0.5, and that a full replay of the
//! sweep is bit-identical.

use std::fmt::Write as _;

use zeppelin_baselines::scheduler_by_name;
use zeppelin_bench::harness::{paper_rng, paper_testbed};
use zeppelin_bench::table::Table;
use zeppelin_core::scheduler::SchedulerCtx;
use zeppelin_data::batch::{sample_batch, Batch};
use zeppelin_data::datasets::arxiv;
use zeppelin_exec::step::{simulate_step, StepConfig};
use zeppelin_model::config::llama_3b;
use zeppelin_sim::topology::{cluster_b, cluster_mixed};

/// Slow-node speed fractions swept on the Cluster A testbed.
const SPREADS: [f64; 5] = [1.0, 0.9, 0.7, 0.5, 0.3];

/// Schedulers under test, in the registry's vocabulary.
const SCHEDS: [&str; 4] = ["te", "zeppelin", "straggler-remap", "zeppelin-het"];

struct Args {
    tokens: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        tokens: 65_536,
        out: "BENCH_hetero.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--tokens" => args.tokens = val().parse().expect("--tokens"),
            "--out" => args.out = val(),
            other => panic!("unknown flag {other} (try --tokens/--out)"),
        }
    }
    args
}

/// One measured point: a scheduler on one hardware shape.
#[derive(Debug, Clone, PartialEq)]
struct Row {
    shape: String,
    scheduler: &'static str,
    throughput: f64,
    homog: f64,
}

impl Row {
    fn recovered(&self) -> f64 {
        self.throughput / self.homog
    }
}

fn throughput(sched: &str, batch: &Batch, ctx: &SchedulerCtx, cfg: &StepConfig) -> f64 {
    let s = scheduler_by_name(sched).expect("registry scheduler");
    match simulate_step(s.as_ref(), batch, ctx, cfg) {
        Ok(r) => r.throughput,
        Err(e) => panic!("{sched}: {e}"),
    }
}

/// Runs the full sweep. Deterministic: called twice, must agree bit-exactly.
fn sweep(tokens: u64) -> Vec<Row> {
    let (cluster, _, healthy_ctx) = paper_testbed();
    let mut rng = paper_rng(14);
    let batch = sample_batch(&arxiv(), &mut rng, tokens);
    let healthy_cfg = StepConfig::default();
    let mut rows = Vec::new();

    for sched in SCHEDS {
        let homog = throughput(sched, &batch, &healthy_ctx, &healthy_cfg);
        for spread in SPREADS {
            // Every fourth rank degraded to `spread`; planners see it.
            let speed: Vec<f64> = (0..cluster.total_gpus())
                .map(|r| if r % 4 == 0 { spread } else { 1.0 })
                .collect();
            let ctx = healthy_ctx.clone().with_rank_speed(speed.clone());
            let mut cfg = StepConfig::default();
            cfg.exec.rank_speed = speed;
            rows.push(Row {
                shape: format!("a spread {spread:.1}"),
                scheduler: sched,
                throughput: throughput(sched, &batch, &ctx, &cfg),
                homog,
            });
        }
    }

    // Mixed generations: Cluster M vs the all-H800 Cluster B it dilutes.
    let model = llama_3b();
    let mixed = cluster_mixed(3);
    let mixed_ctx = SchedulerCtx::new(&mixed, &model); // tiers seed rank_speed
    let mut mixed_cfg = StepConfig::default();
    mixed_cfg.exec.rank_speed = mixed.rank_speeds().expect("mixed cluster has tiers");
    let homog_ctx = SchedulerCtx::new(&cluster_b(3), &model);
    let mut rng = paper_rng(15);
    let batch = sample_batch(&arxiv(), &mut rng, tokens);
    for sched in SCHEDS {
        rows.push(Row {
            shape: "mixed".into(),
            scheduler: sched,
            throughput: throughput(sched, &batch, &mixed_ctx, &mixed_cfg),
            homog: throughput(sched, &batch, &homog_ctx, &healthy_cfg),
        });
    }
    rows
}

fn main() {
    let args = parse_args();
    println!(
        "Heterogeneity exhibit — 3B, 2 nodes Cluster A (every 4th GPU degraded) + Cluster M, {} tokens\n",
        args.tokens
    );

    let rows = sweep(args.tokens);
    let replay = sweep(args.tokens);
    assert_eq!(rows, replay, "hetero sweep must replay bit-identically");

    let shapes: Vec<&String> = {
        let mut seen: Vec<&String> = Vec::new();
        for r in &rows {
            if !seen.contains(&&r.shape) {
                seen.push(&r.shape);
            }
        }
        seen
    };
    let mut header = vec!["shape"];
    header.extend(SCHEDS);
    let mut table = Table::new(header);
    for shape in &shapes {
        let mut cells = vec![(*shape).clone()];
        for sched in SCHEDS {
            let row = rows
                .iter()
                .find(|r| &&r.shape == shape && r.scheduler == sched)
                .expect("full grid");
            cells.push(format!("{:.1}%", 100.0 * row.recovered()));
        }
        table.row(cells);
    }
    println!("recovered fraction of each scheduler's homogeneous throughput:");
    println!("{}", table.render());

    // The point of the exhibit: once the spread is wide, weighted zigzag
    // chunks must strictly beat equal-split chunks.
    for spread in SPREADS.iter().filter(|&&s| s <= 0.5) {
        let shape = format!("a spread {spread:.1}");
        let get = |sched: &str| {
            rows.iter()
                .find(|r| r.shape == shape && r.scheduler == sched)
                .expect("full grid")
                .recovered()
        };
        let (het, zep) = (get("zeppelin-het"), get("zeppelin"));
        assert!(
            het > zep,
            "spread {spread}: zeppelin-het recovered {het:.4} <= zeppelin {zep:.4}"
        );
    }
    let get_mixed = |sched: &str| {
        rows.iter()
            .find(|r| r.shape == "mixed" && r.scheduler == sched)
            .expect("full grid")
            .recovered()
    };
    // Tiers differ only across nodes on Cluster M, so intra-node rings stay
    // uniform and weighted chunking engages only on inter-node rings: the
    // claim is "never worse", not a fixed margin.
    assert!(
        get_mixed("zeppelin-het") >= get_mixed("zeppelin"),
        "mixed tiers: zeppelin-het must not lose to equal-split zeppelin"
    );

    let mut body = String::new();
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            body,
            "    {{\"shape\": \"{}\", \"scheduler\": \"{}\", \"throughput\": {:.3}, \
             \"homog_throughput\": {:.3}, \"recovered\": {:.6}}}{sep}",
            r.shape,
            r.scheduler,
            r.throughput,
            r.homog,
            r.recovered(),
        )
        .unwrap();
    }
    let json = format!(
        "{{\n  \"exhibit\": \"hetero\",\n  \"tokens\": {},\n  \"spreads\": {:?},\n  \"rows\": [\n{}  ]\n}}\n",
        args.tokens, SPREADS, body
    );
    std::fs::write(&args.out, json).expect("write BENCH json");
    println!("wrote {}", args.out);
    println!("\nreading: equal-split zigzag chunks pay the full straggler tax");
    println!("on ring-heavy batches; speed-proportional chunks (zeppelin-het)");
    println!("shorten the slow ranks' chunks so every ring round finishes");
    println!("together, and speed-aware remap targets rebalance the linear");
    println!("modules on top.");
    println!("ok");
}

//! Robustness exhibit: deterministic fault injection and elastic recovery.
//!
//! A node of a 2-node Cluster A dies mid-run. Every recovery policy faces
//! the same seeded [`FaultSchedule`]; the table separates goodput (tokens
//! per wall second, counting lost attempts, detection, and restores) from
//! throughput (tokens per productive second). A fresh run on the surviving
//! node is the elastic policies' yardstick: replanning should land within
//! a few percent of it.
//!
//! A second table covers transient faults — a throttled GPU and a flapping
//! NIC group — where no rank dies and the question is degradation and
//! retry behaviour rather than survival.

use zeppelin_bench::harness::{paper_testbed, paper_testbed_nodes, PAPER_SEED};
use zeppelin_bench::table::Table;
use zeppelin_core::zeppelin::Zeppelin;
use zeppelin_data::datasets::arxiv;
use zeppelin_exec::recovery::{run_training_faults, FaultRunConfig, RecoveryPolicy};
use zeppelin_exec::step::StepConfig;
use zeppelin_exec::trainer::RunConfig;
use zeppelin_sim::fault::FaultSchedule;
use zeppelin_sim::time::{SimDuration, SimTime};

const STEPS: usize = 12;
const TOKENS: u64 = 32_768;

fn cfg(policy: RecoveryPolicy) -> FaultRunConfig {
    FaultRunConfig {
        run: RunConfig {
            steps: STEPS,
            tokens_per_step: TOKENS,
            seed: PAPER_SEED,
            step: StepConfig::default(),
        },
        policy,
        ..FaultRunConfig::default()
    }
}

fn fmt_s(d: SimDuration) -> String {
    format!("{:.2}s", d.as_secs_f64())
}

fn main() {
    let (cluster, _, ctx) = paper_testbed();
    let dist = arxiv();
    let zeppelin = Zeppelin::new();

    // Nominal healthy step time, from a short fault-free run, anchors the
    // crash instant mid-run (between steps 2 and 3).
    let probe = run_training_faults(
        &zeppelin,
        &dist,
        &ctx,
        &cfg(RecoveryPolicy::FailStop),
        &FaultSchedule::new(),
    )
    .expect("fault-free probe run");
    let nominal =
        SimDuration::from_nanos(probe.productive_time.as_nanos() / probe.committed_steps as u64);
    let crash_at = SimTime::ZERO + SimDuration::from_secs_f64(nominal.as_secs_f64() * 2.5);
    let faults = FaultSchedule::new().node_crash(&cluster, 1, crash_at);

    println!(
        "Fault injection — 3B on 2-node Cluster A, {STEPS} steps of {}k tokens,",
        TOKENS / 1024
    );
    println!(
        "node 1 (ranks 8-15) crashes at t={:.2}s (~2.5 nominal steps of {})\n",
        crash_at.as_nanos() as f64 / 1e9,
        nominal
    );

    let policies = [
        RecoveryPolicy::FailStop,
        RecoveryPolicy::RetryWithBackoff {
            max_retries: 3,
            backoff: SimDuration::from_millis(25),
        },
        RecoveryPolicy::ReplanSurvivors,
        RecoveryPolicy::CheckpointRestart {
            every_steps: 4,
            restore_cost: SimDuration::from_millis(500),
        },
    ];

    let mut table = Table::new(vec![
        "policy", "outcome", "steps", "tokens/s", "goodput", "lost tok", "recovery", "ranks",
    ]);
    for policy in policies {
        let name = policy.name();
        match run_training_faults(&zeppelin, &dist, &ctx, &cfg(policy), &faults) {
            Ok(r) => table.row(vec![
                name.to_string(),
                "completed".to_string(),
                format!("{}", r.committed_steps),
                format!("{:.0}", r.throughput),
                format!("{:.0}", r.goodput),
                format!("{}", r.lost_tokens),
                fmt_s(r.recovery_latency),
                format!("{}", r.final_ranks),
            ]),
            Err(e) => table.row(vec![
                name.to_string(),
                format!("error: {e}"),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]),
        }
    }

    // Yardstick: the same run on a fresh single-node cluster (what the
    // elastic policies shrink to).
    let (_, _, survivor_ctx) = paper_testbed_nodes(1);
    let fresh = run_training_faults(
        &zeppelin,
        &dist,
        &survivor_ctx,
        &cfg(RecoveryPolicy::FailStop),
        &FaultSchedule::new(),
    )
    .expect("fresh survivor run");
    table.row(vec![
        "fresh 1-node ref".to_string(),
        "completed".to_string(),
        format!("{}", fresh.committed_steps),
        format!("{:.0}", fresh.throughput),
        format!("{:.0}", fresh.goodput),
        format!("{}", fresh.lost_tokens),
        fmt_s(fresh.recovery_latency),
        format!("{}", fresh.final_ranks),
    ]);
    println!("{}", table.render());
    println!("reading: fail-stop forfeits the run; blind retries cannot outwait");
    println!("a dead rank; replanning pays one lost step plus detection and then");
    println!("tracks the fresh single-node reference; checkpoint-restart also");
    println!("rolls back to the last checkpoint, so its goodput trails replan.\n");

    // Transient faults: nobody dies, steps stretch or time out and retry.
    let slowdown = FaultSchedule::new().gpu_slowdown(3, 0.4, SimTime::ZERO, None);
    let flap_start = SimTime::ZERO + SimDuration::from_secs_f64(nominal.as_secs_f64() * 1.2);
    let flap_end = flap_start + SimDuration::from_secs_f64(nominal.as_secs_f64() * 2.0);
    let mut flap = FaultSchedule::new();
    for nic in 0..cluster.node.nic_count {
        flap = flap.link_flap(nic, flap_start, Some(flap_end));
    }

    println!("Transient faults (retry+backoff, 8 retries, 25ms backoff)");
    let mut t2 = Table::new(vec![
        "scenario", "steps", "degraded", "retries", "tokens/s", "goodput", "recovery",
    ]);
    let policy = RecoveryPolicy::RetryWithBackoff {
        max_retries: 8,
        backoff: SimDuration::from_millis(25),
    };
    for (label, schedule) in [
        ("healthy", FaultSchedule::new()),
        ("rank 3 at 40% speed", slowdown),
        ("node-0 NICs flap ~2 steps", flap),
    ] {
        match run_training_faults(&zeppelin, &dist, &ctx, &cfg(policy.clone()), &schedule) {
            Ok(r) => t2.row(vec![
                label.to_string(),
                format!("{}", r.committed_steps),
                format!("{}", r.degraded_steps),
                format!("{}", r.recoveries.len()),
                format!("{:.0}", r.throughput),
                format!("{:.0}", r.goodput),
                fmt_s(r.recovery_latency),
            ]),
            Err(e) => t2.row(vec![
                label.to_string(),
                format!("error: {e}"),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]),
        }
    }
    println!("{}", t2.render());
    println!("reading: a throttled GPU stretches every ring it joins but commits");
    println!("each step; a flapping NIC group trips the anomaly threshold and the");
    println!("trainer retries until the link settles, trading goodput for");
    println!("completion without shrinking the cluster.");
}

//! Table 3: per-rank cost distribution under two length distributions.
//!
//! 7B model, 4 nodes of Cluster C (32 GPUs), 128k total context, full
//! Zeppelin. The *Balanced* batch samples one sequence per Table 2 (ArXiv)
//! bucket; the *Skewed* batch is one very long sequence plus short fillers.
//! Rows report `min - max` across ranks, whole-forward / whole-backward
//! (per-layer values × layer count), matching the paper's table format.

use zeppelin_bench::table::Table;
use zeppelin_core::scheduler::SchedulerCtx;
use zeppelin_core::zeppelin::Zeppelin;
use zeppelin_data::batch::{balanced_batch, skewed_batch, Batch};
use zeppelin_data::datasets::arxiv;
use zeppelin_exec::step::{simulate_step, PhaseBreakdown, StepConfig, StepReport};
use zeppelin_model::config::llama_7b;
use zeppelin_sim::time::SimDuration;
use zeppelin_sim::topology::cluster_c;

/// Per-rank elapsed span (first event start to last event end), per rank.
fn elapsed_per_rank(trace: &zeppelin_sim::trace::Trace, nranks: usize) -> Vec<SimDuration> {
    (0..nranks)
        .map(|r| {
            let evs = trace.rank_timeline(r);
            match (evs.first(), evs.last()) {
                (Some(first), Some(_)) => {
                    let end = evs.iter().map(|e| e.end).max().expect("non-empty");
                    end.since(first.start)
                }
                _ => SimDuration::ZERO,
            }
        })
        .collect()
}

fn scaled_range(v: &[SimDuration], layers: u64) -> String {
    let (min, max) = PhaseBreakdown::range(v);
    format!(
        "{:.0} - {:.0}",
        min.as_millis_f64() * layers as f64,
        max.as_millis_f64() * layers as f64
    )
}

fn column(report: &StepReport, layers: u64, plan_ms: f64) -> Vec<String> {
    let nranks = report.forward_phase.attention.len();
    vec![
        scaled_range(&elapsed_per_rank(&report.trace_forward, nranks), layers),
        scaled_range(&report.forward_phase.attention, layers),
        scaled_range(&report.forward_phase.linear, layers),
        scaled_range(&report.forward_phase.remap, layers),
        format!("{plan_ms:.3}"),
        scaled_range(&elapsed_per_rank(&report.trace_backward, nranks), layers),
    ]
}

fn main() {
    const TOTAL: u64 = 131_072;
    let cluster = cluster_c(4);
    let model = llama_7b();
    let ctx = SchedulerCtx::new(&cluster, &model);
    let cfg = StepConfig::default();
    let layers = model.layers as u64;

    let balanced: Batch = balanced_batch(&arxiv(), TOTAL);
    let skewed: Batch = skewed_batch(TOTAL, 0.7);

    let zeppelin = Zeppelin::new();
    let rb = simulate_step(&zeppelin, &balanced, &ctx, &cfg).expect("balanced run");
    let rs = simulate_step(&zeppelin, &skewed, &ctx, &cfg).expect("skewed run");

    let cb = column(&rb, layers, rb.plan_wall.as_secs_f64() * 1e3);
    let cs = column(&rs, layers, rs.plan_wall.as_secs_f64() * 1e3);

    println!("Table 3 — cost distribution across ranks (ms, min - max)");
    println!("(7B, 4 nodes Cluster C, 128k total context, full Zeppelin)\n");
    let mut table = Table::new(vec!["Components (ms)", "Balanced", "Skewed"]);
    let rows = [
        "Forward",
        "Forward Quadratic Attention",
        "Forward Linear Modules",
        "Forward Remapping Layer",
        "Forward Sequence Partition",
        "Backward",
    ];
    for (i, name) in rows.iter().enumerate() {
        table.row(vec![name.to_string(), cb[i].clone(), cs[i].clone()]);
    }
    println!("{}", table.render());
    println!(
        "batch shapes: balanced = {} sequences, skewed = {} sequences",
        balanced.len(),
        skewed.len()
    );
    println!("(paper: skewed forward dominated by the long sequence's attention;");
    println!(" remapping and partitioning negligible in both)");
}

//! Quick sanity comparison (not a paper exhibit): all methods on the three
//! datasets at 64k total context on 2 nodes of Cluster A with the 3B model.
//! Used to eyeball speedup shapes while calibrating the cost model.

use zeppelin_bench::harness::{methods, quick_run_config, run_method, ClusterKind};
use zeppelin_bench::table::{fmt_speedup, fmt_tput, Table};
use zeppelin_data::datasets::paper_datasets;
use zeppelin_model::config::llama_3b;

fn main() {
    let cluster = ClusterKind::A.build(2);
    let model = llama_3b();
    let cfg = quick_run_config(65_536);
    let mut table = Table::new(vec!["dataset", "method", "tokens/s", "vs TE CP"]);
    for dist in paper_datasets() {
        let mut te = None;
        for method in methods() {
            let out = run_method(&method, &dist, &cluster, &model, &cfg);
            if out.name == "TE CP" {
                te = out.throughput;
            }
            table.row(vec![
                dist.name.clone(),
                out.name.clone(),
                fmt_tput(out.throughput),
                fmt_speedup(out.throughput, te),
            ]);
        }
    }
    println!("{}", table.render());
}

//! Cluster exhibit: three queueing policies on a seeded skewed-tenant
//! trace over a shared cluster (DESIGN.md §13).
//!
//! A "whale" tenant floods the cluster with a burst of large low-priority
//! jobs at t≈0 while three minority tenants trickle in small
//! higher-priority jobs behind it. FIFO serves the burst head-of-line;
//! shortest-remaining-work-first backfills around it; weighted fair-share
//! caps the whale at its node share, preempting and elastically resizing
//! as tenants come and go. Every policy runs the identical pre-sampled
//! trace through the identical per-job planning stack, so the comparison
//! isolates the scheduling discipline.
//!
//! Reported per policy: goodput vs throughput (tokens committed vs tokens
//! attempted per second of makespan), JCT and queueing-delay p50/p99,
//! Jain's fairness index over per-tenant mean job efficiency, node
//! utilization, and preemption/replan counts.
//!
//! Asserted invariants (all hosts — this exhibit measures simulated time,
//! so nothing here depends on host CPU count):
//!
//! - same-seed reruns are bit-identical, event log and JSON included;
//! - every arrived job terminates exactly once under every policy;
//! - goodput ≤ throughput, with equality only when nothing was discarded;
//! - fair-share strictly improves Jain's index over FIFO on this trace.

use std::fmt::Write as _;

use zeppelin_bench::harness::PAPER_SEED;
use zeppelin_bench::table::Table;
use zeppelin_cluster::{
    run_cluster, ClusterConfig, ClusterPolicy, ClusterReport, FairShare, Fifo, JobTrace, Srwf,
};
use zeppelin_core::zeppelin::Zeppelin;
use zeppelin_sim::topology::cluster_a;

struct Args {
    nodes: usize,
    jobs: usize,
    seed: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        nodes: 64,
        jobs: 120,
        seed: PAPER_SEED,
        out: "BENCH_cluster.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--nodes" => args.nodes = val().parse::<usize>().expect("--nodes").max(2),
            "--jobs" => args.jobs = val().parse::<usize>().expect("--jobs").max(4),
            "--seed" => args.seed = val().parse().expect("--seed"),
            "--out" => args.out = val(),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn run_policy(policy: &dyn ClusterPolicy, trace: &JobTrace, cfg: &ClusterConfig) -> ClusterReport {
    let report = run_cluster(policy, &Zeppelin::new(), trace, cfg)
        .unwrap_or_else(|e| panic!("policy {} failed: {e}", policy.name()));
    report
        .check()
        .unwrap_or_else(|e| panic!("policy {} report inconsistent: {e}", policy.name()));

    // Determinism backstop: the same trace under the same policy replays
    // bit-identically — event log, outcomes, and serialized report.
    let replay = run_cluster(policy, &Zeppelin::new(), trace, cfg)
        .unwrap_or_else(|e| panic!("policy {} replay failed: {e}", policy.name()));
    assert_eq!(
        report.events,
        replay.events,
        "{} replay diverged",
        policy.name()
    );
    assert_eq!(
        report.outcomes,
        replay.outcomes,
        "{} outcomes diverged",
        policy.name()
    );
    assert_eq!(
        report.to_json().to_string(),
        replay.to_json().to_string(),
        "{} serialized report diverged",
        policy.name()
    );
    report
}

fn main() {
    let args = parse_args();
    let cluster = cluster_a(args.nodes);
    let trace = JobTrace::skewed(args.seed, args.jobs, &cluster);
    let cfg = ClusterConfig {
        cluster: cluster.clone(),
        ..ClusterConfig::default()
    };

    let tenants: std::collections::BTreeSet<&str> =
        trace.jobs.iter().map(|j| j.tenant.as_str()).collect();
    println!(
        "Cluster exhibit — {} jobs from {} tenants on {} ({} nodes), seed {}",
        trace.jobs.len(),
        tenants.len(),
        cluster.name,
        args.nodes,
        args.seed
    );
    println!(
        "skewed trace: whale burst of {} jobs, minnow trickle of {}\n",
        trace.jobs.iter().filter(|j| j.tenant == "whale").count(),
        trace.jobs.iter().filter(|j| j.tenant != "whale").count(),
    );

    let policies: [&dyn ClusterPolicy; 3] = [&Fifo, &Srwf, &FairShare];
    let reports: Vec<ClusterReport> = policies
        .iter()
        .map(|p| run_policy(*p, &trace, &cfg))
        .collect();

    let mut table = Table::new(vec![
        "policy",
        "goodput tok/s",
        "tput tok/s",
        "util",
        "JCT p50 s",
        "JCT p99 s",
        "queue p50 s",
        "queue p99 s",
        "Jain",
        "preempt",
        "replan",
    ]);
    for r in &reports {
        table.row(vec![
            r.policy.clone(),
            format!("{:.0}", r.goodput),
            format!("{:.0}", r.throughput),
            format!("{:.2}", r.utilization),
            format!("{:.2}", r.jct_p50.as_secs_f64()),
            format!("{:.2}", r.jct_p99.as_secs_f64()),
            format!("{:.2}", r.queue_p50.as_secs_f64()),
            format!("{:.2}", r.queue_p99.as_secs_f64()),
            format!("{:.4}", r.fairness),
            format!("{}", r.preemptions),
            format!("{}", r.replans),
        ]);
    }
    println!("{}", table.render());

    for r in &reports {
        assert_eq!(
            r.completed + r.failed + r.rejected,
            trace.jobs.len(),
            "{}: every arrived job must terminate exactly once",
            r.policy
        );
        assert!(
            r.goodput <= r.throughput + 1e-9,
            "{}: goodput {} exceeds throughput {}",
            r.policy,
            r.goodput,
            r.throughput
        );
    }
    let fifo = &reports[0];
    let fair = &reports[2];
    assert!(
        fair.fairness > fifo.fairness,
        "fair-share must strictly improve Jain's index over FIFO on the skewed trace: \
         fair {} vs fifo {}",
        fair.fairness,
        fifo.fairness
    );
    println!(
        "fairness: fair-share Jain {:.4} > FIFO Jain {:.4} (+{:.1}%)",
        fair.fairness,
        fifo.fairness,
        (fair.fairness / fifo.fairness - 1.0) * 100.0
    );

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"exhibit\": \"cluster_policies\",").unwrap();
    writeln!(
        json,
        "  \"nodes\": {}, \"jobs\": {}, \"seed\": {}, \"tenants\": {},",
        args.nodes,
        trace.jobs.len(),
        args.seed,
        tenants.len()
    )
    .unwrap();
    writeln!(json, "  \"policies\": {{").unwrap();
    for (i, r) in reports.iter().enumerate() {
        let comma = if i + 1 < reports.len() { "," } else { "" };
        writeln!(json, "    \"{}\": {}{comma}", r.policy, r.to_json()).unwrap();
    }
    writeln!(json, "  }}").unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write(&args.out, json).expect("write BENCH json");
    println!("\nwrote {}", args.out);
    println!("ok");
}

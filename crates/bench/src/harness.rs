//! Shared experiment plumbing for the figure/table binaries.

use rand::rngs::StdRng;
use rand::SeedableRng;

use zeppelin_baselines::{HybridDp, LlamaCp, Packing, TeCp};
use zeppelin_core::scheduler::{Scheduler, SchedulerCtx};
use zeppelin_core::zeppelin::{Zeppelin, ZeppelinConfig};
use zeppelin_data::distribution::LengthDistribution;
use zeppelin_exec::step::StepConfig;
use zeppelin_exec::trainer::{run_training, RunConfig, RunError, RunReport};
use zeppelin_exec::StepError;
use zeppelin_model::config::{llama_3b, ModelConfig};
use zeppelin_sim::topology::{cluster_a, cluster_b, cluster_c, ClusterSpec};

/// Base seed used by every exhibit so results are reproducible.
pub const PAPER_SEED: u64 = 2026;

/// The default exhibit testbed: two nodes of cluster A driving LLaMA-3B —
/// the configuration nearly every figure/table binary starts from.
pub fn paper_testbed() -> (ClusterSpec, ModelConfig, SchedulerCtx) {
    paper_testbed_nodes(2)
}

/// [`paper_testbed`] with an explicit node count (fault exhibits shrink to
/// the survivor set, scaling exhibits grow it).
pub fn paper_testbed_nodes(nodes: usize) -> (ClusterSpec, ModelConfig, SchedulerCtx) {
    let cluster = cluster_a(nodes);
    let model = llama_3b();
    let ctx = SchedulerCtx::new(&cluster, &model);
    (cluster, model, ctx)
}

/// The exhibit RNG: [`PAPER_SEED`] plus a per-section offset so sections
/// draw independent but reproducible batches.
pub fn paper_rng(offset: u64) -> StdRng {
    StdRng::seed_from_u64(PAPER_SEED.wrapping_add(offset))
}

/// The paper's three clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterKind {
    /// 8× A800, 4 shared 200 Gb/s NICs per node.
    A,
    /// 8× H800, 8× 200 Gb/s NICs per node.
    B,
    /// 8× H200, 8× 400 Gb/s NICs per node.
    C,
}

impl ClusterKind {
    /// Builds the cluster with `nodes` nodes.
    pub fn build(self, nodes: usize) -> ClusterSpec {
        match self {
            ClusterKind::A => cluster_a(nodes),
            ClusterKind::B => cluster_b(nodes),
            ClusterKind::C => cluster_c(nodes),
        }
    }

    /// Short label used in table headers.
    pub fn label(self) -> &'static str {
        match self {
            ClusterKind::A => "Cluster A",
            ClusterKind::B => "Cluster B",
            ClusterKind::C => "Cluster C",
        }
    }
}

/// A method under evaluation.
pub enum Method {
    /// Transformer Engine CP baseline.
    TeCp,
    /// TE CP with the routing layer grafted on (Fig. 11).
    TeCpRouting,
    /// LLaMA all-gather CP baseline.
    LlamaCp,
    /// FLOP-balanced hybrid DP baseline.
    HybridDp,
    /// Input-balanced packing baseline (Fig. 3 analysis).
    Packing,
    /// Zeppelin with a component configuration.
    Zeppelin(ZeppelinConfig),
}

impl Method {
    /// Instantiates the scheduler.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match self {
            Method::TeCp => Box::new(TeCp::new()),
            Method::TeCpRouting => Box::new(TeCp::with_routing()),
            Method::LlamaCp => Box::new(LlamaCp::new()),
            Method::HybridDp => Box::new(HybridDp::new()),
            Method::Packing => Box::new(Packing::new()),
            Method::Zeppelin(cfg) => Box::new(Zeppelin::with_config(*cfg)),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Method::TeCp => "TE CP",
            Method::TeCpRouting => "TE CP + Routing",
            Method::LlamaCp => "LLaMA CP",
            Method::HybridDp => "Hybrid DP",
            Method::Packing => "Packing",
            Method::Zeppelin(c) => Zeppelin::with_config(*c).name(),
        }
    }
}

/// The Fig. 8/9/10 method roster: three baselines plus full Zeppelin.
pub fn methods() -> Vec<Method> {
    vec![
        Method::TeCp,
        Method::LlamaCp,
        Method::HybridDp,
        Method::Zeppelin(ZeppelinConfig::default()),
    ]
}

/// Outcome of running one method on one experimental point.
pub struct MethodOutcome {
    /// Method name.
    pub name: String,
    /// Mean tokens/second, or `None` if the method could not place the
    /// workload (e.g. all-gather memory exhaustion).
    pub throughput: Option<f64>,
    /// Full run report if the run succeeded.
    pub report: Option<RunReport>,
}

/// Standard quick run: enough sampled steps for stable means while keeping
/// the full exhibit suite tractable.
pub fn quick_run_config(tokens_per_step: u64) -> RunConfig {
    RunConfig {
        steps: 8,
        tokens_per_step,
        seed: PAPER_SEED,
        step: StepConfig::default(),
    }
}

/// Runs one method over sampled batches, tolerating capacity failures
/// (reported as `throughput: None`, mirroring OOM points in the paper).
pub fn run_method(
    method: &Method,
    dist: &LengthDistribution,
    cluster: &ClusterSpec,
    model: &ModelConfig,
    cfg: &RunConfig,
) -> MethodOutcome {
    let scheduler = method.build();
    let ctx = SchedulerCtx::new(cluster, model);
    match run_training(scheduler.as_ref(), dist, &ctx, cfg) {
        Ok(report) => MethodOutcome {
            name: report.scheduler.clone(),
            throughput: Some(report.mean_throughput),
            report: Some(report),
        },
        Err(RunError::Step {
            source: StepError::Plan(_),
            ..
        }) => MethodOutcome {
            name: method.name().to_string(),
            throughput: None,
            report: None,
        },
        Err(e) => panic!("simulation failed for {}: {e}", method.name()),
    }
}

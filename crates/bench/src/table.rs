//! Minimal fixed-width table rendering for terminal output.

use std::fmt::Write as _;

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        while cells.len() < self.header.len() {
            cells.push(String::new());
        }
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "{cell:<w$}");
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// Formats a throughput in tokens/second with thousands grouping.
pub fn fmt_tput(tput: Option<f64>) -> String {
    match tput {
        Some(t) => {
            if t >= 1e6 {
                format!("{:.2}M", t / 1e6)
            } else if t >= 1e3 {
                format!("{:.1}k", t / 1e3)
            } else {
                format!("{t:.0}")
            }
        }
        None => "OOM".to_string(),
    }
}

/// Formats a speedup factor.
pub fn fmt_speedup(num: Option<f64>, base: Option<f64>) -> String {
    match (num, base) {
        (Some(n), Some(b)) if b > 0.0 => format!("{:.2}x", n / b),
        _ => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["method", "tput"]);
        t.row(vec!["TE CP", "10.0k"]);
        t.row(vec!["Zeppelin", "28.1k"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("method"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "tput" column starts at the same index everywhere.
        let idx = lines[0].find("tput").unwrap();
        assert_eq!(&lines[2][idx..idx + 2], "10");
        assert_eq!(&lines[3][idx..idx + 2], "28");
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().contains('x'));
    }

    #[test]
    fn throughput_formatting() {
        assert_eq!(fmt_tput(Some(1_234_567.0)), "1.23M");
        assert_eq!(fmt_tput(Some(45_600.0)), "45.6k");
        assert_eq!(fmt_tput(Some(312.0)), "312");
        assert_eq!(fmt_tput(None), "OOM");
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(fmt_speedup(Some(20.0), Some(10.0)), "2.00x");
        assert_eq!(fmt_speedup(None, Some(10.0)), "-");
        assert_eq!(fmt_speedup(Some(1.0), None), "-");
    }
}

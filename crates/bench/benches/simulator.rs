//! Criterion benchmarks of the discrete-event simulator: max-min fair rate
//! recomputation under many concurrent flows, and DAG execution throughput.
//! These bound how large a cluster / iteration the exhibit suite can
//! simulate in reasonable wall time.

use std::collections::VecDeque;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use zeppelin_sim::engine::{Simulator, Stream, TaskId};
use zeppelin_sim::network::FlowNetwork;
use zeppelin_sim::reference::ReferenceNet;
use zeppelin_sim::time::SimDuration;
use zeppelin_sim::topology::{cluster_a, tiny_cluster, Port};

fn bench_flow_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_network");
    for flows in [16usize, 64, 256] {
        let cluster = cluster_a(8);
        group.bench_with_input(BenchmarkId::new("start_flows", flows), &flows, |b, &n| {
            b.iter(|| {
                let mut net = FlowNetwork::new();
                for i in 0..n {
                    let src = i % 32;
                    let dst = 32 + (i % 32);
                    net.start_flow(1e9, &cluster.direct_path(src, dst), |p| {
                        cluster.port_capacity(p)
                    });
                }
                std::hint::black_box(net.active_flows())
            })
        });
    }
    group.finish();
}

/// Steady-state churn: one flow finishes and one starts per iteration while
/// `flows` stay active, then the next completion instant is queried. Traffic
/// follows a DP-style node-pair pattern (the shape the collective planners
/// emit), so contention forms bounded components. `churn_incremental` is the
/// production allocator; `churn_reference` drives the frozen from-scratch
/// oracle through the same schedule as the before/after baseline.
fn bench_flow_churn(c: &mut Criterion) {
    let cluster = cluster_a(16); // 128 ranks, 64 NICs.
    let paths: Vec<Vec<Port>> = (0..2048usize)
        .map(|i| {
            let pair = i % 8;
            let src = (2 * pair) * 8 + (i / 8) % 8;
            let dst = (2 * pair + 1) * 8 + (i / 64) % 8;
            cluster.direct_path(src, dst)
        })
        .collect();
    let mut group = c.benchmark_group("flow_network");
    for flows in [256usize, 1024, 4096] {
        group.bench_with_input(
            BenchmarkId::new("churn_incremental", flows),
            &flows,
            |b, &n| {
                let mut net = FlowNetwork::new();
                let mut keys = VecDeque::new();
                let mut i = 0usize;
                for _ in 0..n {
                    keys.push_back(
                        net.start_flow(1e12, &paths[i % paths.len()], |p| cluster.port_capacity(p)),
                    );
                    i += 1;
                }
                b.iter(|| {
                    net.finish_flow(keys.pop_front().expect("steady state"));
                    keys.push_back(
                        net.start_flow(1e12, &paths[i % paths.len()], |p| cluster.port_capacity(p)),
                    );
                    i += 1;
                    std::hint::black_box(net.next_completion())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("churn_reference", flows),
            &flows,
            |b, &n| {
                let mut net = ReferenceNet::new();
                let mut keys = VecDeque::new();
                let mut i = 0usize;
                for _ in 0..n {
                    keys.push_back(
                        net.start_flow(1e12, &paths[i % paths.len()], |p| cluster.port_capacity(p)),
                    );
                    i += 1;
                }
                b.iter(|| {
                    net.finish_flow(keys.pop_front().expect("steady state"));
                    keys.push_back(
                        net.start_flow(1e12, &paths[i % paths.len()], |p| cluster.port_capacity(p)),
                    );
                    i += 1;
                    std::hint::black_box(net.next_completion())
                })
            },
        );
    }
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    for tasks in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("chain_run", tasks), &tasks, |b, &n| {
            let cluster = tiny_cluster(2, 4);
            let mut sim = Simulator::new(&cluster);
            let mut last = None;
            for i in 0..n {
                let deps = last.into_iter().collect();
                let t = if i % 4 == 0 {
                    sim.transfer(1e6, cluster.direct_path(i % 8, (i + 1) % 8), deps, None)
                        .unwrap()
                } else {
                    sim.compute(
                        i % 8,
                        Stream::Compute,
                        SimDuration::from_micros(5),
                        deps,
                        None,
                    )
                    .unwrap()
                };
                last = Some(t);
            }
            b.iter(|| std::hint::black_box(sim.run().unwrap().makespan))
        });
    }
    // Many transfers become ready at the same instant (barrier-synchronized
    // rounds): the case the engine's batched begin/commit updates target.
    for (rounds, width) in [(16usize, 64usize)] {
        let cluster = cluster_a(2);
        let mut sim = Simulator::new(&cluster);
        let mut barrier: Option<TaskId> = None;
        for r in 0..rounds {
            let mut round_ids = Vec::new();
            for j in 0..width {
                let src = (r * 13 + j) % 16;
                let dst = (src + 1 + j % 15) % 16;
                let deps = barrier.into_iter().collect();
                round_ids.push(
                    sim.transfer(2e8, cluster.direct_path(src, dst), deps, None)
                        .unwrap(),
                );
            }
            barrier = Some(sim.marker(round_ids).unwrap());
        }
        group.bench_with_input(
            BenchmarkId::new("fanout_rounds", rounds * width),
            &rounds,
            |b, _| b.iter(|| std::hint::black_box(sim.run().unwrap().makespan)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_flow_network, bench_flow_churn, bench_engine);
criterion_main!(benches);

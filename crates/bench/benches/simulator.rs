//! Criterion benchmarks of the discrete-event simulator: max-min fair rate
//! recomputation under many concurrent flows, and DAG execution throughput.
//! These bound how large a cluster / iteration the exhibit suite can
//! simulate in reasonable wall time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use zeppelin_sim::engine::{Simulator, Stream};
use zeppelin_sim::network::FlowNetwork;
use zeppelin_sim::time::SimDuration;
use zeppelin_sim::topology::{cluster_a, tiny_cluster};

fn bench_flow_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_network");
    for flows in [16usize, 64, 256] {
        let cluster = cluster_a(8);
        group.bench_with_input(BenchmarkId::new("start_flows", flows), &flows, |b, &n| {
            b.iter(|| {
                let mut net = FlowNetwork::new();
                for i in 0..n {
                    let src = i % 32;
                    let dst = 32 + (i % 32);
                    net.start_flow(1e9, &cluster.direct_path(src, dst), |p| {
                        cluster.port_capacity(p)
                    });
                }
                std::hint::black_box(net.active_flows())
            })
        });
    }
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    for tasks in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("chain_run", tasks), &tasks, |b, &n| {
            let cluster = tiny_cluster(2, 4);
            let mut sim = Simulator::new(&cluster);
            let mut last = None;
            for i in 0..n {
                let deps = last.into_iter().collect();
                let t = if i % 4 == 0 {
                    sim.transfer(1e6, cluster.direct_path(i % 8, (i + 1) % 8), deps, None)
                        .unwrap()
                } else {
                    sim.compute(
                        i % 8,
                        Stream::Compute,
                        SimDuration::from_micros(5),
                        deps,
                        None,
                    )
                    .unwrap()
                };
                last = Some(t);
            }
            b.iter(|| std::hint::black_box(sim.run().unwrap().makespan))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flow_network, bench_engine);
criterion_main!(benches);

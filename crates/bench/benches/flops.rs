//! Criterion benchmarks of the cost-model hot paths: causal pair counting
//! and per-round ring cost queries. These run inside every lowering of
//! every ring round, so they must stay in the tens of nanoseconds.

use criterion::{criterion_group, criterion_main, Criterion};

use zeppelin_core::chunking::{ring_round_flops, ring_round_kv_bytes};
use zeppelin_model::config::llama_7b;
use zeppelin_model::flops::{attention_block_flops, causal_pairs};

fn bench_causal_pairs(c: &mut Criterion) {
    c.bench_function("causal_pairs", |b| {
        b.iter(|| {
            causal_pairs(
                std::hint::black_box(10_000),
                std::hint::black_box(4_096),
                std::hint::black_box(2_000),
                std::hint::black_box(4_096),
            )
        })
    });
    let cfg = llama_7b();
    c.bench_function("attention_block_flops", |b| {
        b.iter(|| attention_block_flops(&cfg, 10_000, 4_096, 2_000, 4_096))
    });
}

fn bench_ring_round(c: &mut Criterion) {
    let cfg = llama_7b();
    c.bench_function("ring_round_flops_g16", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for p in 0..16 {
                for r in 0..16 {
                    acc += ring_round_flops(&cfg, 131_072, 16, p, r);
                }
            }
            std::hint::black_box(acc)
        })
    });
    c.bench_function("ring_round_kv_bytes_g16", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for p in 0..16 {
                acc += ring_round_kv_bytes(&cfg, 131_072, 16, p, 3);
            }
            std::hint::black_box(acc)
        })
    });
}

criterion_group!(benches, bench_causal_pairs, bench_ring_round);
criterion_main!(benches);

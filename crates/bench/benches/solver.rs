//! Criterion benchmarks of the optimization substrate: the bottleneck
//! (Eq. 2) remapping solver, its LP reference, and min-cost flow. The
//! remapping layer runs once per iteration, so sub-millisecond solves at
//! d = 128 ranks keep it off the critical path (Table 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use zeppelin_solver::bottleneck::{solve_bottleneck, solve_lp, RemapProblem};
use zeppelin_solver::transport::min_cost_transport;

fn problem(d: usize, seed: u64) -> RemapProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    RemapProblem {
        tokens: (0..d).map(|_| rng.random_range(0..10_000u64)).collect(),
        node_of: (0..d).map(|i| i / 8).collect(),
        intra_cost: 1.0 / 400e9,
        inter_cost: 1.0 / 25e9,
    }
}

fn bench_bottleneck(c: &mut Criterion) {
    let mut group = c.benchmark_group("bottleneck_transport");
    for d in [16usize, 64, 128] {
        let p = problem(d, 42);
        group.bench_with_input(BenchmarkId::new("combinatorial", d), &p, |b, p| {
            b.iter(|| solve_bottleneck(std::hint::black_box(p)))
        });
    }
    // The LP reference is only tractable at small d.
    let p = problem(16, 42);
    group.bench_function("simplex_lp_16", |b| {
        b.iter(|| solve_lp(std::hint::black_box(&p)))
    });
    group.finish();
}

fn bench_mcmf(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let n = 32;
    let supply: Vec<i64> = (0..n).map(|_| rng.random_range(0..1000)).collect();
    let total: i64 = supply.iter().sum();
    let mut demand: Vec<i64> = (0..n).map(|_| total / n as i64).collect();
    demand[0] += total - demand.iter().sum::<i64>();
    let cost: Vec<Vec<i64>> = (0..n)
        .map(|_| (0..n).map(|_| rng.random_range(1..100)).collect())
        .collect();
    c.bench_function("min_cost_transport_32x32", |b| {
        b.iter(|| {
            min_cost_transport(
                std::hint::black_box(&supply),
                std::hint::black_box(&demand),
                std::hint::black_box(&cost),
            )
            .unwrap()
        })
    });
}

criterion_group!(benches, bench_bottleneck, bench_mcmf);
criterion_main!(benches);

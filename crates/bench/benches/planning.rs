//! Criterion benchmarks of the planning-side tooling: whole-plan static
//! analysis and plan JSON round trips — per-iteration costs a training
//! controller would pay on its critical path.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use zeppelin_core::analysis::analyze;
use zeppelin_core::plan_io::{plan_from_json, plan_to_json};
use zeppelin_core::scheduler::{Scheduler, SchedulerCtx};
use zeppelin_core::zeppelin::Zeppelin;
use zeppelin_data::batch::sample_batch;
use zeppelin_data::datasets::github;
use zeppelin_model::config::llama_3b;
use zeppelin_sim::topology::cluster_a;

fn bench_planning(c: &mut Criterion) {
    let cluster = cluster_a(8);
    let model = llama_3b();
    let ctx = SchedulerCtx::new(&cluster, &model);
    let mut rng = StdRng::seed_from_u64(3);
    let batch = sample_batch(&github(), &mut rng, 1 << 18);
    let plan = Zeppelin::new().plan(&batch, &ctx).unwrap();

    c.bench_function("zeppelin_plan_64gpu_256k", |b| {
        b.iter(|| {
            Zeppelin::new()
                .plan(std::hint::black_box(&batch), &ctx)
                .unwrap()
        })
    });
    c.bench_function("analyze_plan_64gpu_256k", |b| {
        b.iter(|| analyze(std::hint::black_box(&plan), &model, &cluster))
    });
    let json = plan_to_json(&plan);
    c.bench_function("plan_to_json", |b| {
        b.iter(|| plan_to_json(std::hint::black_box(&plan)))
    });
    c.bench_function("plan_from_json", |b| {
        b.iter(|| plan_from_json(std::hint::black_box(&json)).unwrap())
    });
}

criterion_group!(benches, bench_planning);
criterion_main!(benches);

//! Criterion benchmarks of the hierarchical sequence partitioner
//! (Algorithms 1 + 2). The paper reports partitioning at 3–12 ms per
//! iteration on real batches (Table 3); these benches verify the
//! polynomial-cost claim across batch sizes and cluster scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use zeppelin_core::partitioner::{partition, PartitionConfig};
use zeppelin_data::batch::sample_batch;
use zeppelin_data::datasets::{arxiv, github};

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    for (nodes, tokens) in [(2usize, 1u64 << 16), (8, 1 << 18), (16, 1 << 20)] {
        let mut rng = StdRng::seed_from_u64(7);
        let batch = sample_batch(&arxiv(), &mut rng, tokens);
        let cfg = PartitionConfig::new(nodes, 8, 16_384).with_zone_hints(2_048, 16_384);
        group.bench_with_input(
            BenchmarkId::new("arxiv", format!("{nodes}n_{}k", tokens >> 10)),
            &batch.seqs,
            |b, seqs| b.iter(|| partition(std::hint::black_box(seqs), &cfg).unwrap()),
        );
    }
    // Long-tailed batch: many inter-node splits.
    let mut rng = StdRng::seed_from_u64(8);
    let batch = sample_batch(&github(), &mut rng, 1 << 19);
    let cfg = PartitionConfig::new(8, 8, 16_384).with_zone_hints(2_048, 16_384);
    group.bench_function("github_8n_512k", |b| {
        b.iter(|| partition(std::hint::black_box(&batch.seqs), &cfg).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);

//! Criterion benchmarks of full step simulation: plan + lower + simulate
//! for Zeppelin and TE CP on a 2-node Cluster A. This is the unit of work
//! behind every cell of the Fig. 8–11 exhibits.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use zeppelin_baselines::te_cp::TeCp;
use zeppelin_core::scheduler::SchedulerCtx;
use zeppelin_core::zeppelin::Zeppelin;
use zeppelin_data::batch::sample_batch;
use zeppelin_data::datasets::arxiv;
use zeppelin_exec::step::{simulate_step, StepConfig};
use zeppelin_model::config::llama_3b;
use zeppelin_sim::topology::cluster_a;

fn bench_step(c: &mut Criterion) {
    let cluster = cluster_a(2);
    let model = llama_3b();
    let ctx = SchedulerCtx::new(&cluster, &model);
    let cfg = StepConfig::default();
    let mut rng = StdRng::seed_from_u64(5);
    let batch = sample_batch(&arxiv(), &mut rng, 65_536);

    c.bench_function("simulate_step_zeppelin_16gpu_64k", |b| {
        let z = Zeppelin::new();
        b.iter(|| simulate_step(&z, std::hint::black_box(&batch), &ctx, &cfg).unwrap())
    });
    c.bench_function("simulate_step_te_cp_16gpu_64k", |b| {
        let te = TeCp::new();
        b.iter(|| simulate_step(&te, std::hint::black_box(&batch), &ctx, &cfg).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_step
}
criterion_main!(benches);

//! LoongTrain-style double-ring context parallelism baseline (§6 related
//! work).
//!
//! Like TE CP, every sequence spans all ranks with zigzag chunking — but KV
//! rotates through a two-level ring: an inner ring within each node and an
//! outer ring across nodes. Cross-node traffic happens once per node visit
//! (by all ranks in parallel, engaging every NIC) instead of on every
//! round's boundary hop, which is the double-ring algorithm's whole point.

use zeppelin_core::plan::{AttnMode, IterationPlan, PlanError, PlanOptions, SeqPlacement, Zone};
use zeppelin_core::scheduler::{Scheduler, SchedulerCtx};
use zeppelin_data::batch::Batch;

/// The double-ring CP baseline scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct DoubleRingCp;

impl DoubleRingCp {
    /// Creates the baseline.
    pub fn new() -> DoubleRingCp {
        DoubleRingCp
    }
}

impl Scheduler for DoubleRingCp {
    fn name(&self) -> &'static str {
        "DoubleRing CP"
    }

    fn plan(&self, batch: &Batch, ctx: &SchedulerCtx) -> Result<IterationPlan, PlanError> {
        let r = ctx.cluster.total_gpus();
        let per_rank = batch.total_tokens() / r as u64 + 1;
        if per_rank > ctx.capacity {
            return Err(PlanError::OverCapacity {
                tokens: batch.total_tokens(),
                capacity: ctx.capacity * r as u64,
            });
        }
        let ranks: Vec<usize> = (0..r).collect();
        let zone = if ctx.cluster.nodes > 1 {
            Zone::InterNode
        } else {
            Zone::IntraNode
        };
        let placements = batch
            .seqs
            .iter()
            .enumerate()
            .map(|(seq_index, &len)| SeqPlacement {
                seq_index,
                len,
                zone,
                ranks: ranks.clone(),
                mode: AttnMode::DoubleRing,
                micro_batch: 0,
                weights: Vec::new(),
            })
            .collect();
        let plan = IterationPlan {
            scheduler: self.name().into(),
            placements,
            options: PlanOptions::default(),
            micro_batches: 1,
            redundant_attn_frac: 0.0,
        };
        plan.validate(r)?;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeppelin_model::config::llama_3b;
    use zeppelin_sim::topology::cluster_a;

    fn ctx() -> SchedulerCtx {
        SchedulerCtx::new(&cluster_a(2), &llama_3b()).with_capacity(8_192)
    }

    #[test]
    fn plans_global_double_ring() {
        let batch = Batch::new(vec![40_000, 1_000]);
        let plan = DoubleRingCp::new().plan(&batch, &ctx()).unwrap();
        for p in &plan.placements {
            assert_eq!(p.mode, AttnMode::DoubleRing);
            assert_eq!(p.ranks.len(), 16);
        }
    }

    #[test]
    fn capacity_guard() {
        let err = DoubleRingCp::new()
            .plan(&Batch::new(vec![1_000_000]), &ctx())
            .unwrap_err();
        assert!(matches!(err, PlanError::OverCapacity { .. }));
    }
}

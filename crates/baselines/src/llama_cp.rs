//! LLaMA-style context parallelism baseline.
//!
//! LLaMA 3 training (and WLB-LLM) all-gathers KV activations across the CP
//! group before running local attention on each rank's (zigzag-balanced)
//! query shard. The collective is well-optimized but sits on the critical
//! path and peaks memory; communication volume grows linearly with total
//! sequence length per rank (§2.2).

use zeppelin_core::plan::{AttnMode, IterationPlan, PlanError, PlanOptions, SeqPlacement, Zone};
use zeppelin_core::scheduler::{Scheduler, SchedulerCtx};
use zeppelin_data::batch::Batch;
use zeppelin_model::memory::{activation_bytes_per_token, kv_bytes};

/// The LLaMA CP (all-gather) baseline scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct LlamaCp;

impl LlamaCp {
    /// Creates the baseline.
    pub fn new() -> LlamaCp {
        LlamaCp
    }
}

impl Scheduler for LlamaCp {
    fn name(&self) -> &'static str {
        "LLaMA CP"
    }

    fn plan(&self, batch: &Batch, ctx: &SchedulerCtx) -> Result<IterationPlan, PlanError> {
        let ranks: Vec<usize> = (0..ctx.cluster.total_gpus()).collect();
        let zone = if ctx.cluster.nodes > 1 {
            Zone::InterNode
        } else {
            Zone::IntraNode
        };
        // All-gather keeps one layer's *full-batch* KV resident on every
        // rank at the attention peak; charge the sharded activations plus
        // that transient, converted to token-equivalents.
        let total = batch.total_tokens();
        let gather_bytes = kv_bytes(&ctx.model, total);
        let gather_tokens = (gather_bytes / activation_bytes_per_token(&ctx.model)).ceil() as u64;
        let per_rank_peak = total / ranks.len() as u64 + gather_tokens;
        if per_rank_peak > ctx.capacity {
            return Err(PlanError::OverCapacity {
                tokens: total,
                capacity: ctx.capacity * ranks.len() as u64,
            });
        }
        let placements = batch
            .seqs
            .iter()
            .enumerate()
            .map(|(seq_index, &len)| SeqPlacement {
                seq_index,
                len,
                zone,
                ranks: ranks.clone(),
                mode: AttnMode::AllGather,
                micro_batch: 0,
                weights: Vec::new(),
            })
            .collect();
        let plan = IterationPlan {
            scheduler: self.name().into(),
            placements,
            options: PlanOptions::default(),
            micro_batches: 1,
            redundant_attn_frac: 0.0,
        };
        plan.validate(ctx.cluster.total_gpus())?;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeppelin_model::config::llama_3b;
    use zeppelin_sim::topology::cluster_a;

    fn ctx() -> SchedulerCtx {
        SchedulerCtx::new(&cluster_a(2), &llama_3b()).with_capacity(65_536)
    }

    #[test]
    fn uses_allgather_mode_on_global_group() {
        let batch = Batch::new(vec![30_000, 500]);
        let plan = LlamaCp::new().plan(&batch, &ctx()).unwrap();
        for p in &plan.placements {
            assert_eq!(p.mode, AttnMode::AllGather);
            assert_eq!(p.ranks.len(), 16);
        }
        assert!(!plan.options.routing && !plan.options.remapping);
    }

    #[test]
    fn memory_guard_reflects_gather_peak() {
        // A batch that fits TE CP's sharded layout can bust the gather peak.
        let tight = SchedulerCtx::new(&cluster_a(2), &llama_3b()).with_capacity(4096);
        let batch = Batch::new(vec![16_000; 4]); // 64k total, 16k gather peak.
        let err = LlamaCp::new().plan(&batch, &tight).unwrap_err();
        assert!(matches!(err, PlanError::OverCapacity { .. }));
    }
}

//! DeepSpeed-Ulysses sequence parallelism baseline (§6 related work).
//!
//! Every sequence is sharded across an Ulysses group; all-to-all collectives
//! switch between sequence- and head-parallel layouts around attention.
//! The group size must divide the attention head count, so on clusters with
//! more GPUs than heads the ranks split into several independent Ulysses
//! groups and sequences are assigned to groups balancing tokens.

use zeppelin_core::plan::{AttnMode, IterationPlan, PlanError, PlanOptions, SeqPlacement, Zone};
use zeppelin_core::scheduler::{Scheduler, SchedulerCtx};
use zeppelin_data::batch::Batch;

/// The Ulysses SP baseline scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ulysses;

impl Ulysses {
    /// Creates the baseline.
    pub fn new() -> Ulysses {
        Ulysses
    }

    /// Largest feasible group size: divides both the rank count (so groups
    /// tile the cluster) and the head count (DeepSpeed's constraint).
    pub fn group_size(ranks: usize, heads: usize) -> usize {
        (1..=ranks.min(heads))
            .rev()
            .find(|&gs| ranks.is_multiple_of(gs) && heads.is_multiple_of(gs))
            .unwrap_or(1)
    }
}

impl Scheduler for Ulysses {
    fn name(&self) -> &'static str {
        "Ulysses SP"
    }

    fn plan(&self, batch: &Batch, ctx: &SchedulerCtx) -> Result<IterationPlan, PlanError> {
        let r = ctx.cluster.total_gpus();
        let gs = Self::group_size(r, ctx.model.num_heads);
        let n_groups = r / gs;
        // Token-balanced assignment of sequences to groups.
        let mut order: Vec<(usize, u64)> = batch.seqs.iter().copied().enumerate().collect();
        order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut group_tokens = vec![0u64; n_groups];
        let mut placements = Vec::new();
        for (seq_index, len) in order {
            let grp = (0..n_groups)
                .min_by_key(|&i| (group_tokens[i], i))
                .expect("at least one group");
            group_tokens[grp] += len;
            let ranks: Vec<usize> = (grp * gs..(grp + 1) * gs).collect();
            let spans_nodes = ctx.cluster.node_of(ranks[0]) != ctx.cluster.node_of(ranks[gs - 1]);
            placements.push(SeqPlacement {
                seq_index,
                len,
                zone: if gs == 1 {
                    Zone::Local
                } else if spans_nodes {
                    Zone::InterNode
                } else {
                    Zone::IntraNode
                },
                ranks,
                mode: if gs == 1 {
                    AttnMode::Ring
                } else {
                    AttnMode::Ulysses
                },
                micro_batch: 0,
                weights: Vec::new(),
            });
        }
        // Capacity: each rank holds its sequence shards; the head-parallel
        // phase holds full sequences at hidden/gs width — the same volume.
        let max_group = group_tokens.iter().max().copied().unwrap_or(0);
        if max_group.div_ceil(gs as u64) > ctx.capacity {
            return Err(PlanError::OverCapacity {
                tokens: batch.total_tokens(),
                capacity: ctx.capacity * r as u64,
            });
        }
        placements.sort_by_key(|p| p.seq_index);
        let plan = IterationPlan {
            scheduler: self.name().into(),
            placements,
            options: PlanOptions::default(),
            micro_batches: 1,
            redundant_attn_frac: 0.0,
        };
        plan.validate(r)?;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeppelin_model::config::{llama_13b, llama_3b};
    use zeppelin_sim::topology::cluster_a;

    fn ctx() -> SchedulerCtx {
        SchedulerCtx::new(&cluster_a(2), &llama_3b()).with_capacity(16_384)
    }

    #[test]
    fn group_size_respects_heads_and_ranks() {
        assert_eq!(Ulysses::group_size(16, 32), 16);
        assert_eq!(Ulysses::group_size(64, 32), 32);
        assert_eq!(Ulysses::group_size(16, 40), 8); // 13B: 40 heads.
        assert_eq!(Ulysses::group_size(3, 32), 1);
    }

    #[test]
    fn single_group_covers_all_ranks_when_divisible() {
        let batch = Batch::new(vec![20_000, 1_000]);
        let plan = Ulysses::new().plan(&batch, &ctx()).unwrap();
        for p in &plan.placements {
            assert_eq!(p.ranks.len(), 16);
            assert_eq!(p.mode, AttnMode::Ulysses);
        }
    }

    #[test]
    fn head_constrained_cluster_splits_into_groups() {
        // 13B has 40 heads; 16 ranks -> groups of 8.
        let ctx13 = SchedulerCtx::new(&cluster_a(2), &llama_13b()).with_capacity(16_384);
        let batch = Batch::new(vec![9_000, 8_000, 3_000, 2_000]);
        let plan = Ulysses::new().plan(&batch, &ctx13).unwrap();
        for p in &plan.placements {
            assert_eq!(p.ranks.len(), 8);
        }
        // Token balance across the two groups.
        let g0: u64 = plan
            .placements
            .iter()
            .filter(|p| p.ranks[0] == 0)
            .map(|p| p.len)
            .sum();
        let g1: u64 = plan
            .placements
            .iter()
            .filter(|p| p.ranks[0] == 8)
            .map(|p| p.len)
            .sum();
        assert!(g0.abs_diff(g1) <= 9_000, "groups {g0} vs {g1}");
    }

    #[test]
    fn capacity_guard() {
        let err = Ulysses::new()
            .plan(&Batch::new(vec![500_000]), &ctx().with_capacity(1024))
            .unwrap_err();
        assert!(matches!(err, PlanError::OverCapacity { .. }));
    }
}

//! # zeppelin-baselines
//!
//! The state-of-the-art methods the paper compares against, implemented on
//! the same plan IR and executed by the same simulator as Zeppelin:
//!
//! - [`te_cp`]: Transformer Engine context parallelism (global zigzag ring),
//!   optionally with Zeppelin's routing layer grafted on for the Fig. 11
//!   ablation;
//! - [`llama_cp`]: LLaMA 3-style all-gather context parallelism;
//! - [`hybrid_dp`]: FLOP-balanced hybrid DP+CP with micro-batching
//!   (ByteScale-style);
//! - [`packing`]: input-balanced packing with redundant cross-sequence
//!   attention (Qwen/DeepSeek-style), used by the Fig. 3a analysis;
//! - [`ulysses`]: DeepSpeed-Ulysses all-to-all sequence parallelism
//!   (related work, §6);
//! - [`double_ring`]: LoongTrain-style two-level ring attention (related
//!   work, §6).
//!
//! [`scheduler_by_name`] also resolves the heterogeneity-aware Zeppelin
//! variants ([`zeppelin_core::het`]) so every frontend shares one
//! scheduler vocabulary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod double_ring;
pub mod flat;
pub mod hybrid_dp;
pub mod llama_cp;
pub mod packing;
pub mod te_cp;
pub mod ulysses;

pub use double_ring::DoubleRingCp;
pub use flat::FlatQuadratic;
pub use hybrid_dp::HybridDp;
pub use llama_cp::LlamaCp;
pub use packing::{pack_into_bins, pack_into_bins_tagged, redundant_fraction, Packing};
pub use te_cp::TeCp;
pub use ulysses::Ulysses;

use zeppelin_core::het::{StragglerRemap, ZeppelinHet};
use zeppelin_core::scheduler::Scheduler;
use zeppelin_core::zeppelin::Zeppelin;

/// Scheduler names accepted by [`scheduler_by_name`] (canonical spellings).
pub const SCHEDULER_NAMES: [&str; 9] = [
    "zeppelin",
    "zeppelin-het",
    "straggler-remap",
    "te",
    "llama",
    "hybrid",
    "packing",
    "ulysses",
    "double-ring",
];

/// Resolves a scheduler (Zeppelin or a baseline) by its CLI/protocol name.
/// This is the one vocabulary shared by the CLI, the serving registry, and
/// the cluster simulation.
///
/// # Errors
///
/// Returns the offending name for unknown schedulers.
pub fn scheduler_by_name(name: &str) -> Result<Box<dyn Scheduler>, String> {
    match name.to_ascii_lowercase().as_str() {
        "zeppelin" => Ok(Box::new(Zeppelin::new())),
        "zeppelin-het" | "zeppelinhet" | "het" => Ok(Box::new(ZeppelinHet::new())),
        "straggler-remap" | "stragglerremap" => Ok(Box::new(StragglerRemap::new())),
        "te" | "te-cp" => Ok(Box::new(TeCp::new())),
        "llama" | "llama-cp" => Ok(Box::new(LlamaCp::new())),
        "hybrid" | "hybrid-dp" => Ok(Box::new(HybridDp::new())),
        "packing" => Ok(Box::new(Packing::new())),
        "ulysses" => Ok(Box::new(Ulysses::new())),
        "double-ring" | "doublering" => Ok(Box::new(DoubleRingCp::new())),
        other => Err(other.to_string()),
    }
}

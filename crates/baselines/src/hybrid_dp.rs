//! FLOP-balanced hybrid data parallelism baseline (ByteScale-style).
//!
//! Short sequences run as plain DP (whole sequence on one rank); long
//! sequences that exceed a rank's memory run ring CP over just enough
//! ranks. Ranks are loaded to equalize *FLOPs*; when a rank's tokens exceed
//! memory, its sequences split into additional micro-batches (§2.2,
//! Fig. 2c). The paper's critique — lower per-micro-batch compute
//! intensity and uneven NIC utilization — emerges in simulation from the
//! smaller kernels and the CP-only ring traffic.

use zeppelin_core::plan::{AttnMode, IterationPlan, PlanError, PlanOptions, SeqPlacement, Zone};
use zeppelin_core::scheduler::{Scheduler, SchedulerCtx};
use zeppelin_data::batch::Batch;
use zeppelin_model::flops::{attention_seq_flops, linear_layer_flops};

/// The Hybrid DP baseline scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct HybridDp;

impl HybridDp {
    /// Creates the baseline.
    pub fn new() -> HybridDp {
        HybridDp
    }
}

impl Scheduler for HybridDp {
    fn name(&self) -> &'static str {
        "Hybrid DP"
    }

    fn plan(&self, batch: &Batch, ctx: &SchedulerCtx) -> Result<IterationPlan, PlanError> {
        let r = ctx.cluster.total_gpus();
        let cap = ctx.capacity;
        // Micro-batching absorbs aggregate pressure, but a single sequence
        // longer than the whole cluster's resident capacity cannot run.
        if let Some(&too_long) = batch.seqs.iter().find(|&&s| s > cap * r as u64) {
            return Err(PlanError::OverCapacity {
                tokens: too_long,
                capacity: cap * r as u64,
            });
        }

        // Sort sequences descending, tagged with batch indices.
        let mut order: Vec<(usize, u64)> = batch.seqs.iter().copied().enumerate().collect();
        order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        // FLOP balance target: a sequence whose cost exceeds the per-rank
        // average cannot be balanced by placement alone and goes to a CP
        // group sized to bring its per-rank share back to the average
        // (ByteScale's flop-balanced assignment).
        let seq_cost =
            |len: u64| attention_seq_flops(&ctx.model, len) + linear_layer_flops(&ctx.model, len);
        let total_flops: f64 = batch.seqs.iter().map(|&l| seq_cost(l)).sum();
        let avg_flops = total_flops / r as f64;

        // Per-rank FLOP load (the balance metric) and per-(rank, mb) tokens.
        let mut flops = vec![0.0f64; r];
        let mut mb_tokens: Vec<Vec<u64>> = vec![vec![0]; r];
        let mut placements = Vec::new();
        let mut cursor = 0usize;

        for (seq_index, len) in order {
            let seq_flops = seq_cost(len);
            if len > cap || seq_flops > avg_flops {
                // CP over just enough consecutive ranks to restore balance
                // (and at least enough to fit in memory).
                let k_flops = (seq_flops / avg_flops).ceil() as usize;
                let k_mem = len.div_ceil(cap) as usize;
                let k = k_flops.max(k_mem).clamp(1, r);
                let ranks: Vec<usize> = (0..k).map(|i| (cursor + i) % r).collect();
                cursor = (cursor + k) % r;
                for &rank in &ranks {
                    flops[rank] += seq_flops / k as f64;
                    mb_tokens[rank][0] += len / k as u64;
                }
                let mut ranks = ranks;
                ranks.sort_unstable();
                let spans_nodes = ctx.cluster.node_of(ranks[0])
                    != ctx.cluster.node_of(*ranks.last().expect("k >= 1"));
                placements.push(SeqPlacement {
                    seq_index,
                    len,
                    zone: if spans_nodes {
                        Zone::InterNode
                    } else {
                        Zone::IntraNode
                    },
                    ranks,
                    mode: AttnMode::Ring,
                    micro_batch: 0,
                    weights: Vec::new(),
                });
            } else {
                // DP: least-FLOP rank; first micro-batch with room.
                let rank = (0..r)
                    .min_by(|&a, &b| {
                        flops[a]
                            .partial_cmp(&flops[b])
                            .expect("finite")
                            .then(a.cmp(&b))
                    })
                    .expect("r > 0");
                flops[rank] += seq_flops;
                let mb = match mb_tokens[rank].iter().position(|&t| t + len <= cap) {
                    Some(mb) => mb,
                    None => {
                        mb_tokens[rank].push(0);
                        mb_tokens[rank].len() - 1
                    }
                };
                mb_tokens[rank][mb] += len;
                placements.push(SeqPlacement {
                    seq_index,
                    len,
                    zone: Zone::Local,
                    ranks: vec![rank],
                    mode: AttnMode::Ring,
                    micro_batch: mb,
                    weights: Vec::new(),
                });
            }
        }

        let micro_batches = placements
            .iter()
            .map(|p| p.micro_batch + 1)
            .max()
            .unwrap_or(1);
        placements.sort_by_key(|p| p.seq_index);
        let plan = IterationPlan {
            scheduler: self.name().into(),
            placements,
            options: PlanOptions::default(),
            micro_batches,
            redundant_attn_frac: 0.0,
        };
        plan.validate(r)?;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeppelin_data::stats::load_imbalance;
    use zeppelin_model::config::llama_3b;
    use zeppelin_sim::topology::cluster_a;

    fn ctx() -> SchedulerCtx {
        SchedulerCtx::new(&cluster_a(2), &llama_3b()).with_capacity(4096)
    }

    #[test]
    fn short_sequences_stay_local_long_ones_use_cp() {
        let batch = Batch::new(vec![20_000, 900, 900, 900]);
        let plan = HybridDp::new().plan(&batch, &ctx()).unwrap();
        let long = plan.placements.iter().find(|p| p.len == 20_000).unwrap();
        assert!(long.ranks.len() >= 5, "needs >= ceil(20000/4096) ranks");
        assert_ne!(long.zone, Zone::Local);
        for p in plan.placements.iter().filter(|p| p.len == 900) {
            assert_eq!(p.zone, Zone::Local);
            assert_eq!(p.ranks.len(), 1);
        }
    }

    #[test]
    fn flops_are_balanced_for_many_short_sequences() {
        let batch = Batch::new(vec![1000; 64]);
        let plan = HybridDp::new().plan(&batch, &ctx()).unwrap();
        let mut flops = vec![0.0f64; 16];
        for p in &plan.placements {
            flops[p.ranks[0]] +=
                attention_seq_flops(&llama_3b(), p.len) + linear_layer_flops(&llama_3b(), p.len);
        }
        assert!(load_imbalance(&flops) < 1.05, "{flops:?}");
    }

    #[test]
    fn memory_pressure_creates_micro_batches() {
        // 64 × 1k sequences on 16 ranks of 2k capacity: 4k tokens/rank
        // needs at least 2 micro-batches.
        let tight = SchedulerCtx::new(&cluster_a(2), &llama_3b()).with_capacity(2048);
        let batch = Batch::new(vec![1000; 64]);
        let plan = HybridDp::new().plan(&batch, &tight).unwrap();
        assert!(plan.micro_batches >= 2, "got {}", plan.micro_batches);
        // Every (rank, micro-batch) obeys capacity.
        for mb in 0..plan.micro_batches {
            for &t in &plan.tokens_per_rank(16, mb) {
                assert!(t <= 2048);
            }
        }
    }

    #[test]
    fn capacity_guard_rejects_unsplittable_sequences() {
        // One sequence longer than the entire cluster's resident capacity.
        let err = HybridDp::new()
            .plan(&Batch::new(vec![16 * 256 + 1]), &ctx().with_capacity(256))
            .unwrap_err();
        assert!(matches!(err, PlanError::OverCapacity { .. }));
    }

    #[test]
    fn all_sequences_preserved() {
        let batch = Batch::new(vec![9000, 100, 5000, 1, 12000]);
        let plan = HybridDp::new().plan(&batch, &ctx()).unwrap();
        let mut lens: Vec<u64> = plan.placements.iter().map(|p| p.len).collect();
        lens.sort_unstable();
        let mut expected = batch.seqs.clone();
        expected.sort_unstable();
        assert_eq!(lens, expected);
    }
}

//! Flat quadratic-LPT partitioning (hierarchy ablation, FlexSP-flavoured).
//!
//! Like Zeppelin, each sequence gets its own ring sized to its quadratic
//! cost — but placement ignores the bandwidth hierarchy entirely: fragments
//! go to the globally least-loaded ranks, freely straddling node
//! boundaries. Comparing this against Zeppelin isolates the value of the
//! two-level (node-then-device) structure of Algorithms 1–2: the flat
//! variant balances FLOPs just as well but scatters short rings across
//! NICs.

use zeppelin_core::plan::{AttnMode, IterationPlan, PlanError, PlanOptions, SeqPlacement, Zone};
use zeppelin_core::scheduler::{Scheduler, SchedulerCtx};
use zeppelin_core::zones::zone_thresholds;
use zeppelin_data::batch::Batch;

/// The flat quadratic-LPT scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlatQuadratic;

impl FlatQuadratic {
    /// Creates the ablation scheduler.
    pub fn new() -> FlatQuadratic {
        FlatQuadratic
    }
}

impl Scheduler for FlatQuadratic {
    fn name(&self) -> &'static str {
        "Flat quadratic"
    }

    fn plan(&self, batch: &Batch, ctx: &SchedulerCtx) -> Result<IterationPlan, PlanError> {
        let r = ctx.cluster.total_gpus();
        let cap = ctx.capacity;
        if batch.total_tokens() > cap * r as u64 {
            return Err(PlanError::OverCapacity {
                tokens: batch.total_tokens(),
                capacity: cap * r as u64,
            });
        }
        // Same splitting *sizes* as Zeppelin's cost-model seeding would
        // suggest (sequences under the local threshold stay whole), but
        // topology-blind placement.
        let zones = zone_thresholds(&ctx.model, &ctx.cluster);
        let mut order: Vec<(usize, u64)> = batch.seqs.iter().copied().enumerate().collect();
        order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let split: Vec<&(usize, u64)> = order
            .iter()
            .filter(|(_, len)| *len >= zones.local_max)
            .collect();
        let c_total: f64 = split.iter().map(|(_, l)| (*l as f64).powi(2)).sum();
        let c_avg = (c_total / r as f64).max(1.0);

        let mut load = vec![0u64; r];
        let mut placements = Vec::new();
        for (seq_index, len) in &order {
            let quad = (*len as f64).powi(2);
            let k = if *len >= zones.local_max {
                let by_budget = (quad / c_avg).ceil() as usize;
                let by_capacity = len.div_ceil(cap) as usize;
                by_budget.max(by_capacity).clamp(1, r)
            } else {
                1
            };
            // Globally least-loaded ranks, no topology awareness.
            let mut ranks: Vec<usize> = (0..r).collect();
            ranks.sort_by_key(|&i| (load[i], i));
            ranks.truncate(k);
            ranks.sort_unstable();
            let share = *len / k as u64;
            for &rank in &ranks {
                load[rank] += share;
            }
            let nodes: std::collections::HashSet<usize> =
                ranks.iter().map(|&i| ctx.cluster.node_of(i)).collect();
            placements.push(SeqPlacement {
                seq_index: *seq_index,
                len: *len,
                zone: if ranks.len() == 1 {
                    Zone::Local
                } else if nodes.len() == 1 {
                    Zone::IntraNode
                } else {
                    Zone::InterNode
                },
                ranks,
                mode: AttnMode::Ring,
                micro_batch: 0,
                weights: Vec::new(),
            });
        }
        placements.sort_by_key(|p| p.seq_index);
        let plan = IterationPlan {
            scheduler: self.name().into(),
            placements,
            options: PlanOptions::default(),
            micro_batches: 1,
            redundant_attn_frac: 0.0,
        };
        plan.validate(r)?;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeppelin_model::config::llama_3b;
    use zeppelin_sim::topology::cluster_a;

    fn ctx() -> SchedulerCtx {
        SchedulerCtx::new(&cluster_a(2), &llama_3b()).with_capacity(16_384)
    }

    #[test]
    fn long_sequences_split_and_straddle_nodes() {
        let batch = Batch::new(vec![40_000, 20_000, 500, 400]);
        let plan = FlatQuadratic::new().plan(&batch, &ctx()).unwrap();
        let long = plan.placements.iter().find(|p| p.len == 40_000).unwrap();
        assert!(long.ranks.len() > 4);
        // Short sequences stay whole.
        for p in plan.placements.iter().filter(|p| p.len < 1_000) {
            assert_eq!(p.ranks.len(), 1);
        }
        assert_eq!(plan.total_tokens(), batch.total_tokens());
    }

    #[test]
    fn medium_rings_ignore_node_boundaries() {
        // Seven medium sequences over 16 ranks get 3-rank rings laid out
        // contiguously ([0,1,2], [3,4,5], [6,7,8], ...): the third ring
        // straddles the node boundary — the inefficiency Zeppelin's
        // hierarchy avoids.
        let batch = Batch::new(vec![9_000; 7]);
        let plan = FlatQuadratic::new().plan(&batch, &ctx()).unwrap();
        let straddling = plan
            .placements
            .iter()
            .filter(|p| p.zone == Zone::InterNode)
            .count();
        assert!(straddling > 0, "expected node-straddling rings");
    }

    #[test]
    fn capacity_guard() {
        let err = FlatQuadratic::new()
            .plan(&Batch::new(vec![600_000]), &ctx())
            .unwrap_err();
        assert!(matches!(err, PlanError::OverCapacity { .. }));
    }
}

//! Transformer Engine context parallelism baseline.
//!
//! TE CP splits *every* sequence evenly across all DP ranks and runs
//! balanced (zigzag) ring attention over one global ring (§2.2, Fig. 2b).
//! Computation and memory are perfectly balanced, but every sequence —
//! however short — pays ring communication proportional to its length over
//! the slowest link the ring crosses, which is the paper's headline
//! inefficiency for mixed-length batches.

use zeppelin_core::plan::{AttnMode, IterationPlan, PlanError, PlanOptions, SeqPlacement, Zone};
use zeppelin_core::scheduler::{Scheduler, SchedulerCtx};
use zeppelin_data::batch::Batch;

/// The TE CP baseline scheduler.
///
/// `routing` is off by default; the Fig. 11 ablation enables it to measure
/// the routing layer's contribution in isolation.
#[derive(Debug, Clone, Copy, Default)]
pub struct TeCp {
    /// Lower inter-node ring hops through the three-step routing layer.
    pub routing: bool,
}

impl TeCp {
    /// Plain TE CP.
    pub fn new() -> TeCp {
        TeCp::default()
    }

    /// TE CP with Zeppelin's routing layer grafted on (ablation variant).
    pub fn with_routing() -> TeCp {
        TeCp { routing: true }
    }
}

impl Scheduler for TeCp {
    fn name(&self) -> &'static str {
        if self.routing {
            "TE CP + Routing"
        } else {
            "TE CP"
        }
    }

    fn plan(&self, batch: &Batch, ctx: &SchedulerCtx) -> Result<IterationPlan, PlanError> {
        let ranks: Vec<usize> = (0..ctx.cluster.total_gpus()).collect();
        let zone = if ctx.cluster.nodes > 1 {
            Zone::InterNode
        } else {
            Zone::IntraNode
        };
        let per_rank = batch.total_tokens() / ranks.len() as u64 + 1;
        if per_rank > ctx.capacity {
            return Err(PlanError::OverCapacity {
                tokens: batch.total_tokens(),
                capacity: ctx.capacity * ranks.len() as u64,
            });
        }
        let placements = batch
            .seqs
            .iter()
            .enumerate()
            .map(|(seq_index, &len)| SeqPlacement {
                seq_index,
                len,
                zone,
                ranks: ranks.clone(),
                mode: AttnMode::Ring,
                micro_batch: 0,
                weights: Vec::new(),
            })
            .collect();
        let plan = IterationPlan {
            scheduler: self.name().into(),
            placements,
            options: PlanOptions {
                routing: self.routing,
                remapping: false,
                speed_aware_remap: false,
            },
            micro_batches: 1,
            redundant_attn_frac: 0.0,
        };
        plan.validate(ctx.cluster.total_gpus())?;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeppelin_model::config::llama_3b;
    use zeppelin_sim::topology::cluster_a;

    fn ctx() -> SchedulerCtx {
        SchedulerCtx::new(&cluster_a(2), &llama_3b()).with_capacity(8192)
    }

    #[test]
    fn every_sequence_spans_all_ranks() {
        let batch = Batch::new(vec![40_000, 200, 9_000]);
        let plan = TeCp::new().plan(&batch, &ctx()).unwrap();
        assert_eq!(plan.placements.len(), 3);
        for p in &plan.placements {
            assert_eq!(p.ranks.len(), 16);
            assert_eq!(p.zone, Zone::InterNode);
            assert_eq!(p.mode, AttnMode::Ring);
        }
        // Token balance is perfect by construction.
        let tokens = plan.tokens_per_rank(16, 0);
        let max = tokens.iter().max().unwrap();
        let min = tokens.iter().min().unwrap();
        assert!(max - min <= 3, "{tokens:?}");
    }

    #[test]
    fn routing_flag_flows_into_options() {
        let batch = Batch::new(vec![1000]);
        assert!(!TeCp::new().plan(&batch, &ctx()).unwrap().options.routing);
        assert!(
            TeCp::with_routing()
                .plan(&batch, &ctx())
                .unwrap()
                .options
                .routing
        );
        assert_eq!(TeCp::with_routing().name(), "TE CP + Routing");
    }

    #[test]
    fn single_node_ring_is_intranode() {
        let ctx = SchedulerCtx::new(&cluster_a(1), &llama_3b()).with_capacity(8192);
        let plan = TeCp::new().plan(&Batch::new(vec![5000]), &ctx).unwrap();
        assert_eq!(plan.placements[0].zone, Zone::IntraNode);
    }

    #[test]
    fn capacity_guard() {
        let err = TeCp::new()
            .plan(&Batch::new(vec![1_000_000]), &ctx())
            .unwrap_err();
        assert!(matches!(err, PlanError::OverCapacity { .. }));
    }
}

//! Input-balanced packing baseline (Qwen/DeepSeek-style).
//!
//! Sequences are packed (chunking long documents where needed) into equal
//! token windows, one window per rank per micro-batch; each window runs
//! *local* attention over the whole packed span. Linear modules are
//! perfectly balanced, but attention pays for cross-sequence pairs the
//! model never needed — the redundant-computation inefficiency of Fig. 3a,
//! reaching ~60% for short-sequence corpora.

use zeppelin_core::plan::{AttnMode, IterationPlan, PlanError, PlanOptions, SeqPlacement, Zone};
use zeppelin_core::scheduler::{Scheduler, SchedulerCtx};
use zeppelin_data::batch::Batch;
use zeppelin_model::flops::causal_pairs_full;

/// The packing baseline scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Packing;

impl Packing {
    /// Creates the baseline.
    pub fn new() -> Packing {
        Packing
    }
}

/// Packs sequences into `bins` windows of roughly equal token counts,
/// chunking sequences across windows when they exceed the remaining room
/// (how packed pre-training shards long documents).
///
/// Returns, per bin, the lengths of the (possibly chunked) segments in it.
/// Every bin's total is `⌈total/bins⌉` or less, and the grand total is
/// conserved.
///
/// # Panics
///
/// Panics if `bins == 0`.
pub fn pack_into_bins(seqs: &[u64], bins: usize) -> Vec<Vec<u64>> {
    pack_into_bins_tagged(seqs, bins)
        .into_iter()
        .map(|bin| bin.into_iter().map(|(_, len)| len).collect())
        .collect()
}

/// Like [`pack_into_bins`], but each segment carries the index of the input
/// sequence it was cut from — used by the Fig. 3a analysis to attribute
/// redundant attention cost back to sequence-length bins.
///
/// # Panics
///
/// Panics if `bins == 0`.
pub fn pack_into_bins_tagged(seqs: &[u64], bins: usize) -> Vec<Vec<(usize, u64)>> {
    assert!(bins > 0, "need at least one bin");
    let total: u64 = seqs.iter().sum();
    let cap = total.div_ceil(bins as u64).max(1);
    let mut order: Vec<(usize, u64)> = seqs.iter().copied().enumerate().collect();
    order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut out: Vec<Vec<(usize, u64)>> = vec![Vec::new(); bins];
    let mut loads = vec![0u64; bins];
    for (idx, mut len) in order {
        while len > 0 {
            // Emptiest bin takes as much as fits.
            let b = (0..bins).min_by_key(|&i| (loads[i], i)).expect("bins > 0");
            let room = cap.saturating_sub(loads[b]).max(1);
            let take = len.min(room);
            out[b].push((idx, take));
            loads[b] += take;
            len -= take;
        }
    }
    out
}

/// Fraction of a packed window's causal attention pairs that cross sequence
/// boundaries (wasted work under naive packing).
pub fn redundant_fraction(segments: &[u64]) -> f64 {
    let window: u64 = segments.iter().sum();
    if window == 0 {
        return 0.0;
    }
    let window_pairs = causal_pairs_full(window);
    let useful: u64 = segments.iter().map(|&s| causal_pairs_full(s)).sum();
    (window_pairs - useful) as f64 / window_pairs as f64
}

impl Scheduler for Packing {
    fn name(&self) -> &'static str {
        "Packing"
    }

    fn plan(&self, batch: &Batch, ctx: &SchedulerCtx) -> Result<IterationPlan, PlanError> {
        let r = ctx.cluster.total_gpus();
        let cap = ctx.capacity;
        let total = batch.total_tokens();
        // Window per rank per micro-batch; add micro-batches until windows
        // fit in memory (packing never runs out — windows just multiply).
        let per_rank = total.div_ceil(r as u64);
        let micro_batches = per_rank.div_ceil(cap).max(1) as usize;
        let bins = r * micro_batches;
        let packed = pack_into_bins(&batch.seqs, bins);

        let mut placements = Vec::new();
        let mut window_pairs = 0u64;
        let mut useful_pairs = 0u64;
        for (b, segments) in packed.iter().enumerate() {
            let window: u64 = segments.iter().sum();
            if window == 0 {
                continue;
            }
            window_pairs += causal_pairs_full(window);
            useful_pairs += segments.iter().map(|&s| causal_pairs_full(s)).sum::<u64>();
            placements.push(SeqPlacement {
                // Synthetic id: windows, not input sequences, are the units.
                seq_index: b,
                len: window,
                zone: Zone::Local,
                ranks: vec![b % r],
                mode: AttnMode::Ring,
                micro_batch: b / r,
                weights: Vec::new(),
            });
        }
        let redundant_attn_frac = if window_pairs > 0 {
            (window_pairs - useful_pairs) as f64 / window_pairs as f64
        } else {
            0.0
        };
        let plan = IterationPlan {
            scheduler: self.name().into(),
            placements,
            options: PlanOptions::default(),
            micro_batches,
            redundant_attn_frac,
        };
        plan.validate(r)?;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeppelin_model::config::llama_3b;
    use zeppelin_sim::topology::cluster_a;

    fn ctx() -> SchedulerCtx {
        SchedulerCtx::new(&cluster_a(2), &llama_3b()).with_capacity(8192)
    }

    #[test]
    fn bins_conserve_tokens_and_balance() {
        let seqs = vec![9000, 3000, 3000, 1000, 500, 500, 200, 100];
        let bins = pack_into_bins(&seqs, 4);
        let total: u64 = bins.iter().flatten().sum();
        assert_eq!(total, 17_300);
        let loads: Vec<u64> = bins.iter().map(|b| b.iter().sum()).collect();
        let max = loads.iter().max().unwrap();
        let min = loads.iter().min().unwrap();
        assert!(max - min <= 4325 / 2, "{loads:?}");
    }

    #[test]
    fn long_sequences_are_chunked_across_bins() {
        let bins = pack_into_bins(&[100_000], 4);
        assert!(bins.iter().all(|b| !b.is_empty()));
        let total: u64 = bins.iter().flatten().sum();
        assert_eq!(total, 100_000);
    }

    #[test]
    fn redundant_fraction_behaviour() {
        // A window of one sequence has no waste.
        assert_eq!(redundant_fraction(&[4096]), 0.0);
        // Many tiny sequences in one window: waste dominates.
        let many_short = vec![64u64; 64];
        assert!(redundant_fraction(&many_short) > 0.9);
        // Two halves: ~25% of pairs are cross-sequence... (window pairs
        // n(n+1)/2, useful 2·(n/2)(n/2+1)/2 ≈ half) -> ~50%.
        let frac = redundant_fraction(&[2048, 2048]);
        assert!((frac - 0.5).abs() < 0.05, "frac {frac}");
        assert_eq!(redundant_fraction(&[]), 0.0);
    }

    #[test]
    fn plan_is_local_only_and_balanced() {
        let batch = Batch::new(vec![9000, 3000, 3000, 1000, 500, 500, 200, 100, 64, 64]);
        let plan = Packing::new().plan(&batch, &ctx()).unwrap();
        assert!(plan.placements.iter().all(|p| p.zone == Zone::Local));
        assert!(plan.redundant_attn_frac > 0.0);
        let tokens = plan.tokens_per_rank(16, 0);
        assert_eq!(tokens.iter().sum::<u64>(), batch.total_tokens());
    }

    #[test]
    fn short_corpus_wastes_more_than_long_corpus() {
        let short = Batch::new(vec![256; 64]);
        let long = Batch::new(vec![8192, 8192]);
        let ps = Packing::new().plan(&short, &ctx()).unwrap();
        let pl = Packing::new().plan(&long, &ctx()).unwrap();
        assert!(
            ps.redundant_attn_frac > pl.redundant_attn_frac,
            "short {} vs long {}",
            ps.redundant_attn_frac,
            pl.redundant_attn_frac
        );
    }

    #[test]
    fn memory_pressure_adds_micro_batches() {
        let tight = SchedulerCtx::new(&cluster_a(2), &llama_3b()).with_capacity(1024);
        let batch = Batch::new(vec![2000; 20]); // 40k over 16 ranks @ 1k.
        let plan = Packing::new().plan(&batch, &tight).unwrap();
        assert!(plan.micro_batches >= 3, "got {}", plan.micro_batches);
    }
}

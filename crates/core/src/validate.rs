//! Plan audit layer: typed validation of [`IterationPlan`]s at every trust
//! boundary.
//!
//! Plans cross trust boundaries — JSON files (`plan_io`), the serving
//! protocol, cache re-indexing, elastic replay — and the analyzer and
//! executor index into them without defensive checks. This module is the
//! single auditor in front of those consumers: it collects *every*
//! [`PlanViolation`] instead of stopping at the first, so a report names
//! everything wrong with a hostile document at once.
//!
//! Three audit depths, each a superset of the previous:
//!
//! 1. [`structural_violations`] — cluster-free invariants (used by
//!    `plan_from_json` to reject bogus documents at parse time);
//! 2. [`cluster_violations`] — adds rank-range and zigzag ring-chunk
//!    audits for a cluster of a given size (used by `try_analyze`);
//! 3. [`validate`] / [`validate_with_batch`] — adds context-dependent
//!    checks: Ulysses head divisibility, per-rank memory capacity, routing
//!    chain consistency, remap move consistency, and (with a batch) token
//!    conservation against the source workload.
//!
//! Derived checks (capacity, routing, remapping) run only when the plan is
//! structurally sound, because they index by rank and micro-batch — the
//! auditor itself must never panic on hostile input.

use std::collections::BTreeSet;

use zeppelin_data::batch::Batch;
use zeppelin_sim::topology::Rank;

use crate::plan::{AttnMode, IterationPlan, Zone};
use crate::remap::{plan_remap, plan_remap_weighted};
use crate::routing::route_internode;
use crate::scheduler::SchedulerCtx;

/// Tokens of slack allowed over the context capacity before flagging
/// [`PlanViolation::OverCapacity`]. Schedulers pack to exactly the
/// capacity and zigzag chunking rounds each placement's resident tokens up
/// by at most 2, so the audit grants a fixed allowance plus 2 tokens per
/// placement in the micro-batch (see [`validate`]).
pub const CAPACITY_SLACK_TOKENS: u64 = 64;

/// Byte volume used to probe routed-transfer consistency; the audit checks
/// chain shape and conservation, which are volume-independent.
const ROUTING_PROBE_BYTES: f64 = 1_048_576.0;

/// One violated plan invariant.
///
/// The enum is non-exhaustive: new audits may add variants without a
/// breaking change, so downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlanViolation {
    /// A placement's `ranks` list is empty.
    EmptyRankList {
        /// Sequence index of the offending placement.
        seq_index: usize,
    },
    /// A placement lists the same rank twice.
    DuplicateRank {
        /// Sequence index of the offending placement.
        seq_index: usize,
        /// The repeated rank.
        rank: Rank,
    },
    /// A placement references a rank outside the cluster.
    RankOutOfRange {
        /// Sequence index of the offending placement.
        seq_index: usize,
        /// The out-of-range rank.
        rank: Rank,
        /// Ranks in the cluster.
        total_ranks: usize,
    },
    /// A local-zone placement spans more than one rank.
    LocalZoneMultiRank {
        /// Sequence index of the offending placement.
        seq_index: usize,
        /// Ranks the placement spans.
        group: usize,
    },
    /// A placement's length is zero (lengths must be positive).
    ZeroLength {
        /// Sequence index of the offending placement.
        seq_index: usize,
    },
    /// A placement's micro-batch is at or past the declared count.
    MicroBatchOutOfRange {
        /// Sequence index of the offending placement.
        seq_index: usize,
        /// The out-of-range micro-batch id.
        micro_batch: usize,
        /// Micro-batches the plan declares.
        micro_batches: usize,
    },
    /// The plan declares zero micro-batches.
    ZeroMicroBatches,
    /// The declared micro-batch count exceeds the placement count (every
    /// real micro-batch holds at least one placement; a hostile count
    /// would blow up per-micro-batch tables downstream).
    MicroBatchesExceedPlacements {
        /// Micro-batches the plan declares.
        micro_batches: usize,
        /// Placements in the plan.
        placements: usize,
    },
    /// `redundant_attn_frac` is NaN or infinite.
    NonFiniteFraction {
        /// The offending value.
        value: f64,
    },
    /// `redundant_attn_frac` is outside `[0, 1]`.
    FractionOutOfRange {
        /// The offending value.
        value: f64,
    },
    /// Two placements are byte-for-byte identical (double-counted work).
    DuplicatePlacement {
        /// Sequence index of the duplicated placement.
        seq_index: usize,
        /// Micro-batch of the duplicated placement.
        micro_batch: usize,
    },
    /// A Ulysses placement's group size does not divide the head count.
    UlyssesIndivisibleHeads {
        /// Sequence index of the offending placement.
        seq_index: usize,
        /// Group size of the placement.
        group: usize,
        /// Attention heads in the model.
        heads: usize,
    },
    /// A rank's resident tokens exceed the per-GPU capacity (plus the
    /// documented zigzag rounding slack).
    OverCapacity {
        /// The overloaded rank.
        rank: Rank,
        /// Micro-batch in which the overload occurs.
        micro_batch: usize,
        /// Resident tokens on the rank.
        tokens: u64,
        /// Context capacity in tokens per rank.
        capacity: u64,
    },
    /// Zigzag chunking of a placement fails its conservation/balance
    /// contract (differential audit against `tokens_on_position`). For
    /// weighted placements the balance contract is speed-proportional: each
    /// position must hold its declared share within chunk rounding.
    RingChunkAsymmetry {
        /// Sequence index of the offending placement.
        seq_index: usize,
        /// Placement length in tokens.
        len: u64,
        /// Tokens actually covered by the ring positions.
        resident: u64,
    },
    /// A placement's declared speed-weight vector is malformed (wrong
    /// length for its rank group, or a zero weight).
    BadSpeedWeights {
        /// Sequence index of the offending placement.
        seq_index: usize,
        /// What exactly is wrong.
        detail: String,
    },
    /// A routed inter-node transfer between consecutive ring ranks is
    /// inconsistent (broken chain, endpoint outside the cluster, or bytes
    /// not conserved).
    RoutingChainBroken {
        /// Sending rank of the ring hop.
        src: Rank,
        /// Receiving rank of the ring hop.
        dst: Rank,
        /// What exactly is broken.
        detail: String,
    },
    /// The remap plan derived from a micro-batch's token layout is
    /// inconsistent (bad move endpoints, overdraw, or lost tokens).
    RemapInconsistent {
        /// The offending micro-batch.
        micro_batch: usize,
        /// What exactly is broken.
        detail: String,
    },
    /// The plan's total tokens differ from the source batch's.
    TokenMismatch {
        /// Tokens covered by the plan's placements.
        plan_tokens: u64,
        /// Tokens in the source batch.
        batch_tokens: u64,
    },
}

impl std::fmt::Display for PlanViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanViolation::EmptyRankList { seq_index } => {
                write!(f, "placement for sequence {seq_index} has an empty 'ranks' list")
            }
            PlanViolation::DuplicateRank { seq_index, rank } => {
                write!(f, "placement for sequence {seq_index} repeats rank {rank} in 'ranks'")
            }
            PlanViolation::RankOutOfRange {
                seq_index,
                rank,
                total_ranks,
            } => write!(
                f,
                "placement for sequence {seq_index} references rank {rank} but the cluster has {total_ranks} rank(s)"
            ),
            PlanViolation::LocalZoneMultiRank { seq_index, group } => write!(
                f,
                "local-zone placement for sequence {seq_index} spans {group} ranks (must be exactly 1)"
            ),
            PlanViolation::ZeroLength { seq_index } => write!(
                f,
                "placement for sequence {seq_index} has 'len' 0 (lengths must be positive)"
            ),
            PlanViolation::MicroBatchOutOfRange {
                seq_index,
                micro_batch,
                micro_batches,
            } => write!(
                f,
                "placement for sequence {seq_index} is in 'micro_batch' {micro_batch} but the plan declares only {micro_batches}"
            ),
            PlanViolation::ZeroMicroBatches => {
                write!(f, "'micro_batches' is 0 (plans execute at least one micro-batch)")
            }
            PlanViolation::MicroBatchesExceedPlacements {
                micro_batches,
                placements,
            } => write!(
                f,
                "'micro_batches' is {micro_batches} but the plan has only {placements} placement(s)"
            ),
            PlanViolation::NonFiniteFraction { value } => {
                write!(f, "'redundant_attn_frac' is {value}, not a finite number")
            }
            PlanViolation::FractionOutOfRange { value } => {
                write!(f, "'redundant_attn_frac' is {value}, outside [0, 1]")
            }
            PlanViolation::DuplicatePlacement {
                seq_index,
                micro_batch,
            } => write!(
                f,
                "duplicate placement for sequence {seq_index} in micro-batch {micro_batch}"
            ),
            PlanViolation::UlyssesIndivisibleHeads {
                seq_index,
                group,
                heads,
            } => write!(
                f,
                "Ulysses placement for sequence {seq_index} uses a group of {group}, which does not divide {heads} attention heads"
            ),
            PlanViolation::OverCapacity {
                rank,
                micro_batch,
                tokens,
                capacity,
            } => write!(
                f,
                "rank {rank} holds {tokens} tokens in micro-batch {micro_batch}, exceeding the {capacity}-token capacity"
            ),
            PlanViolation::RingChunkAsymmetry {
                seq_index,
                len,
                resident,
            } => write!(
                f,
                "zigzag chunking of sequence {seq_index} is asymmetric: {resident} resident tokens for 'len' {len}"
            ),
            PlanViolation::BadSpeedWeights { seq_index, detail } => write!(
                f,
                "speed weights of sequence {seq_index} are malformed: {detail}"
            ),
            PlanViolation::RoutingChainBroken { src, dst, detail } => {
                write!(f, "routed transfer {src}->{dst} is inconsistent: {detail}")
            }
            PlanViolation::RemapInconsistent {
                micro_batch,
                detail,
            } => write!(
                f,
                "remap plan for micro-batch {micro_batch} is inconsistent: {detail}"
            ),
            PlanViolation::TokenMismatch {
                plan_tokens,
                batch_tokens,
            } => write!(
                f,
                "plan places {plan_tokens} tokens but the batch has {batch_tokens}"
            ),
        }
    }
}

/// Joins violations into a single-line report (for error messages).
pub fn report(violations: &[PlanViolation]) -> String {
    violations
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("; ")
}

/// Cluster-free structural audit: every invariant checkable from the plan
/// document alone. This is what [`crate::plan_io::plan_from_json`] runs to
/// reject bogus JSON at parse time.
pub fn structural_violations(plan: &IterationPlan) -> Vec<PlanViolation> {
    let mut out = Vec::new();
    if plan.micro_batches == 0 {
        out.push(PlanViolation::ZeroMicroBatches);
    }
    if plan.micro_batches > plan.placements.len().max(1) {
        out.push(PlanViolation::MicroBatchesExceedPlacements {
            micro_batches: plan.micro_batches,
            placements: plan.placements.len(),
        });
    }
    let frac = plan.redundant_attn_frac;
    if !frac.is_finite() {
        out.push(PlanViolation::NonFiniteFraction { value: frac });
    } else if !(0.0..=1.0).contains(&frac) {
        out.push(PlanViolation::FractionOutOfRange { value: frac });
    }
    let mut seen = BTreeSet::new();
    for p in &plan.placements {
        if p.ranks.is_empty() {
            out.push(PlanViolation::EmptyRankList {
                seq_index: p.seq_index,
            });
        }
        if p.len == 0 {
            out.push(PlanViolation::ZeroLength {
                seq_index: p.seq_index,
            });
        }
        let mut group = BTreeSet::new();
        for &r in &p.ranks {
            if !group.insert(r) {
                out.push(PlanViolation::DuplicateRank {
                    seq_index: p.seq_index,
                    rank: r,
                });
                break;
            }
        }
        if p.zone == Zone::Local && p.ranks.len() != 1 {
            out.push(PlanViolation::LocalZoneMultiRank {
                seq_index: p.seq_index,
                group: p.ranks.len(),
            });
        }
        if plan.micro_batches > 0 && p.micro_batch >= plan.micro_batches {
            out.push(PlanViolation::MicroBatchOutOfRange {
                seq_index: p.seq_index,
                micro_batch: p.micro_batch,
                micro_batches: plan.micro_batches,
            });
        }
        if !p.weights.is_empty() {
            if p.weights.len() != p.ranks.len() {
                out.push(PlanViolation::BadSpeedWeights {
                    seq_index: p.seq_index,
                    detail: format!("{} weights for {} ranks", p.weights.len(), p.ranks.len()),
                });
            } else if p.weights.contains(&0) {
                out.push(PlanViolation::BadSpeedWeights {
                    seq_index: p.seq_index,
                    detail: "zero weight".into(),
                });
            }
        }
        // Exact duplicates double-count work; fragments of one sequence
        // legitimately share a seq_index but differ in ranks or length.
        if !seen.insert(format!("{p:?}")) {
            out.push(PlanViolation::DuplicatePlacement {
                seq_index: p.seq_index,
                micro_batch: p.micro_batch,
            });
        }
    }
    out
}

/// Structural audit plus rank-range and zigzag ring-chunk checks for a
/// cluster of `total_ranks` GPUs. [`crate::analysis::try_analyze`] runs
/// this before indexing into per-rank tables.
pub fn cluster_violations(plan: &IterationPlan, total_ranks: usize) -> Vec<PlanViolation> {
    let mut out = structural_violations(plan);
    for p in &plan.placements {
        if let Some(&bad) = p.ranks.iter().find(|&&r| r >= total_ranks) {
            out.push(PlanViolation::RankOutOfRange {
                seq_index: p.seq_index,
                rank: bad,
                total_ranks,
            });
        }
        // Differential audit of the zigzag chunk geometry: ring positions
        // must cover the sequence exactly and stay balanced — within 1
        // token of each other for homogeneous groups (the §3.2 balance
        // contract), or within chunk rounding of the declared speed-
        // proportional share for weighted groups. Weighted placements with
        // malformed weight vectors are already flagged structurally and
        // skipped here.
        let g = p.ranks.len();
        if g > 0 && p.len > 0 {
            if p.weights.is_empty() {
                let per: Vec<u64> = (0..g).map(|i| p.tokens_on_position(i)).collect();
                let resident: u64 = per.iter().sum();
                let max = per.iter().copied().max().unwrap_or(0);
                let min = per.iter().copied().min().unwrap_or(0);
                if resident != p.len || max - min > 1 {
                    out.push(PlanViolation::RingChunkAsymmetry {
                        seq_index: p.seq_index,
                        len: p.len,
                        resident,
                    });
                }
            } else if p.weights.len() == g && !p.weights.contains(&0) {
                let per: Vec<u64> = (0..g).map(|i| p.tokens_on_position(i)).collect();
                let resident: u64 = per.iter().sum();
                // Each position owns two chunks, each within one token of
                // its exact proportional share, so in integer cross-
                // multiplication: |tokens_i * W - len * 2 * w_i| <= 2 * W,
                // where W is the total chunk weight (2 * sum of weights).
                let wtot: u128 = p.weights.iter().map(|&w| 2 * u128::from(w)).sum();
                let balanced = per.iter().zip(&p.weights).all(|(&t, &w)| {
                    let have = u128::from(t) * wtot;
                    let want = u128::from(p.len) * 2 * u128::from(w);
                    have.abs_diff(want) <= 2 * wtot
                });
                if resident != p.len || !balanced {
                    out.push(PlanViolation::RingChunkAsymmetry {
                        seq_index: p.seq_index,
                        len: p.len,
                        resident,
                    });
                }
            }
        }
    }
    out
}

/// Full context-aware audit: cluster checks plus Ulysses head
/// divisibility, per-rank capacity, routing chain consistency (when
/// `options.routing`), and remap move consistency (when
/// `options.remapping`).
///
/// Derived checks run only when the plan is structurally sound — they
/// index by rank and micro-batch, and the auditor must never panic.
///
/// # Errors
///
/// Returns every violation found (never an empty vector).
///
/// # Examples
///
/// ```
/// use zeppelin_core::scheduler::{Scheduler, SchedulerCtx};
/// use zeppelin_core::validate::validate;
/// use zeppelin_core::zeppelin::Zeppelin;
/// use zeppelin_data::batch::Batch;
/// use zeppelin_model::config::llama_3b;
/// use zeppelin_sim::topology::cluster_a;
///
/// let ctx = SchedulerCtx::new(&cluster_a(2), &llama_3b());
/// let plan = Zeppelin::new()
///     .plan(&Batch::new(vec![30_000, 2_000, 500]), &ctx)
///     .unwrap();
/// assert!(validate(&plan, &ctx).is_ok());
///
/// let mut hostile = plan.clone();
/// hostile.placements[0].ranks = vec![999];
/// assert!(validate(&hostile, &ctx).is_err());
/// ```
pub fn validate(plan: &IterationPlan, ctx: &SchedulerCtx) -> Result<(), Vec<PlanViolation>> {
    let total_ranks = ctx.cluster.total_gpus();
    let mut out = cluster_violations(plan, total_ranks);
    for p in &plan.placements {
        let g = p.ranks.len();
        if p.mode == AttnMode::Ulysses && g > 1 && !ctx.model.num_heads.is_multiple_of(g) {
            out.push(PlanViolation::UlyssesIndivisibleHeads {
                seq_index: p.seq_index,
                group: g,
                heads: ctx.model.num_heads,
            });
        }
    }
    if out.is_empty() {
        audit_capacity(plan, ctx, &mut out);
        if plan.options.routing {
            audit_routing(plan, ctx, &mut out);
        }
        if plan.options.remapping {
            audit_remap(plan, ctx, &mut out);
        }
    }
    if out.is_empty() {
        Ok(())
    } else {
        Err(out)
    }
}

/// [`validate`] plus token conservation against the source batch: every
/// input token must be placed exactly once (in total — packing plans carry
/// synthetic per-window ids, so the check is aggregate, not per-sequence).
///
/// # Errors
///
/// Returns every violation found (never an empty vector).
pub fn validate_with_batch(
    plan: &IterationPlan,
    ctx: &SchedulerCtx,
    batch: &Batch,
) -> Result<(), Vec<PlanViolation>> {
    let mut out = match validate(plan, ctx) {
        Ok(()) => Vec::new(),
        Err(v) => v,
    };
    let plan_tokens = plan.total_tokens();
    let batch_tokens = batch.total_tokens();
    if plan_tokens != batch_tokens {
        out.push(PlanViolation::TokenMismatch {
            plan_tokens,
            batch_tokens,
        });
    }
    if out.is_empty() {
        Ok(())
    } else {
        Err(out)
    }
}

/// Per-rank resident tokens vs. capacity, with the zigzag rounding slack.
fn audit_capacity(plan: &IterationPlan, ctx: &SchedulerCtx, out: &mut Vec<PlanViolation>) {
    let total_ranks = ctx.cluster.total_gpus();
    for mb in 0..plan.micro_batches {
        let in_mb = plan
            .placements
            .iter()
            .filter(|p| p.micro_batch == mb)
            .count() as u64;
        let slack = CAPACITY_SLACK_TOKENS + 2 * in_mb;
        let tokens = plan.tokens_per_rank(total_ranks, mb);
        for (rank, &t) in tokens.iter().enumerate() {
            if t > ctx.capacity.saturating_add(slack) {
                out.push(PlanViolation::OverCapacity {
                    rank,
                    micro_batch: mb,
                    tokens: t,
                    capacity: ctx.capacity,
                });
            }
        }
    }
}

/// Routed-transfer consistency for every cross-node ring hop the plan
/// implies: the three-step chain must start at the sender, end at the
/// receiver, keep every endpoint inside the cluster, and conserve bytes.
fn audit_routing(plan: &IterationPlan, ctx: &SchedulerCtx, out: &mut Vec<PlanViolation>) {
    let total_ranks = ctx.cluster.total_gpus();
    let mut checked: BTreeSet<(Rank, Rank)> = BTreeSet::new();
    for p in plan.placements.iter().filter(|p| p.ranks.len() > 1) {
        let g = p.ranks.len();
        for i in 0..g {
            let src = p.ranks[i];
            let dst = p.ranks[(i + 1) % g];
            if ctx.cluster.same_node(src, dst) || !checked.insert((src, dst)) {
                continue;
            }
            let routed = route_internode(&ctx.cluster, src, dst, ROUTING_PROBE_BYTES);
            if let Some(detail) = routed_transfer_defect(&routed, src, dst, total_ranks, ctx) {
                out.push(PlanViolation::RoutingChainBroken { src, dst, detail });
            }
        }
    }
}

/// First defect in a routed transfer, if any.
fn routed_transfer_defect(
    routed: &crate::routing::RoutedTransfer,
    src: Rank,
    dst: Rank,
    total_ranks: usize,
    ctx: &SchedulerCtx,
) -> Option<String> {
    if routed.lanes() == 0 {
        return Some("no lanes".into());
    }
    if (routed.inter_bytes() - ROUTING_PROBE_BYTES).abs() > 1e-6 * ROUTING_PROBE_BYTES {
        return Some(format!(
            "inter-node bytes {} do not match the {} sent",
            routed.inter_bytes(),
            ROUTING_PROBE_BYTES
        ));
    }
    for (dispatch, inter, combine) in &routed.shares {
        for flow in [dispatch.as_ref(), Some(inter), combine.as_ref()]
            .into_iter()
            .flatten()
        {
            if flow.src >= total_ranks || flow.dst >= total_ranks {
                return Some(format!(
                    "flow {}->{} leaves the cluster",
                    flow.src, flow.dst
                ));
            }
        }
        let head = dispatch.as_ref().map_or(inter.src, |d| d.src);
        let tail = combine.as_ref().map_or(inter.dst, |c| c.dst);
        if head != src || tail != dst {
            return Some(format!("chain runs {head}->{tail}"));
        }
        if let Some(d) = dispatch {
            if d.dst != inter.src {
                return Some("dispatch does not hand off to the inter-node stage".into());
            }
        }
        if let Some(c) = combine {
            if inter.dst != c.src {
                return Some("inter-node stage does not hand off to combine".into());
            }
        }
        if ctx.cluster.same_node(inter.src, inter.dst) {
            return Some("inter-node stage stays on one node".into());
        }
    }
    None
}

/// Remap-move consistency per micro-batch: moves must stay inside the
/// cluster, never overdraw a sender, conserve tokens, and land exactly on
/// the solver's balanced targets. Speed-aware plans
/// (`options.speed_aware_remap`) are audited against the speed-proportional
/// targets the executor will use, derived from the context's rank speeds.
fn audit_remap(plan: &IterationPlan, ctx: &SchedulerCtx, out: &mut Vec<PlanViolation>) {
    let total_ranks = ctx.cluster.total_gpus();
    let speeds = if plan.options.speed_aware_remap {
        ctx.rank_speed.clone()
    } else {
        None
    };
    for mb in 0..plan.micro_batches {
        let tokens = plan.tokens_per_rank(total_ranks, mb);
        let total: u64 = tokens.iter().sum();
        if total == 0 {
            continue;
        }
        let remap = match &speeds {
            Some(s) => plan_remap_weighted(&ctx.cluster, &tokens, s),
            None => plan_remap(&ctx.cluster, &tokens),
        };
        let mut after = tokens;
        let mut defect = None;
        for m in &remap.moves {
            if m.from >= total_ranks || m.to >= total_ranks {
                defect = Some(format!("move {}->{} leaves the cluster", m.from, m.to));
                break;
            }
            if m.from == m.to {
                defect = Some(format!("self-move on rank {}", m.from));
                break;
            }
            if after[m.from] < m.tokens {
                defect = Some(format!(
                    "rank {} sends {} tokens but holds only {}",
                    m.from, m.tokens, after[m.from]
                ));
                break;
            }
            after[m.from] -= m.tokens;
            after[m.to] += m.tokens;
        }
        if defect.is_none() {
            if after.iter().sum::<u64>() != total {
                defect = Some("tokens are not conserved across the moves".into());
            } else if after != remap.targets {
                defect = Some("moves do not land on the balanced targets".into());
            }
        }
        if let Some(detail) = defect {
            out.push(PlanViolation::RemapInconsistent {
                micro_batch: mb,
                detail,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanOptions, SeqPlacement};
    use crate::scheduler::Scheduler;
    use crate::zeppelin::Zeppelin;
    use zeppelin_model::config::llama_3b;
    use zeppelin_sim::topology::cluster_a;

    fn ctx() -> SchedulerCtx {
        SchedulerCtx::new(&cluster_a(2), &llama_3b()).with_capacity(8192)
    }

    fn placement(seq: usize, len: u64, ranks: Vec<usize>, zone: Zone) -> SeqPlacement {
        SeqPlacement {
            seq_index: seq,
            len,
            zone,
            ranks,
            mode: AttnMode::Ring,
            micro_batch: 0,
            weights: Vec::new(),
        }
    }

    fn plan_of(placements: Vec<SeqPlacement>) -> IterationPlan {
        IterationPlan {
            scheduler: "validate-test".into(),
            placements,
            options: PlanOptions::default(),
            micro_batches: 1,
            redundant_attn_frac: 0.0,
        }
    }

    fn zeppelin_plan(lens: Vec<u64>) -> (IterationPlan, SchedulerCtx, Batch) {
        let ctx = ctx();
        let batch = Batch::new(lens);
        let plan = Zeppelin::new().plan(&batch, &ctx).unwrap();
        (plan, ctx, batch)
    }

    #[test]
    fn scheduler_plans_validate_clean() {
        let (plan, ctx, batch) = zeppelin_plan(vec![30_000, 9_000, 2_000, 500, 400]);
        validate(&plan, &ctx).unwrap();
        validate_with_batch(&plan, &ctx, &batch).unwrap();
    }

    #[test]
    fn structural_audit_collects_every_violation() {
        let mut plan = plan_of(vec![
            placement(0, 0, vec![], Zone::Local),
            placement(1, 100, vec![2, 2], Zone::IntraNode),
            placement(2, 100, vec![0, 1], Zone::Local),
        ]);
        plan.placements[2].micro_batch = 9;
        plan.redundant_attn_frac = f64::NAN;
        let v = structural_violations(&plan);
        let text = report(&v);
        for needle in [
            "empty 'ranks'",
            "'len' 0",
            "repeats rank 2",
            "local-zone",
            "'micro_batch' 9",
            "redundant_attn_frac",
        ] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }

    #[test]
    fn zero_and_inflated_micro_batches_are_flagged() {
        let mut plan = plan_of(vec![placement(0, 100, vec![0], Zone::Local)]);
        plan.micro_batches = 0;
        assert!(structural_violations(&plan)
            .iter()
            .any(|v| matches!(v, PlanViolation::ZeroMicroBatches)));
        plan.micro_batches = 50;
        assert!(structural_violations(&plan)
            .iter()
            .any(|v| matches!(v, PlanViolation::MicroBatchesExceedPlacements { .. })));
    }

    #[test]
    fn exact_duplicate_placements_are_flagged() {
        let p = placement(0, 100, vec![0], Zone::Local);
        let plan = plan_of(vec![p.clone(), p]);
        assert!(structural_violations(&plan)
            .iter()
            .any(|v| matches!(v, PlanViolation::DuplicatePlacement { .. })));
        // Fragments of one sequence with different lengths are fine.
        let plan = plan_of(vec![
            placement(0, 100, vec![0], Zone::Local),
            placement(0, 60, vec![0], Zone::Local),
        ]);
        assert!(structural_violations(&plan).is_empty());
    }

    #[test]
    fn cluster_audit_flags_out_of_range_ranks() {
        let plan = plan_of(vec![placement(0, 100, vec![0, 99], Zone::IntraNode)]);
        let v = cluster_violations(&plan, 16);
        assert!(v
            .iter()
            .any(|x| matches!(x, PlanViolation::RankOutOfRange { rank: 99, .. })));
        assert!(cluster_violations(&plan, 128).is_empty());
    }

    #[test]
    fn validate_flags_capacity_overload() {
        let plan = plan_of(vec![placement(0, 9_500, vec![0], Zone::Local)]);
        let err = validate(&plan, &ctx()).unwrap_err();
        assert!(err
            .iter()
            .any(|v| matches!(v, PlanViolation::OverCapacity { rank: 0, .. })));
        // Spread over 16 ranks the same tokens fit comfortably.
        let plan = plan_of(vec![placement(
            0,
            9_500,
            (0..16).collect(),
            Zone::InterNode,
        )]);
        validate(&plan, &ctx()).unwrap();
    }

    #[test]
    fn capacity_slack_tolerates_zigzag_rounding() {
        // Pack a rank to exactly its capacity: rounding must not flag it.
        let plan = plan_of(vec![placement(
            0,
            8192 * 4,
            vec![0, 1, 2, 3],
            Zone::IntraNode,
        )]);
        validate(&plan, &ctx()).unwrap();
    }

    #[test]
    fn validate_flags_indivisible_ulysses_groups() {
        let mut plan = plan_of(vec![placement(0, 3_000, vec![0, 1, 2], Zone::IntraNode)]);
        plan.placements[0].mode = AttnMode::Ulysses;
        // 32 heads on a group of 3.
        let err = validate(&plan, &ctx()).unwrap_err();
        assert!(err
            .iter()
            .any(|v| matches!(v, PlanViolation::UlyssesIndivisibleHeads { group: 3, .. })));
        plan.placements[0].ranks = vec![0, 1, 2, 3];
        validate(&plan, &ctx()).unwrap();
    }

    #[test]
    fn routing_and_remap_audits_pass_on_real_plans() {
        let (plan, ctx, _) = zeppelin_plan(vec![40_000, 9_000, 2_500, 1_200, 500, 400, 300]);
        assert!(
            plan.options.routing && plan.options.remapping,
            "zeppelin plans exercise both derived audits"
        );
        validate(&plan, &ctx).unwrap();
    }

    #[test]
    fn token_mismatch_is_flagged_against_the_batch() {
        let (mut plan, ctx, batch) = zeppelin_plan(vec![9_000, 500]);
        validate_with_batch(&plan, &ctx, &batch).unwrap();
        plan.placements[0].len -= 7;
        let err = validate_with_batch(&plan, &ctx, &batch).unwrap_err();
        assert!(err
            .iter()
            .any(|v| matches!(v, PlanViolation::TokenMismatch { .. })));
    }

    #[test]
    fn hostile_plans_never_panic_the_auditor() {
        // Structurally broken in several ways at once: the derived checks
        // must be skipped, not crash.
        let mut plan = plan_of(vec![
            placement(0, 0, vec![], Zone::Local),
            placement(1, 100, vec![999], Zone::Local),
        ]);
        plan.micro_batches = usize::MAX;
        plan.options = PlanOptions {
            routing: true,
            remapping: true,
            speed_aware_remap: false,
        };
        let err = validate(&plan, &ctx()).unwrap_err();
        assert!(!err.is_empty());
    }

    #[test]
    fn weighted_placements_audit_clean_and_tampering_is_flagged() {
        // A weighted ring group whose chunking matches its declared speeds
        // passes the extended symmetry audit.
        let mut p = placement(0, 12_000, vec![0, 1, 2, 3], Zone::IntraNode);
        p.weights = vec![1024, 512, 1024, 1024];
        let plan = plan_of(vec![p]);
        assert!(cluster_violations(&plan, 16).is_empty());
        validate(&plan, &ctx()).unwrap();
        // The same token split without declared weights violates the
        // homogeneous ±1 contract... which tokens_on_position can't even
        // express — so instead tamper the weights after the fact: a weight
        // vector of the wrong length is flagged structurally.
        let mut bad = placement(1, 12_000, vec![0, 1, 2, 3], Zone::IntraNode);
        bad.weights = vec![1024, 512];
        let plan = plan_of(vec![bad]);
        assert!(structural_violations(&plan)
            .iter()
            .any(|v| matches!(v, PlanViolation::BadSpeedWeights { .. })));
        let mut zero = placement(2, 12_000, vec![0, 1], Zone::IntraNode);
        zero.weights = vec![1024, 0];
        let plan = plan_of(vec![zero]);
        assert!(structural_violations(&plan)
            .iter()
            .any(|v| matches!(v, PlanViolation::BadSpeedWeights { .. })));
    }

    #[test]
    fn speed_aware_remap_plans_audit_against_weighted_targets() {
        let ctx = ctx().with_rank_speed({
            let mut s = vec![1.0; 16];
            s[5] = 0.5;
            s
        });
        let (mut plan, _, _) = zeppelin_plan(vec![30_000, 9_000, 2_000, 500, 400]);
        plan.options.speed_aware_remap = true;
        validate(&plan, &ctx).unwrap();
        // Without speeds in the context the flag falls back to the
        // homogeneous remap audit.
        validate(&plan, &self::ctx()).unwrap();
    }

    #[test]
    fn report_joins_violations() {
        let v = vec![
            PlanViolation::ZeroMicroBatches,
            PlanViolation::ZeroLength { seq_index: 3 },
        ];
        let r = report(&v);
        assert!(r.contains("micro-batch") && r.contains("sequence 3"), "{r}");
    }
}

//! The iteration-plan IR shared by Zeppelin and every baseline scheduler.
//!
//! A scheduler consumes a batch of sequence lengths plus a cluster
//! description and emits an [`IterationPlan`]: where every sequence (or
//! fragment) lives, which ring groups exist, whether communication routing
//! and remapping are enabled, and how sequences split into micro-batches.
//! The executor lowers this IR onto the simulator, so all methods are
//! compared on identical semantics.

use zeppelin_sim::topology::Rank;

/// Which tier of the bandwidth hierarchy a sequence executes in (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Zone {
    /// Whole sequence on one GPU; no communication.
    Local,
    /// Ring over GPUs of a single node (NVSwitch bandwidth).
    IntraNode,
    /// Ring spanning several nodes (NIC bandwidth).
    InterNode,
}

/// How a multi-rank attention group exchanges KV activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttnMode {
    /// Ring attention: G rounds of send-receive overlapped with compute.
    Ring,
    /// All-gather KV before attention (the LLaMA CP baseline); the gather
    /// sits on the critical path.
    AllGather,
    /// DeepSpeed-Ulysses sequence parallelism: all-to-all switches the
    /// layout from sequence-sharded to head-sharded, attention runs on full
    /// sequences with `heads/G` heads per rank, and a second all-to-all
    /// switches back. Requires `G` to divide the head count.
    Ulysses,
    /// LoongTrain-style double ring: an inner ring rotates KV within each
    /// node; one inter-node hop per inner rotation moves the window to the
    /// next node, cutting cross-node hops to one per node per pass.
    DoubleRing,
}

/// Placement of one sequence (or packed pseudo-sequence) in the plan.
///
/// For multi-rank placements the sequence is cut into `2·G` chunks
/// (`G = ranks.len()`); ring position `i` owns chunks `i` and `2G-1-i`
/// (zigzag), which balances causal-mask work across the group (§3.2).
/// Homogeneous groups cut equal chunks; heterogeneity-aware schedulers
/// declare per-position speed `weights` and chunks are cut
/// speed-proportionally (§3.2 extended; see
/// [`crate::chunking::chunks_with_weights`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqPlacement {
    /// Index of the sequence in the input batch (or a synthetic id for
    /// packed segments).
    pub seq_index: usize,
    /// Sequence length in tokens.
    pub len: u64,
    /// Hierarchy tier; drives queue ordering in the attention engine.
    pub zone: Zone,
    /// Ring order of participating ranks (length 1 for local sequences).
    pub ranks: Vec<Rank>,
    /// KV exchange mode for multi-rank placements.
    pub mode: AttnMode,
    /// Micro-batch this sequence executes in (0 for single micro-batch
    /// plans; Hybrid DP uses several).
    pub micro_batch: usize,
    /// Fixed-point per-position speed weights (quantum
    /// [`crate::chunking::SPEED_WEIGHT_QUANTUM`]), parallel to `ranks`.
    /// Empty means homogeneous (equal chunks); when non-empty, chunk sizes
    /// are speed-proportional and the executor/validator account for the
    /// declared skew.
    pub weights: Vec<u32>,
}

impl SeqPlacement {
    /// Number of ranks in the group.
    pub fn group_size(&self) -> usize {
        self.ranks.len()
    }

    /// Tokens resident on ring position `i` (zigzag: two chunks, sized by
    /// the declared speed weights when present).
    pub fn tokens_on_position(&self, i: usize) -> u64 {
        let g = self.ranks.len();
        debug_assert!(i < g);
        if !self.weights.is_empty() {
            return crate::chunking::position_tokens_weighted(self.len, g, &self.weights, i);
        }
        let g = g as u64;
        let chunks = 2 * g;
        let base = self.len / chunks;
        let rem = self.len % chunks;
        let chunk_len = |c: u64| base + u64::from(c < rem);
        chunk_len(i as u64) + chunk_len(2 * g - 1 - i as u64)
    }
}

/// Toggles for Zeppelin's components; baselines run with everything off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanOptions {
    /// Decompose inter-node ring transfers into the three-step routing
    /// scheme (§3.3) instead of direct NIC-affined sends.
    pub routing: bool,
    /// Rebalance tokens across ranks around the linear modules (§3.4).
    pub remapping: bool,
    /// Pick remap targets proportional to rank speeds instead of equal
    /// shares (requires `remapping`; a no-op when the executor has no speed
    /// vector). Set by speed-aware schedulers such as `StragglerRemap`.
    pub speed_aware_remap: bool,
}

/// A full iteration plan for one training step.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationPlan {
    /// Name of the producing scheduler (for reports).
    pub scheduler: String,
    /// Every sequence placement; fragments of the same input sequence that
    /// were split into independent groups appear as separate placements.
    pub placements: Vec<SeqPlacement>,
    /// Component toggles honored by the executor.
    pub options: PlanOptions,
    /// Number of micro-batches (`max(micro_batch) + 1`).
    pub micro_batches: usize,
    /// Fraction of attention FLOPs that are redundant cross-sequence work
    /// (non-zero only for naive packing plans; folds into compute time).
    pub redundant_attn_frac: f64,
}

/// Errors from plan construction or validation.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The batch cannot fit in aggregate cluster memory.
    OverCapacity {
        /// Tokens that needed placing.
        tokens: u64,
        /// Aggregate capacity in tokens.
        capacity: u64,
    },
    /// A placement references a rank outside the cluster.
    BadRank(Rank),
    /// A placement is structurally invalid (empty group, duplicate rank...).
    Malformed(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::OverCapacity { tokens, capacity } => {
                write!(f, "batch of {tokens} tokens exceeds capacity {capacity}")
            }
            PlanError::BadRank(r) => write!(f, "placement references invalid rank {r}"),
            PlanError::Malformed(m) => write!(f, "malformed placement: {m}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl IterationPlan {
    /// Tokens resident per rank in micro-batch `mb` (attention layout).
    pub fn tokens_per_rank(&self, total_ranks: usize, mb: usize) -> Vec<u64> {
        let mut tokens = vec![0u64; total_ranks];
        for p in self.placements.iter().filter(|p| p.micro_batch == mb) {
            for (i, &r) in p.ranks.iter().enumerate() {
                tokens[r] += p.tokens_on_position(i);
            }
        }
        tokens
    }

    /// Total tokens across all placements (each input token counted once).
    pub fn total_tokens(&self) -> u64 {
        self.placements.iter().map(|p| p.len).sum()
    }

    /// Validates structural invariants against a cluster of `total_ranks`.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] naming the first violated invariant.
    pub fn validate(&self, total_ranks: usize) -> Result<(), PlanError> {
        for p in &self.placements {
            if p.ranks.is_empty() {
                return Err(PlanError::Malformed(format!(
                    "sequence {} has an empty group",
                    p.seq_index
                )));
            }
            if p.len == 0 {
                return Err(PlanError::Malformed(format!(
                    "sequence {} has zero length",
                    p.seq_index
                )));
            }
            let mut seen = std::collections::HashSet::new();
            for &r in &p.ranks {
                if r >= total_ranks {
                    return Err(PlanError::BadRank(r));
                }
                if !seen.insert(r) {
                    return Err(PlanError::Malformed(format!(
                        "sequence {} repeats rank {r}",
                        p.seq_index
                    )));
                }
            }
            if p.zone == Zone::Local && p.ranks.len() != 1 {
                return Err(PlanError::Malformed(format!(
                    "local sequence {} spans {} ranks",
                    p.seq_index,
                    p.ranks.len()
                )));
            }
            if p.micro_batch >= self.micro_batches {
                return Err(PlanError::Malformed(format!(
                    "sequence {} in micro-batch {} of {}",
                    p.seq_index, p.micro_batch, self.micro_batches
                )));
            }
            if !p.weights.is_empty() {
                if p.weights.len() != p.ranks.len() {
                    return Err(PlanError::Malformed(format!(
                        "sequence {} declares {} speed weights for {} ranks",
                        p.seq_index,
                        p.weights.len(),
                        p.ranks.len()
                    )));
                }
                if p.weights.contains(&0) {
                    return Err(PlanError::Malformed(format!(
                        "sequence {} declares a zero speed weight",
                        p.seq_index
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn placement(len: u64, ranks: Vec<Rank>, zone: Zone) -> SeqPlacement {
        SeqPlacement {
            seq_index: 0,
            len,
            zone,
            ranks,
            mode: AttnMode::Ring,
            micro_batch: 0,
            weights: Vec::new(),
        }
    }

    fn plan(placements: Vec<SeqPlacement>) -> IterationPlan {
        IterationPlan {
            scheduler: "test".into(),
            placements,
            options: PlanOptions::default(),
            micro_batches: 1,
            redundant_attn_frac: 0.0,
        }
    }

    #[test]
    fn zigzag_tokens_are_balanced_and_conserved() {
        let p = placement(1000, vec![0, 1, 2, 3], Zone::IntraNode);
        let per: Vec<u64> = (0..4).map(|i| p.tokens_on_position(i)).collect();
        assert_eq!(per.iter().sum::<u64>(), 1000);
        // Zigzag pairs (i, 2G-1-i) keep positions within 1 token of equal.
        let max = per.iter().max().unwrap();
        let min = per.iter().min().unwrap();
        assert!(max - min <= 1, "{per:?}");
    }

    #[test]
    fn zigzag_handles_tiny_sequences() {
        let p = placement(3, vec![0, 1, 2, 3], Zone::IntraNode);
        let total: u64 = (0..4).map(|i| p.tokens_on_position(i)).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn tokens_per_rank_accumulates_across_placements() {
        let pl = plan(vec![
            placement(100, vec![0], Zone::Local),
            placement(400, vec![0, 1], Zone::IntraNode),
        ]);
        let t = pl.tokens_per_rank(4, 0);
        assert_eq!(t[0], 100 + 200);
        assert_eq!(t[1], 200);
        assert_eq!(t[2], 0);
        assert_eq!(pl.total_tokens(), 500);
    }

    #[test]
    fn tokens_per_rank_respects_micro_batches() {
        let mut a = placement(100, vec![0], Zone::Local);
        a.micro_batch = 0;
        let mut b = placement(300, vec![0], Zone::Local);
        b.micro_batch = 1;
        let mut pl = plan(vec![a, b]);
        pl.micro_batches = 2;
        assert_eq!(pl.tokens_per_rank(2, 0)[0], 100);
        assert_eq!(pl.tokens_per_rank(2, 1)[0], 300);
    }

    #[test]
    fn validate_accepts_wellformed() {
        let pl = plan(vec![placement(64, vec![0, 1, 2], Zone::IntraNode)]);
        pl.validate(4).unwrap();
    }

    #[test]
    fn validate_rejects_bad_rank_and_duplicates() {
        let pl = plan(vec![placement(64, vec![0, 9], Zone::IntraNode)]);
        assert_eq!(pl.validate(4), Err(PlanError::BadRank(9)));
        let pl = plan(vec![placement(64, vec![1, 1], Zone::IntraNode)]);
        assert!(matches!(pl.validate(4), Err(PlanError::Malformed(_))));
    }

    #[test]
    fn validate_rejects_structural_errors() {
        let pl = plan(vec![placement(64, vec![], Zone::Local)]);
        assert!(matches!(pl.validate(4), Err(PlanError::Malformed(_))));
        let pl = plan(vec![placement(0, vec![0], Zone::Local)]);
        assert!(matches!(pl.validate(4), Err(PlanError::Malformed(_))));
        let pl = plan(vec![placement(64, vec![0, 1], Zone::Local)]);
        assert!(matches!(pl.validate(4), Err(PlanError::Malformed(_))));
        let mut bad_mb = placement(64, vec![0], Zone::Local);
        bad_mb.micro_batch = 3;
        let pl = plan(vec![bad_mb]);
        assert!(matches!(pl.validate(4), Err(PlanError::Malformed(_))));
    }

    #[test]
    fn weighted_placement_shifts_tokens_toward_fast_ranks() {
        let mut p = placement(1000, vec![0, 1, 2, 3], Zone::IntraNode);
        p.weights = vec![1024, 512, 1024, 1024];
        let per: Vec<u64> = (0..4).map(|i| p.tokens_on_position(i)).collect();
        assert_eq!(per.iter().sum::<u64>(), 1000);
        assert!(per[1] < per[0], "{per:?}");
        assert!(per.iter().enumerate().all(|(i, &t)| i == 1 || t > per[1]));
    }

    #[test]
    fn validate_rejects_malformed_weights() {
        let mut short = placement(64, vec![0, 1, 2], Zone::IntraNode);
        short.weights = vec![1024, 512];
        let pl = plan(vec![short]);
        assert!(matches!(pl.validate(4), Err(PlanError::Malformed(_))));
        let mut zero = placement(64, vec![0, 1], Zone::IntraNode);
        zero.weights = vec![1024, 0];
        let pl = plan(vec![zero]);
        assert!(matches!(pl.validate(4), Err(PlanError::Malformed(_))));
        let mut ok = placement(64, vec![0, 1], Zone::IntraNode);
        ok.weights = vec![1024, 512];
        plan(vec![ok]).validate(4).unwrap();
    }

    #[test]
    fn error_display() {
        let e = PlanError::OverCapacity {
            tokens: 10,
            capacity: 5,
        };
        assert!(e.to_string().contains("exceeds"));
        assert!(PlanError::BadRank(3).to_string().contains('3'));
    }
}

//! The Zeppelin scheduler: hierarchical partitioning + attention engine
//! queues + routing + remapping, with per-component toggles for ablations.

use zeppelin_data::batch::Batch;

use crate::partitioner::{partition, PartitionConfig};
use crate::plan::{IterationPlan, PlanError, PlanOptions};
use crate::scheduler::{Scheduler, SchedulerCtx};
use crate::zones::zone_thresholds;

/// Component toggles (Fig. 11 ablations run with subsets enabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeppelinConfig {
    /// Three-step communication routing (§3.3).
    pub routing: bool,
    /// Linear-module remapping (§3.4).
    pub remapping: bool,
}

impl Default for ZeppelinConfig {
    fn default() -> Self {
        ZeppelinConfig {
            routing: true,
            remapping: true,
        }
    }
}

/// The Zeppelin scheduler.
#[derive(Debug, Clone, Default)]
pub struct Zeppelin {
    /// Component toggles.
    pub config: ZeppelinConfig,
}

impl Zeppelin {
    /// Full Zeppelin: every component enabled.
    pub fn new() -> Zeppelin {
        Zeppelin::default()
    }

    /// Zeppelin with explicit toggles (ablation variants).
    pub fn with_config(config: ZeppelinConfig) -> Zeppelin {
        Zeppelin { config }
    }
}

impl Scheduler for Zeppelin {
    fn name(&self) -> &'static str {
        match (self.config.routing, self.config.remapping) {
            (true, true) => "Zeppelin",
            (true, false) => "Zeppelin (no remap)",
            (false, true) => "Zeppelin (no routing)",
            (false, false) => "Zeppelin (engine only)",
        }
    }

    fn plan(&self, batch: &Batch, ctx: &SchedulerCtx) -> Result<IterationPlan, PlanError> {
        // Seed Alg. 1/2's thresholds with the Fig. 5 cost-model crossovers:
        // sequences whose computation hides inter-node (resp. intra-node)
        // communication are distributed even when capacity alone would not
        // force it, balancing quadratic attention across the cluster.
        let zones = zone_thresholds(&ctx.model, &ctx.cluster);
        let mut pcfg = PartitionConfig::new(
            ctx.cluster.nodes,
            ctx.cluster.node.gpus_per_node,
            ctx.capacity,
        )
        .with_zone_hints(zones.local_max, zones.intra_max);
        if let Some(speed) = &ctx.rank_speed {
            pcfg = pcfg.with_device_speed(speed.clone());
        }
        let part = partition(&batch.seqs, &pcfg)?;
        let plan = IterationPlan {
            scheduler: self.name().into(),
            placements: part.placements,
            options: PlanOptions {
                routing: self.config.routing,
                remapping: self.config.remapping,
                speed_aware_remap: false,
            },
            micro_batches: 1,
            redundant_attn_frac: 0.0,
        };
        plan.validate(ctx.cluster.total_gpus())?;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Zone;
    use zeppelin_model::config::llama_3b;
    use zeppelin_sim::topology::cluster_a;

    fn ctx() -> SchedulerCtx {
        SchedulerCtx::new(&cluster_a(2), &llama_3b()).with_capacity(8192)
    }

    #[test]
    fn plans_mixed_batch_across_zones() {
        let batch = Batch::new(vec![60_000, 9_000, 2_000, 1_000, 500, 300, 200, 100]);
        let plan = Zeppelin::new().plan(&batch, &ctx()).unwrap();
        plan.validate(16).unwrap();
        let zones: std::collections::HashSet<Zone> =
            plan.placements.iter().map(|p| p.zone).collect();
        // A 60k sequence must leave a 64k-capacity node... (8 GPUs × 8k =
        // 64k/node; the 60k sequence plus others forces spanning).
        assert!(zones.contains(&Zone::Local), "zones {zones:?}");
        assert!(plan.options.routing && plan.options.remapping);
        assert_eq!(plan.total_tokens(), batch.total_tokens());
    }

    #[test]
    fn ablation_toggles_surface_in_options_and_name() {
        let z = Zeppelin::with_config(ZeppelinConfig {
            routing: false,
            remapping: false,
        });
        assert_eq!(z.name(), "Zeppelin (engine only)");
        let batch = Batch::new(vec![1000, 2000]);
        let plan = z.plan(&batch, &ctx()).unwrap();
        assert!(!plan.options.routing);
        assert!(!plan.options.remapping);
    }

    #[test]
    fn over_capacity_batch_is_rejected() {
        let batch = Batch::new(vec![100_000; 4]);
        let err = Zeppelin::new()
            .plan(&batch, &ctx().with_capacity(1024))
            .unwrap_err();
        assert!(matches!(err, PlanError::OverCapacity { .. }));
    }
}

//! Remapping layer (§3.4): token-balanced layouts for linear modules.
//!
//! The attention-optimal placement leaves per-rank token counts uneven;
//! linear modules (projections, MLPs, MoE) want them flat. Before the linear
//! modules the remapping layer moves tokens to the balanced layout, and
//! moves them back afterwards at the same cost. The transfer plan minimizes
//! the *maximum* per-sender cost (Eq. 2), solved exactly by
//! [`zeppelin_solver::bottleneck`].

use zeppelin_sim::topology::ClusterSpec;
use zeppelin_solver::bottleneck::{solve_bottleneck, solve_bottleneck_to, RemapPlan, RemapProblem};

/// Builds and solves the Eq. 2 remapping instance for the given per-rank
/// token counts on `cluster`.
///
/// Costs are the inverse bandwidths of the cluster: `1/B_intra` for
/// same-node pairs, `1/B_inter` (NIC-limited) otherwise.
///
/// # Panics
///
/// Panics if `tokens` does not have one entry per cluster rank.
pub fn plan_remap(cluster: &ClusterSpec, tokens: &[u64]) -> RemapPlan {
    assert_eq!(
        tokens.len(),
        cluster.total_gpus(),
        "token vector must cover every rank"
    );
    let node_of: Vec<usize> = (0..tokens.len()).map(|r| cluster.node_of(r)).collect();
    let problem = RemapProblem {
        tokens: tokens.to_vec(),
        node_of,
        intra_cost: 1.0 / cluster.intranode_bw(),
        inter_cost: 1.0 / cluster.direct_internode_bw(),
    };
    solve_bottleneck(&problem)
}

/// Like [`plan_remap`], but rebalances towards *speed-proportional* targets
/// (straggler-aware linear modules): rank `i` receives
/// `round(total · speed_i / Σ speed)` tokens, remainder to the fastest
/// ranks, so every rank's linear kernel finishes together.
///
/// # Panics
///
/// Panics if the vectors do not cover every rank or a speed is not
/// strictly positive.
pub fn plan_remap_weighted(cluster: &ClusterSpec, tokens: &[u64], speed: &[f64]) -> RemapPlan {
    assert_eq!(
        tokens.len(),
        cluster.total_gpus(),
        "token vector must cover every rank"
    );
    assert_eq!(speed.len(), tokens.len(), "one speed factor per rank");
    assert!(
        speed.iter().all(|&v| v > 0.0 && v.is_finite()),
        "speed factors must be positive"
    );
    let total: u64 = tokens.iter().sum();
    let weight_sum: f64 = speed.iter().sum();
    // Floor-allocate, then hand the remainder to the fastest ranks.
    let mut targets: Vec<u64> = speed
        .iter()
        .map(|&w| (total as f64 * w / weight_sum).floor() as u64)
        .collect();
    let mut rest = total - targets.iter().sum::<u64>();
    let mut order: Vec<usize> = (0..speed.len()).collect();
    order.sort_by(|&a, &b| {
        speed[b]
            .partial_cmp(&speed[a])
            .expect("finite")
            .then(a.cmp(&b))
    });
    let mut cursor = 0usize;
    while rest > 0 {
        targets[order[cursor % order.len()]] += 1;
        cursor += 1;
        rest -= 1;
    }
    let node_of: Vec<usize> = (0..tokens.len()).map(|r| cluster.node_of(r)).collect();
    let problem = RemapProblem {
        tokens: tokens.to_vec(),
        node_of,
        intra_cost: 1.0 / cluster.intranode_bw(),
        inter_cost: 1.0 / cluster.direct_internode_bw(),
    };
    solve_bottleneck_to(&problem, targets)
}

/// Whether a remap is worth performing: the imbalance must exceed `slack`
/// (fraction above the mean) to justify the transfer latency.
pub fn needs_remap(tokens: &[u64], slack: f64) -> bool {
    if tokens.is_empty() {
        return false;
    }
    let total: u64 = tokens.iter().sum();
    if total == 0 {
        return false;
    }
    let mean = total as f64 / tokens.len() as f64;
    let max = *tokens.iter().max().expect("non-empty") as f64;
    max > mean * (1.0 + slack)
}

/// Speed-aware remap trigger: compares each rank's *time* share
/// (`tokens_i / speed_i`) against the balanced completion time
/// (`total / Σ speed`) — a flat token layout on a heterogeneous cluster
/// still needs remapping.
///
/// # Panics
///
/// Panics if the vectors' lengths differ or a speed is not positive.
pub fn needs_remap_weighted(tokens: &[u64], speed: &[f64], slack: f64) -> bool {
    assert_eq!(tokens.len(), speed.len(), "one speed factor per rank");
    assert!(
        speed.iter().all(|&v| v > 0.0 && v.is_finite()),
        "speed factors must be positive"
    );
    if tokens.is_empty() {
        return false;
    }
    let total: u64 = tokens.iter().sum();
    if total == 0 {
        return false;
    }
    let balanced_time = total as f64 / speed.iter().sum::<f64>();
    let max_time = tokens
        .iter()
        .zip(speed)
        .map(|(&t, &v)| t as f64 / v)
        .fold(0.0f64, f64::max);
    max_time > balanced_time * (1.0 + slack)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeppelin_sim::topology::cluster_a;

    #[test]
    fn remap_flattens_tokens() {
        let c = cluster_a(2);
        let mut tokens = vec![0u64; 16];
        tokens[0] = 32_000;
        tokens[5] = 16_000;
        let plan = plan_remap(&c, &tokens);
        let after = plan.apply(&tokens);
        assert_eq!(after, plan.targets);
        let max = after.iter().max().unwrap();
        let min = after.iter().min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn balanced_input_needs_nothing() {
        let c = cluster_a(1);
        let tokens = vec![4096u64; 8];
        let plan = plan_remap(&c, &tokens);
        assert!(plan.moves.is_empty());
        assert!(!needs_remap(&tokens, 0.05));
    }

    #[test]
    fn intra_moves_preferred_on_cluster_a() {
        let c = cluster_a(2);
        // Node 0 internally imbalanced but node-balanced vs node 1.
        let tokens = vec![
            8000, 0, 4000, 4000, 4000, 4000, 4000, 4000, 4000, 4000, 4000, 4000, 4000, 4000, 4000,
            4000,
        ];
        let plan = plan_remap(&c, &tokens);
        for m in &plan.moves {
            assert!(c.same_node(m.from, m.to), "unexpected cross move {m:?}");
        }
    }

    #[test]
    fn weighted_trigger_fires_on_flat_tokens_with_stragglers() {
        let tokens = vec![1000u64; 4];
        assert!(!needs_remap(&tokens, 0.05));
        assert!(!needs_remap_weighted(&tokens, &[1.0; 4], 0.05));
        assert!(needs_remap_weighted(&tokens, &[1.0, 1.0, 0.5, 1.0], 0.05));
    }

    #[test]
    fn weighted_remap_targets_follow_speed() {
        let c = cluster_a(1);
        let tokens = vec![4000u64; 8];
        let mut speed = vec![1.0; 8];
        speed[2] = 0.5; // Straggler gets half the tokens.
        let plan = plan_remap_weighted(&c, &tokens, &speed);
        let after = plan.apply(&tokens);
        assert_eq!(after.iter().sum::<u64>(), 32_000);
        // Slow rank holds ~ total * 0.5/7.5.
        let expect = (32_000.0 * 0.5 / 7.5) as u64;
        assert!(after[2].abs_diff(expect) <= 1, "{after:?}");
        // Fast ranks hold more than the slow one.
        assert!(after
            .iter()
            .enumerate()
            .all(|(i, &t)| i == 2 || t > after[2]));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn weighted_remap_rejects_zero_speed() {
        let c = cluster_a(1);
        plan_remap_weighted(&c, &[1; 8], &[0.0; 8]);
    }

    #[test]
    fn needs_remap_threshold() {
        assert!(needs_remap(&[100, 100, 100, 160], 0.05));
        assert!(!needs_remap(&[100, 100, 100, 104], 0.05));
        assert!(!needs_remap(&[], 0.05));
        assert!(!needs_remap(&[0, 0], 0.05));
    }

    #[test]
    #[should_panic(expected = "every rank")]
    fn wrong_length_panics() {
        plan_remap(&cluster_a(1), &[1, 2, 3]);
    }
}

//! # zeppelin-core
//!
//! The paper's contribution: a data-parallel training scheduler that
//! balances variable-length workloads holistically.
//!
//! - [`plan`]: the iteration-plan IR shared with every baseline;
//! - [`chunking`]: zigzag chunk geometry and exact per-round ring costs
//!   (the attention engine's workload math, §3.2);
//! - [`partitioner`]: hierarchical two-stage sequence partitioning
//!   (Algorithms 1 and 2, §3.1);
//! - [`routing`]: three-step multi-NIC communication routing (§3.3);
//! - [`remap`]: token-balanced remapping for linear modules (§3.4);
//! - [`zeppelin`]: the [`scheduler::Scheduler`] tying it all
//!   together, with per-component ablation toggles;
//! - [`zones`]: the Fig. 5 cost-curve analysis that motivates the
//!   local / intra-node / inter-node split;
//! - [`validate`]: the plan auditor guarding every trust boundary where
//!   an [`plan::IterationPlan`] enters from outside (JSON, the serving
//!   protocol, replay).
//!
//! # Examples
//!
//! ```
//! use zeppelin_core::scheduler::{Scheduler, SchedulerCtx};
//! use zeppelin_core::zeppelin::Zeppelin;
//! use zeppelin_data::batch::Batch;
//! use zeppelin_model::config::llama_3b;
//! use zeppelin_sim::topology::cluster_a;
//!
//! let ctx = SchedulerCtx::new(&cluster_a(2), &llama_3b()).with_capacity(8192);
//! let batch = Batch::new(vec![40_000, 6_000, 1_200, 400, 300]);
//! let plan = Zeppelin::new().plan(&batch, &ctx).unwrap();
//! assert_eq!(plan.total_tokens(), batch.total_tokens());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod chunking;
pub mod het;
pub mod partitioner;
pub mod plan;
pub mod plan_io;
pub mod remap;
pub mod routing;
pub mod scheduler;
pub mod validate;
pub mod zeppelin;
pub mod zones;

pub use analysis::{analyze, try_analyze, PlanAnalysis, RankEstimate};
pub use plan::{AttnMode, IterationPlan, PlanError, PlanOptions, SeqPlacement, Zone};
pub use plan_io::{
    parse_json, plan_from_json, plan_to_json, Json, PlanIoError, PLAN_SCHEMA_VERSION,
};
pub use scheduler::{Scheduler, SchedulerCtx};
pub use validate::{validate, validate_with_batch, PlanViolation};
pub use zeppelin::{Zeppelin, ZeppelinConfig};

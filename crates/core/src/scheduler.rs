//! The scheduler interface every method (Zeppelin and baselines) implements.

use zeppelin_data::batch::Batch;
use zeppelin_model::config::ModelConfig;
use zeppelin_model::memory::token_capacity;
use zeppelin_sim::topology::{ClusterSpec, Rank};

use crate::plan::{IterationPlan, PlanError};

/// Shared context a scheduler plans against.
#[derive(Debug, Clone)]
pub struct SchedulerCtx {
    /// The (possibly TP-folded) cluster.
    pub cluster: ClusterSpec,
    /// Model being trained.
    pub model: ModelConfig,
    /// Token capacity `L` per GPU.
    pub capacity: u64,
    /// Per-rank speed factors for straggler-aware planning (`None` =
    /// homogeneous). Schedulers may ignore this; Zeppelin weights its
    /// intra-node placement with it.
    pub rank_speed: Option<Vec<f64>>,
}

impl SchedulerCtx {
    /// Builds a context, deriving capacity from the memory model.
    pub fn new(cluster: &ClusterSpec, model: &ModelConfig) -> SchedulerCtx {
        let dp = cluster.total_gpus().max(1);
        let capacity = token_capacity(model, cluster.node.gpu.mem_bytes, dp);
        SchedulerCtx {
            cluster: cluster.clone(),
            model: model.clone(),
            capacity,
            rank_speed: None,
        }
    }

    /// Overrides the derived capacity (tests, what-if studies).
    pub fn with_capacity(mut self, capacity: u64) -> SchedulerCtx {
        self.capacity = capacity;
        self
    }

    /// Declares per-rank speed factors (straggler-aware planning).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the cluster's rank count.
    pub fn with_rank_speed(mut self, speed: Vec<f64>) -> SchedulerCtx {
        assert_eq!(
            speed.len(),
            self.cluster.total_gpus(),
            "one speed factor per rank"
        );
        self.rank_speed = Some(speed);
        self
    }

    /// Re-derives a context over the ranks that survive the loss of `dead`.
    ///
    /// The cluster model is homogeneous per node, so eviction is
    /// whole-node: every node hosting a dead rank is drained (its healthy
    /// siblings share the failed host's power, PCIe switches, and NICs).
    /// Survivor ranks are renumbered contiguously; the second return value
    /// maps each *old* rank to its new rank (`None` = evicted), which the
    /// trainer uses to migrate per-rank state such as speed factors.
    ///
    /// The token capacity is re-derived from the memory model when the
    /// current capacity equals the derived value for the old cluster (i.e.
    /// it was never overridden); an explicit [`SchedulerCtx::with_capacity`]
    /// override is preserved.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Malformed`] if no node survives, or
    /// [`PlanError::BadRank`] if `dead` references a rank outside the
    /// cluster.
    pub fn shrink_to_survivors(
        &self,
        dead: &[Rank],
    ) -> Result<(SchedulerCtx, Vec<Option<Rank>>), PlanError> {
        let total = self.cluster.total_gpus();
        if let Some(&bad) = dead.iter().find(|&&r| r >= total) {
            return Err(PlanError::BadRank(bad));
        }
        let mut dead_nodes = vec![false; self.cluster.nodes];
        for &r in dead {
            dead_nodes[self.cluster.node_of(r)] = true;
        }
        let survivors = dead_nodes.iter().filter(|&&d| !d).count();
        if survivors == 0 {
            return Err(PlanError::Malformed(
                "no node survives the failure set".into(),
            ));
        }
        if survivors == self.cluster.nodes {
            let identity = (0..total).map(Some).collect();
            return Ok((self.clone(), identity));
        }

        let mut cluster = self.cluster.clone();
        cluster.nodes = survivors;
        let mut rank_map: Vec<Option<Rank>> = vec![None; total];
        let mut next = 0;
        for old in 0..total {
            if !dead_nodes[self.cluster.node_of(old)] {
                rank_map[old] = Some(next);
                next += 1;
            }
        }

        let derived_old =
            token_capacity(&self.model, self.cluster.node.gpu.mem_bytes, total.max(1));
        let capacity = if self.capacity == derived_old {
            token_capacity(
                &self.model,
                cluster.node.gpu.mem_bytes,
                cluster.total_gpus().max(1),
            )
        } else {
            self.capacity
        };

        let rank_speed = self.rank_speed.as_ref().map(|speed| {
            (0..total)
                .filter(|&old| rank_map[old].is_some())
                .map(|old| speed[old])
                .collect()
        });

        Ok((
            SchedulerCtx {
                cluster,
                model: self.model.clone(),
                capacity,
                rank_speed,
            },
            rank_map,
        ))
    }
}

/// A training-step scheduler: turns a batch into an [`IterationPlan`].
pub trait Scheduler {
    /// Stable name used in reports and tables.
    fn name(&self) -> &'static str;

    /// Plans one iteration.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] when the batch cannot be placed (typically
    /// capacity exhaustion).
    fn plan(&self, batch: &Batch, ctx: &SchedulerCtx) -> Result<IterationPlan, PlanError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeppelin_model::config::llama_7b;
    use zeppelin_sim::topology::cluster_a;

    #[test]
    fn ctx_derives_reasonable_capacity() {
        let ctx = SchedulerCtx::new(&cluster_a(2), &llama_7b());
        assert!(ctx.capacity >= 4096, "capacity {}", ctx.capacity);
        assert!(ctx.capacity < 10_000_000);
    }

    #[test]
    fn capacity_override() {
        let ctx = SchedulerCtx::new(&cluster_a(2), &llama_7b()).with_capacity(1234);
        assert_eq!(ctx.capacity, 1234);
    }

    #[test]
    fn shrink_evicts_whole_nodes_and_renumbers() {
        let ctx = SchedulerCtx::new(&cluster_a(3), &llama_7b());
        // Rank 9 lives on node 1: the whole node drains.
        let (small, map) = ctx.shrink_to_survivors(&[9]).unwrap();
        assert_eq!(small.cluster.nodes, 2);
        assert_eq!(small.cluster.total_gpus(), 16);
        // Node 0 keeps its ranks, node 2 renumbers to 8..16.
        assert_eq!(map[0], Some(0));
        assert_eq!(map[7], Some(7));
        assert!((8..16).all(|r| map[r].is_none()));
        assert_eq!(map[16], Some(8));
        assert_eq!(map[23], Some(15));
        // Derived capacity is re-derived for the smaller DP group.
        let fresh = SchedulerCtx::new(&small.cluster, &llama_7b());
        assert_eq!(small.capacity, fresh.capacity);
    }

    #[test]
    fn shrink_preserves_capacity_override_and_filters_speed() {
        let speed: Vec<f64> = (0..16).map(|r| 1.0 + r as f64 / 100.0).collect();
        let ctx = SchedulerCtx::new(&cluster_a(2), &llama_7b())
            .with_capacity(5000)
            .with_rank_speed(speed);
        let (small, map) = ctx.shrink_to_survivors(&[0, 3]).unwrap();
        assert_eq!(small.capacity, 5000);
        let kept = small.rank_speed.unwrap();
        assert_eq!(kept.len(), 8);
        // Survivors are node 1's ranks, in order.
        assert!((kept[0] - 1.08).abs() < 1e-12);
        assert_eq!(map[8], Some(0));
    }

    #[test]
    fn shrink_rejects_total_loss_and_bad_ranks() {
        let ctx = SchedulerCtx::new(&cluster_a(2), &llama_7b());
        assert!(matches!(
            ctx.shrink_to_survivors(&[0, 8]),
            Err(PlanError::Malformed(_))
        ));
        assert!(matches!(
            ctx.shrink_to_survivors(&[99]),
            Err(PlanError::BadRank(99))
        ));
    }

    #[test]
    fn shrink_with_no_dead_ranks_is_identity() {
        let ctx = SchedulerCtx::new(&cluster_a(2), &llama_7b());
        let (same, map) = ctx.shrink_to_survivors(&[]).unwrap();
        assert_eq!(same.cluster.total_gpus(), 16);
        assert!(map.iter().enumerate().all(|(i, &m)| m == Some(i)));
    }
}

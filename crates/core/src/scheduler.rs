//! The scheduler interface every method (Zeppelin and baselines) implements.

use zeppelin_data::batch::Batch;
use zeppelin_model::config::ModelConfig;
use zeppelin_model::memory::token_capacity;
use zeppelin_sim::topology::ClusterSpec;

use crate::plan::{IterationPlan, PlanError};

/// Shared context a scheduler plans against.
#[derive(Debug, Clone)]
pub struct SchedulerCtx {
    /// The (possibly TP-folded) cluster.
    pub cluster: ClusterSpec,
    /// Model being trained.
    pub model: ModelConfig,
    /// Token capacity `L` per GPU.
    pub capacity: u64,
    /// Per-rank speed factors for straggler-aware planning (`None` =
    /// homogeneous). Schedulers may ignore this; Zeppelin weights its
    /// intra-node placement with it.
    pub rank_speed: Option<Vec<f64>>,
}

impl SchedulerCtx {
    /// Builds a context, deriving capacity from the memory model.
    pub fn new(cluster: &ClusterSpec, model: &ModelConfig) -> SchedulerCtx {
        let dp = cluster.total_gpus().max(1);
        let capacity = token_capacity(model, cluster.node.gpu.mem_bytes, dp);
        SchedulerCtx {
            cluster: cluster.clone(),
            model: model.clone(),
            capacity,
            rank_speed: None,
        }
    }

    /// Overrides the derived capacity (tests, what-if studies).
    pub fn with_capacity(mut self, capacity: u64) -> SchedulerCtx {
        self.capacity = capacity;
        self
    }

    /// Declares per-rank speed factors (straggler-aware planning).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the cluster's rank count.
    pub fn with_rank_speed(mut self, speed: Vec<f64>) -> SchedulerCtx {
        assert_eq!(
            speed.len(),
            self.cluster.total_gpus(),
            "one speed factor per rank"
        );
        self.rank_speed = Some(speed);
        self
    }
}

/// A training-step scheduler: turns a batch into an [`IterationPlan`].
pub trait Scheduler {
    /// Stable name used in reports and tables.
    fn name(&self) -> &'static str;

    /// Plans one iteration.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] when the batch cannot be placed (typically
    /// capacity exhaustion).
    fn plan(&self, batch: &Batch, ctx: &SchedulerCtx) -> Result<IterationPlan, PlanError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeppelin_model::config::llama_7b;
    use zeppelin_sim::topology::cluster_a;

    #[test]
    fn ctx_derives_reasonable_capacity() {
        let ctx = SchedulerCtx::new(&cluster_a(2), &llama_7b());
        assert!(ctx.capacity >= 4096, "capacity {}", ctx.capacity);
        assert!(ctx.capacity < 10_000_000);
    }

    #[test]
    fn capacity_override() {
        let ctx = SchedulerCtx::new(&cluster_a(2), &llama_7b()).with_capacity(1234);
        assert_eq!(ctx.capacity, 1234);
    }
}

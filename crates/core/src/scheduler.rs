//! The scheduler interface every method (Zeppelin and baselines) implements.

use zeppelin_data::batch::Batch;
use zeppelin_model::config::ModelConfig;
use zeppelin_model::memory::token_capacity;
use zeppelin_sim::topology::{ClusterSpec, Rank};

use crate::plan::{IterationPlan, PlanError};

/// Shared context a scheduler plans against.
#[derive(Debug, Clone)]
pub struct SchedulerCtx {
    /// The (possibly TP-folded) cluster.
    pub cluster: ClusterSpec,
    /// Model being trained.
    pub model: ModelConfig,
    /// Token capacity `L` per GPU.
    pub capacity: u64,
    /// Per-rank speed factors for straggler-aware planning (`None` =
    /// homogeneous). Schedulers may ignore this; Zeppelin weights its
    /// intra-node placement with it.
    pub rank_speed: Option<Vec<f64>>,
}

impl SchedulerCtx {
    /// Builds a context, deriving capacity from the memory model. On a
    /// mixed-generation cluster (non-empty
    /// [`ClusterSpec::node_tiers`](zeppelin_sim::topology::ClusterSpec))
    /// the per-node tiers seed `rank_speed`, so every speed-aware scheduler
    /// sees the heterogeneity without extra plumbing;
    /// [`SchedulerCtx::with_rank_speed`] still overrides (e.g. to stack
    /// straggler degradation on top of generation tiers).
    pub fn new(cluster: &ClusterSpec, model: &ModelConfig) -> SchedulerCtx {
        let dp = cluster.total_gpus().max(1);
        let capacity = token_capacity(model, cluster.node.gpu.mem_bytes, dp);
        SchedulerCtx {
            cluster: cluster.clone(),
            model: model.clone(),
            capacity,
            rank_speed: cluster.rank_speeds(),
        }
    }

    /// Overrides the derived capacity (tests, what-if studies).
    pub fn with_capacity(mut self, capacity: u64) -> SchedulerCtx {
        self.capacity = capacity;
        self
    }

    /// Declares per-rank speed factors (straggler-aware planning).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the cluster's rank count.
    pub fn with_rank_speed(mut self, speed: Vec<f64>) -> SchedulerCtx {
        assert_eq!(
            speed.len(),
            self.cluster.total_gpus(),
            "one speed factor per rank"
        );
        self.rank_speed = Some(speed);
        self
    }

    /// Re-derives a context over the ranks that survive the loss of `dead`.
    ///
    /// The cluster model is homogeneous per node, so eviction is
    /// whole-node: every node hosting a dead rank is drained (its healthy
    /// siblings share the failed host's power, PCIe switches, and NICs).
    /// Survivor ranks are renumbered contiguously; the second return value
    /// maps each *old* rank to its new rank (`None` = evicted), which the
    /// trainer uses to migrate per-rank state such as speed factors.
    ///
    /// The token capacity is re-derived from the memory model when the
    /// current capacity equals the derived value for the old cluster (i.e.
    /// it was never overridden); an explicit [`SchedulerCtx::with_capacity`]
    /// override is preserved.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Malformed`] if no node survives, or
    /// [`PlanError::BadRank`] if `dead` references a rank outside the
    /// cluster.
    pub fn shrink_to_survivors(
        &self,
        dead: &[Rank],
    ) -> Result<(SchedulerCtx, Vec<Option<Rank>>), PlanError> {
        let total = self.cluster.total_gpus();
        if let Some(&bad) = dead.iter().find(|&&r| r >= total) {
            return Err(PlanError::BadRank(bad));
        }
        let mut dead_nodes = vec![false; self.cluster.nodes];
        for &r in dead {
            dead_nodes[self.cluster.node_of(r)] = true;
        }
        let survivors = dead_nodes.iter().filter(|&&d| !d).count();
        if survivors == 0 {
            return Err(PlanError::Malformed(
                "no node survives the failure set".into(),
            ));
        }
        if survivors == self.cluster.nodes {
            let identity = (0..total).map(Some).collect();
            return Ok((self.clone(), identity));
        }

        let mut cluster = self.cluster.clone();
        cluster.nodes = survivors;
        if !cluster.node_tiers.is_empty() {
            cluster.node_tiers = (0..self.cluster.nodes)
                .filter(|&n| !dead_nodes[n])
                .map(|n| self.cluster.tier_of(n))
                .collect();
        }
        let mut rank_map: Vec<Option<Rank>> = vec![None; total];
        let mut next = 0;
        for old in 0..total {
            if !dead_nodes[self.cluster.node_of(old)] {
                rank_map[old] = Some(next);
                next += 1;
            }
        }

        let derived_old =
            token_capacity(&self.model, self.cluster.node.gpu.mem_bytes, total.max(1));
        let capacity = if self.capacity == derived_old {
            token_capacity(
                &self.model,
                cluster.node.gpu.mem_bytes,
                cluster.total_gpus().max(1),
            )
        } else {
            self.capacity
        };

        let rank_speed = self.rank_speed.as_ref().map(|speed| {
            (0..total)
                .filter(|&old| rank_map[old].is_some())
                .map(|old| speed[old])
                .collect()
        });

        Ok((
            SchedulerCtx {
                cluster,
                model: self.model.clone(),
                capacity,
                rank_speed,
            },
            rank_map,
        ))
    }

    /// Re-derives a context over a cluster grown to `nodes` nodes — the
    /// inverse of [`SchedulerCtx::shrink_to_survivors`], used when drained
    /// hosts rejoin after repair.
    ///
    /// Existing ranks keep their numbers; new ranks are appended after
    /// them, node by node. As in shrink, the token capacity is re-derived
    /// from the memory model only when it was never overridden, and any
    /// per-rank speed factors are extended with `1.0` for the new
    /// (presumed-healthy) ranks.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Malformed`] if `nodes` is zero or smaller than
    /// the current node count (growth never evicts; use
    /// [`SchedulerCtx::shrink_to_survivors`] for that).
    pub fn grow_to_nodes(&self, nodes: usize) -> Result<SchedulerCtx, PlanError> {
        if nodes == 0 {
            return Err(PlanError::Malformed("cannot grow to zero nodes".into()));
        }
        if nodes < self.cluster.nodes {
            return Err(PlanError::Malformed(format!(
                "grow_to_nodes({nodes}) would shrink a {}-node cluster",
                self.cluster.nodes
            )));
        }
        if nodes == self.cluster.nodes {
            return Ok(self.clone());
        }

        let mut cluster = self.cluster.clone();
        cluster.nodes = nodes;
        if !cluster.node_tiers.is_empty() {
            // Nodes joining a tiered cluster arrive at the blueprint
            // generation (tier 1.0), mirroring the healthy-speed default.
            cluster.node_tiers.resize(nodes, 1.0);
        }

        let derived_old = token_capacity(
            &self.model,
            self.cluster.node.gpu.mem_bytes,
            self.cluster.total_gpus().max(1),
        );
        let capacity = if self.capacity == derived_old {
            token_capacity(
                &self.model,
                cluster.node.gpu.mem_bytes,
                cluster.total_gpus().max(1),
            )
        } else {
            self.capacity
        };

        let rank_speed = self.rank_speed.as_ref().map(|speed| {
            let mut grown = speed.clone();
            grown.resize(cluster.total_gpus(), 1.0);
            grown
        });

        Ok(SchedulerCtx {
            cluster,
            model: self.model.clone(),
            capacity,
            rank_speed,
        })
    }

    /// Re-derives a context over exactly `nodes` nodes, growing or
    /// shrinking as needed — the elastic-allocation entry point used by
    /// the cluster simulation when a job's node share changes.
    ///
    /// Growth appends fresh nodes via [`SchedulerCtx::grow_to_nodes`].
    /// Shrinking evicts the highest-numbered nodes (the ranks handed back
    /// to the pool) via [`SchedulerCtx::shrink_to_survivors`], so the
    /// surviving ranks keep their numbers and per-rank state (e.g. speed
    /// factors) migrates without renumbering.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Malformed`] if `nodes` is zero.
    pub fn resize_nodes(&self, nodes: usize) -> Result<SchedulerCtx, PlanError> {
        if nodes == 0 {
            return Err(PlanError::Malformed("cannot resize to zero nodes".into()));
        }
        if nodes >= self.cluster.nodes {
            return self.grow_to_nodes(nodes);
        }
        let evicted: Vec<Rank> = (nodes..self.cluster.nodes)
            .map(|n| self.cluster.rank_of(n, 0))
            .collect();
        self.shrink_to_survivors(&evicted).map(|(ctx, _)| ctx)
    }
}

/// A training-step scheduler: turns a batch into an [`IterationPlan`].
pub trait Scheduler {
    /// Stable name used in reports and tables.
    fn name(&self) -> &'static str;

    /// Plans one iteration.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] when the batch cannot be placed (typically
    /// capacity exhaustion).
    fn plan(&self, batch: &Batch, ctx: &SchedulerCtx) -> Result<IterationPlan, PlanError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeppelin_model::config::llama_7b;
    use zeppelin_sim::topology::cluster_a;

    #[test]
    fn ctx_derives_reasonable_capacity() {
        let ctx = SchedulerCtx::new(&cluster_a(2), &llama_7b());
        assert!(ctx.capacity >= 4096, "capacity {}", ctx.capacity);
        assert!(ctx.capacity < 10_000_000);
    }

    #[test]
    fn capacity_override() {
        let ctx = SchedulerCtx::new(&cluster_a(2), &llama_7b()).with_capacity(1234);
        assert_eq!(ctx.capacity, 1234);
    }

    #[test]
    fn shrink_evicts_whole_nodes_and_renumbers() {
        let ctx = SchedulerCtx::new(&cluster_a(3), &llama_7b());
        // Rank 9 lives on node 1: the whole node drains.
        let (small, map) = ctx.shrink_to_survivors(&[9]).unwrap();
        assert_eq!(small.cluster.nodes, 2);
        assert_eq!(small.cluster.total_gpus(), 16);
        // Node 0 keeps its ranks, node 2 renumbers to 8..16.
        assert_eq!(map[0], Some(0));
        assert_eq!(map[7], Some(7));
        assert!((8..16).all(|r| map[r].is_none()));
        assert_eq!(map[16], Some(8));
        assert_eq!(map[23], Some(15));
        // Derived capacity is re-derived for the smaller DP group.
        let fresh = SchedulerCtx::new(&small.cluster, &llama_7b());
        assert_eq!(small.capacity, fresh.capacity);
    }

    #[test]
    fn shrink_preserves_capacity_override_and_filters_speed() {
        let speed: Vec<f64> = (0..16).map(|r| 1.0 + r as f64 / 100.0).collect();
        let ctx = SchedulerCtx::new(&cluster_a(2), &llama_7b())
            .with_capacity(5000)
            .with_rank_speed(speed);
        let (small, map) = ctx.shrink_to_survivors(&[0, 3]).unwrap();
        assert_eq!(small.capacity, 5000);
        let kept = small.rank_speed.unwrap();
        assert_eq!(kept.len(), 8);
        // Survivors are node 1's ranks, in order.
        assert!((kept[0] - 1.08).abs() < 1e-12);
        assert_eq!(map[8], Some(0));
    }

    #[test]
    fn shrink_rejects_total_loss_and_bad_ranks() {
        let ctx = SchedulerCtx::new(&cluster_a(2), &llama_7b());
        assert!(matches!(
            ctx.shrink_to_survivors(&[0, 8]),
            Err(PlanError::Malformed(_))
        ));
        assert!(matches!(
            ctx.shrink_to_survivors(&[99]),
            Err(PlanError::BadRank(99))
        ));
    }

    #[test]
    fn shrink_with_no_dead_ranks_is_identity() {
        let ctx = SchedulerCtx::new(&cluster_a(2), &llama_7b());
        let (same, map) = ctx.shrink_to_survivors(&[]).unwrap();
        assert_eq!(same.cluster.total_gpus(), 16);
        assert!(map.iter().enumerate().all(|(i, &m)| m == Some(i)));
    }

    #[test]
    fn grow_rederives_capacity_and_extends_speed() {
        let speed: Vec<f64> = (0..16).map(|r| 1.0 + r as f64 / 100.0).collect();
        let ctx = SchedulerCtx::new(&cluster_a(2), &llama_7b()).with_rank_speed(speed.clone());
        let big = ctx.grow_to_nodes(3).unwrap();
        assert_eq!(big.cluster.total_gpus(), 24);
        let fresh = SchedulerCtx::new(&big.cluster, &llama_7b());
        assert_eq!(big.capacity, fresh.capacity);
        let grown = big.rank_speed.unwrap();
        assert_eq!(&grown[..16], &speed[..]);
        assert!(grown[16..].iter().all(|&s| s == 1.0));
    }

    #[test]
    fn grow_preserves_capacity_override() {
        let ctx = SchedulerCtx::new(&cluster_a(2), &llama_7b()).with_capacity(5000);
        let big = ctx.grow_to_nodes(4).unwrap();
        assert_eq!(big.capacity, 5000);
    }

    #[test]
    fn grow_rejects_shrinking_and_zero() {
        let ctx = SchedulerCtx::new(&cluster_a(2), &llama_7b());
        assert!(matches!(ctx.grow_to_nodes(0), Err(PlanError::Malformed(_))));
        assert!(matches!(ctx.grow_to_nodes(1), Err(PlanError::Malformed(_))));
        let same = ctx.grow_to_nodes(2).unwrap();
        assert_eq!(same.cluster.total_gpus(), 16);
    }

    #[test]
    fn shrink_then_grow_round_trips_and_plans_audit_clean() {
        use crate::validate::validate_with_batch;
        use crate::zeppelin::Zeppelin;
        use zeppelin_model::config::llama_3b;

        let ctx = SchedulerCtx::new(&cluster_a(3), &llama_3b());
        // Rank 9 lives on node 1: shrink drains it, then repair grows back.
        let (small, _) = ctx.shrink_to_survivors(&[9]).unwrap();
        assert_eq!(small.cluster.nodes, 2);
        let back = small.grow_to_nodes(3).unwrap();
        assert_eq!(back.cluster.total_gpus(), ctx.cluster.total_gpus());
        assert_eq!(back.capacity, ctx.capacity);

        let lens: Vec<u64> = (0..48).map(|i| 256 + (i * 97) % 1500).collect();
        let batch = Batch::new(lens);
        let plan = Zeppelin::new().plan(&batch, &back).unwrap();
        assert!(
            validate_with_batch(&plan, &back, &batch).is_ok(),
            "plan over the regrown context must audit clean"
        );
    }

    #[test]
    fn heterogeneous_shrink_then_grow_migrates_speeds_and_audits_clean() {
        use crate::validate::validate_with_batch;
        use crate::zeppelin::Zeppelin;
        use zeppelin_model::config::llama_3b;

        // Mixed-generation cluster: node 0 fast, node 1 degraded, node 2
        // a straggler tier — per-rank speeds vary within nodes too.
        let speed: Vec<f64> = (0..24)
            .map(|r| match r / 8 {
                0 => 1.0 + r as f64 / 200.0,
                1 => 0.7 + (r % 8) as f64 / 100.0,
                _ => 0.3 + (r % 8) as f64 / 50.0,
            })
            .collect();
        let ctx = SchedulerCtx::new(&cluster_a(3), &llama_3b()).with_rank_speed(speed.clone());

        // Drain the degraded node 1, then repair grows a fresh node back.
        let (small, map) = ctx.shrink_to_survivors(&[9]).unwrap();
        let kept = small.rank_speed.as_ref().unwrap();
        assert_eq!(kept.len(), 16);
        // Node 0 keeps its speeds; node 2's straggler speeds renumber to 8..16.
        assert!((kept[0] - speed[0]).abs() < 1e-12);
        assert_eq!(map[16], Some(8));
        assert!((kept[8] - speed[16]).abs() < 1e-12);

        let back = small.grow_to_nodes(3).unwrap();
        let grown = back.rank_speed.as_ref().unwrap();
        assert_eq!(grown.len(), 24);
        // Survivor speeds migrate; the repaired node arrives healthy (1.0).
        assert!((grown[8] - speed[16]).abs() < 1e-12);
        assert!(grown[16..].iter().all(|&s| s == 1.0));
        assert_eq!(back.capacity, ctx.capacity);

        let lens: Vec<u64> = (0..48).map(|i| 256 + (i * 97) % 1500).collect();
        let batch = Batch::new(lens);
        let plan = Zeppelin::new().plan(&batch, &back).unwrap();
        assert!(
            validate_with_batch(&plan, &back, &batch).is_ok(),
            "plan over the heterogeneous regrown context must audit clean"
        );
    }

    #[test]
    fn node_tiers_seed_rank_speed_and_survive_shrink_grow() {
        use zeppelin_sim::topology::{cluster_mixed, A800_RELATIVE_SPEED};

        let cluster = cluster_mixed(3); // tiers [A800, 1.0, 1.0]
        let ctx = SchedulerCtx::new(&cluster, &llama_7b());
        let speed = ctx.rank_speed.as_ref().expect("tiers seed rank_speed");
        assert_eq!(speed.len(), 24);
        assert!(speed[..8].iter().all(|&s| s == A800_RELATIVE_SPEED));
        assert!(speed[8..].iter().all(|&s| s == 1.0));

        // Drain the A800 node: tiers and speeds migrate together.
        let (small, _) = ctx.shrink_to_survivors(&[0]).unwrap();
        assert_eq!(small.cluster.node_tiers, vec![1.0, 1.0]);
        assert!(small.rank_speed.unwrap().iter().all(|&s| s == 1.0));

        // Repair: the rejoining node arrives at the blueprint tier.
        let back = ctx
            .shrink_to_survivors(&[0])
            .unwrap()
            .0
            .grow_to_nodes(3)
            .unwrap();
        assert_eq!(back.cluster.node_tiers, vec![1.0, 1.0, 1.0]);
        back.cluster.validate().unwrap();
        assert_eq!(back.rank_speed.unwrap().len(), 24);
    }

    #[test]
    fn resize_nodes_grows_and_evicts_tail_nodes() {
        let speed: Vec<f64> = (0..24).map(|r| 1.0 + r as f64 / 100.0).collect();
        let ctx = SchedulerCtx::new(&cluster_a(3), &llama_7b()).with_rank_speed(speed.clone());

        // Shrink to 1 node: nodes 1 and 2 hand their ranks back.
        let one = ctx.resize_nodes(1).unwrap();
        assert_eq!(one.cluster.total_gpus(), 8);
        assert_eq!(one.rank_speed.as_ref().unwrap()[..], speed[..8]);
        let fresh = SchedulerCtx::new(&one.cluster, &llama_7b());
        assert_eq!(one.capacity, fresh.capacity);

        // Grow back to 2: node 0's speeds survive, the new node is healthy.
        let two = one.resize_nodes(2).unwrap();
        assert_eq!(two.cluster.total_gpus(), 16);
        assert_eq!(two.rank_speed.as_ref().unwrap()[..8], speed[..8]);
        assert!(two.rank_speed.as_ref().unwrap()[8..]
            .iter()
            .all(|&s| s == 1.0));

        // Same size is identity; zero is rejected.
        assert_eq!(two.resize_nodes(2).unwrap().cluster.nodes, 2);
        assert!(matches!(two.resize_nodes(0), Err(PlanError::Malformed(_))));
    }
}

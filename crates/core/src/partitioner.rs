//! Hierarchical sequence partitioning (§3.1, Algorithms 1 and 2).
//!
//! Two stages, mirroring the bandwidth hierarchy:
//!
//! 1. **Inter-node** (Alg. 1): find the threshold `s1` separating inter-node
//!    sequences from the rest. Sequences `>= s1` are chunked across
//!    `⌈len/s_avg⌉` node buckets (communication, the bottleneck at this
//!    level, is minimized by coarse node-level chunks); shorter sequences
//!    go to the least-loaded node. If a short sequence would overflow a
//!    node's capacity `P·L`, the threshold drops to the longest remaining
//!    short sequence and the stage repeats.
//! 2. **Intra-node** (Alg. 2): within each node, find `s0` separating
//!    intra-node from local sequences. Intra-node sequences are fragmented
//!    by *quadratic* budget (`⌈len²/c_avg⌉` fragments — computation is what
//!    must balance at this level) over consecutive devices; local sequences
//!    go to the least-loaded device, with the same iterative threshold
//!    refinement against capacity `L`.
//!
//! The output is a set of [`SeqPlacement`]s whose ring groups follow node
//! boundaries (inter-node rings are node-major, so a ring crosses the
//! network exactly once per participating node pair).

use crate::plan::{AttnMode, PlanError, SeqPlacement, Zone};

/// Cluster-shape inputs to the partitioner.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionConfig {
    /// Nodes in the data-parallel group (`N`).
    pub nodes: usize,
    /// Devices per node (`P`).
    pub devices_per_node: usize,
    /// Token capacity per device (`L`).
    pub capacity: u64,
    /// Initial inter-node threshold `s1`: sequences at least this long are
    /// placed in the inter-node zone even when they would fit a node.
    /// Derived from the Fig. 5 cost-model crossover (their computation
    /// hides inter-node communication); capped at `P·L`. `None` falls back
    /// to the pure capacity seed of Alg. 1.
    pub s1_init: Option<u64>,
    /// Initial local threshold `s0`, analogous for the intra-node zone.
    pub s0_init: Option<u64>,
    /// Per-rank relative speed factors (straggler awareness): device loads
    /// are compared as `tokens / speed`, so degraded GPUs receive lighter
    /// local queues and are picked last for intra-node rings. `None` means
    /// homogeneous. Indexed by global rank (`node · P + device`).
    pub device_speed: Option<Vec<f64>>,
}

impl PartitionConfig {
    /// Capacity-only configuration (Alg. 1/2 exactly as printed).
    pub fn new(nodes: usize, devices_per_node: usize, capacity: u64) -> PartitionConfig {
        PartitionConfig {
            nodes,
            devices_per_node,
            capacity,
            s1_init: None,
            s0_init: None,
            device_speed: None,
        }
    }

    /// Adds per-rank speed factors (see `device_speed`).
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from the rank count or any
    /// factor is not strictly positive.
    pub fn with_device_speed(mut self, speed: Vec<f64>) -> PartitionConfig {
        assert_eq!(
            speed.len(),
            self.nodes * self.devices_per_node,
            "one speed factor per rank"
        );
        assert!(
            speed.iter().all(|&v| v > 0.0 && v.is_finite()),
            "speed factors must be positive"
        );
        self.device_speed = Some(speed);
        self
    }

    /// Adds cost-model zone hints (see [`crate::zones`]).
    pub fn with_zone_hints(mut self, s0: u64, s1: u64) -> PartitionConfig {
        self.s0_init = Some(s0.max(1));
        self.s1_init = Some(s1.max(1));
        self
    }

    /// Aggregate token capacity of the cluster.
    pub fn total_capacity(&self) -> u64 {
        self.capacity * (self.nodes * self.devices_per_node) as u64
    }

    /// Token capacity of one node (`P·L`).
    pub fn node_capacity(&self) -> u64 {
        self.capacity * self.devices_per_node as u64
    }
}

/// Result of hierarchical partitioning, with thresholds for introspection.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// Final sequence placements.
    pub placements: Vec<SeqPlacement>,
    /// Final inter-node threshold `s1`.
    pub s1: u64,
    /// Final local threshold `s0` per node.
    pub s0_per_node: Vec<u64>,
}

/// One sequence tagged with its batch index, sorted descending.
#[derive(Debug, Clone, Copy)]
struct Seq {
    index: usize,
    len: u64,
}

/// Runs Algorithms 1 + 2 over a batch of sequence lengths.
///
/// # Errors
///
/// Returns [`PlanError::OverCapacity`] if the batch cannot fit, or
/// [`PlanError::Malformed`] for degenerate configurations.
///
/// # Examples
///
/// ```
/// use zeppelin_core::partitioner::{partition, PartitionConfig};
/// use zeppelin_core::plan::Zone;
///
/// // Two 4-GPU nodes, 8k tokens per GPU.
/// let cfg = PartitionConfig::new(2, 4, 8_192).with_zone_hints(2_048, 12_288);
/// let part = partition(&[40_000, 5_000, 600], &cfg).unwrap();
/// // The 40k sequence spans nodes; the 600-token one stays local.
/// assert_eq!(part.placements[0].zone, Zone::InterNode);
/// assert_eq!(part.placements[2].zone, Zone::Local);
/// ```
pub fn partition(lens: &[u64], cfg: &PartitionConfig) -> Result<Partition, PlanError> {
    if cfg.nodes == 0 || cfg.devices_per_node == 0 || cfg.capacity == 0 {
        return Err(PlanError::Malformed(
            "partition config must have positive nodes/devices/capacity".into(),
        ));
    }
    let total: u64 = lens.iter().sum();
    if total > cfg.total_capacity() {
        return Err(PlanError::OverCapacity {
            tokens: total,
            capacity: cfg.total_capacity(),
        });
    }
    let mut seqs: Vec<Seq> = lens
        .iter()
        .enumerate()
        .map(|(index, &len)| Seq { index, len })
        .collect();
    seqs.sort_by(|a, b| b.len.cmp(&a.len).then(a.index.cmp(&b.index)));

    let inter = inter_node_partition(&seqs, cfg)?;
    let p = cfg.devices_per_node;

    let mut placements: Vec<SeqPlacement> = Vec::new();
    // Inter-node sequences become one ring each, node-major rank order.
    for is in &inter.inter_seqs {
        let ranks: Vec<usize> = is
            .nodes
            .iter()
            .flat_map(|&n| (n * p)..(n * p + p))
            .collect();
        let zone = if is.nodes.len() > 1 {
            Zone::InterNode
        } else if ranks.len() > 1 {
            Zone::IntraNode
        } else {
            Zone::Local
        };
        placements.push(SeqPlacement {
            seq_index: is.index,
            len: is.len,
            zone,
            ranks,
            mode: AttnMode::Ring,
            micro_batch: 0,
            weights: Vec::new(),
        });
    }

    let mut s0_per_node = Vec::with_capacity(cfg.nodes);
    for node in 0..cfg.nodes {
        // Per-device tokens already pinned by inter-node rings on this node.
        let inter_per_device: u64 = inter
            .inter_seqs
            .iter()
            .filter(|is| is.nodes.contains(&node))
            .map(|is| is.len.div_ceil((is.nodes.len() * p) as u64))
            .sum();
        let node_speed: Option<Vec<f64>> = cfg
            .device_speed
            .as_ref()
            .map(|v| v[node * p..(node + 1) * p].to_vec());
        let intra = intra_node_partition(
            &inter.node_whole[node],
            cfg.capacity.saturating_sub(inter_per_device),
            p,
            cfg.s0_init,
            node_speed.as_deref(),
        )?;
        s0_per_node.push(intra.s0);
        for fs in intra.intra_seqs {
            let ranks: Vec<usize> = fs.devices.iter().map(|&d| node * p + d).collect();
            let zone = if ranks.len() > 1 {
                Zone::IntraNode
            } else {
                Zone::Local
            };
            placements.push(SeqPlacement {
                seq_index: fs.index,
                len: fs.len,
                zone,
                ranks,
                mode: AttnMode::Ring,
                micro_batch: 0,
                weights: Vec::new(),
            });
        }
        for (device, seq) in intra.local_seqs {
            placements.push(SeqPlacement {
                seq_index: seq.index,
                len: seq.len,
                zone: Zone::Local,
                ranks: vec![node * p + device],
                mode: AttnMode::Ring,
                micro_batch: 0,
                weights: Vec::new(),
            });
        }
    }

    placements.sort_by_key(|pl| pl.seq_index);
    Ok(Partition {
        placements,
        s1: inter.s1,
        s0_per_node,
    })
}

/// An inter-node sequence and the node buckets it spans.
#[derive(Debug, Clone)]
struct InterSeq {
    index: usize,
    len: u64,
    nodes: Vec<usize>,
}

struct InterResult {
    inter_seqs: Vec<InterSeq>,
    /// Whole (shorter) sequences per node, still sorted descending.
    node_whole: Vec<Vec<Seq>>,
    s1: u64,
}

/// Algorithm 1: inter-node partitioning.
fn inter_node_partition(seqs: &[Seq], cfg: &PartitionConfig) -> Result<InterResult, PlanError> {
    let n = cfg.nodes;
    let node_cap = cfg.node_capacity();
    let mut s1 = node_cap.min(cfg.s1_init.unwrap_or(u64::MAX)).max(1);
    // `granularity` escalates chunking when coarse chunks overflow nodes;
    // each retry either promotes a sequence to the inter-node zone or
    // doubles granularity, so iterations are bounded.
    let mut granularity = 1u64;
    let max_iters = seqs.len() + 72;
    for _ in 0..=max_iters {
        let (z2, z01): (Vec<Seq>, Vec<Seq>) = seqs.iter().partition(|s| s.len >= s1);
        let mut load = vec![0u64; n];
        // Rounding reserve: every inter-node ring's per-device share rounds
        // up, costing the node up to P extra tokens per hosted sequence,
        // which the intra stage will subtract from its budget.
        let mut reserve = vec![0u64; n];
        let mut node_whole: Vec<Vec<Seq>> = vec![Vec::new(); n];
        let mut inter_seqs = Vec::new();

        let mut all_spread = true;
        if !z2.is_empty() {
            let z2_total: u64 = z2.iter().map(|s| s.len).sum();
            let s_avg = (z2_total / (n as u64 * granularity)).max(1);
            for s in &z2 {
                // Node-chunk count: the communication-balance target, but
                // never fewer nodes than capacity requires.
                let by_budget = s.len.div_ceil(s_avg) as usize;
                let by_capacity = s.len.div_ceil(node_cap) as usize;
                let k = by_budget.max(by_capacity).clamp(1, n);
                if k < n {
                    all_spread = false;
                }
                // Least-loaded k nodes host the chunks.
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by_key(|&i| (load[i], i));
                let chosen: Vec<usize> = order.into_iter().take(k).collect();
                let share = s.len / k as u64;
                for &node in &chosen {
                    load[node] += share;
                    reserve[node] += cfg.devices_per_node as u64;
                }
                let mut nodes = chosen;
                nodes.sort_unstable();
                inter_seqs.push(InterSeq {
                    index: s.index,
                    len: s.len,
                    nodes,
                });
            }
            // Coarse chunks can still overflow a node; refine and retry
            // until every inter-node sequence is spread across all nodes
            // (at which point loads are within rounding of total/N).
            if (0..n).any(|i| load[i] + reserve[i] > node_cap) && !all_spread {
                granularity = granularity.saturating_mul(2);
                continue;
            }
        }

        let mut overflow = false;
        for s in &z01 {
            let idx = (0..n).min_by_key(|&i| (load[i], i)).expect("n > 0");
            if load[idx] + reserve[idx] + s.len > node_cap {
                // Line 14: drop the threshold to the longest z01 sequence.
                s1 = z01.first().expect("overflow implies non-empty z01").len;
                overflow = true;
                break;
            }
            load[idx] += s.len;
            node_whole[idx].push(*s);
        }
        if !overflow {
            return Ok(InterResult {
                inter_seqs,
                node_whole,
                s1,
            });
        }
    }
    // Capacity was pre-checked, so the refinement loop always converges;
    // reaching here means an accounting bug rather than user error.
    Err(PlanError::Malformed(
        "inter-node partitioning failed to converge".into(),
    ))
}

/// An intra-node sequence fragmented over node-local devices.
#[derive(Debug, Clone)]
struct IntraSeq {
    index: usize,
    len: u64,
    devices: Vec<usize>,
}

struct IntraResult {
    intra_seqs: Vec<IntraSeq>,
    local_seqs: Vec<(usize, Seq)>,
    s0: u64,
}

/// Algorithm 2: intra-node partitioning of whole sequences over P devices.
///
/// `capacity` is the per-device budget left after inter-node ring chunks.
fn intra_node_partition(
    whole: &[Seq],
    capacity: u64,
    p: usize,
    s0_init: Option<u64>,
    speed: Option<&[f64]>,
) -> Result<IntraResult, PlanError> {
    let speed_of = |d: usize| speed.map_or(1.0, |v| v[d]);
    let cap = capacity.max(1);
    let node_total: u64 = whole.iter().map(|s| s.len).sum();
    if node_total > cap * p as u64 {
        return Err(PlanError::OverCapacity {
            tokens: node_total,
            capacity: cap * p as u64,
        });
    }
    let mut s0 = cap.min(s0_init.unwrap_or(u64::MAX)).max(1);
    let mut granularity = 1.0f64;
    let max_iters = whole.len() + 72;
    for _ in 0..=max_iters {
        let (z1, z0): (Vec<Seq>, Vec<Seq>) = whole.iter().partition(|s| s.len >= s0);
        let mut load = vec![0u64; p];
        let mut intra_seqs = Vec::new();
        let mut local_seqs = Vec::new();
        let mut cursor = 0usize;

        let mut all_spread = true;
        if !z1.is_empty() {
            // Quadratic budget: attention work, not tokens, must balance.
            let c_total: f64 = z1.iter().map(|s| (s.len as f64).powi(2)).sum();
            let c_avg = (c_total / (p as f64 * granularity)).max(1.0);
            for s in &z1 {
                let by_budget = ((s.len as f64).powi(2) / c_avg).ceil() as usize;
                let by_capacity = s.len.div_ceil(cap) as usize;
                let k = by_budget.max(by_capacity).clamp(1, p);
                if k < p {
                    all_spread = false;
                }
                // Fragments go to the k least-loaded devices (weighted by
                // speed so stragglers join rings last), breaking ties by a
                // rotating cursor so successive sequences spread out.
                let mut order: Vec<usize> = (0..p).collect();
                order.sort_by_key(|&i| {
                    let weighted = (load[i] as f64 / speed_of(i) * 16.0) as u64;
                    (weighted, (i + p - cursor) % p)
                });
                let devices: Vec<usize> = order.into_iter().take(k).collect();
                cursor = (cursor + k) % p;
                let share = s.len / k as u64;
                for &d in &devices {
                    load[d] += share;
                }
                let mut devices = devices;
                devices.sort_unstable();
                intra_seqs.push(IntraSeq {
                    index: s.index,
                    len: s.len,
                    devices,
                });
            }
            // Coarse fragments can overflow a device; refine and retry
            // until every intra-node sequence spans all P devices (then
            // loads are within rounding of the node total / P).
            if load.iter().any(|&l| l > cap) && !all_spread {
                granularity *= 2.0;
                continue;
            }
        }

        let mut overflow = false;
        for s in &z0 {
            let idx = (0..p)
                .min_by_key(|&i| (((load[i] + s.len) as f64 / speed_of(i) * 16.0) as u64, i))
                .expect("p > 0");
            if load[idx] + s.len > cap {
                s0 = z0.first().expect("overflow implies non-empty z0").len;
                overflow = true;
                break;
            }
            load[idx] += s.len;
            local_seqs.push((idx, *s));
        }
        if !overflow {
            // Defensive capacity check on the fragmented placement: uneven
            // fragment rounding cannot exceed capacity by more than the
            // fragment count, which the +1 margins upstream absorb.
            return Ok(IntraResult {
                intra_seqs,
                local_seqs,
                s0,
            });
        }
    }
    Err(PlanError::Malformed(
        "intra-node partitioning failed to converge".into(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::IterationPlan;
    use crate::plan::PlanOptions;

    fn cfg(nodes: usize, p: usize, cap: u64) -> PartitionConfig {
        PartitionConfig::new(nodes, p, cap)
    }

    fn as_plan(part: &Partition) -> IterationPlan {
        IterationPlan {
            scheduler: "partitioner-test".into(),
            placements: part.placements.clone(),
            options: PlanOptions::default(),
            micro_batches: 1,
            redundant_attn_frac: 0.0,
        }
    }

    #[test]
    fn every_sequence_is_placed_exactly_once() {
        let lens = vec![50_000, 9_000, 3_000, 1_000, 800, 600, 200, 100];
        let c = cfg(2, 4, 16_384);
        let part = partition(&lens, &c).unwrap();
        let mut seen: Vec<usize> = part.placements.iter().map(|p| p.seq_index).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..lens.len()).collect::<Vec<_>>());
        for p in &part.placements {
            assert_eq!(p.len, lens[p.seq_index]);
        }
        as_plan(&part).validate(8).unwrap();
    }

    #[test]
    fn tiny_batch_stays_local() {
        let lens = vec![100, 200, 300];
        let part = partition(&lens, &cfg(2, 4, 4096)).unwrap();
        assert!(part.placements.iter().all(|p| p.zone == Zone::Local));
        assert!(part.placements.iter().all(|p| p.ranks.len() == 1));
    }

    #[test]
    fn giant_sequence_spans_nodes() {
        // One sequence bigger than a node's capacity must go inter-node.
        let lens = vec![40_000];
        let part = partition(&lens, &cfg(4, 4, 4096)).unwrap();
        assert_eq!(part.placements.len(), 1);
        let p = &part.placements[0];
        assert_eq!(p.zone, Zone::InterNode);
        // 40k over 4k-capacity nodes of 4 GPUs (16k/node): needs >= 3 nodes.
        assert!(p.ranks.len() >= 3 * 4, "ranks {:?}", p.ranks);
        // Node-major ring: consecutive ranks share nodes.
        let nodes: Vec<usize> = p.ranks.iter().map(|r| r / 4).collect();
        let mut deduped = nodes.clone();
        deduped.dedup();
        let mut sorted = deduped.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(deduped.len(), sorted.len(), "ring must be node-major");
    }

    #[test]
    fn medium_sequences_fragment_within_node() {
        // 12k sequences with 4k capacity: must span >= 3 devices.
        let lens = vec![12_000, 500, 400];
        let part = partition(&lens, &cfg(1, 8, 4096)).unwrap();
        let big = part.placements.iter().find(|p| p.seq_index == 0).unwrap();
        assert_eq!(big.zone, Zone::IntraNode);
        assert!(big.ranks.len() >= 3);
        as_plan(&part).validate(8).unwrap();
    }

    #[test]
    fn capacity_is_respected_per_rank() {
        let lens = vec![
            30_000, 14_000, 8_000, 5_000, 2_000, 2_000, 1_000, 900, 800, 50,
        ];
        let c = cfg(2, 4, 10_000);
        let part = partition(&lens, &c).unwrap();
        let plan = as_plan(&part);
        let tokens = plan.tokens_per_rank(8, 0);
        for (r, &t) in tokens.iter().enumerate() {
            // Fragment rounding may exceed L by a handful of tokens.
            assert!(
                t <= c.capacity + 64,
                "rank {r} holds {t} > capacity {}",
                c.capacity
            );
        }
        assert_eq!(tokens.iter().sum::<u64>(), plan.total_tokens());
    }

    #[test]
    fn over_capacity_is_rejected() {
        let lens = vec![10_000; 10];
        let err = partition(&lens, &cfg(1, 2, 4096)).unwrap_err();
        assert!(matches!(err, PlanError::OverCapacity { .. }));
    }

    #[test]
    fn threshold_s1_descends_when_nodes_overflow() {
        // Three 5k sequences on a 2-node cluster with 8192-token node
        // capacity: whole placement overflows a node (5k + 5k > 8192),
        // forcing the threshold to drop to 5000 and sequences to chunk.
        let lens = vec![5_000; 3];
        let c = cfg(2, 2, 4096);
        let part = partition(&lens, &c).unwrap();
        assert!(part.s1 <= 5_000, "s1 {}", part.s1);
        as_plan(&part).validate(4).unwrap();
        let total: u64 = part.placements.iter().map(|p| p.len).sum();
        assert_eq!(total, 15_000);
        // Per-rank capacity holds after refinement.
        let tokens = as_plan(&part).tokens_per_rank(4, 0);
        for &t in &tokens {
            assert!(t <= 4096 + 16, "rank holds {t}");
        }
    }

    #[test]
    fn short_heavy_batch_avoids_internode_rings() {
        // Many short sequences fitting comfortably: no inter-node zone.
        let lens = vec![1000; 32];
        let part = partition(&lens, &cfg(2, 4, 16_384)).unwrap();
        assert!(part.placements.iter().all(|p| p.zone != Zone::InterNode));
    }

    #[test]
    fn empty_batch_is_fine() {
        let part = partition(&[], &cfg(2, 4, 4096)).unwrap();
        assert!(part.placements.is_empty());
    }

    #[test]
    fn degenerate_config_is_rejected() {
        assert!(partition(&[10], &cfg(0, 4, 4096)).is_err());
        assert!(partition(&[10], &cfg(2, 0, 4096)).is_err());
        assert!(partition(&[10], &cfg(2, 4, 0)).is_err());
    }

    #[test]
    fn node_loads_are_balanced_for_uniform_batches() {
        let lens = vec![2000; 16];
        let c = cfg(4, 2, 16_384);
        let part = partition(&lens, &c).unwrap();
        let plan = as_plan(&part);
        let tokens = plan.tokens_per_rank(8, 0);
        let per_node: Vec<u64> = (0..4).map(|n| tokens[n * 2] + tokens[n * 2 + 1]).collect();
        let max = per_node.iter().max().unwrap();
        let min = per_node.iter().min().unwrap();
        assert!(max - min <= 2000, "node loads {per_node:?}");
    }

    #[test]
    fn determinism() {
        let lens = vec![9_000, 100, 42_000, 3_000, 3_000, 777];
        let c = cfg(2, 4, 8_192);
        assert_eq!(partition(&lens, &c).unwrap(), partition(&lens, &c).unwrap());
    }
}

//! Zigzag chunk geometry and per-round ring-attention cost accounting.
//!
//! A sequence executed by a ring group of size `G` is cut into `2G` equal
//! chunks; ring position `i` owns chunks `i` and `2G-1-i` (§3.2, following
//! striped/zigzag ring attention). Under the causal mask this pairing gives
//! every position the same total attending-pair count (±rounding), unlike
//! contiguous splitting where the last rank does `~2×` the work of average.
//!
//! Ring execution runs `G` rounds: in round `r`, position `p` computes its
//! query chunks against the KV chunks originally owned by position
//! `(p - r) mod G`, while sending the KV it currently holds to `p + 1`.
//! All cost queries here are exact (integer causal-pair counting).

use zeppelin_model::config::ModelConfig;
use zeppelin_model::flops::{attention_block_flops, flops_per_pair};
use zeppelin_model::memory::kv_bytes;

/// A chunk of a sequence: global token offset and length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// First global token index of the chunk.
    pub offset: u64,
    /// Chunk length in tokens.
    pub len: u64,
}

/// Offsets/lengths of all `2G` chunks of a sequence of length `len`.
///
/// Remainder tokens go to the lowest-index chunks, keeping sizes within one
/// token of each other.
///
/// # Panics
///
/// Panics if `g == 0`.
pub fn chunks(len: u64, g: usize) -> Vec<Chunk> {
    assert!(g > 0, "ring group must be non-empty");
    let n = 2 * g as u64;
    let base = len / n;
    let rem = len % n;
    let mut out = Vec::with_capacity(n as usize);
    let mut offset = 0;
    for c in 0..n {
        let l = base + u64::from(c < rem);
        out.push(Chunk { offset, len: l });
        offset += l;
    }
    out
}

/// The two chunks owned by ring position `i` (zigzag pairing).
///
/// # Panics
///
/// Panics if `i >= g`.
pub fn position_chunks(len: u64, g: usize, i: usize) -> [Chunk; 2] {
    assert!(i < g, "position {i} out of ring of size {g}");
    let all = chunks(len, g);
    [all[i], all[2 * g - 1 - i]]
}

/// Ring source position whose KV reaches `position` in `round`.
pub fn kv_source(g: usize, position: usize, round: usize) -> usize {
    debug_assert!(position < g && round < g);
    (position + g - round % g) % g
}

/// Attention FLOPs of query position `q_pos` against the KV chunks owned by
/// position `kv_pos` (both zigzag positions of a group of size `g`).
pub fn position_pair_flops(
    cfg: &ModelConfig,
    len: u64,
    g: usize,
    q_pos: usize,
    kv_pos: usize,
) -> f64 {
    let q = position_chunks(len, g, q_pos);
    let kv = position_chunks(len, g, kv_pos);
    let mut flops = 0.0;
    for qc in q {
        for kc in kv {
            flops += attention_block_flops(cfg, qc.offset, qc.len, kc.offset, kc.len);
        }
    }
    flops
}

/// Attention FLOPs computed by `position` in `round` of a ring of size `g`
/// over a sequence of length `len`.
pub fn ring_round_flops(
    cfg: &ModelConfig,
    len: u64,
    g: usize,
    position: usize,
    round: usize,
) -> f64 {
    position_pair_flops(cfg, len, g, position, kv_source(g, position, round))
}

/// Tokens owned by a zigzag position (`position_chunks` total).
pub fn position_tokens(len: u64, g: usize, position: usize) -> u64 {
    position_chunks(len, g, position)
        .iter()
        .map(|c| c.len)
        .sum()
}

/// Tokens of KV that `position` holds (and sends onward) at `round`.
pub fn ring_round_kv_tokens(len: u64, g: usize, position: usize, round: usize) -> u64 {
    let src = kv_source(g, position, round);
    position_chunks(len, g, src).iter().map(|c| c.len).sum()
}

/// Bytes of KV that `position` sends to its neighbour after `round`.
pub fn ring_round_kv_bytes(
    cfg: &ModelConfig,
    len: u64,
    g: usize,
    position: usize,
    round: usize,
) -> f64 {
    kv_bytes(cfg, ring_round_kv_tokens(len, g, position, round))
}

/// Total attention FLOPs of ring position `i` across all `g` rounds.
pub fn position_total_flops(cfg: &ModelConfig, len: u64, g: usize, i: usize) -> f64 {
    (0..g).map(|r| ring_round_flops(cfg, len, g, i, r)).sum()
}

/// Attention FLOPs of a *contiguously* split position (non-zigzag): ring
/// position `i` owning the single contiguous chunk `i` of `g`. Used by the
/// chunking ablation to quantify what zigzag buys.
pub fn contiguous_position_flops(cfg: &ModelConfig, len: u64, g: usize, i: usize) -> f64 {
    assert!(i < g, "position out of range");
    let base = len / g as u64;
    let rem = len % g as u64;
    let my_len = base + u64::from((i as u64) < rem);
    let my_off: u64 = (0..i as u64).map(|c| base + u64::from(c < rem)).sum();
    // Position i attends to every earlier token plus its own causal block.
    (my_off * my_len) as f64 * flops_per_pair(cfg)
        + attention_block_flops(cfg, my_off, my_len, my_off, my_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeppelin_model::config::llama_7b;
    use zeppelin_model::flops::attention_seq_flops;

    #[test]
    fn chunks_partition_the_sequence() {
        for len in [0u64, 1, 7, 100, 1000, 4097] {
            for g in [1usize, 2, 3, 8] {
                let cs = chunks(len, g);
                assert_eq!(cs.len(), 2 * g);
                assert_eq!(cs.iter().map(|c| c.len).sum::<u64>(), len);
                let mut expected_off = 0;
                for c in &cs {
                    assert_eq!(c.offset, expected_off);
                    expected_off += c.len;
                }
            }
        }
    }

    #[test]
    fn round_flops_decompose_exactly() {
        let cfg = llama_7b();
        for len in [64u64, 1000, 4096] {
            for g in [1usize, 2, 4, 8] {
                let total: f64 = (0..g)
                    .flat_map(|p| (0..g).map(move |r| (p, r)))
                    .map(|(p, r)| ring_round_flops(&cfg, len, g, p, r))
                    .sum();
                let expected = attention_seq_flops(&cfg, len);
                assert!(
                    (total - expected).abs() / expected < 1e-12,
                    "len {len} g {g}: {total} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn zigzag_balances_positions() {
        let cfg = llama_7b();
        let len = 8192;
        let g = 8;
        let per: Vec<f64> = (0..g)
            .map(|i| position_total_flops(&cfg, len, g, i))
            .collect();
        let max = per.iter().cloned().fold(0.0f64, f64::max);
        let min = per.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            (max - min) / max < 0.01,
            "zigzag imbalance too high: {per:?}"
        );
    }

    #[test]
    fn contiguous_split_is_imbalanced() {
        let cfg = llama_7b();
        let len = 8192;
        let g = 8;
        let per: Vec<f64> = (0..g)
            .map(|i| contiguous_position_flops(&cfg, len, g, i))
            .collect();
        // Last rank does far more than the first.
        assert!(per[g - 1] > 5.0 * per[0], "{per:?}");
        // But totals agree with the causal sequence cost.
        let total: f64 = per.iter().sum();
        let expected = attention_seq_flops(&cfg, len);
        assert!((total - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn kv_rotation_visits_every_source_once() {
        let g = 8;
        for p in 0..g {
            let mut seen: Vec<usize> = (0..g).map(|r| kv_source(g, p, r)).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..g).collect::<Vec<_>>());
        }
    }

    #[test]
    fn round_zero_uses_own_kv() {
        assert_eq!(kv_source(8, 3, 0), 3);
        assert_eq!(kv_source(8, 3, 1), 2);
        assert_eq!(kv_source(8, 0, 1), 7);
    }

    #[test]
    fn kv_tokens_conserved_per_round() {
        // In any round, the KV chunks in flight across positions cover the
        // whole sequence exactly once.
        let len = 10000;
        let g = 4;
        for r in 0..g {
            let total: u64 = (0..g).map(|p| ring_round_kv_tokens(len, g, p, r)).sum();
            assert_eq!(total, len);
        }
    }

    #[test]
    fn kv_bytes_use_model_width() {
        let cfg = llama_7b();
        let b = ring_round_kv_bytes(&cfg, 4096, 4, 0, 0);
        let tokens = ring_round_kv_tokens(4096, 4, 0, 0);
        assert!((b - 2.0 * tokens as f64 * 4096.0 * 2.0).abs() < 1.0);
    }

    #[test]
    fn single_rank_ring_degenerates_to_local() {
        let cfg = llama_7b();
        let f = ring_round_flops(&cfg, 1000, 1, 0, 0);
        let expected = attention_seq_flops(&cfg, 1000);
        assert!((f - expected).abs() / expected < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of ring")]
    fn bad_position_panics() {
        position_chunks(100, 4, 4);
    }
}

//! Zigzag chunk geometry and per-round ring-attention cost accounting.
//!
//! A sequence executed by a ring group of size `G` is cut into `2G` equal
//! chunks; ring position `i` owns chunks `i` and `2G-1-i` (§3.2, following
//! striped/zigzag ring attention). Under the causal mask this pairing gives
//! every position the same total attending-pair count (±rounding), unlike
//! contiguous splitting where the last rank does `~2×` the work of average.
//!
//! Ring execution runs `G` rounds: in round `r`, position `p` computes its
//! query chunks against the KV chunks originally owned by position
//! `(p - r) mod G`, while sending the KV it currently holds to `p + 1`.
//! All cost queries here are exact (integer causal-pair counting).

use zeppelin_model::config::ModelConfig;
use zeppelin_model::flops::{attention_block_flops, flops_per_pair};
use zeppelin_model::memory::kv_bytes;

/// A chunk of a sequence: global token offset and length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// First global token index of the chunk.
    pub offset: u64,
    /// Chunk length in tokens.
    pub len: u64,
}

/// Offsets/lengths of all `2G` chunks of a sequence of length `len`.
///
/// Remainder tokens go to the lowest-index chunks, keeping sizes within one
/// token of each other.
///
/// Degenerate case: when `len < 2G` there are not enough tokens for every
/// chunk, so trailing chunks have length zero. Zero-length chunks are
/// first-class citizens of the geometry — they carry zero cost through every
/// query in this module (zero attention FLOPs, zero KV tokens/bytes) and
/// ring rounds still conserve tokens exactly.
///
/// # Panics
///
/// Panics if `g == 0`.
pub fn chunks(len: u64, g: usize) -> Vec<Chunk> {
    assert!(g > 0, "ring group must be non-empty");
    let n = 2 * g as u64;
    let base = len / n;
    let rem = len % n;
    let mut out = Vec::with_capacity(n as usize);
    let mut offset = 0;
    for c in 0..n {
        let l = base + u64::from(c < rem);
        out.push(Chunk { offset, len: l });
        offset += l;
    }
    out
}

/// Fixed-point quantum for per-position speed weights: speeds are stored as
/// `round(speed * 1024)` so plans stay exactly representable, hashable, and
/// byte-identical across replays. Matches the serving cache-key quantum so a
/// plan and its cache entry never disagree about what "the same speeds" means.
pub const SPEED_WEIGHT_QUANTUM: f64 = 1024.0;

/// Quantizes one relative speed to a fixed-point chunk weight (min 1).
///
/// # Panics
///
/// Panics if `speed` is non-finite or not positive.
pub fn quantize_speed(speed: f64) -> u32 {
    assert!(
        speed.is_finite() && speed > 0.0,
        "rank speed must be positive and finite, got {speed}"
    );
    ((speed * SPEED_WEIGHT_QUANTUM).round() as u32).max(1)
}

/// Quantizes a relative-speed vector to fixed-point chunk weights.
///
/// # Panics
///
/// Panics if any speed is non-finite or not positive.
pub fn quantize_speeds(speeds: &[f64]) -> Vec<u32> {
    speeds.iter().map(|&s| quantize_speed(s)).collect()
}

/// Speed-proportional zigzag chunking: cuts the `2G` chunks so each ring
/// position's token share is proportional to its relative speed, with the
/// zigzag pairing intact (position `i` still owns chunks `i` and `2G-1-i`,
/// both sized by `speeds[i]`). Slow positions get shorter chunks; remainder
/// tokens go to the fastest positions.
///
/// `speeds` is per ring *position* (length `g`); an empty slice means
/// homogeneous and returns [`chunks`] exactly. Uniform speeds (all equal
/// after fixed-point quantization — see [`SPEED_WEIGHT_QUANTUM`]) are
/// bit-identical to [`chunks`].
///
/// # Panics
///
/// Panics if `g == 0`, if `speeds` is non-empty with length `!= g`, or if
/// any speed is non-finite or not positive.
pub fn chunks_weighted(len: u64, g: usize, speeds: &[f64]) -> Vec<Chunk> {
    if speeds.is_empty() {
        return chunks(len, g);
    }
    assert_eq!(
        speeds.len(),
        g,
        "speed vector must cover every ring position"
    );
    chunks_with_weights(len, g, &quantize_speeds(speeds))
}

/// [`chunks_weighted`] on already-quantized fixed-point weights (one per
/// ring position). This is the form plans carry, so the scheduler, the
/// validator, and the executor all cut from the same integers.
///
/// Allocation is exact largest-remainder: chunk `c` (owned by position
/// `min(c, 2G-1-c)`) gets `floor(len * w_c / W)` tokens, and the leftover
/// `< 2G` tokens go to the chunks with the largest fractional remainders,
/// ties broken toward the higher weight then the lower chunk index. Every
/// chunk is therefore within one token of its exact proportional share.
///
/// An empty `weights` slice, or one where all weights are equal, delegates
/// to [`chunks`] bit-identically.
///
/// # Panics
///
/// Panics if `g == 0`, if `weights` is non-empty with length `!= g`, or if
/// any weight is zero.
pub fn chunks_with_weights(len: u64, g: usize, weights: &[u32]) -> Vec<Chunk> {
    assert!(g > 0, "ring group must be non-empty");
    if weights.is_empty() || weights.iter().all(|&w| w == weights[0]) {
        return chunks(len, g);
    }
    assert_eq!(weights.len(), g, "weights must cover every ring position");
    assert!(weights.iter().all(|&w| w > 0), "weights must be positive");
    let n = 2 * g;
    let w_of = |c: usize| u128::from(weights[c.min(n - 1 - c)]);
    let total_w: u128 = (0..n).map(w_of).sum();
    let mut lens: Vec<u64> = Vec::with_capacity(n);
    // (fractional remainder, weight, chunk index) for leftover distribution.
    let mut rems: Vec<(u128, u128, usize)> = Vec::with_capacity(n);
    let mut assigned: u64 = 0;
    for c in 0..n {
        let exact = u128::from(len) * w_of(c);
        let l = (exact / total_w) as u64;
        lens.push(l);
        assigned += l;
        rems.push((exact % total_w, w_of(c), c));
    }
    // Floors lose strictly less than one token each, so leftover < 2G.
    let mut leftover = len - assigned;
    rems.sort_by(|a, b| b.0.cmp(&a.0).then(b.1.cmp(&a.1)).then(a.2.cmp(&b.2)));
    for &(_, _, c) in &rems {
        if leftover == 0 {
            break;
        }
        lens[c] += 1;
        leftover -= 1;
    }
    let mut out = Vec::with_capacity(n);
    let mut offset = 0;
    for &l in &lens {
        out.push(Chunk { offset, len: l });
        offset += l;
    }
    out
}

/// The two chunks owned by ring position `i` (zigzag pairing).
///
/// # Panics
///
/// Panics if `i >= g`.
pub fn position_chunks(len: u64, g: usize, i: usize) -> [Chunk; 2] {
    assert!(i < g, "position {i} out of ring of size {g}");
    let all = chunks(len, g);
    [all[i], all[2 * g - 1 - i]]
}

/// [`position_chunks`] under per-position weights (empty = uniform).
///
/// # Panics
///
/// Panics if `i >= g` or the weights are malformed (see
/// [`chunks_with_weights`]).
pub fn position_chunks_weighted(len: u64, g: usize, weights: &[u32], i: usize) -> [Chunk; 2] {
    assert!(i < g, "position {i} out of ring of size {g}");
    let all = chunks_with_weights(len, g, weights);
    [all[i], all[2 * g - 1 - i]]
}

/// Ring source position whose KV reaches `position` in `round`.
pub fn kv_source(g: usize, position: usize, round: usize) -> usize {
    debug_assert!(position < g && round < g);
    (position + g - round % g) % g
}

/// Attention FLOPs of query position `q_pos` against the KV chunks owned by
/// position `kv_pos` (both zigzag positions of a group of size `g`).
pub fn position_pair_flops(
    cfg: &ModelConfig,
    len: u64,
    g: usize,
    q_pos: usize,
    kv_pos: usize,
) -> f64 {
    let q = position_chunks(len, g, q_pos);
    let kv = position_chunks(len, g, kv_pos);
    let mut flops = 0.0;
    for qc in q {
        for kc in kv {
            flops += attention_block_flops(cfg, qc.offset, qc.len, kc.offset, kc.len);
        }
    }
    flops
}

/// Attention FLOPs computed by `position` in `round` of a ring of size `g`
/// over a sequence of length `len`.
pub fn ring_round_flops(
    cfg: &ModelConfig,
    len: u64,
    g: usize,
    position: usize,
    round: usize,
) -> f64 {
    position_pair_flops(cfg, len, g, position, kv_source(g, position, round))
}

/// Tokens owned by a zigzag position (`position_chunks` total).
pub fn position_tokens(len: u64, g: usize, position: usize) -> u64 {
    position_chunks(len, g, position)
        .iter()
        .map(|c| c.len)
        .sum()
}

/// Tokens of KV that `position` holds (and sends onward) at `round`.
pub fn ring_round_kv_tokens(len: u64, g: usize, position: usize, round: usize) -> u64 {
    let src = kv_source(g, position, round);
    position_chunks(len, g, src).iter().map(|c| c.len).sum()
}

/// Bytes of KV that `position` sends to its neighbour after `round`.
pub fn ring_round_kv_bytes(
    cfg: &ModelConfig,
    len: u64,
    g: usize,
    position: usize,
    round: usize,
) -> f64 {
    kv_bytes(cfg, ring_round_kv_tokens(len, g, position, round))
}

/// Total attention FLOPs of ring position `i` across all `g` rounds.
pub fn position_total_flops(cfg: &ModelConfig, len: u64, g: usize, i: usize) -> f64 {
    (0..g).map(|r| ring_round_flops(cfg, len, g, i, r)).sum()
}

/// [`position_pair_flops`] under per-position weights (empty = uniform).
pub fn position_pair_flops_weighted(
    cfg: &ModelConfig,
    len: u64,
    g: usize,
    weights: &[u32],
    q_pos: usize,
    kv_pos: usize,
) -> f64 {
    let q = position_chunks_weighted(len, g, weights, q_pos);
    let kv = position_chunks_weighted(len, g, weights, kv_pos);
    let mut flops = 0.0;
    for qc in q {
        for kc in kv {
            flops += attention_block_flops(cfg, qc.offset, qc.len, kc.offset, kc.len);
        }
    }
    flops
}

/// [`ring_round_flops`] under per-position weights (empty = uniform).
pub fn ring_round_flops_weighted(
    cfg: &ModelConfig,
    len: u64,
    g: usize,
    weights: &[u32],
    position: usize,
    round: usize,
) -> f64 {
    position_pair_flops_weighted(
        cfg,
        len,
        g,
        weights,
        position,
        kv_source(g, position, round),
    )
}

/// [`position_tokens`] under per-position weights (empty = uniform).
pub fn position_tokens_weighted(len: u64, g: usize, weights: &[u32], position: usize) -> u64 {
    position_chunks_weighted(len, g, weights, position)
        .iter()
        .map(|c| c.len)
        .sum()
}

/// [`ring_round_kv_tokens`] under per-position weights (empty = uniform).
pub fn ring_round_kv_tokens_weighted(
    len: u64,
    g: usize,
    weights: &[u32],
    position: usize,
    round: usize,
) -> u64 {
    let src = kv_source(g, position, round);
    position_tokens_weighted(len, g, weights, src)
}

/// [`ring_round_kv_bytes`] under per-position weights (empty = uniform).
pub fn ring_round_kv_bytes_weighted(
    cfg: &ModelConfig,
    len: u64,
    g: usize,
    weights: &[u32],
    position: usize,
    round: usize,
) -> f64 {
    kv_bytes(
        cfg,
        ring_round_kv_tokens_weighted(len, g, weights, position, round),
    )
}

/// [`position_total_flops`] under per-position weights (empty = uniform).
pub fn position_total_flops_weighted(
    cfg: &ModelConfig,
    len: u64,
    g: usize,
    weights: &[u32],
    i: usize,
) -> f64 {
    (0..g)
        .map(|r| ring_round_flops_weighted(cfg, len, g, weights, i, r))
        .sum()
}

/// Attention FLOPs of a *contiguously* split position (non-zigzag): ring
/// position `i` owning the single contiguous chunk `i` of `g`. Used by the
/// chunking ablation to quantify what zigzag buys.
pub fn contiguous_position_flops(cfg: &ModelConfig, len: u64, g: usize, i: usize) -> f64 {
    assert!(i < g, "position out of range");
    let base = len / g as u64;
    let rem = len % g as u64;
    let my_len = base + u64::from((i as u64) < rem);
    let my_off: u64 = (0..i as u64).map(|c| base + u64::from(c < rem)).sum();
    // Position i attends to every earlier token plus its own causal block.
    (my_off * my_len) as f64 * flops_per_pair(cfg)
        + attention_block_flops(cfg, my_off, my_len, my_off, my_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeppelin_model::config::llama_7b;
    use zeppelin_model::flops::attention_seq_flops;

    #[test]
    fn chunks_partition_the_sequence() {
        for len in [0u64, 1, 7, 100, 1000, 4097] {
            for g in [1usize, 2, 3, 8] {
                let cs = chunks(len, g);
                assert_eq!(cs.len(), 2 * g);
                assert_eq!(cs.iter().map(|c| c.len).sum::<u64>(), len);
                let mut expected_off = 0;
                for c in &cs {
                    assert_eq!(c.offset, expected_off);
                    expected_off += c.len;
                }
            }
        }
    }

    #[test]
    fn round_flops_decompose_exactly() {
        let cfg = llama_7b();
        for len in [64u64, 1000, 4096] {
            for g in [1usize, 2, 4, 8] {
                let total: f64 = (0..g)
                    .flat_map(|p| (0..g).map(move |r| (p, r)))
                    .map(|(p, r)| ring_round_flops(&cfg, len, g, p, r))
                    .sum();
                let expected = attention_seq_flops(&cfg, len);
                assert!(
                    (total - expected).abs() / expected < 1e-12,
                    "len {len} g {g}: {total} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn zigzag_balances_positions() {
        let cfg = llama_7b();
        let len = 8192;
        let g = 8;
        let per: Vec<f64> = (0..g)
            .map(|i| position_total_flops(&cfg, len, g, i))
            .collect();
        let max = per.iter().cloned().fold(0.0f64, f64::max);
        let min = per.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            (max - min) / max < 0.01,
            "zigzag imbalance too high: {per:?}"
        );
    }

    #[test]
    fn contiguous_split_is_imbalanced() {
        let cfg = llama_7b();
        let len = 8192;
        let g = 8;
        let per: Vec<f64> = (0..g)
            .map(|i| contiguous_position_flops(&cfg, len, g, i))
            .collect();
        // Last rank does far more than the first.
        assert!(per[g - 1] > 5.0 * per[0], "{per:?}");
        // But totals agree with the causal sequence cost.
        let total: f64 = per.iter().sum();
        let expected = attention_seq_flops(&cfg, len);
        assert!((total - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn kv_rotation_visits_every_source_once() {
        let g = 8;
        for p in 0..g {
            let mut seen: Vec<usize> = (0..g).map(|r| kv_source(g, p, r)).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..g).collect::<Vec<_>>());
        }
    }

    #[test]
    fn round_zero_uses_own_kv() {
        assert_eq!(kv_source(8, 3, 0), 3);
        assert_eq!(kv_source(8, 3, 1), 2);
        assert_eq!(kv_source(8, 0, 1), 7);
    }

    #[test]
    fn kv_tokens_conserved_per_round() {
        // In any round, the KV chunks in flight across positions cover the
        // whole sequence exactly once.
        let len = 10000;
        let g = 4;
        for r in 0..g {
            let total: u64 = (0..g).map(|p| ring_round_kv_tokens(len, g, p, r)).sum();
            assert_eq!(total, len);
        }
    }

    #[test]
    fn kv_bytes_use_model_width() {
        let cfg = llama_7b();
        let b = ring_round_kv_bytes(&cfg, 4096, 4, 0, 0);
        let tokens = ring_round_kv_tokens(4096, 4, 0, 0);
        assert!((b - 2.0 * tokens as f64 * 4096.0 * 2.0).abs() < 1.0);
    }

    #[test]
    fn single_rank_ring_degenerates_to_local() {
        let cfg = llama_7b();
        let f = ring_round_flops(&cfg, 1000, 1, 0, 0);
        let expected = attention_seq_flops(&cfg, 1000);
        assert!((f - expected).abs() / expected < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of ring")]
    fn bad_position_panics() {
        position_chunks(100, 4, 4);
    }

    #[test]
    fn short_sequences_yield_zero_length_chunks_with_zero_cost() {
        // len < 2G: trailing chunks are zero-length and every cost query
        // treats them as free while rounds still conserve tokens.
        let cfg = llama_7b();
        for (len, g) in [(3u64, 4usize), (1, 8), (0, 4), (7, 16)] {
            let cs = chunks(len, g);
            assert_eq!(cs.iter().map(|c| c.len).sum::<u64>(), len);
            assert!(cs.iter().any(|c| c.len == 0), "len {len} g {g}");
            for r in 0..g {
                let kv: u64 = (0..g).map(|p| ring_round_kv_tokens(len, g, p, r)).sum();
                assert_eq!(kv, len, "round {r} len {len} g {g}");
            }
            let total: f64 = (0..g).map(|i| position_total_flops(&cfg, len, g, i)).sum();
            let expected = attention_seq_flops(&cfg, len);
            assert!((total - expected).abs() <= expected * 1e-9 + 1e-9);
            // Positions owning only zero-length chunks are exactly free.
            for i in 0..g {
                if position_tokens(len, g, i) == 0 {
                    assert_eq!(position_total_flops(&cfg, len, g, i), 0.0);
                    assert_eq!(ring_round_kv_bytes(&cfg, len, g, i, 0), 0.0);
                }
            }
        }
    }

    #[test]
    fn weighted_chunks_partition_and_favor_fast_positions() {
        let weights = [1024u32, 512, 2048, 1024];
        let cs = chunks_with_weights(10_000, 4, &weights);
        assert_eq!(cs.len(), 8);
        assert_eq!(cs.iter().map(|c| c.len).sum::<u64>(), 10_000);
        let mut offset = 0;
        for c in &cs {
            assert_eq!(c.offset, offset);
            offset += c.len;
        }
        let per: Vec<u64> = (0..4)
            .map(|i| position_tokens_weighted(10_000, 4, &weights, i))
            .collect();
        // Position shares track the weight ratios: slow < uniform < fast.
        assert!(per[1] < per[0] && per[0] < per[2], "{per:?}");
        assert_eq!(per[0], per[3]);
        // Each position is within one token per chunk of its exact share.
        let wtot: u128 = weights.iter().map(|&w| 2 * u128::from(w)).sum();
        for (i, &t) in per.iter().enumerate() {
            let lhs = u128::from(t) * wtot;
            let rhs = 10_000u128 * 2 * u128::from(weights[i]);
            assert!(lhs.abs_diff(rhs) <= 2 * wtot, "position {i}: {per:?}");
        }
    }

    #[test]
    fn uniform_weights_are_bit_identical_to_unweighted() {
        for len in [0u64, 3, 1000, 4097] {
            for g in [1usize, 2, 5, 8] {
                assert_eq!(chunks_with_weights(len, g, &[]), chunks(len, g));
                assert_eq!(chunks_with_weights(len, g, &vec![777; g]), chunks(len, g));
                assert_eq!(chunks_weighted(len, g, &vec![0.25; g]), chunks(len, g));
            }
        }
    }

    #[test]
    fn weighted_rounds_conserve_flops_and_kv() {
        let cfg = llama_7b();
        let weights = [1024u32, 307, 2048, 1024, 512, 716];
        let (len, g) = (9_001u64, 6usize);
        let total: f64 = (0..g)
            .flat_map(|p| (0..g).map(move |r| (p, r)))
            .map(|(p, r)| ring_round_flops_weighted(&cfg, len, g, &weights, p, r))
            .sum();
        let expected = attention_seq_flops(&cfg, len);
        assert!(
            (total - expected).abs() / expected < 1e-12,
            "{total} vs {expected}"
        );
        for r in 0..g {
            let kv: u64 = (0..g)
                .map(|p| ring_round_kv_tokens_weighted(len, g, &weights, p, r))
                .sum();
            assert_eq!(kv, len);
        }
    }

    #[test]
    fn extreme_skew_starves_slow_positions_without_underflow() {
        // A 1024:1 weight ratio on a short sequence: the slow position ends
        // up with zero tokens and zero cost, fast positions absorb the rest.
        let cfg = llama_7b();
        let weights = [1024u32, 1, 1024, 1024];
        let len = 5u64;
        let cs = chunks_with_weights(len, 4, &weights);
        assert_eq!(cs.iter().map(|c| c.len).sum::<u64>(), len);
        assert_eq!(position_tokens_weighted(len, 4, &weights, 1), 0);
        assert_eq!(
            position_total_flops_weighted(&cfg, len, 4, &weights, 1),
            0.0
        );
        let total: u64 = (0..4)
            .map(|i| position_tokens_weighted(len, 4, &weights, i))
            .sum();
        assert_eq!(total, len);
    }

    #[test]
    fn quantization_is_stable_and_bounded() {
        assert_eq!(quantize_speed(1.0), 1024);
        assert_eq!(quantize_speed(0.5), 512);
        // Sub-quantum speeds clamp to the minimum weight instead of zero.
        assert_eq!(quantize_speed(1e-9), 1);
        assert_eq!(quantize_speeds(&[1.0, 0.25]), vec![1024, 256]);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn non_finite_speed_panics() {
        quantize_speed(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "cover every ring position")]
    fn short_weight_vector_panics() {
        chunks_weighted(100, 4, &[1.0, 0.5]);
    }
}

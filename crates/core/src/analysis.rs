//! Static plan analysis: per-rank cost and memory estimates without
//! running the simulator.
//!
//! The estimates use the same kernel model and exact causal-pair accounting
//! as the executor, so for compute they agree with the simulated trace *to
//! the nanosecond* (asserted by integration tests); communication estimates
//! are volumes, not times, because contention is the simulator's job. The
//! analyzer powers the CLI's `explain` output and the partitioner's
//! regression tests, and gives schedulers a cheap objective to compare
//! candidate plans.

// Per-rank and per-micro-batch tables are parallel arrays indexed in
// lockstep; iterator rewrites would obscure the accounting.
#![allow(clippy::needless_range_loop)]

use zeppelin_model::config::ModelConfig;
use zeppelin_model::flops::attention_seq_flops;
use zeppelin_model::kernel::KernelModel;
use zeppelin_model::memory::{activation_bytes_per_token, kv_bytes};
use zeppelin_sim::topology::ClusterSpec;

use crate::chunking::{position_total_flops, ring_round_flops, ring_round_kv_bytes};
use crate::plan::{AttnMode, IterationPlan, Zone};
use crate::validate::{cluster_violations, PlanViolation};

/// Per-rank static estimates for one iteration plan (forward direction).
#[derive(Debug, Clone, PartialEq)]
pub struct RankEstimate {
    /// Attention FLOPs executed by this rank.
    pub attn_flops: f64,
    /// Attention kernel seconds (same kernel model as the executor; exact).
    pub attn_secs: f64,
    /// Tokens this rank holds in the attention layout (all micro-batches'
    /// maximum).
    pub peak_tokens: u64,
    /// KV bytes this rank sends over intra-node links.
    pub intra_sent_bytes: f64,
    /// KV bytes this rank sends across nodes.
    pub inter_sent_bytes: f64,
}

/// Whole-plan static analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanAnalysis {
    /// Per-rank estimates.
    pub ranks: Vec<RankEstimate>,
    /// Sequence count per zone: `(local, intra, inter)`.
    pub zone_counts: (usize, usize, usize),
    /// Max over ranks of attention seconds — a lower bound on the simulated
    /// forward attention phase (communication can only add).
    pub attn_critical_secs: f64,
}

/// Analyzes `plan` for `model` on `cluster`.
///
/// # Panics
///
/// Panics if the plan fails the structural/cluster audit (out-of-range
/// ranks or micro-batches, empty rank lists, …). Untrusted plans should go
/// through [`try_analyze`] instead, which returns the violations.
///
/// # Examples
///
/// ```
/// use zeppelin_core::analysis::analyze;
/// use zeppelin_core::scheduler::{Scheduler, SchedulerCtx};
/// use zeppelin_core::zeppelin::Zeppelin;
/// use zeppelin_data::batch::Batch;
/// use zeppelin_model::config::llama_3b;
/// use zeppelin_sim::topology::cluster_a;
///
/// let cluster = cluster_a(2);
/// let ctx = SchedulerCtx::new(&cluster, &llama_3b());
/// let plan = Zeppelin::new()
///     .plan(&Batch::new(vec![30_000, 2_000, 500]), &ctx)
///     .unwrap();
/// let a = analyze(&plan, &llama_3b(), &cluster);
/// assert!(a.attn_imbalance() < 1.6);
/// assert!(a.fits(ctx.capacity + 64));
/// ```
pub fn analyze(plan: &IterationPlan, model: &ModelConfig, cluster: &ClusterSpec) -> PlanAnalysis {
    match try_analyze(plan, model, cluster) {
        Ok(a) => a,
        Err(v) => panic!(
            "analyze on an invalid plan: {}",
            crate::validate::report(&v)
        ),
    }
}

/// Audits `plan` against `cluster` and analyzes it if clean.
///
/// This is the panic-free entry point for plans from untrusted sources
/// (JSON files, the serving protocol): every indexing hazard in the
/// analysis body — out-of-range ranks, out-of-range micro-batches, empty
/// rank lists, hostile `micro_batches` counts — is rejected up front as a
/// typed [`PlanViolation`] list.
///
/// # Errors
///
/// Returns the violations found by
/// [`cluster_violations`](crate::validate::cluster_violations).
pub fn try_analyze(
    plan: &IterationPlan,
    model: &ModelConfig,
    cluster: &ClusterSpec,
) -> Result<PlanAnalysis, Vec<PlanViolation>> {
    let violations = cluster_violations(plan, cluster.total_gpus());
    if !violations.is_empty() {
        return Err(violations);
    }
    Ok(analyze_audited(plan, model, cluster))
}

/// The analysis body. Precondition (established by [`try_analyze`]): the
/// plan passed the cluster audit, so every rank and micro-batch index is in
/// range and every placement has at least one rank.
fn analyze_audited(
    plan: &IterationPlan,
    model: &ModelConfig,
    cluster: &ClusterSpec,
) -> PlanAnalysis {
    let kernel = KernelModel::attention();
    let peak = cluster.node.gpu.peak_flops;
    let nranks = cluster.total_gpus();
    let mut ranks = vec![
        RankEstimate {
            attn_flops: 0.0,
            attn_secs: 0.0,
            peak_tokens: 0,
            intra_sent_bytes: 0.0,
            inter_sent_bytes: 0.0,
        };
        nranks
    ];
    let mut mb_tokens: Vec<Vec<u64>> = vec![vec![0; plan.micro_batches]; nranks];
    // Local sequences fuse into one kernel per (rank, micro-batch), and
    // multi-rank placements with identical (ranks, mode, micro-batch) fuse
    // into one group execution — exactly as the executor lowers them, so
    // kernel launch counts (and thus seconds) match.
    let mut local_flops: Vec<Vec<f64>> = vec![vec![0.0; plan.micro_batches]; nranks];
    let mut zone_counts = (0usize, 0usize, 0usize);
    let mut groups: std::collections::BTreeMap<
        (Vec<usize>, u8, usize),
        Vec<&crate::plan::SeqPlacement>,
    > = std::collections::BTreeMap::new();

    for p in &plan.placements {
        match p.zone {
            Zone::Local => zone_counts.0 += 1,
            Zone::IntraNode => zone_counts.1 += 1,
            Zone::InterNode => zone_counts.2 += 1,
        }
        let g = p.ranks.len();
        for (pos, &rank) in p.ranks.iter().enumerate() {
            assert!(rank < nranks, "plan references rank {rank} outside cluster");
            mb_tokens[rank][p.micro_batch] += p.tokens_on_position(pos);
        }
        if g == 1 {
            local_flops[p.ranks[0]][p.micro_batch] += attention_seq_flops(model, p.len);
            continue;
        }
        let mode_key = match p.mode {
            AttnMode::Ring => 0u8,
            AttnMode::AllGather => 1,
            AttnMode::Ulysses => 2,
            AttnMode::DoubleRing => 3,
        };
        groups
            .entry((p.ranks.clone(), mode_key, p.micro_batch))
            .or_default()
            .push(p);
    }

    for ((group_ranks, _, _), members) in &groups {
        let g = group_ranks.len();
        let mode = members.first().expect("non-empty group").mode;
        let lens: Vec<u64> = members.iter().map(|p| p.len).collect();
        match mode {
            AttnMode::Ring | AttnMode::DoubleRing => {
                // Both visit every (query, kv) position pair exactly once;
                // per-round kernel costs sum identically. Only the sends'
                // locality differs: a node-major double ring crosses nodes
                // on (nodes-1) of its (G-1) hops instead of at every ring
                // boundary.
                let dr_cross_frac = (mode == AttnMode::DoubleRing)
                    .then(|| double_ring_cross_fraction(cluster, group_ranks))
                    .flatten();
                for (pos, &rank) in group_ranks.iter().enumerate() {
                    for round in 0..g {
                        let flops: f64 = lens
                            .iter()
                            .map(|&len| ring_round_flops(model, len, g, pos, round))
                            .sum();
                        ranks[rank].attn_flops += flops;
                        ranks[rank].attn_secs += kernel.kernel_time(flops, peak);
                    }
                    for round in 0..g - 1 {
                        let bytes: f64 = lens
                            .iter()
                            .map(|&len| ring_round_kv_bytes(model, len, g, pos, round))
                            .sum();
                        match dr_cross_frac {
                            Some(frac) => {
                                ranks[rank].inter_sent_bytes += bytes * frac;
                                ranks[rank].intra_sent_bytes += bytes * (1.0 - frac);
                            }
                            None => {
                                let next = group_ranks[(pos + 1) % g];
                                if cluster.same_node(rank, next) {
                                    ranks[rank].intra_sent_bytes += bytes;
                                } else {
                                    ranks[rank].inter_sent_bytes += bytes;
                                }
                            }
                        }
                    }
                }
            }
            AttnMode::AllGather => {
                for (pos, &rank) in group_ranks.iter().enumerate() {
                    let flops: f64 = lens
                        .iter()
                        .map(|&len| position_total_flops(model, len, g, pos))
                        .sum();
                    ranks[rank].attn_flops += flops;
                    ranks[rank].attn_secs += kernel.kernel_time(flops, peak);
                    for round in 0..g - 1 {
                        let bytes: f64 = lens
                            .iter()
                            .map(|&len| ring_round_kv_bytes(model, len, g, pos, round))
                            .sum();
                        let next = group_ranks[(pos + 1) % g];
                        if cluster.same_node(rank, next) {
                            ranks[rank].intra_sent_bytes += bytes;
                        } else {
                            ranks[rank].inter_sent_bytes += bytes;
                        }
                    }
                }
            }
            AttnMode::Ulysses => {
                let per_rank: f64 = lens
                    .iter()
                    .map(|&len| attention_seq_flops(model, len))
                    .sum::<f64>()
                    / g as f64;
                for &rank in group_ranks {
                    ranks[rank].attn_flops += per_rank;
                    ranks[rank].attn_secs += kernel.kernel_time(per_rank, peak);
                }
                // All-to-all: each rank exchanges ~4·shard·h/g per peer,
                // aggregated here by destination locality.
                let h_bytes = model.hidden as f64 * model.dtype_bytes as f64;
                for (pos, &rank) in group_ranks.iter().enumerate() {
                    let shard: f64 = members
                        .iter()
                        .map(|p| p.tokens_on_position(pos) as f64)
                        .sum();
                    for &peer in group_ranks.iter().filter(|&&q| q != rank) {
                        let bytes = 4.0 * shard * h_bytes / g as f64;
                        if cluster.same_node(rank, peer) {
                            ranks[rank].intra_sent_bytes += bytes;
                        } else {
                            ranks[rank].inter_sent_bytes += bytes;
                        }
                    }
                }
            }
        }
    }

    // Fold fused local kernels and resident peaks.
    for rank in 0..nranks {
        for mb in 0..plan.micro_batches {
            let flops = local_flops[rank][mb];
            if flops > 0.0 {
                ranks[rank].attn_flops += flops;
                ranks[rank].attn_secs += kernel.kernel_time(flops, peak);
            }
        }
        ranks[rank].peak_tokens = mb_tokens[rank].iter().copied().max().unwrap_or(0);
    }
    // All-gather placements hold the gathered KV transiently.
    for p in plan
        .placements
        .iter()
        .filter(|p| p.mode == AttnMode::AllGather)
    {
        let extra = (kv_bytes(model, p.len) / activation_bytes_per_token(model)).ceil() as u64;
        for &rank in &p.ranks {
            ranks[rank].peak_tokens += extra;
        }
    }

    let attn_critical_secs = ranks.iter().map(|r| r.attn_secs).fold(0.0, f64::max);
    PlanAnalysis {
        ranks,
        zone_counts,
        attn_critical_secs,
    }
}

/// Fraction of a double-ring position's sends that cross nodes, when the
/// group decomposes into equal node-major slices (else `None`: the executor
/// falls back to a plain ring).
fn double_ring_cross_fraction(cluster: &ClusterSpec, ranks: &[usize]) -> Option<f64> {
    let g = ranks.len();
    let mut node_order: Vec<usize> = Vec::new();
    for &r in ranks {
        let node = cluster.node_of(r);
        if node_order.last() != Some(&node) {
            node_order.push(node);
        }
    }
    let n = node_order.len();
    if n <= 1 || !g.is_multiple_of(n) {
        return None;
    }
    let m = g / n;
    let uniform = ranks
        .chunks(m)
        .enumerate()
        .all(|(a, slice)| slice.iter().all(|&r| cluster.node_of(r) == node_order[a]));
    uniform.then_some((n - 1) as f64 / (g - 1) as f64)
}

impl PlanAnalysis {
    /// Max/mean imbalance of attention seconds across ranks (1.0 = flat).
    pub fn attn_imbalance(&self) -> f64 {
        let total: f64 = self.ranks.iter().map(|r| r.attn_secs).sum();
        if total <= 0.0 {
            return 1.0;
        }
        let mean = total / self.ranks.len() as f64;
        self.attn_critical_secs / mean
    }

    /// Total inter-node KV bytes across ranks.
    pub fn total_inter_bytes(&self) -> f64 {
        self.ranks.iter().map(|r| r.inter_sent_bytes).sum()
    }

    /// Whether every rank's resident tokens fit `capacity`.
    pub fn fits(&self, capacity: u64) -> bool {
        self.ranks.iter().all(|r| r.peak_tokens <= capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanOptions, SeqPlacement};
    use zeppelin_model::config::llama_3b;
    use zeppelin_sim::topology::cluster_a;

    fn plan_of(placements: Vec<SeqPlacement>) -> IterationPlan {
        IterationPlan {
            scheduler: "analysis-test".into(),
            placements,
            options: PlanOptions::default(),
            micro_batches: 1,
            redundant_attn_frac: 0.0,
        }
    }

    fn seq(idx: usize, len: u64, ranks: Vec<usize>, zone: Zone, mode: AttnMode) -> SeqPlacement {
        SeqPlacement {
            seq_index: idx,
            len,
            zone,
            ranks,
            mode,
            micro_batch: 0,
            weights: Vec::new(),
        }
    }

    #[test]
    fn flops_are_conserved_across_modes() {
        let model = llama_3b();
        let cluster = cluster_a(2);
        let expected = attention_seq_flops(&model, 40_000);
        for mode in [
            AttnMode::Ring,
            AttnMode::AllGather,
            AttnMode::Ulysses,
            AttnMode::DoubleRing,
        ] {
            let plan = plan_of(vec![seq(
                0,
                40_000,
                (0..16).collect(),
                Zone::InterNode,
                mode,
            )]);
            let a = analyze(&plan, &model, &cluster);
            let total: f64 = a.ranks.iter().map(|r| r.attn_flops).sum();
            assert!(
                (total - expected).abs() / expected < 1e-9,
                "{mode:?}: {total} vs {expected}"
            );
        }
    }

    #[test]
    fn ring_and_double_ring_cost_the_same_statically() {
        let model = llama_3b();
        let cluster = cluster_a(2);
        let ring = analyze(
            &plan_of(vec![seq(
                0,
                40_000,
                (0..16).collect(),
                Zone::InterNode,
                AttnMode::Ring,
            )]),
            &model,
            &cluster,
        );
        let dr = analyze(
            &plan_of(vec![seq(
                0,
                40_000,
                (0..16).collect(),
                Zone::InterNode,
                AttnMode::DoubleRing,
            )]),
            &model,
            &cluster,
        );
        for (a, b) in ring.ranks.iter().zip(&dr.ranks) {
            assert!((a.attn_secs - b.attn_secs).abs() < 1e-12);
        }
        // But their locality split differs: double ring ships less cross-node.
        assert!(dr.total_inter_bytes() < ring.total_inter_bytes());
    }

    #[test]
    fn zone_counts_and_peaks() {
        let model = llama_3b();
        let cluster = cluster_a(2);
        let plan = plan_of(vec![
            seq(0, 1_000, vec![3], Zone::Local, AttnMode::Ring),
            seq(1, 8_000, vec![0, 1], Zone::IntraNode, AttnMode::Ring),
            seq(
                2,
                32_000,
                (0..16).collect(),
                Zone::InterNode,
                AttnMode::Ring,
            ),
        ]);
        let a = analyze(&plan, &model, &cluster);
        assert_eq!(a.zone_counts, (1, 1, 1));
        assert_eq!(a.ranks[3].peak_tokens, 1_000 + 2_000);
        assert_eq!(a.ranks[0].peak_tokens, 4_000 + 2_000);
        assert!(a.fits(8_192));
        assert!(!a.fits(4_000));
    }

    #[test]
    fn local_only_plans_have_no_comm() {
        let model = llama_3b();
        let cluster = cluster_a(1);
        let plan = plan_of(vec![
            seq(0, 4_000, vec![0], Zone::Local, AttnMode::Ring),
            seq(1, 4_000, vec![5], Zone::Local, AttnMode::Ring),
        ]);
        let a = analyze(&plan, &model, &cluster);
        assert_eq!(a.total_inter_bytes(), 0.0);
        assert!(a.ranks.iter().all(|r| r.intra_sent_bytes == 0.0));
        assert!(a.attn_critical_secs > 0.0);
    }

    #[test]
    fn imbalance_metric_flags_skew() {
        let model = llama_3b();
        let cluster = cluster_a(1);
        let skewed = analyze(
            &plan_of(vec![seq(0, 16_000, vec![0], Zone::Local, AttnMode::Ring)]),
            &model,
            &cluster,
        );
        assert!(skewed.attn_imbalance() > 7.0); // One of 8 ranks does it all.
        let flat = analyze(
            &plan_of(vec![seq(
                0,
                16_000,
                (0..8).collect(),
                Zone::IntraNode,
                AttnMode::Ring,
            )]),
            &model,
            &cluster,
        );
        assert!(flat.attn_imbalance() < 1.05);
    }

    #[test]
    fn allgather_peaks_include_gather_transient() {
        let model = llama_3b();
        let cluster = cluster_a(1);
        let ring = analyze(
            &plan_of(vec![seq(
                0,
                32_000,
                (0..8).collect(),
                Zone::IntraNode,
                AttnMode::Ring,
            )]),
            &model,
            &cluster,
        );
        let ag = analyze(
            &plan_of(vec![seq(
                0,
                32_000,
                (0..8).collect(),
                Zone::IntraNode,
                AttnMode::AllGather,
            )]),
            &model,
            &cluster,
        );
        assert!(ag.ranks[0].peak_tokens > ring.ranks[0].peak_tokens);
    }
}

//! Fig. 5 cost-curve analysis: the three-zone classification.
//!
//! For a sequence of length `s`, ring attention must hide the send-receive
//! of `s` tokens of KV behind the (quadratic) attention compute. Compute
//! grows as `s²`, communication as `s`, so the compute-to-communication
//! ratio grows linearly with `s`: above a threshold the *inter-node* link
//! can be hidden; above a lower threshold the *intra-node* fabric can; below
//! both, a sequence is best kept local. The crossovers of the three cost
//! curves define the zone boundaries the paper's Fig. 5 visualizes.

use zeppelin_model::config::ModelConfig;
use zeppelin_model::flops::attention_seq_flops;
use zeppelin_model::kernel::KernelModel;
use zeppelin_model::memory::kv_bytes;
use zeppelin_sim::topology::ClusterSpec;

use crate::plan::Zone;

/// Zone boundaries in tokens: `local` for `s < local_max`, `intra-node` for
/// `local_max <= s < intra_max`, `inter-node` above.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneThresholds {
    /// First length at which intra-node communication is fully hidden.
    pub local_max: u64,
    /// First length at which inter-node communication is fully hidden.
    pub intra_max: u64,
}

impl ZoneThresholds {
    /// Classifies a sequence length.
    pub fn classify(&self, len: u64) -> Zone {
        if len < self.local_max {
            Zone::Local
        } else if len < self.intra_max {
            Zone::IntraNode
        } else {
            Zone::InterNode
        }
    }
}

/// Attention compute time of a full causal sequence on one GPU, seconds.
pub fn attn_compute_time(cfg: &ModelConfig, kernel: &KernelModel, peak: f64, s: u64) -> f64 {
    kernel.kernel_time(attention_seq_flops(cfg, s), peak)
}

/// Send-receive time of the KV activations of `s` tokens, seconds.
pub fn kv_transfer_time(cfg: &ModelConfig, bw: f64, s: u64) -> f64 {
    kv_bytes(cfg, s) / bw
}

/// Smallest length whose compute time covers its KV transfer at `bw`.
///
/// Compares *asymptotic rates* (no launch overheads, which affect both
/// sides comparably and would otherwise dominate at tiny lengths): compute
/// at `peak · max_efficiency`, transfer at `bw`.
///
/// Returns `u64::MAX` if no length up to 16M tokens crosses over (degenerate
/// parameterizations only).
pub fn crossover(cfg: &ModelConfig, kernel: &KernelModel, peak: f64, bw: f64) -> u64 {
    let covered = |s: u64| {
        attention_seq_flops(cfg, s) / (peak * kernel.max_efficiency) >= kv_bytes(cfg, s) / bw
    };
    if covered(1) {
        return 1;
    }
    let mut lo = 1u64; // Not covered.
    let mut hi = 1u64 << 24; // 16M tokens.
    if !covered(hi) {
        return u64::MAX;
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if covered(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// Smallest length at which splitting a sequence across two devices beats
/// keeping it local, accounting for per-round launch overheads.
///
/// Splitting halves the quadratic work (`≈ 2h·s² / (peak·eff)` → half) but
/// pays ring-round fixed costs `ov` (kernel + send/recv launches); the
/// break-even is `s = sqrt(ov · peak · eff / h)`. Below this, bandwidth is
/// irrelevant — the sequence is simply too small to be worth distributing.
pub fn overhead_breakeven(cfg: &ModelConfig, kernel: &KernelModel, peak: f64) -> u64 {
    // One extra kernel launch + two send/recv launch pairs per round.
    let ov = kernel.launch_overhead_s + 4.0 * zeppelin_model::kernel::COMM_LAUNCH_OVERHEAD_S;
    let h = cfg.hidden as f64;
    (ov * peak * kernel.max_efficiency / h).sqrt().ceil() as u64
}

/// Computes the Fig. 5 zone thresholds for a model on a cluster.
///
/// `local_max` is the larger of the intra-node bandwidth crossover and the
/// launch-overhead break-even; `intra_max` is the inter-node bandwidth
/// crossover.
pub fn zone_thresholds(cfg: &ModelConfig, cluster: &ClusterSpec) -> ZoneThresholds {
    let kernel = KernelModel::attention();
    let peak = cluster.node.gpu.peak_flops;
    let local_max = crossover(cfg, &kernel, peak, cluster.intranode_bw())
        .max(overhead_breakeven(cfg, &kernel, peak));
    let intra_max = crossover(cfg, &kernel, peak, cluster.direct_internode_bw()).max(local_max);
    ZoneThresholds {
        local_max,
        intra_max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeppelin_model::config::{llama_3b, llama_7b};
    use zeppelin_sim::topology::{cluster_a, cluster_c};

    #[test]
    fn thresholds_are_ordered_and_plausible() {
        let t = zone_thresholds(&llama_7b(), &cluster_a(2));
        assert!(t.local_max < t.intra_max);
        // Ballpark for A800 + 400 GB/s + 25 GB/s (see DESIGN.md §7):
        // hundreds of tokens for local, ~10k for intra.
        assert!(
            (64..8_192).contains(&t.local_max),
            "local_max {}",
            t.local_max
        );
        assert!(
            (2_048..131_072).contains(&t.intra_max),
            "intra_max {}",
            t.intra_max
        );
    }

    #[test]
    fn classification_follows_thresholds() {
        let t = ZoneThresholds {
            local_max: 1000,
            intra_max: 10_000,
        };
        assert_eq!(t.classify(10), Zone::Local);
        assert_eq!(t.classify(999), Zone::Local);
        assert_eq!(t.classify(1000), Zone::IntraNode);
        assert_eq!(t.classify(9_999), Zone::IntraNode);
        assert_eq!(t.classify(10_000), Zone::InterNode);
    }

    #[test]
    fn faster_network_widens_the_local_zone() {
        // Cluster C has both faster GPUs and much faster NICs; the relative
        // effect on intra_max depends on the compute/NIC ratio.
        let a = zone_thresholds(&llama_3b(), &cluster_a(2));
        let c = zone_thresholds(&llama_3b(), &cluster_c(2));
        // H200 compute is ~3.2× A800 while its NIC is 2× -> crossover moves
        // *up*: hiding comm needs more compute per token when compute is
        // fast.
        assert!(c.intra_max > a.intra_max / 2, "a {a:?} c {c:?}");
    }

    #[test]
    fn crossover_is_a_true_boundary() {
        let cfg = llama_7b();
        let kernel = KernelModel::attention();
        let peak = 312e12;
        let bw = 25e9;
        let x = crossover(&cfg, &kernel, peak, bw);
        assert!(x > 1 && x < u64::MAX);
        // Boundary property on the asymptotic rates the crossover compares.
        let compute = |s: u64| attention_seq_flops(&cfg, s) / (peak * kernel.max_efficiency);
        let comm = |s: u64| kv_transfer_time(&cfg, bw, s);
        assert!(compute(x) >= comm(x));
        assert!(compute(x - 1) < comm(x - 1));
    }

    #[test]
    fn bigger_models_cross_over_sooner() {
        // More hidden size => more FLOPs per transferred byte => shorter
        // sequences already hide communication.
        let small = zone_thresholds(&llama_3b(), &cluster_a(2));
        let big = zone_thresholds(&llama_7b(), &cluster_a(2));
        assert!(big.intra_max <= small.intra_max);
    }
}

//! Heterogeneity-aware scheduler variants.
//!
//! Mixed-generation clusters (and straggler-degraded homogeneous ones)
//! break the zigzag ring's core assumption: equal chunk sizes only balance
//! *work*, not *time*, when every position computes at the same rate. Two
//! first-class schedulers address the two halves of the problem:
//!
//! - [`ZeppelinHet`] sizes the zigzag chunks inside each ring group
//!   speed-proportionally ([`chunking::chunks_weighted`]): slow positions
//!   own shorter chunks, so every ring round finishes together instead of
//!   bottlenecking on the slowest rank.
//! - [`StragglerRemap`] keeps uniform chunking but declares
//!   speed-proportional linear-module remap targets in the plan
//!   (`options.speed_aware_remap`), moving the fix to the remapping layer.
//!
//! Both reduce to plain Zeppelin bit-identically on homogeneous contexts
//! (`ctx.rank_speed` absent or uniform), so they are safe defaults on
//! mixed fleets.

use zeppelin_data::batch::Batch;

use crate::chunking::quantize_speed;
use crate::plan::{IterationPlan, PlanError};
use crate::scheduler::{Scheduler, SchedulerCtx};
use crate::zeppelin::Zeppelin;

/// Zeppelin with speed-proportional zigzag chunk sizing inside ring groups.
#[derive(Debug, Clone, Default)]
pub struct ZeppelinHet {
    inner: Zeppelin,
}

impl ZeppelinHet {
    /// Full Zeppelin plus weighted chunk geometry.
    pub fn new() -> ZeppelinHet {
        ZeppelinHet::default()
    }
}

impl Scheduler for ZeppelinHet {
    fn name(&self) -> &'static str {
        "Zeppelin-Het"
    }

    /// Plans like Zeppelin, then attaches quantized per-position speed
    /// weights to every multi-rank placement spanning ranks of unequal
    /// speed. Uniform-speed groups keep empty weights, so the plan (and
    /// its lowering) is bit-identical to Zeppelin's when the context is
    /// homogeneous.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] when the batch cannot be placed.
    ///
    /// # Panics
    ///
    /// Panics if `ctx.rank_speed` contains a non-finite or non-positive
    /// entry (see [`quantize_speed`]).
    fn plan(&self, batch: &Batch, ctx: &SchedulerCtx) -> Result<IterationPlan, PlanError> {
        let mut plan = self.inner.plan(batch, ctx)?;
        plan.scheduler = self.name().into();
        if let Some(speed) = &ctx.rank_speed {
            for p in &mut plan.placements {
                if p.ranks.len() < 2 {
                    continue;
                }
                let ws: Vec<u32> = p.ranks.iter().map(|&r| quantize_speed(speed[r])).collect();
                // All-equal weights are uniform chunking; keep the empty
                // encoding so homogeneous groups stay bit-identical.
                if ws.iter().any(|&w| w != ws[0]) {
                    p.weights = ws;
                }
            }
        }
        plan.validate(ctx.cluster.total_gpus())?;
        Ok(plan)
    }
}

/// Zeppelin with speed-aware linear-module remap targets.
///
/// Promotes what used to hide behind the executor-only
/// `ExecConfig::speed_aware_remap` knob into a scheduler decision carried
/// by the plan: the remapping layer assigns each rank a token share
/// proportional to its speed, so all GEMMs finish together even though the
/// attention rings still use uniform chunks.
#[derive(Debug, Clone, Default)]
pub struct StragglerRemap {
    inner: Zeppelin,
}

impl StragglerRemap {
    /// Full Zeppelin plus speed-aware remap targets.
    pub fn new() -> StragglerRemap {
        StragglerRemap::default()
    }
}

impl Scheduler for StragglerRemap {
    fn name(&self) -> &'static str {
        "Straggler-Remap"
    }

    /// Plans like Zeppelin and declares `options.speed_aware_remap` when
    /// the context carries per-rank speeds (the executor falls back to
    /// uniform targets when it has no speed vector of its own).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] when the batch cannot be placed.
    fn plan(&self, batch: &Batch, ctx: &SchedulerCtx) -> Result<IterationPlan, PlanError> {
        let mut plan = self.inner.plan(batch, ctx)?;
        plan.scheduler = self.name().into();
        plan.options.speed_aware_remap = ctx.rank_speed.is_some();
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_with_batch;
    use zeppelin_model::config::llama_3b;
    use zeppelin_sim::topology::{cluster_a, cluster_mixed};

    fn batch() -> Batch {
        Batch::new(vec![60_000, 9_000, 2_000, 1_000, 500, 300, 200, 100])
    }

    #[test]
    fn homogeneous_plans_are_bit_identical_to_zeppelin() {
        let ctx = SchedulerCtx::new(&cluster_a(2), &llama_3b()).with_capacity(8192);
        let mut base = Zeppelin::new().plan(&batch(), &ctx).unwrap();
        let het = ZeppelinHet::new().plan(&batch(), &ctx).unwrap();
        base.scheduler = "Zeppelin-Het".into();
        assert_eq!(base, het);
        let mut remap = StragglerRemap::new().plan(&batch(), &ctx).unwrap();
        assert!(!remap.options.speed_aware_remap);
        base.scheduler = "Straggler-Remap".into();
        remap.scheduler = base.scheduler.clone();
        assert_eq!(base, remap);
    }

    #[test]
    fn het_weights_multi_rank_groups_and_audits_clean() {
        let cluster = cluster_mixed(2); // node 0 slow (A800), node 1 fast
        let ctx = SchedulerCtx::new(&cluster, &llama_3b()).with_capacity(8192);
        let b = batch();
        let plan = ZeppelinHet::new().plan(&b, &ctx).unwrap();
        let weighted = plan
            .placements
            .iter()
            .filter(|p| !p.weights.is_empty())
            .count();
        // The 60k sequence spans both generations; its group is weighted.
        assert!(weighted > 0, "no weighted placements in {plan:?}");
        for p in plan.placements.iter().filter(|p| !p.weights.is_empty()) {
            assert_eq!(p.weights.len(), p.ranks.len());
            // Fast ranks carry larger weights than slow ranks.
            let speed = ctx.rank_speed.as_ref().unwrap();
            for (a, &ra) in p.ranks.iter().enumerate() {
                for (b2, &rb) in p.ranks.iter().enumerate() {
                    if speed[ra] > speed[rb] {
                        assert!(p.weights[a] > p.weights[b2]);
                    }
                }
            }
        }
        validate_with_batch(&plan, &ctx, &b).expect("weighted plan audits clean");
    }

    #[test]
    fn straggler_remap_declares_speed_aware_targets() {
        let cluster = cluster_mixed(2);
        let ctx = SchedulerCtx::new(&cluster, &llama_3b()).with_capacity(8192);
        let b = batch();
        let plan = StragglerRemap::new().plan(&b, &ctx).unwrap();
        assert!(plan.options.speed_aware_remap);
        assert!(plan.placements.iter().all(|p| p.weights.is_empty()));
        validate_with_batch(&plan, &ctx, &b).expect("speed-aware remap plan audits clean");
    }
}

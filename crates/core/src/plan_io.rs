//! Plan serialization: save and reload [`IterationPlan`]s as JSON.
//!
//! Enables deterministic replay workflows — plan on one machine, inspect or
//! simulate elsewhere — and the CLI's `plan --out` / `step --plan` flags.
//! The workspace deliberately carries no JSON dependency, so this module
//! includes a small recursive-descent JSON parser (strings, numbers,
//! arrays, objects, literals) sufficient for the documented schema.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::plan::{AttnMode, IterationPlan, PlanOptions, SeqPlacement, Zone};
use crate::validate::{report, structural_violations, PlanViolation};

/// Errors from plan (de)serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanIoError {
    /// The JSON text is malformed.
    Parse {
        /// Byte offset of the error.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// The JSON is valid but not a plan (missing/mistyped fields).
    Schema(String),
    /// The document is a well-formed plan that violates plan invariants
    /// (zero lengths, duplicate ranks, bogus micro-batch counts, …).
    Invalid(Vec<PlanViolation>),
}

impl std::fmt::Display for PlanIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanIoError::Parse { offset, message } => {
                write!(f, "JSON parse error at byte {offset}: {message}")
            }
            PlanIoError::Schema(m) => write!(f, "plan schema error: {m}"),
            PlanIoError::Invalid(violations) => {
                write!(f, "invalid plan: {}", report(violations))
            }
        }
    }
}

impl std::error::Error for PlanIoError {}

/// Schema version written by [`plan_to_json`]. Documents absent in the wild
/// predate versioning and are treated as version 1.
pub const PLAN_SCHEMA_VERSION: u64 = 1;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as f64; plan fields are small integers).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object (order-insensitive).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Field lookup on an object; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(o) => o.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The payload as a non-negative integer, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// Renders the value back to compact JSON text (inverse of [`parse_json`]
/// up to number formatting). Shared by plan serialization and the serving
/// protocol, which builds responses as [`Json`] trees.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::String(s) => write!(f, "\"{}\"", escape(s)),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns [`PlanIoError::Parse`] with the byte offset of the first error.
pub fn parse_json(text: &str) -> Result<Json, PlanIoError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> PlanIoError {
        PlanIoError::Parse {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), PlanIoError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, PlanIoError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, PlanIoError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, PlanIoError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, PlanIoError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, PlanIoError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, PlanIoError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn zone_name(z: Zone) -> &'static str {
    match z {
        Zone::Local => "local",
        Zone::IntraNode => "intra_node",
        Zone::InterNode => "inter_node",
    }
}

fn mode_name(m: AttnMode) -> &'static str {
    match m {
        AttnMode::Ring => "ring",
        AttnMode::AllGather => "all_gather",
        AttnMode::Ulysses => "ulysses",
        AttnMode::DoubleRing => "double_ring",
    }
}

/// Serializes a plan to JSON.
pub fn plan_to_json(plan: &IterationPlan) -> String {
    let mut out = String::from("{");
    let _ = write!(out, "\"schema_version\":{PLAN_SCHEMA_VERSION},");
    let _ = write!(out, "\"scheduler\":\"{}\",", escape(&plan.scheduler));
    let _ = write!(
        out,
        "\"options\":{{\"routing\":{},\"remapping\":{},\"speed_aware_remap\":{}}},",
        plan.options.routing, plan.options.remapping, plan.options.speed_aware_remap
    );
    let _ = write!(out, "\"micro_batches\":{},", plan.micro_batches);
    let _ = write!(out, "\"redundant_attn_frac\":{},", plan.redundant_attn_frac);
    out.push_str("\"placements\":[");
    for (i, p) in plan.placements.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ranks: Vec<String> = p.ranks.iter().map(|r| r.to_string()).collect();
        let _ = write!(
            out,
            "{{\"seq_index\":{},\"len\":{},\"zone\":\"{}\",\"mode\":\"{}\",\"micro_batch\":{},\"ranks\":[{}]",
            p.seq_index,
            p.len,
            zone_name(p.zone),
            mode_name(p.mode),
            p.micro_batch,
            ranks.join(",")
        );
        // Speed weights are written only when declared, so homogeneous
        // plans serialize byte-identically to pre-weights documents.
        if !p.weights.is_empty() {
            let ws: Vec<String> = p.weights.iter().map(|w| w.to_string()).collect();
            let _ = write!(out, ",\"weights\":[{}]", ws.join(","));
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

fn get<'a>(obj: &'a BTreeMap<String, Json>, key: &str) -> Result<&'a Json, PlanIoError> {
    obj.get(key)
        .ok_or_else(|| PlanIoError::Schema(format!("missing field '{key}'")))
}

fn as_u64(v: &Json, key: &str) -> Result<u64, PlanIoError> {
    match v {
        Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
        _ => Err(PlanIoError::Schema(format!(
            "field '{key}' must be a non-negative integer"
        ))),
    }
}

/// Parses a plan from JSON produced by [`plan_to_json`].
///
/// The document is audited with
/// [`structural_violations`](crate::validate::structural_violations) before
/// it is returned: a plan that parses but breaks structural invariants
/// (zero-length placements, duplicate ranks, `micro_batches` of 0, a
/// non-finite `redundant_attn_frac`, …) is rejected with
/// [`PlanIoError::Invalid`] so hostile documents never reach the analyzer
/// or the executor.
///
/// # Errors
///
/// Returns [`PlanIoError`] on malformed JSON, schema mismatch, or a
/// structurally invalid plan.
pub fn plan_from_json(text: &str) -> Result<IterationPlan, PlanIoError> {
    let Json::Object(root) = parse_json(text)? else {
        return Err(PlanIoError::Schema("root must be an object".into()));
    };
    // Absent ⇒ v1 (pre-versioning documents); anything else must match.
    if let Some(v) = root.get("schema_version") {
        match v.as_u64() {
            Some(PLAN_SCHEMA_VERSION) => {}
            Some(other) => {
                return Err(PlanIoError::Schema(format!(
                    "unsupported schema_version {other} (this build reads version {PLAN_SCHEMA_VERSION})"
                )))
            }
            None => {
                return Err(PlanIoError::Schema(
                    "'schema_version' must be a non-negative integer".into(),
                ))
            }
        }
    }
    let scheduler = match get(&root, "scheduler")? {
        Json::String(s) => s.clone(),
        _ => return Err(PlanIoError::Schema("'scheduler' must be a string".into())),
    };
    let options = match get(&root, "options")? {
        Json::Object(o) => PlanOptions {
            routing: matches!(get(o, "routing")?, Json::Bool(true)),
            remapping: matches!(get(o, "remapping")?, Json::Bool(true)),
            // Absent in pre-heterogeneity documents ⇒ false.
            speed_aware_remap: matches!(o.get("speed_aware_remap"), Some(Json::Bool(true))),
        },
        _ => return Err(PlanIoError::Schema("'options' must be an object".into())),
    };
    let micro_batches = as_u64(get(&root, "micro_batches")?, "micro_batches")? as usize;
    let redundant_attn_frac = match get(&root, "redundant_attn_frac")? {
        Json::Number(n) => *n,
        _ => {
            return Err(PlanIoError::Schema(
                "'redundant_attn_frac' must be a number".into(),
            ))
        }
    };
    let Json::Array(raw) = get(&root, "placements")? else {
        return Err(PlanIoError::Schema("'placements' must be an array".into()));
    };
    let mut placements = Vec::with_capacity(raw.len());
    for item in raw {
        let Json::Object(o) = item else {
            return Err(PlanIoError::Schema("placement must be an object".into()));
        };
        let zone = match get(o, "zone")? {
            Json::String(s) => match s.as_str() {
                "local" => Zone::Local,
                "intra_node" => Zone::IntraNode,
                "inter_node" => Zone::InterNode,
                other => {
                    return Err(PlanIoError::Schema(format!("unknown zone '{other}'")));
                }
            },
            _ => return Err(PlanIoError::Schema("'zone' must be a string".into())),
        };
        let mode = match get(o, "mode")? {
            Json::String(s) => match s.as_str() {
                "ring" => AttnMode::Ring,
                "all_gather" => AttnMode::AllGather,
                "ulysses" => AttnMode::Ulysses,
                "double_ring" => AttnMode::DoubleRing,
                other => {
                    return Err(PlanIoError::Schema(format!("unknown mode '{other}'")));
                }
            },
            _ => return Err(PlanIoError::Schema("'mode' must be a string".into())),
        };
        let Json::Array(rank_vals) = get(o, "ranks")? else {
            return Err(PlanIoError::Schema("'ranks' must be an array".into()));
        };
        let mut ranks = Vec::with_capacity(rank_vals.len());
        for r in rank_vals {
            ranks.push(as_u64(r, "ranks")? as usize);
        }
        // Optional: absent ⇒ homogeneous (pre-weights documents).
        let weights = match o.get("weights") {
            None => Vec::new(),
            Some(Json::Array(ws)) => {
                let mut v = Vec::with_capacity(ws.len());
                for w in ws {
                    let n = as_u64(w, "weights")?;
                    v.push(u32::try_from(n).map_err(|_| {
                        PlanIoError::Schema("'weights' entries must fit a 32-bit integer".into())
                    })?);
                }
                v
            }
            Some(_) => return Err(PlanIoError::Schema("'weights' must be an array".into())),
        };
        placements.push(SeqPlacement {
            seq_index: as_u64(get(o, "seq_index")?, "seq_index")? as usize,
            len: as_u64(get(o, "len")?, "len")?,
            zone,
            ranks,
            mode,
            micro_batch: as_u64(get(o, "micro_batch")?, "micro_batch")? as usize,
            weights,
        });
    }
    let plan = IterationPlan {
        scheduler,
        placements,
        options,
        micro_batches,
        redundant_attn_frac,
    };
    let violations = structural_violations(&plan);
    if violations.is_empty() {
        Ok(plan)
    } else {
        Err(PlanIoError::Invalid(violations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> IterationPlan {
        IterationPlan {
            scheduler: "Zeppelin \"quoted\"\n".into(),
            placements: vec![
                SeqPlacement {
                    seq_index: 0,
                    len: 40_000,
                    zone: Zone::InterNode,
                    ranks: (0..16).collect(),
                    mode: AttnMode::Ring,
                    micro_batch: 0,
                    weights: (0..16).map(|i| 512 + i * 64).collect(),
                },
                SeqPlacement {
                    seq_index: 1,
                    len: 500,
                    zone: Zone::Local,
                    ranks: vec![3],
                    mode: AttnMode::Ulysses,
                    micro_batch: 1,
                    weights: Vec::new(),
                },
            ],
            options: PlanOptions {
                routing: true,
                remapping: false,
                speed_aware_remap: true,
            },
            micro_batches: 2,
            redundant_attn_frac: 0.125,
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let plan = sample_plan();
        let json = plan_to_json(&plan);
        let back = plan_from_json(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn parser_handles_whitespace_and_ordering() {
        let text = r#"
        {
          "placements": [],
          "micro_batches": 1,
          "redundant_attn_frac": 0,
          "options": { "remapping": true, "routing": false },
          "scheduler": "x"
        }
        "#;
        let plan = plan_from_json(text).unwrap();
        assert_eq!(plan.scheduler, "x");
        assert!(plan.options.remapping && !plan.options.routing);
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let err = plan_from_json("{\"scheduler\": }").unwrap_err();
        assert!(matches!(err, PlanIoError::Parse { .. }), "{err}");
        let err = plan_from_json("[1,2]").unwrap_err();
        assert!(matches!(err, PlanIoError::Schema(_)));
        let err = plan_from_json("{\"a\":1} trailing").unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn schema_errors_name_the_field() {
        let json = plan_to_json(&sample_plan()).replace("\"len\"", "\"zen\"");
        let err = plan_from_json(&json).unwrap_err();
        assert!(err.to_string().contains("len"), "{err}");
        // Negative numbers are rejected for unsigned fields.
        let json = plan_to_json(&sample_plan()).replace("\"len\":40000", "\"len\":-1");
        assert!(plan_from_json(&json).is_err());
        // Unknown enum tags are rejected.
        let json = plan_to_json(&sample_plan()).replace("\"ring\"", "\"mesh\"");
        assert!(plan_from_json(&json).is_err());
    }

    #[test]
    fn structurally_bogus_plans_are_rejected_at_parse_time() {
        let json = plan_to_json(&sample_plan());
        for (needle, mutated) in [
            ("'len' 0", json.replace("\"len\":500", "\"len\":0")),
            (
                "'micro_batches' is 0",
                json.replace("\"micro_batches\":2", "\"micro_batches\":0"),
            ),
            (
                "repeats rank",
                json.replace("\"ranks\":[3]", "\"ranks\":[3,3]"),
            ),
            (
                "redundant_attn_frac",
                json.replace(
                    "\"redundant_attn_frac\":0.125",
                    "\"redundant_attn_frac\":1e999",
                ),
            ),
            (
                "empty 'ranks'",
                json.replace("\"ranks\":[3]", "\"ranks\":[]"),
            ),
        ] {
            let err = plan_from_json(&mutated).unwrap_err();
            assert!(matches!(err, PlanIoError::Invalid(_)), "{needle}: {err}");
            assert!(err.to_string().contains(needle), "{needle}: {err}");
        }
    }

    #[test]
    fn weights_are_optional_and_validated() {
        let json = plan_to_json(&sample_plan());
        assert!(json.contains("\"weights\":[512,"), "{json}");
        assert!(json.contains("\"speed_aware_remap\":true"), "{json}");
        // Dropping the weights array parses as a homogeneous placement.
        let start = json.find(",\"weights\":[").unwrap();
        let end = json[start + 1..].find(']').unwrap() + start + 2;
        let stripped = format!("{}{}", &json[..start], &json[end..]);
        let plan = plan_from_json(&stripped).unwrap();
        assert!(plan.placements.iter().all(|p| p.weights.is_empty()));
        // A weight count that disagrees with the rank group is rejected
        // at parse time with a field-named report.
        let hostile = json.replace("\"weights\":[512,", "\"weights\":[0,512,");
        let err = plan_from_json(&hostile).unwrap_err();
        assert!(matches!(err, PlanIoError::Invalid(_)), "{err}");
        assert!(err.to_string().contains("speed weights"), "{err}");
        // Oversized entries are a schema error, not a silent truncation.
        let hostile = json.replace("\"weights\":[512,", "\"weights\":[4294967296,");
        let err = plan_from_json(&hostile).unwrap_err();
        assert!(err.to_string().contains("32-bit"), "{err}");
    }

    #[test]
    fn generic_json_values_parse() {
        let v = parse_json(r#"{"a":[1,-2.5,true,false,null,"sA"],"b":{}}"#).unwrap();
        let Json::Object(o) = v else { panic!() };
        let Json::Array(a) = &o["a"] else { panic!() };
        assert_eq!(a.len(), 6);
        assert_eq!(a[1], Json::Number(-2.5));
        assert_eq!(a[5], Json::String("sA".into()));
        assert_eq!(o["b"], Json::Object(Default::default()));
    }

    #[test]
    fn schema_version_is_written_and_checked() {
        let json = plan_to_json(&sample_plan());
        assert!(json.contains("\"schema_version\":1"), "{json}");
        // Absent ⇒ v1: stripping the field still parses.
        let legacy = json.replace("\"schema_version\":1,", "");
        assert_eq!(plan_from_json(&legacy).unwrap(), sample_plan());
        // A future version is a typed schema error naming the version.
        let future = json.replace("\"schema_version\":1", "\"schema_version\":99");
        let err = plan_from_json(&future).unwrap_err();
        assert!(matches!(err, PlanIoError::Schema(_)));
        assert!(err.to_string().contains("99"), "{err}");
        // A mistyped version is rejected, not silently ignored.
        let bad = json.replace("\"schema_version\":1", "\"schema_version\":\"one\"");
        assert!(matches!(plan_from_json(&bad), Err(PlanIoError::Schema(_))));
    }

    #[test]
    fn json_accessors_and_rendering_round_trip() {
        let v = parse_json(r#"{"a":[1,2.5,"s\"x"],"b":{"c":true},"n":null}"#).unwrap();
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Json::Bool(true)));
        assert_eq!(
            v.get("a").and_then(|a| a.as_array()).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[1].as_u64(), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("x"), None);
        // Display renders text that parses back to the same tree.
        let rendered = v.to_string();
        assert_eq!(parse_json(&rendered).unwrap(), v);
        // Plans rendered through the Json tree match the parsed original.
        let plan_text = plan_to_json(&sample_plan());
        let tree = parse_json(&plan_text).unwrap();
        assert_eq!(parse_json(&tree.to_string()).unwrap(), tree);
    }

    #[test]
    fn unterminated_inputs_fail_cleanly() {
        for bad in ["{", "[", "\"abc", "{\"a\"", "{\"a\":1,", "tr", "1e", "[1,]"] {
            assert!(parse_json(bad).is_err(), "should reject {bad:?}");
        }
    }
}

//! Communication routing layer (§3.3): three-step inter-node transfers.
//!
//! A direct inter-node send is pinned to the sender's affined NIC, leaving
//! the node's other NICs idle (and, on shared-NIC topologies like Cluster A,
//! contending with the paired GPU). The routing layer disaggregates logical
//! paths from GPU–NIC affinity by decomposing a transfer of `n` bytes into:
//!
//! 1. **Dispatch** — the source scatters `n/x₁` bytes to each of `x₁` send
//!    proxies over the intra-node fabric;
//! 2. **Inter-node transfer** — the proxies forward their shares through
//!    `x₁` *distinct NICs* to `x₂` receive proxies on the destination node;
//! 3. **Combine** — receive proxies forward their shares to the destination
//!    rank over the destination fabric.
//!
//! Eq. 1 of the paper gives the resulting cost; with the typical 10×
//! intra/inter bandwidth gap even a few proxies nearly eliminate the
//! inter-node bottleneck. The executor pipelines the three stages in chunks
//! so they overlap.

use zeppelin_sim::topology::{ClusterSpec, Rank};

/// One point-to-point flow in a routed transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSpec {
    /// Sending rank.
    pub src: Rank,
    /// Receiving rank.
    pub dst: Rank,
    /// Bytes carried.
    pub bytes: f64,
}

/// A three-stage routed transfer. Stage `i+1` of a given share depends on
/// stage `i`; shares are independent of each other.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedTransfer {
    /// `shares[i] = (dispatch, inter, combine)` for proxy pair `i`.
    /// Dispatch/combine are `None` when the proxy *is* the endpoint
    /// (no intra-node hop needed).
    pub shares: Vec<(Option<FlowSpec>, FlowSpec, Option<FlowSpec>)>,
}

impl RoutedTransfer {
    /// Total bytes crossing the inter-node fabric.
    pub fn inter_bytes(&self) -> f64 {
        self.shares.iter().map(|(_, f, _)| f.bytes).sum()
    }

    /// Number of proxy pairs (distinct NIC lanes used).
    pub fn lanes(&self) -> usize {
        self.shares.len()
    }
}

/// One representative rank per NIC of `node` (the proxy set).
///
/// On one-NIC-per-GPU nodes this is all ranks; on shared-NIC nodes (Cluster
/// A) it is the first rank of each NIC group, so stage-2 flows occupy
/// distinct NICs.
pub fn proxies_of_node(cluster: &ClusterSpec, node: usize) -> Vec<Rank> {
    let mut by_nic: Vec<Option<Rank>> = vec![None; cluster.node.nic_count];
    for rank in cluster.ranks_on_node(node) {
        let nic = cluster.node.nic_affinity[cluster.local_of(rank)];
        if by_nic[nic].is_none() {
            by_nic[nic] = Some(rank);
        }
    }
    by_nic.into_iter().flatten().collect()
}

/// Decomposes an inter-node transfer into the three-step routed form.
///
/// # Panics
///
/// Panics if `src` and `dst` share a node (routing is for inter-node sends)
/// or if `bytes` is negative.
///
/// # Examples
///
/// ```
/// use zeppelin_core::routing::route_internode;
/// use zeppelin_sim::topology::cluster_a;
///
/// // Cluster A has 4 NICs per node: the 52 MB round splits 4 ways.
/// let routed = route_internode(&cluster_a(2), 0, 9, 52e6);
/// assert_eq!(routed.lanes(), 4);
/// assert!((routed.inter_bytes() - 52e6).abs() < 1.0);
/// ```
pub fn route_internode(cluster: &ClusterSpec, src: Rank, dst: Rank, bytes: f64) -> RoutedTransfer {
    assert!(
        !cluster.same_node(src, dst),
        "routing decomposes inter-node transfers only"
    );
    assert!(bytes >= 0.0, "bytes must be non-negative");
    let mut send_proxies = proxies_of_node(cluster, cluster.node_of(src));
    let mut recv_proxies = proxies_of_node(cluster, cluster.node_of(dst));
    // Prefer the endpoints as their own NIC-group proxies: the share that
    // stays on the endpoint skips an intra-node hop entirely.
    prefer_endpoint(&mut send_proxies, cluster, src);
    prefer_endpoint(&mut recv_proxies, cluster, dst);
    // One-to-one matching (§3.3): lanes = min(x1, x2).
    let lanes = send_proxies.len().min(recv_proxies.len()).max(1);
    let share = bytes / lanes as f64;
    let shares = (0..lanes)
        .map(|i| {
            let p = send_proxies[i];
            let q = recv_proxies[i];
            let dispatch = (p != src).then_some(FlowSpec {
                src,
                dst: p,
                bytes: share,
            });
            let inter = FlowSpec {
                src: p,
                dst: q,
                bytes: share,
            };
            let combine = (q != dst).then_some(FlowSpec {
                src: q,
                dst,
                bytes: share,
            });
            (dispatch, inter, combine)
        })
        .collect();
    RoutedTransfer { shares }
}

/// Swaps the endpoint's NIC-group proxy to be the endpoint itself, placing
/// its lane first.
fn prefer_endpoint(proxies: &mut [Rank], cluster: &ClusterSpec, endpoint: Rank) {
    let endpoint_nic = cluster.nic_of(endpoint);
    if let Some(pos) = proxies
        .iter()
        .position(|&p| cluster.nic_of(p) == endpoint_nic)
    {
        proxies[pos] = endpoint;
        proxies.swap(0, pos);
    }
}

/// Eq. 1: analytic cost of a routed transfer of `n` bytes with `x1`/`x2`
/// send/receive proxies, in seconds. `b_intra`/`b_inter` are inverse
/// bandwidths (s/byte). Ignores overlap between stages (upper bound).
pub fn eq1_cost(n: f64, x1: usize, x2: usize, b_intra: f64, b_inter: f64) -> f64 {
    assert!(x1 >= 1 && x2 >= 1, "proxy counts must be positive");
    let (x1f, x2f) = (x1 as f64, x2 as f64);
    b_intra * n * (x1f - 1.0) / x1f
        + b_inter * (n / x1f).max(n / x2f)
        + b_intra * n * (x2f - 1.0) / x2f
}

/// Direct-transfer cost for comparison with [`eq1_cost`], in seconds.
pub fn direct_cost(n: f64, b_inter: f64) -> f64 {
    b_inter * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeppelin_sim::topology::{cluster_a, cluster_c, tiny_cluster};

    #[test]
    fn proxies_cover_distinct_nics() {
        let c = cluster_a(2);
        let p = proxies_of_node(&c, 0);
        assert_eq!(p.len(), 4); // 4 NICs on Cluster A.
        let mut nics: Vec<usize> = p.iter().map(|&r| c.nic_of(r)).collect();
        nics.sort_unstable();
        nics.dedup();
        assert_eq!(nics.len(), 4);
        // Second node's proxies live on the second node.
        let p1 = proxies_of_node(&c, 1);
        assert!(p1.iter().all(|&r| c.node_of(r) == 1));
    }

    #[test]
    fn one_to_one_nic_nodes_use_all_gpus() {
        let c = cluster_c(2);
        assert_eq!(proxies_of_node(&c, 0).len(), 8);
    }

    #[test]
    fn routed_transfer_conserves_bytes() {
        let c = cluster_a(2);
        let rt = route_internode(&c, 0, 9, 1e9);
        assert!((rt.inter_bytes() - 1e9).abs() < 1.0);
        assert_eq!(rt.lanes(), 4);
        for (d, i, g) in &rt.shares {
            // Stage chaining: dispatch dst == inter src; inter dst == gather src.
            if let Some(d) = d {
                assert_eq!(d.src, 0);
                assert_eq!(d.dst, i.src);
                assert!(c.same_node(d.src, d.dst));
            } else {
                assert_eq!(i.src, 0);
            }
            if let Some(g) = g {
                assert_eq!(g.dst, 9);
                assert_eq!(i.dst, g.src);
                assert!(c.same_node(g.src, g.dst));
            } else {
                assert_eq!(i.dst, 9);
            }
            assert!(!c.same_node(i.src, i.dst));
        }
    }

    #[test]
    fn inter_stage_uses_distinct_nics() {
        let c = cluster_a(2);
        let rt = route_internode(&c, 0, 9, 1e9);
        let mut tx_nics: Vec<usize> = rt.shares.iter().map(|(_, i, _)| c.nic_of(i.src)).collect();
        tx_nics.sort_unstable();
        tx_nics.dedup();
        assert_eq!(tx_nics.len(), 4, "stage-2 flows must spread across NICs");
    }

    #[test]
    fn endpoint_serves_as_its_own_proxy() {
        let c = cluster_a(2);
        let rt = route_internode(&c, 0, 9, 1e9);
        // The source's own NIC lane has no dispatch hop.
        let no_dispatch = rt.shares.iter().filter(|(d, _, _)| d.is_none()).count();
        assert_eq!(no_dispatch, 1);
        let no_combine = rt.shares.iter().filter(|(_, _, g)| g.is_none()).count();
        assert_eq!(no_combine, 1);
    }

    #[test]
    fn eq1_beats_direct_with_proxies() {
        // Cluster A numbers: intra 400 GB/s, inter 25 GB/s, n = 52 MB.
        let b_intra = 1.0 / 400e9;
        let b_inter = 1.0 / 25e9;
        let n = 52e6;
        let direct = direct_cost(n, b_inter);
        let routed = eq1_cost(n, 4, 4, b_intra, b_inter);
        // 4 NIC lanes cut the inter term 4×; intra hops add back a little,
        // netting ~2.9× on Cluster A's numbers.
        assert!(routed < direct / 2.5, "routed {routed} vs direct {direct}");
        // x = 1 degenerates to the direct cost.
        assert!((eq1_cost(n, 1, 1, b_intra, b_inter) - direct).abs() < 1e-12);
    }

    #[test]
    fn eq1_monotone_in_proxy_count() {
        let b_intra = 1.0 / 400e9;
        let b_inter = 1.0 / 25e9;
        let mut last = f64::INFINITY;
        for x in 1..=8 {
            let c = eq1_cost(1e8, x, x, b_intra, b_inter);
            assert!(c < last, "x={x}");
            last = c;
        }
    }

    #[test]
    fn mismatched_proxy_counts_bottleneck_on_fewer() {
        let c = tiny_cluster(2, 4);
        let rt = route_internode(&c, 0, 4, 4e8);
        assert_eq!(rt.lanes(), 4);
        let b_inter = 1.0 / 12.5e9;
        // Analytic check: x1=4, x2=2 pays the inter term on n/2 (the fewer
        // side bottlenecks); intra hops are negligible at 1e-15 s/B.
        let cost = eq1_cost(1e9, 4, 2, 1e-15, b_inter);
        assert!((cost - b_inter * 5e8).abs() < 1e-5, "cost {cost}");
    }

    #[test]
    #[should_panic(expected = "inter-node")]
    fn same_node_routing_panics() {
        route_internode(&cluster_a(2), 0, 1, 100.0);
    }
}

//! One training step: plan → lower → simulate → report.
//!
//! A step simulates one transformer layer forward and one backward (they
//! carry identical structure every layer in pure data parallelism) and
//! scales by the layer count. The report carries phase breakdowns per rank
//! (Table 3), traces (Fig. 12) and throughput (Fig. 8–10).

use std::collections::BTreeMap;

use zeppelin_core::plan::{IterationPlan, PlanError};
use zeppelin_core::scheduler::{Scheduler, SchedulerCtx};
use zeppelin_core::validate::{report as violation_report, validate_with_batch, PlanViolation};
use zeppelin_data::batch::Batch;
use zeppelin_model::config::ModelConfig;
use zeppelin_model::flops::linear_flops_per_token;
use zeppelin_model::moe::{imbalance_factor, sample_expert_loads};
use zeppelin_sim::engine::Simulator;
use zeppelin_sim::error::SimError;
use zeppelin_sim::fault::FaultSchedule;
use zeppelin_sim::time::SimDuration;
use zeppelin_sim::topology::Rank;
use zeppelin_sim::trace::{Trace, TraceCategory};

use crate::lower::{lower_layer, Direction, ExecConfig, ExecConfigError};

/// Errors from step simulation.
#[derive(Debug)]
pub enum StepError {
    /// The scheduler failed to place the batch.
    Plan(PlanError),
    /// The plan failed the pre-lowering audit (see
    /// [`StepConfig::audit_plans`]).
    Invalid(Vec<PlanViolation>),
    /// The executor configuration is malformed (e.g. a `rank_speed` vector
    /// that does not cover the cluster).
    Exec(ExecConfigError),
    /// The simulator rejected the lowered DAG.
    Sim(SimError),
}

impl std::fmt::Display for StepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepError::Plan(e) => write!(f, "planning failed: {e}"),
            StepError::Invalid(v) => {
                write!(f, "plan failed audit: {}", violation_report(v))
            }
            StepError::Exec(e) => write!(f, "executor config rejected: {e}"),
            StepError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for StepError {}

impl From<PlanError> for StepError {
    fn from(e: PlanError) -> Self {
        StepError::Plan(e)
    }
}

impl From<ExecConfigError> for StepError {
    fn from(e: ExecConfigError) -> Self {
        StepError::Exec(e)
    }
}

impl From<SimError> for StepError {
    fn from(e: SimError) -> Self {
        StepError::Sim(e)
    }
}

/// Step-level configuration.
#[derive(Debug, Clone)]
pub struct StepConfig {
    /// Executor knobs (routing pipeline, kernels, TP overhead...).
    pub exec: ExecConfig,
    /// Seed for the MoE routing-imbalance sampler.
    pub seed: u64,
    /// MoE router popularity skew (0 = uniform; see `zeppelin_model::moe`).
    pub moe_skew: f64,
    /// Transformer layers simulated back-to-back per direction before
    /// extrapolating to the full depth. 1 (the default) is exact for pure
    /// data parallelism; larger values expose cross-layer effects such as
    /// overlapped gradient synchronization.
    pub chained_layers: usize,
    /// Simulate the ZeRO-1 optimizer phase: each rank updates its 1/R
    /// parameter shard and the updated bf16 weights are ring all-gathered
    /// once per step. Off by default (identical across methods).
    pub zero_optimizer: bool,
    /// Infrastructure faults active during this step's layer simulations
    /// (NIC degradation, link flaps, rank crashes). Empty by default; the
    /// fault-aware trainer rebases its run-level schedule into this.
    pub faults: FaultSchedule,
    /// Run the full plan audit ([`validate_with_batch`]) before lowering.
    /// Defaults to on in debug builds and off in release builds; turn it on
    /// explicitly when the plan comes from an untrusted source (a JSON
    /// file, the serving protocol) rather than a trusted in-process
    /// scheduler.
    pub audit_plans: bool,
}

impl Default for StepConfig {
    fn default() -> Self {
        StepConfig {
            exec: ExecConfig::default(),
            seed: 0,
            moe_skew: 0.5,
            chained_layers: 1,
            zero_optimizer: false,
            faults: FaultSchedule::default(),
            audit_plans: cfg!(debug_assertions),
        }
    }
}

/// Per-rank busy durations of one direction, split by phase.
#[derive(Debug, Clone, Default)]
pub struct PhaseBreakdown {
    /// Attention compute busy time per rank.
    pub attention: Vec<SimDuration>,
    /// Linear-module busy time per rank.
    pub linear: Vec<SimDuration>,
    /// Remapping transfer busy time per rank (sender-attributed).
    pub remap: Vec<SimDuration>,
    /// Attention communication busy time per rank (sender-attributed).
    pub comm: Vec<SimDuration>,
}

impl PhaseBreakdown {
    fn from_trace(trace: &Trace, nranks: usize) -> PhaseBreakdown {
        let busy: BTreeMap<(Rank, TraceCategory), SimDuration> = trace.busy_by_rank_category();
        let pick = |cats: &[TraceCategory]| -> Vec<SimDuration> {
            (0..nranks)
                .map(|r| {
                    cats.iter()
                        .map(|&c| busy.get(&(r, c)).copied().unwrap_or(SimDuration::ZERO))
                        .fold(SimDuration::ZERO, SimDuration::saturating_add)
                })
                .collect()
        };
        PhaseBreakdown {
            attention: pick(&[TraceCategory::AttentionCompute]),
            linear: pick(&[TraceCategory::LinearCompute]),
            remap: pick(&[TraceCategory::Remap]),
            comm: pick(&[
                TraceCategory::RingComm,
                TraceCategory::Dispatch,
                TraceCategory::InterNode,
                TraceCategory::Combine,
            ]),
        }
    }

    /// `(min, max)` across ranks for a phase vector.
    pub fn range(v: &[SimDuration]) -> (SimDuration, SimDuration) {
        let min = v.iter().copied().min().unwrap_or(SimDuration::ZERO);
        let max = v.iter().copied().max().unwrap_or(SimDuration::ZERO);
        (min, max)
    }
}

/// Result of simulating one training step.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Scheduler name.
    pub scheduler: String,
    /// Simulated time of one layer's forward pass.
    pub layer_forward: SimDuration,
    /// Simulated time of one layer's backward pass.
    pub layer_backward: SimDuration,
    /// Full step time: `layers × (forward + backward)`.
    pub step_time: SimDuration,
    /// Tokens processed this step.
    pub tokens: u64,
    /// Throughput in tokens/second.
    pub throughput: f64,
    /// Host wall-clock spent planning (Table 3's "Sequence Partition" row).
    pub plan_wall: std::time::Duration,
    /// Forward-direction phase breakdown per rank.
    pub forward_phase: PhaseBreakdown,
    /// Backward-direction phase breakdown per rank.
    pub backward_phase: PhaseBreakdown,
    /// Per-NIC transmit utilization during the forward layer (fraction of
    /// `bandwidth × makespan` actually used; Fig. 2c's balance metric).
    pub nic_tx_utilization: Vec<f64>,
    /// Per-rank compute-stream busy fraction during the forward layer.
    pub compute_busy_frac: Vec<f64>,
    /// Forward-direction timeline of one layer.
    pub trace_forward: Trace,
    /// Backward-direction timeline of one layer.
    pub trace_backward: Trace,
    /// The plan itself (for zone/assignment inspection).
    pub plan: IterationPlan,
}

/// Multiplier on linear-module time from MoE routing imbalance: the
/// most-loaded expert stretches the expert portion of the layer.
pub fn moe_linear_factor(model: &ModelConfig, tokens: u64, seed: u64, skew: f64) -> f64 {
    let Some(moe) = &model.moe else {
        return 1.0;
    };
    let loads = sample_expert_loads(seed, moe.num_experts, moe.top_k, tokens.max(1), skew);
    let imb = imbalance_factor(&loads);
    let h = model.hidden as f64;
    let expert_flops = 2.0 * 3.0 * h * moe.expert_ffn_hidden as f64 * moe.top_k as f64;
    let share = expert_flops / linear_flops_per_token(model);
    1.0 + (imb - 1.0) * share
}

/// Simulated duration of the ZeRO-1 optimizer phase: a sharded Adam update
/// (memory-bound, ~10 reads/writes per parameter) followed by a ring
/// all-gather of the updated bf16 weights across the whole DP group.
fn zero_optimizer_time(ctx: &SchedulerCtx) -> Result<SimDuration, StepError> {
    let nranks = ctx.cluster.total_gpus();
    let params = ctx.model.param_count() as f64;
    let mut sim = Simulator::new(&ctx.cluster);
    // Shard update: ~10 bytes-ish ops per parameter at HBM speed folded
    // into a FLOP-equivalent kernel; coarse but identical across methods.
    let update_flops = params / nranks as f64 * 10.0;
    let kernel = zeppelin_model::kernel::KernelModel::gemm();
    let mut updates = Vec::with_capacity(nranks);
    for rank in 0..nranks {
        let dur = SimDuration::from_secs_f64(
            kernel.kernel_time(update_flops, ctx.cluster.node.gpu.peak_flops),
        );
        updates.push(Some(sim.compute(
            rank,
            zeppelin_sim::engine::Stream::Compute,
            dur,
            vec![],
            None,
        )?));
    }
    if nranks > 1 {
        let shard_bytes = params * 2.0 / nranks as f64;
        zeppelin_sim::collectives::ring_allgather(
            &mut sim,
            &(0..nranks).collect::<Vec<_>>(),
            shard_bytes,
            &updates,
            "zero-params",
        )?;
    }
    let report = sim.run()?;
    Ok(SimDuration::from_nanos(report.makespan.as_nanos()))
}

/// Simulates one training step of `scheduler` on `batch`.
///
/// # Errors
///
/// Returns [`StepError`] on planning or simulation failure.
///
/// # Examples
///
/// ```
/// use zeppelin_exec::step::{simulate_step, StepConfig};
/// use zeppelin_core::scheduler::SchedulerCtx;
/// use zeppelin_core::zeppelin::Zeppelin;
/// use zeppelin_data::batch::Batch;
/// use zeppelin_model::config::llama_3b;
/// use zeppelin_sim::topology::cluster_a;
///
/// let ctx = SchedulerCtx::new(&cluster_a(1), &llama_3b());
/// let batch = Batch::new(vec![8_000, 2_000, 500]);
/// let report = simulate_step(&Zeppelin::new(), &batch, &ctx, &StepConfig::default()).unwrap();
/// assert!(report.throughput > 0.0);
/// assert!(report.layer_backward > report.layer_forward);
/// ```
pub fn simulate_step(
    scheduler: &dyn Scheduler,
    batch: &Batch,
    ctx: &SchedulerCtx,
    cfg: &StepConfig,
) -> Result<StepReport, StepError> {
    let t0 = std::time::Instant::now();
    let plan = scheduler.plan(batch, ctx)?;
    let plan_wall = t0.elapsed();
    let mut report = simulate_plan(&plan, batch, ctx, cfg)?;
    report.plan_wall = plan_wall;
    Ok(report)
}

/// Simulates a pre-computed plan (used by ablations that edit plans).
///
/// # Errors
///
/// Returns [`StepError`] on simulation failure, and
/// [`StepError::Invalid`] when [`StepConfig::audit_plans`] is set and the
/// plan fails the audit.
pub fn simulate_plan(
    plan: &IterationPlan,
    batch: &Batch,
    ctx: &SchedulerCtx,
    cfg: &StepConfig,
) -> Result<StepReport, StepError> {
    let nranks = ctx.cluster.total_gpus();
    plan.validate(nranks)?;
    cfg.exec.normalized_rank_speed(nranks)?;
    if !cfg.moe_skew.is_finite() {
        return Err(StepError::Exec(ExecConfigError::MoeSkew {
            value: cfg.moe_skew,
        }));
    }
    if cfg.audit_plans {
        validate_with_batch(plan, ctx, batch).map_err(StepError::Invalid)?;
    }
    let mut exec = cfg.exec.clone();
    exec.moe_linear_factor *=
        moe_linear_factor(&ctx.model, batch.total_tokens(), cfg.seed, cfg.moe_skew);

    let chained = cfg.chained_layers.max(1);
    let run_direction =
        |dir: Direction| -> Result<(SimDuration, Trace, Vec<f64>, Vec<f64>), StepError> {
            let mut sim = Simulator::new(&ctx.cluster);
            let mut entry: Vec<Option<zeppelin_sim::engine::TaskId>> = vec![None; nranks];
            for _ in 0..chained {
                let out = lower_layer(&mut sim, &ctx.model, plan, &exec, dir, &entry)?;
                entry = out.exit.into_iter().map(Some).collect();
            }
            let report = sim.run_with_faults(&cfg.faults)?;
            let makespan = SimDuration::from_nanos(report.makespan.as_nanos() / chained as u64);
            let nics = ctx.cluster.nodes * ctx.cluster.node.nic_count;
            let nic_util: Vec<f64> = (0..nics)
                .map(|n| {
                    report.port_utilization(&ctx.cluster, zeppelin_sim::topology::Port::NicTx(n))
                })
                .collect();
            let busy = report.trace.busy_by_rank_category();
            let span_secs = makespan.as_secs_f64().max(1e-30);
            let compute_busy: Vec<f64> = (0..nranks)
                .map(|r| {
                    use zeppelin_sim::trace::TraceCategory as C;
                    let b = [C::AttentionCompute, C::LinearCompute]
                        .iter()
                        .filter_map(|&c| busy.get(&(r, c)))
                        .map(|d| d.as_secs_f64())
                        .sum::<f64>();
                    (b / span_secs).min(1.0)
                })
                .collect();
            Ok((makespan, report.trace, nic_util, compute_busy))
        };

    let (layer_forward, trace_forward, nic_tx_utilization, compute_busy_frac) =
        run_direction(Direction::Forward)?;
    let (layer_backward, trace_backward, _, _) = run_direction(Direction::Backward)?;

    let layers = ctx.model.layers as u64;
    let per_layer = layer_forward.saturating_add(layer_backward);
    let mut step_ns = per_layer.as_nanos().saturating_mul(layers);
    if cfg.zero_optimizer {
        step_ns = step_ns.saturating_add(zero_optimizer_time(ctx)?.as_nanos());
    }
    let step_time = SimDuration::from_nanos(step_ns);
    let tokens = batch.total_tokens();
    let throughput = if step_ns > 0 {
        tokens as f64 / step_time.as_secs_f64()
    } else {
        0.0
    };

    Ok(StepReport {
        scheduler: plan.scheduler.clone(),
        layer_forward,
        layer_backward,
        step_time,
        tokens,
        throughput,
        plan_wall: std::time::Duration::ZERO,
        forward_phase: PhaseBreakdown::from_trace(&trace_forward, nranks),
        backward_phase: PhaseBreakdown::from_trace(&trace_backward, nranks),
        nic_tx_utilization,
        compute_busy_frac,
        trace_forward,
        trace_backward,
        plan: plan.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeppelin_baselines::te_cp::TeCp;
    use zeppelin_core::zeppelin::Zeppelin;
    use zeppelin_model::config::{llama_3b, moe_8x550m};
    use zeppelin_sim::topology::cluster_a;

    fn ctx() -> SchedulerCtx {
        SchedulerCtx::new(&cluster_a(2), &llama_3b()).with_capacity(8192)
    }

    fn mixed_batch() -> Batch {
        Batch::new(vec![
            40_000, 9_000, 5_000, 3_000, 2_000, 2_000, 1_500, 1_000, 500, 400, 300, 300,
        ])
    }

    #[test]
    fn step_produces_positive_throughput() {
        let r =
            simulate_step(&TeCp::new(), &mixed_batch(), &ctx(), &StepConfig::default()).unwrap();
        assert!(r.throughput > 0.0);
        assert!(r.layer_forward > SimDuration::ZERO);
        assert!(r.layer_backward > r.layer_forward);
        assert_eq!(r.tokens, mixed_batch().total_tokens());
        assert_eq!(
            r.step_time.as_nanos(),
            (r.layer_forward.saturating_add(r.layer_backward)).as_nanos() * 26
        );
    }

    #[test]
    fn zeppelin_beats_te_cp_on_mixed_batch() {
        let cfg = StepConfig::default();
        let te = simulate_step(&TeCp::new(), &mixed_batch(), &ctx(), &cfg).unwrap();
        let zep = simulate_step(&Zeppelin::new(), &mixed_batch(), &ctx(), &cfg).unwrap();
        assert!(
            zep.throughput > te.throughput,
            "zeppelin {} vs te {}",
            zep.throughput,
            te.throughput
        );
    }

    #[test]
    fn phase_breakdown_covers_all_ranks() {
        let r = simulate_step(
            &Zeppelin::new(),
            &mixed_batch(),
            &ctx(),
            &StepConfig::default(),
        )
        .unwrap();
        assert_eq!(r.forward_phase.attention.len(), 16);
        assert_eq!(r.forward_phase.linear.len(), 16);
        // Someone computed attention and someone computed linear.
        let (_, amax) = PhaseBreakdown::range(&r.forward_phase.attention);
        let (_, lmax) = PhaseBreakdown::range(&r.forward_phase.linear);
        assert!(amax > SimDuration::ZERO);
        assert!(lmax > SimDuration::ZERO);
    }

    #[test]
    fn moe_factor_is_one_for_dense_and_more_for_moe() {
        assert_eq!(moe_linear_factor(&llama_3b(), 65536, 1, 0.5), 1.0);
        let f = moe_linear_factor(&moe_8x550m(), 65536, 1, 0.8);
        assert!(f > 1.0 && f < 4.0, "factor {f}");
    }

    #[test]
    fn determinism_across_runs() {
        let cfg = StepConfig::default();
        let a = simulate_step(&Zeppelin::new(), &mixed_batch(), &ctx(), &cfg).unwrap();
        let b = simulate_step(&Zeppelin::new(), &mixed_batch(), &ctx(), &cfg).unwrap();
        assert_eq!(a.step_time, b.step_time);
        assert_eq!(a.layer_forward, b.layer_forward);
    }

    #[test]
    fn plan_error_propagates() {
        let tiny = ctx().with_capacity(64);
        let err =
            simulate_step(&TeCp::new(), &mixed_batch(), &tiny, &StepConfig::default()).unwrap_err();
        assert!(matches!(err, StepError::Plan(_)));
        assert!(err.to_string().contains("planning failed"));
    }

    #[test]
    fn nan_moe_skew_is_rejected_with_a_typed_error() {
        let mut cfg = StepConfig::default();
        cfg.moe_skew = f64::NAN;
        let err = simulate_step(&Zeppelin::new(), &mixed_batch(), &ctx(), &cfg).unwrap_err();
        assert!(
            matches!(err, StepError::Exec(ExecConfigError::MoeSkew { .. })),
            "{err}"
        );
    }

    #[test]
    fn audit_rejects_tampered_plans_before_lowering() {
        use zeppelin_core::scheduler::Scheduler;
        let ctx = ctx();
        let batch = mixed_batch();
        let mut plan = Zeppelin::new().plan(&batch, &ctx).unwrap();
        let cfg = StepConfig {
            audit_plans: true,
            ..StepConfig::default()
        };
        simulate_plan(&plan, &batch, &ctx, &cfg).expect("untampered plan passes the audit");
        // Shave tokens off a placement: conservation breaks, typed error.
        plan.placements[0].len -= 13;
        let err = simulate_plan(&plan, &batch, &ctx, &cfg).unwrap_err();
        assert!(matches!(err, StepError::Invalid(_)), "{err}");
        assert!(err.to_string().contains("audit"), "{err}");
    }
}

#[cfg(test)]
mod zero_tests {
    use super::*;
    use zeppelin_core::zeppelin::Zeppelin;
    use zeppelin_data::batch::Batch;
    use zeppelin_model::config::{llama_3b, llama_7b};
    use zeppelin_sim::topology::cluster_a;

    #[test]
    fn zero_optimizer_adds_a_fixed_per_step_cost() {
        let cluster = cluster_a(2);
        let ctx = SchedulerCtx::new(&cluster, &llama_3b());
        let batch = Batch::new(vec![8_000, 4_000, 2_000, 1_000]);
        let run = |zero| {
            let cfg = StepConfig {
                zero_optimizer: zero,
                ..StepConfig::default()
            };
            simulate_step(&Zeppelin::new(), &batch, &ctx, &cfg).unwrap()
        };
        let off = run(false);
        let on = run(true);
        assert!(on.step_time > off.step_time);
        // Layer times are untouched; only the step total grows.
        assert_eq!(on.layer_forward, off.layer_forward);
        assert_eq!(on.layer_backward, off.layer_backward);
    }

    #[test]
    fn zero_phase_scales_with_model_size() {
        let cluster = cluster_a(2);
        let batch = Batch::new(vec![8_000, 4_000, 2_000, 1_000]);
        let step_with = |model: zeppelin_model::config::ModelConfig| {
            let ctx = SchedulerCtx::new(&cluster, &model);
            let on = simulate_step(
                &Zeppelin::new(),
                &batch,
                &ctx,
                &StepConfig {
                    zero_optimizer: true,
                    ..StepConfig::default()
                },
            )
            .unwrap();
            let off =
                simulate_step(&Zeppelin::new(), &batch, &ctx, &StepConfig::default()).unwrap();
            on.step_time.as_secs_f64() - off.step_time.as_secs_f64()
        };
        let small = step_with(llama_3b());
        let big = step_with(llama_7b());
        assert!(big > 1.5 * small, "3B extra {small} vs 7B extra {big}");
    }
}

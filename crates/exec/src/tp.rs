//! Tensor-parallel folding: TP groups become logical DP workers.
//!
//! The paper combines CP with TP=2 for the 13B (Cluster A) and 30B
//! (Cluster C) runs. In the simulation, a TP group is folded into one
//! logical worker: `tp` physical GPUs merge into a device with `tp×` the
//! FLOP/s, memory, fabric and PCIe bandwidth, and the *union* of the
//! group's NICs. On Cluster A (one NIC per two GPUs) folding with TP=2
//! turns the shared-NIC topology into a one-NIC-per-worker topology —
//! exactly the effect the paper credits for the 13B run's larger speedups
//! (§5.1).
//!
//! The TP all-reduces inside each layer stay within a worker and are
//! charged as extra per-token linear time via
//! [`tp_linear_overhead_per_token`].

use zeppelin_model::config::ModelConfig;
use zeppelin_sim::error::SimError;
use zeppelin_sim::topology::{ClusterSpec, NicSpec, NodeSpec};

/// Folds TP groups of size `tp` into logical workers.
///
/// # Errors
///
/// Returns [`SimError::InvalidTopology`] if `tp` does not divide the node's
/// GPU count or TP groups straddle NIC groups unevenly.
///
/// # Examples
///
/// ```
/// use zeppelin_exec::tp::fold_tp;
/// use zeppelin_sim::topology::cluster_a;
///
/// // Cluster A pairs two GPUs per NIC; TP=2 makes that 1:1 per worker.
/// let folded = fold_tp(&cluster_a(2), 2).unwrap();
/// assert_eq!(folded.node.gpus_per_node, 4);
/// assert_ne!(folded.nic_of(0), folded.nic_of(1));
/// ```
pub fn fold_tp(cluster: &ClusterSpec, tp: usize) -> Result<ClusterSpec, SimError> {
    if tp == 0 {
        return Err(SimError::InvalidTopology("tp must be positive".into()));
    }
    if tp == 1 {
        return Ok(cluster.clone());
    }
    let p = cluster.node.gpus_per_node;
    if !p.is_multiple_of(tp) {
        return Err(SimError::InvalidTopology(format!(
            "tp {tp} does not divide {p} GPUs per node"
        )));
    }
    let workers = p / tp;
    // NICs covered by each worker (consecutive GPU grouping, Megatron-style).
    let mut covered: Vec<Vec<usize>> = Vec::with_capacity(workers);
    for w in 0..workers {
        let mut nics: Vec<usize> = (w * tp..(w + 1) * tp)
            .map(|g| cluster.node.nic_affinity[g])
            .collect();
        nics.sort_unstable();
        nics.dedup();
        covered.push(nics);
    }
    let per_worker = covered[0].len();
    if covered.iter().any(|c| c.len() != per_worker) {
        return Err(SimError::InvalidTopology(
            "tp groups cover unequal NIC counts".into(),
        ));
    }
    for (a, b) in covered.iter().zip(covered.iter().skip(1)) {
        if a.iter().any(|n| b.contains(n)) {
            return Err(SimError::InvalidTopology(
                "tp groups share a NIC across workers; fold not representable".into(),
            ));
        }
    }

    let g = cluster.node.gpu;
    Ok(ClusterSpec {
        name: format!("{} (tp{tp})", cluster.name),
        nodes: cluster.nodes,
        node_tiers: cluster.node_tiers.clone(),
        node: NodeSpec {
            gpus_per_node: workers,
            gpu: zeppelin_sim::topology::GpuSpec {
                peak_flops: g.peak_flops * tp as f64,
                mem_bytes: g.mem_bytes * tp as u64,
                nvlink_bw: g.nvlink_bw * tp as f64,
                pcie_bw: g.pcie_bw * tp as f64,
            },
            nic_count: workers,
            nic: NicSpec {
                bw: cluster.node.nic.bw * per_worker as f64,
            },
            nic_affinity: (0..workers).collect(),
        },
    })
}

/// Per-token seconds added to a layer's linear time by TP all-reduces.
///
/// Two all-reduces per layer (post-attention, post-MLP), each moving
/// `2(tp-1)/tp` of the `hidden × dtype` activation per token over the
/// intra-group NVLink (`per_gpu_nvlink_bw`, bytes/s).
pub fn tp_linear_overhead_per_token(model: &ModelConfig, tp: usize, per_gpu_nvlink_bw: f64) -> f64 {
    if tp <= 1 {
        return 0.0;
    }
    let act_bytes = model.hidden as f64 * model.dtype_bytes as f64;
    let ring_factor = 2.0 * (tp as f64 - 1.0) / tp as f64;
    2.0 * ring_factor * act_bytes / per_gpu_nvlink_bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeppelin_model::config::llama_13b;
    use zeppelin_sim::topology::{cluster_a, cluster_c};

    #[test]
    fn tp1_is_identity() {
        let c = cluster_a(2);
        assert_eq!(fold_tp(&c, 1).unwrap(), c);
    }

    #[test]
    fn cluster_a_tp2_gets_one_nic_per_worker() {
        let f = fold_tp(&cluster_a(2), 2).unwrap();
        f.validate().unwrap();
        assert_eq!(f.node.gpus_per_node, 4);
        assert_eq!(f.node.nic_count, 4);
        // NIC bandwidth unchanged: each pair shared one NIC already.
        assert!((f.node.nic.bw - cluster_a(2).node.nic.bw).abs() < 1.0);
        // Worker speed and memory doubled.
        assert!((f.node.gpu.peak_flops - 2.0 * 312e12).abs() < 1e9);
        // The shared-NIC contention is gone: distinct workers, distinct NICs.
        assert_ne!(f.nic_of(0), f.nic_of(1));
    }

    #[test]
    fn cluster_c_tp2_merges_nic_pairs() {
        let f = fold_tp(&cluster_c(2), 2).unwrap();
        f.validate().unwrap();
        assert_eq!(f.node.gpus_per_node, 4);
        assert_eq!(f.node.nic_count, 4);
        // Two 400 Gb/s NICs merge into one 800 Gb/s logical NIC.
        assert!((f.node.nic.bw - 2.0 * 50e9).abs() < 1.0);
    }

    #[test]
    fn indivisible_tp_is_rejected() {
        assert!(fold_tp(&cluster_a(2), 3).is_err());
        assert!(fold_tp(&cluster_a(2), 0).is_err());
    }

    #[test]
    fn overhead_grows_with_tp_and_vanishes_at_one() {
        let m = llama_13b();
        assert_eq!(tp_linear_overhead_per_token(&m, 1, 400e9), 0.0);
        let t2 = tp_linear_overhead_per_token(&m, 2, 400e9);
        let t4 = tp_linear_overhead_per_token(&m, 4, 400e9);
        assert!(t2 > 0.0 && t4 > t2);
        // Sanity: sub-microsecond per token on NVSwitch.
        assert!(t2 < 1e-6);
    }
}

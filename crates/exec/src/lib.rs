//! # zeppelin-exec
//!
//! Executes iteration plans on the cluster simulator.
//!
//! - [`lower`]: turns any scheduler's [`IterationPlan`] into a task DAG —
//!   ring attention rounds with double-buffered overlap, all-gather
//!   attention, three-step routed transfers, remapping all-to-alls, and
//!   micro-batch serialization;
//! - [`step`]: one training step (forward + backward of a representative
//!   layer, scaled by layer count) with per-rank phase breakdowns;
//! - [`trainer`]: multi-step runs with sampled batches and averaged
//!   throughput;
//! - [`recovery`]: fault-aware runs — failure detection, recovery
//!   policies (fail-stop, retry, elastic replanning, checkpoint
//!   restart), and goodput-vs-throughput accounting;
//! - [`tp`]: tensor-parallel folding of the cluster (TP groups become
//!   logical workers), reproducing the 13B/30B + TP=2 setups.
//!
//! [`IterationPlan`]: zeppelin_core::plan::IterationPlan

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lower;
pub mod recovery;
pub mod report;
pub mod step;
pub mod tp;
pub mod trainer;

pub use lower::{lower_layer, Direction, ExecConfig, GradSync, LayerOutcome, QueueOrder};
pub use recovery::{
    run_training_faults, FaultRunConfig, FaultRunReport, RecoveryEvent, RecoveryPolicy,
};
pub use report::{run_report_json, step_report_json};
pub use step::{
    moe_linear_factor, simulate_plan, simulate_step, PhaseBreakdown, StepConfig, StepError,
    StepReport,
};
pub use tp::{fold_tp, tp_linear_overhead_per_token};
pub use trainer::{run_training, run_training_with, RunConfig, RunError, RunReport, StepSummary};

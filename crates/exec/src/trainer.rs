//! Multi-step training runs: sampled batches, averaged throughput.
//!
//! The paper reports "processed tokens per second, averaged over steps
//! 50–150"; here each step draws a fresh batch from the dataset
//! distribution, and throughput statistics are aggregated over the run.

use rand::rngs::StdRng;
use rand::SeedableRng;

use zeppelin_core::scheduler::{Scheduler, SchedulerCtx};
use zeppelin_data::batch::sample_batch;
use zeppelin_data::distribution::LengthDistribution;
use zeppelin_sim::error::SimError;
use zeppelin_sim::time::SimDuration;
use zeppelin_sim::topology::Rank;

use crate::step::{simulate_step, StepConfig, StepError, StepReport};

/// Errors from multi-step training runs.
///
/// Marked `#[non_exhaustive]`: the recovery layer adds failure modes over
/// time; match with a wildcard arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum RunError {
    /// The run was configured with zero steps.
    NoSteps,
    /// A sampled batch carried zero tokens; there is nothing to train on.
    EmptyBatch {
        /// Step whose batch was empty.
        step: usize,
    },
    /// A step failed to plan or simulate.
    Step {
        /// The failing step.
        step: usize,
        /// The underlying step error.
        source: StepError,
    },
    /// The fault schedule is inconsistent with the cluster.
    Faults(SimError),
    /// A rank died and the [`FailStop`](crate::recovery::RecoveryPolicy::FailStop)
    /// policy aborted the run.
    RankLost {
        /// The dead rank (numbered in the original cluster).
        rank: Rank,
        /// Step during which the crash was detected.
        step: usize,
    },
    /// Retries were exhausted without completing the step.
    RetriesExhausted {
        /// The step that kept failing.
        step: usize,
        /// Attempts made (including the first).
        attempts: usize,
    },
    /// Every node was lost; there is no surviving cluster to replan onto.
    NoSurvivors {
        /// Step during which the last node died.
        step: usize,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::NoSteps => write!(f, "training run needs at least one step"),
            RunError::EmptyBatch { step } => {
                write!(f, "step {step} sampled an empty batch (zero tokens)")
            }
            RunError::Step { step, source } => write!(f, "step {step} failed: {source}"),
            RunError::Faults(e) => write!(f, "invalid fault schedule: {e}"),
            RunError::RankLost { rank, step } => {
                write!(
                    f,
                    "rank {rank} lost at step {step}; fail-stop policy aborts the run"
                )
            }
            RunError::RetriesExhausted { step, attempts } => {
                write!(f, "step {step} still failing after {attempts} attempt(s)")
            }
            RunError::NoSurvivors { step } => {
                write!(f, "no surviving nodes to replan onto at step {step}")
            }
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Step { source, .. } => Some(source),
            RunError::Faults(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Faults(e)
    }
}

/// Configuration of a multi-step training run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Steps to simulate (each with a freshly sampled batch).
    pub steps: usize,
    /// Total context tokens per step.
    pub tokens_per_step: u64,
    /// Base RNG seed (step `i` uses `seed + i`).
    pub seed: u64,
    /// Per-step configuration.
    pub step: StepConfig,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            steps: 10,
            tokens_per_step: 65_536,
            seed: 42,
            step: StepConfig::default(),
        }
    }
}

/// Aggregated result of a training run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scheduler name.
    pub scheduler: String,
    /// Mean throughput across steps, tokens/second.
    pub mean_throughput: f64,
    /// Minimum per-step throughput.
    pub min_throughput: f64,
    /// Maximum per-step throughput.
    pub max_throughput: f64,
    /// Mean step time.
    pub mean_step_time: SimDuration,
    /// Per-step reports (traces dropped to keep this light).
    pub steps: Vec<StepSummary>,
}

/// A trimmed per-step record.
#[derive(Debug, Clone)]
pub struct StepSummary {
    /// Step time.
    pub step_time: SimDuration,
    /// Tokens processed.
    pub tokens: u64,
    /// Throughput, tokens/second.
    pub throughput: f64,
    /// Sequences in the batch.
    pub sequences: usize,
}

impl From<&StepReport> for StepSummary {
    fn from(r: &StepReport) -> Self {
        StepSummary {
            step_time: r.step_time,
            tokens: r.tokens,
            throughput: r.throughput,
            sequences: r.plan.placements.len(),
        }
    }
}

/// Runs `scheduler` for `cfg.steps` steps over batches sampled from `dist`.
///
/// # Errors
///
/// Returns [`RunError::NoSteps`] for a zero-step config,
/// [`RunError::EmptyBatch`] if a sampled batch has no tokens, and wraps the
/// first [`StepError`] encountered in [`RunError::Step`] (plans from presets
/// should not fail; capacity errors indicate a mis-sized experiment).
///
/// # Examples
///
/// ```
/// use zeppelin_core::scheduler::SchedulerCtx;
/// use zeppelin_core::zeppelin::Zeppelin;
/// use zeppelin_data::datasets::arxiv;
/// use zeppelin_exec::trainer::{run_training, RunConfig};
/// use zeppelin_model::config::llama_3b;
/// use zeppelin_sim::topology::cluster_a;
///
/// let ctx = SchedulerCtx::new(&cluster_a(1), &llama_3b());
/// let cfg = RunConfig {
///     steps: 2,
///     tokens_per_step: 16_384,
///     ..RunConfig::default()
/// };
/// let report = run_training(&Zeppelin::new(), &arxiv(), &ctx, &cfg).unwrap();
/// assert_eq!(report.steps.len(), 2);
/// assert!(report.mean_throughput > 0.0);
/// ```
pub fn run_training(
    scheduler: &dyn Scheduler,
    dist: &LengthDistribution,
    ctx: &SchedulerCtx,
    cfg: &RunConfig,
) -> Result<RunReport, RunError> {
    run_training_with(scheduler, ctx, cfg, |rng, tokens| {
        sample_batch(dist, rng, tokens)
    })
}

/// Like [`run_training`], but draws each step's batch from a caller-provided
/// sampler — dataset mixtures, trace replays, curriculum schedules.
///
/// # Errors
///
/// Returns [`RunError::NoSteps`] for `cfg.steps == 0`,
/// [`RunError::EmptyBatch`] if the sampler produces a zero-token batch, and
/// the first step failure as [`RunError::Step`].
///
/// # Examples
///
/// ```
/// use zeppelin_core::scheduler::SchedulerCtx;
/// use zeppelin_core::zeppelin::Zeppelin;
/// use zeppelin_data::mixture::pretraining_mix;
/// use zeppelin_exec::trainer::{run_training_with, RunConfig};
/// use zeppelin_model::config::llama_3b;
/// use zeppelin_sim::topology::cluster_a;
///
/// let ctx = SchedulerCtx::new(&cluster_a(1), &llama_3b());
/// let mix = pretraining_mix();
/// let cfg = RunConfig { steps: 2, tokens_per_step: 16_384, ..RunConfig::default() };
/// let report = run_training_with(&Zeppelin::new(), &ctx, &cfg, |rng, tokens| {
///     mix.sample_batch(rng, tokens)
/// })
/// .unwrap();
/// assert_eq!(report.steps.len(), 2);
/// ```
pub fn run_training_with(
    scheduler: &dyn Scheduler,
    ctx: &SchedulerCtx,
    cfg: &RunConfig,
    mut sampler: impl FnMut(&mut StdRng, u64) -> zeppelin_data::batch::Batch,
) -> Result<RunReport, RunError> {
    if cfg.steps == 0 {
        return Err(RunError::NoSteps);
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut steps = Vec::with_capacity(cfg.steps);
    let mut sum_tp = 0.0;
    let mut min_tp = f64::INFINITY;
    let mut max_tp = 0.0f64;
    let mut sum_ns: u128 = 0;
    let mut name = String::new();
    for i in 0..cfg.steps {
        let batch = sampler(&mut rng, cfg.tokens_per_step);
        if batch.total_tokens() == 0 {
            return Err(RunError::EmptyBatch { step: i });
        }
        let mut scfg = cfg.step.clone();
        scfg.seed = cfg.seed.wrapping_add(i as u64);
        let report = simulate_step(scheduler, &batch, ctx, &scfg)
            .map_err(|source| RunError::Step { step: i, source })?;
        sum_tp += report.throughput;
        min_tp = min_tp.min(report.throughput);
        max_tp = max_tp.max(report.throughput);
        sum_ns += report.step_time.as_nanos() as u128;
        name = report.scheduler.clone();
        steps.push(StepSummary::from(&report));
    }
    Ok(RunReport {
        scheduler: name,
        mean_throughput: sum_tp / cfg.steps as f64,
        min_throughput: min_tp,
        max_throughput: max_tp,
        mean_step_time: SimDuration::from_nanos((sum_ns / cfg.steps as u128) as u64),
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeppelin_baselines::te_cp::TeCp;
    use zeppelin_core::zeppelin::Zeppelin;
    use zeppelin_data::datasets::arxiv;
    use zeppelin_model::config::llama_3b;
    use zeppelin_sim::topology::cluster_a;

    fn ctx() -> SchedulerCtx {
        SchedulerCtx::new(&cluster_a(2), &llama_3b()).with_capacity(8192)
    }

    fn cfg(steps: usize) -> RunConfig {
        RunConfig {
            steps,
            tokens_per_step: 65_536,
            seed: 7,
            step: StepConfig::default(),
        }
    }

    #[test]
    fn run_aggregates_steps() {
        let r = run_training(&TeCp::new(), &arxiv(), &ctx(), &cfg(3)).unwrap();
        assert_eq!(r.steps.len(), 3);
        assert!(r.mean_throughput > 0.0);
        assert!(r.min_throughput <= r.mean_throughput);
        assert!(r.mean_throughput <= r.max_throughput);
        assert_eq!(r.scheduler, "TE CP");
    }

    #[test]
    fn batches_differ_across_steps() {
        let r = run_training(&Zeppelin::new(), &arxiv(), &ctx(), &cfg(4)).unwrap();
        let seq_counts: Vec<usize> = r.steps.iter().map(|s| s.sequences).collect();
        assert!(
            seq_counts.windows(2).any(|w| w[0] != w[1]),
            "expected varying batches, got {seq_counts:?}"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_training(&Zeppelin::new(), &arxiv(), &ctx(), &cfg(3)).unwrap();
        let b = run_training(&Zeppelin::new(), &arxiv(), &ctx(), &cfg(3)).unwrap();
        assert_eq!(a.mean_step_time, b.mean_step_time);
    }

    #[test]
    fn zero_steps_is_a_typed_error() {
        let err = run_training(&TeCp::new(), &arxiv(), &ctx(), &cfg(0)).unwrap_err();
        assert!(matches!(err, RunError::NoSteps));
        assert!(err.to_string().contains("at least one step"));
    }

    #[test]
    fn empty_batch_is_a_typed_error() {
        let err = run_training_with(&TeCp::new(), &ctx(), &cfg(2), |_, _| {
            zeppelin_data::batch::Batch::new(vec![])
        })
        .unwrap_err();
        assert!(matches!(err, RunError::EmptyBatch { step: 0 }));
        assert!(err.to_string().contains("empty batch"));
    }

    #[test]
    fn step_failures_carry_the_step_index() {
        let tiny = ctx().with_capacity(64);
        let err = run_training(&TeCp::new(), &arxiv(), &tiny, &cfg(2)).unwrap_err();
        match err {
            RunError::Step { step, source } => {
                assert_eq!(step, 0);
                assert!(matches!(source, crate::step::StepError::Plan(_)));
            }
            other => panic!("expected Step error, got {other}"),
        }
    }
}

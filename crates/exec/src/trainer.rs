//! Multi-step training runs: sampled batches, averaged throughput.
//!
//! The paper reports "processed tokens per second, averaged over steps
//! 50–150"; here each step draws a fresh batch from the dataset
//! distribution, and throughput statistics are aggregated over the run.

use rand::rngs::StdRng;
use rand::SeedableRng;

use zeppelin_core::scheduler::{Scheduler, SchedulerCtx};
use zeppelin_data::batch::sample_batch;
use zeppelin_data::distribution::LengthDistribution;
use zeppelin_sim::time::SimDuration;

use crate::step::{simulate_step, StepConfig, StepError, StepReport};

/// Configuration of a multi-step training run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Steps to simulate (each with a freshly sampled batch).
    pub steps: usize,
    /// Total context tokens per step.
    pub tokens_per_step: u64,
    /// Base RNG seed (step `i` uses `seed + i`).
    pub seed: u64,
    /// Per-step configuration.
    pub step: StepConfig,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            steps: 10,
            tokens_per_step: 65_536,
            seed: 42,
            step: StepConfig::default(),
        }
    }
}

/// Aggregated result of a training run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scheduler name.
    pub scheduler: String,
    /// Mean throughput across steps, tokens/second.
    pub mean_throughput: f64,
    /// Minimum per-step throughput.
    pub min_throughput: f64,
    /// Maximum per-step throughput.
    pub max_throughput: f64,
    /// Mean step time.
    pub mean_step_time: SimDuration,
    /// Per-step reports (traces dropped to keep this light).
    pub steps: Vec<StepSummary>,
}

/// A trimmed per-step record.
#[derive(Debug, Clone)]
pub struct StepSummary {
    /// Step time.
    pub step_time: SimDuration,
    /// Tokens processed.
    pub tokens: u64,
    /// Throughput, tokens/second.
    pub throughput: f64,
    /// Sequences in the batch.
    pub sequences: usize,
}

impl From<&StepReport> for StepSummary {
    fn from(r: &StepReport) -> Self {
        StepSummary {
            step_time: r.step_time,
            tokens: r.tokens,
            throughput: r.throughput,
            sequences: r.plan.placements.len(),
        }
    }
}

/// Runs `scheduler` for `cfg.steps` steps over batches sampled from `dist`.
///
/// # Errors
///
/// Returns the first [`StepError`] encountered (plans from presets should
/// not fail; capacity errors indicate a mis-sized experiment).
///
/// # Examples
///
/// ```
/// use zeppelin_core::scheduler::SchedulerCtx;
/// use zeppelin_core::zeppelin::Zeppelin;
/// use zeppelin_data::datasets::arxiv;
/// use zeppelin_exec::trainer::{run_training, RunConfig};
/// use zeppelin_model::config::llama_3b;
/// use zeppelin_sim::topology::cluster_a;
///
/// let ctx = SchedulerCtx::new(&cluster_a(1), &llama_3b());
/// let cfg = RunConfig {
///     steps: 2,
///     tokens_per_step: 16_384,
///     ..RunConfig::default()
/// };
/// let report = run_training(&Zeppelin::new(), &arxiv(), &ctx, &cfg).unwrap();
/// assert_eq!(report.steps.len(), 2);
/// assert!(report.mean_throughput > 0.0);
/// ```
pub fn run_training(
    scheduler: &dyn Scheduler,
    dist: &LengthDistribution,
    ctx: &SchedulerCtx,
    cfg: &RunConfig,
) -> Result<RunReport, StepError> {
    run_training_with(scheduler, ctx, cfg, |rng, tokens| {
        sample_batch(dist, rng, tokens)
    })
}

/// Like [`run_training`], but draws each step's batch from a caller-provided
/// sampler — dataset mixtures, trace replays, curriculum schedules.
///
/// # Errors
///
/// Returns the first [`StepError`] encountered.
///
/// # Panics
///
/// Panics if `cfg.steps == 0`.
///
/// # Examples
///
/// ```
/// use zeppelin_core::scheduler::SchedulerCtx;
/// use zeppelin_core::zeppelin::Zeppelin;
/// use zeppelin_data::mixture::pretraining_mix;
/// use zeppelin_exec::trainer::{run_training_with, RunConfig};
/// use zeppelin_model::config::llama_3b;
/// use zeppelin_sim::topology::cluster_a;
///
/// let ctx = SchedulerCtx::new(&cluster_a(1), &llama_3b());
/// let mix = pretraining_mix();
/// let cfg = RunConfig { steps: 2, tokens_per_step: 16_384, ..RunConfig::default() };
/// let report = run_training_with(&Zeppelin::new(), &ctx, &cfg, |rng, tokens| {
///     mix.sample_batch(rng, tokens)
/// })
/// .unwrap();
/// assert_eq!(report.steps.len(), 2);
/// ```
pub fn run_training_with(
    scheduler: &dyn Scheduler,
    ctx: &SchedulerCtx,
    cfg: &RunConfig,
    mut sampler: impl FnMut(&mut StdRng, u64) -> zeppelin_data::batch::Batch,
) -> Result<RunReport, StepError> {
    assert!(cfg.steps > 0, "need at least one step");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut steps = Vec::with_capacity(cfg.steps);
    let mut sum_tp = 0.0;
    let mut min_tp = f64::INFINITY;
    let mut max_tp = 0.0f64;
    let mut sum_ns: u128 = 0;
    let mut name = String::new();
    for i in 0..cfg.steps {
        let batch = sampler(&mut rng, cfg.tokens_per_step);
        let mut scfg = cfg.step.clone();
        scfg.seed = cfg.seed.wrapping_add(i as u64);
        let report = simulate_step(scheduler, &batch, ctx, &scfg)?;
        sum_tp += report.throughput;
        min_tp = min_tp.min(report.throughput);
        max_tp = max_tp.max(report.throughput);
        sum_ns += report.step_time.as_nanos() as u128;
        name = report.scheduler.clone();
        steps.push(StepSummary::from(&report));
    }
    Ok(RunReport {
        scheduler: name,
        mean_throughput: sum_tp / cfg.steps as f64,
        min_throughput: min_tp,
        max_throughput: max_tp,
        mean_step_time: SimDuration::from_nanos((sum_ns / cfg.steps as u128) as u64),
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeppelin_baselines::te_cp::TeCp;
    use zeppelin_core::zeppelin::Zeppelin;
    use zeppelin_data::datasets::arxiv;
    use zeppelin_model::config::llama_3b;
    use zeppelin_sim::topology::cluster_a;

    fn ctx() -> SchedulerCtx {
        SchedulerCtx::new(&cluster_a(2), &llama_3b()).with_capacity(8192)
    }

    fn cfg(steps: usize) -> RunConfig {
        RunConfig {
            steps,
            tokens_per_step: 65_536,
            seed: 7,
            step: StepConfig::default(),
        }
    }

    #[test]
    fn run_aggregates_steps() {
        let r = run_training(&TeCp::new(), &arxiv(), &ctx(), &cfg(3)).unwrap();
        assert_eq!(r.steps.len(), 3);
        assert!(r.mean_throughput > 0.0);
        assert!(r.min_throughput <= r.mean_throughput);
        assert!(r.mean_throughput <= r.max_throughput);
        assert_eq!(r.scheduler, "TE CP");
    }

    #[test]
    fn batches_differ_across_steps() {
        let r = run_training(&Zeppelin::new(), &arxiv(), &ctx(), &cfg(4)).unwrap();
        let seq_counts: Vec<usize> = r.steps.iter().map(|s| s.sequences).collect();
        assert!(
            seq_counts.windows(2).any(|w| w[0] != w[1]),
            "expected varying batches, got {seq_counts:?}"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_training(&Zeppelin::new(), &arxiv(), &ctx(), &cfg(3)).unwrap();
        let b = run_training(&Zeppelin::new(), &arxiv(), &ctx(), &cfg(3)).unwrap();
        assert_eq!(a.mean_step_time, b.mean_step_time);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_panics() {
        let _ = run_training(&TeCp::new(), &arxiv(), &ctx(), &cfg(0));
    }
}

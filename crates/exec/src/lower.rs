//! Lowers an [`IterationPlan`] onto the simulator.
//!
//! One call lowers one transformer layer in one direction (forward or
//! backward). The generated DAG implements:
//!
//! - the **attention engine** (§3.2): per-rank queues executed inter-node →
//!   intra-node → local (enforced with ordering markers), each ring group
//!   running `G` rounds of compute overlapped with KV send-receive under a
//!   double-buffer constraint;
//! - **all-gather attention** for the LLaMA CP baseline (gather on the
//!   critical path, then one big local kernel);
//! - the **routing layer** (§3.3): inter-node ring hops optionally decompose
//!   into pipelined dispatch → multi-NIC transfer → combine stages;
//! - the **remapping layer** (§3.4): all-to-all token moves around the
//!   linear modules when the plan enables it and imbalance warrants it;
//! - **micro-batches** (Hybrid DP, packing): serialized per rank.
//!
//! Backward lowering reuses the same structure with FLOPs and communication
//! volume scaled by the backward multipliers.

// Ring positions, per-rank slots and launch tables are parallel arrays
// indexed by position; iterator rewrites would obscure the ring math.
#![allow(clippy::needless_range_loop)]

use std::collections::BTreeMap;

use zeppelin_core::chunking::{
    position_pair_flops_weighted, position_tokens_weighted, position_total_flops_weighted,
    ring_round_flops_weighted, ring_round_kv_bytes_weighted,
};
use zeppelin_core::plan::{AttnMode, IterationPlan, SeqPlacement, Zone};
use zeppelin_core::remap::{needs_remap, needs_remap_weighted, plan_remap, plan_remap_weighted};
use zeppelin_core::routing::route_internode;
use zeppelin_model::config::ModelConfig;
use zeppelin_model::flops::{
    attention_seq_flops, linear_flops_per_token, BACKWARD_COMM_MULTIPLIER,
    BACKWARD_FLOPS_MULTIPLIER,
};
use zeppelin_model::kernel::{KernelModel, COMM_LAUNCH_OVERHEAD_S};
use zeppelin_model::memory::hidden_bytes;
use zeppelin_sim::engine::{Simulator, Stream, TaskId, TraceInfo};
use zeppelin_sim::error::SimError;
use zeppelin_sim::time::SimDuration;
use zeppelin_sim::topology::Rank;
use zeppelin_sim::trace::TraceCategory;

/// Pass direction; backward scales FLOPs and communication volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Forward pass.
    Forward,
    /// Backward pass (≈2× FLOPs, ≈2× KV traffic).
    Backward,
}

impl Direction {
    fn flops_scale(self) -> f64 {
        match self {
            Direction::Forward => 1.0,
            Direction::Backward => BACKWARD_FLOPS_MULTIPLIER,
        }
    }

    fn comm_scale(self) -> f64 {
        match self {
            Direction::Forward => 1.0,
            Direction::Backward => BACKWARD_COMM_MULTIPLIER,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Direction::Forward => "fwd",
            Direction::Backward => "bwd",
        }
    }
}

/// Attention-queue execution order (§3.2 argues for inter-first; the
/// reversed order exists for the ordering ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueOrder {
    /// Inter-node, then intra-node, then local (the paper's order).
    #[default]
    InterFirst,
    /// Local, then intra-node, then inter-node (ablation).
    LocalFirst,
}

/// Data-parallel gradient synchronization modelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GradSync {
    /// No gradient traffic (the default; identical across methods, so it
    /// cancels in comparisons and is off for the paper exhibits).
    Off,
    /// Ring all-reduce per layer during the backward pass, overlapped with
    /// the remaining backward compute.
    Overlapped,
    /// Ring all-reduce per layer, serialized after the layer's backward
    /// work (the "no overlap" ablation).
    Blocking,
}

/// Executor tuning knobs.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Pipeline chunks for routed transfers (stage overlap granularity).
    pub routing_pipeline: usize,
    /// Attention queue ordering.
    pub queue_order: QueueOrder,
    /// Multiplier on linear-module time from MoE routing imbalance (1.0
    /// for dense models).
    pub moe_linear_factor: f64,
    /// Extra per-token seconds in linear modules from TP all-reduces.
    pub tp_overhead_per_token: f64,
    /// Imbalance slack below which remapping is skipped.
    pub remap_slack: f64,
    /// Attention kernel timing model.
    pub attention_kernel: KernelModel,
    /// Linear-module kernel timing model.
    pub gemm_kernel: KernelModel,
    /// Data-parallel gradient synchronization.
    pub grad_sync: GradSync,
    /// Per-rank speed factors (straggler modelling): kernel rates multiply
    /// by `rank_speed[rank]`. Empty means homogeneous (all 1.0).
    pub rank_speed: Vec<f64>,
    /// Whether the remapping layer may use `rank_speed` to set
    /// speed-proportional linear-module targets. This models *scheduler
    /// awareness* of the degradation — `rank_speed` alone is physics.
    pub speed_aware_remap: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            routing_pipeline: 4,
            queue_order: QueueOrder::InterFirst,
            moe_linear_factor: 1.0,
            tp_overhead_per_token: 0.0,
            remap_slack: 0.02,
            attention_kernel: KernelModel::attention(),
            gemm_kernel: KernelModel::gemm(),
            grad_sync: GradSync::Off,
            rank_speed: Vec::new(),
            speed_aware_remap: false,
        }
    }
}

/// A rejected executor or step configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecConfigError {
    /// The MoE router skew is non-finite: NaN would poison the expert-load
    /// softmax and every downstream linear-time estimate.
    MoeSkew {
        /// Offending value.
        value: f64,
    },
    /// `rank_speed` is non-empty but does not cover every cluster rank.
    /// A short vector used to mean "missing ranks run at full speed" in the
    /// kernel path while the remap path padded with 1.0 — two different
    /// physics for the same config; now both reject it up front.
    RankSpeedLength {
        /// Length of the configured vector.
        got: usize,
        /// Ranks in the cluster.
        nranks: usize,
    },
    /// A `rank_speed` entry is non-finite or not strictly positive.
    RankSpeedValue {
        /// Offending rank.
        rank: usize,
        /// Offending value.
        value: f64,
    },
}

impl std::fmt::Display for ExecConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecConfigError::MoeSkew { value } => {
                write!(f, "moe_skew = {value} is not finite")
            }
            ExecConfigError::RankSpeedLength { got, nranks } => write!(
                f,
                "rank_speed has {got} entries for a {nranks}-rank cluster \
                 (must be empty or cover every rank)"
            ),
            ExecConfigError::RankSpeedValue { rank, value } => {
                write!(f, "rank_speed[{rank}] = {value} is not positive and finite")
            }
        }
    }
}

impl std::error::Error for ExecConfigError {}

impl ExecConfig {
    /// Validates `rank_speed` against a cluster of `nranks` ranks and
    /// returns the single normalized speed vector both the kernel-rate and
    /// remap paths use: `None` for a homogeneous cluster, `Some(v)` with
    /// exactly one positive finite entry per rank otherwise.
    ///
    /// # Errors
    ///
    /// [`ExecConfigError`] when the vector is non-empty with the wrong
    /// length, or contains a non-finite or non-positive entry.
    pub fn normalized_rank_speed(
        &self,
        nranks: usize,
    ) -> Result<Option<Vec<f64>>, ExecConfigError> {
        if self.rank_speed.is_empty() {
            return Ok(None);
        }
        if self.rank_speed.len() != nranks {
            return Err(ExecConfigError::RankSpeedLength {
                got: self.rank_speed.len(),
                nranks,
            });
        }
        for (rank, &value) in self.rank_speed.iter().enumerate() {
            if !(value.is_finite() && value > 0.0) {
                return Err(ExecConfigError::RankSpeedValue { rank, value });
            }
        }
        Ok(Some(self.rank_speed.clone()))
    }
}

/// Return type of the group-lowering helpers: per-rank attention
/// completion markers and per-rank communication completions (for the
/// queue-segment ordering dependencies).
type GroupTasks = (Vec<(Rank, TaskId)>, Vec<(Rank, TaskId)>);

/// Task handles produced by lowering one layer.
#[derive(Debug, Clone, Default)]
pub struct LayerOutcome {
    /// Per-rank exit markers (chain these into the next layer's entry).
    pub exit: Vec<TaskId>,
    /// All attention compute tasks, tagged by rank.
    pub attn_compute: Vec<(Rank, TaskId)>,
    /// All linear compute tasks, tagged by rank.
    pub linear_compute: Vec<(Rank, TaskId)>,
    /// All remap transfer tasks.
    pub remap_flows: Vec<TaskId>,
    /// All attention communication tasks (ring sends or routed stages).
    pub comm_tasks: Vec<TaskId>,
}

/// Lowers one layer of `plan` in `dir`, chaining from per-rank `entry`
/// markers (use `&[]`-equivalent `vec![None; ranks]` for the first layer).
///
/// # Errors
///
/// Propagates simulator construction errors ([`SimError`]).
///
/// # Panics
///
/// Panics if `entry` does not have one slot per cluster rank, the plan
/// references ranks outside the cluster, or `cfg.rank_speed` is malformed
/// (validate plans and configs first — see
/// [`ExecConfig::normalized_rank_speed`]).
pub fn lower_layer(
    sim: &mut Simulator,
    model: &ModelConfig,
    plan: &IterationPlan,
    cfg: &ExecConfig,
    dir: Direction,
    entry: &[Option<TaskId>],
) -> Result<LayerOutcome, SimError> {
    let cluster = sim.cluster().clone();
    let nranks = cluster.total_gpus();
    assert_eq!(entry.len(), nranks, "entry must have one slot per rank");
    let speed = cfg
        .normalized_rank_speed(nranks)
        .unwrap_or_else(|e| panic!("invalid ExecConfig: {e}"));
    let base_peak = cluster.node.gpu.peak_flops;
    let peaks: Vec<f64> = (0..nranks)
        .map(|r| base_peak * speed.as_ref().map_or(1.0, |s| s[r]))
        .collect();

    let mut out = LayerOutcome::default();
    let mut mb_entry: Vec<Option<TaskId>> = entry.to_vec();

    for mb in 0..plan.micro_batches {
        let placements: Vec<&SeqPlacement> = plan
            .placements
            .iter()
            .filter(|p| p.micro_batch == mb)
            .collect();

        // Group multi-rank placements by (ranks, mode, speed weights) —
        // differently-weighted sequences cut different chunk geometry, so
        // they must not fuse into one ring. Locals by rank.
        type GroupKey = (Vec<Rank>, u8, Vec<u32>);
        let mut groups: BTreeMap<GroupKey, Vec<&SeqPlacement>> = BTreeMap::new();
        let mut locals: Vec<Vec<&SeqPlacement>> = vec![Vec::new(); nranks];
        for p in &placements {
            if p.ranks.len() == 1 {
                locals[p.ranks[0]].push(p);
            } else {
                let mode_key = match p.mode {
                    AttnMode::Ring => 0u8,
                    AttnMode::AllGather => 1u8,
                    AttnMode::Ulysses => 2u8,
                    AttnMode::DoubleRing => 3u8,
                };
                groups
                    .entry((p.ranks.clone(), mode_key, p.weights.clone()))
                    .or_default()
                    .push(p);
            }
        }

        // Per-rank attention compute ids (for the attention-done barrier)
        // and per-rank queue-segment ordering dependencies. Compute order
        // alone is not enough: NCCL-style comm kernels serialize on each
        // rank's communication stream, so a segment's sends also gate the
        // next segment's sends — this is precisely why §3.2 argues for
        // launching inter-node queues first.
        let mut rank_attn: Vec<Vec<TaskId>> = vec![Vec::new(); nranks];
        let mut seg_dep: Vec<Option<TaskId>> = mb_entry.clone();
        let mut comm_dep: Vec<Option<TaskId>> = mb_entry.clone();

        let segments: [&dyn Fn(Zone) -> bool; 3] = match cfg.queue_order {
            QueueOrder::InterFirst => {
                [&|z| z == Zone::InterNode, &|z| z == Zone::IntraNode, &|z| {
                    z == Zone::Local
                }]
            }
            QueueOrder::LocalFirst => [&|z| z == Zone::Local, &|z| z == Zone::IntraNode, &|z| {
                z == Zone::InterNode
            }],
        };

        for select in segments {
            let mut seg_computes: Vec<Vec<TaskId>> = vec![Vec::new(); nranks];
            let mut seg_sends: Vec<Vec<TaskId>> = vec![Vec::new(); nranks];

            // Multi-rank groups in this segment.
            for ((ranks, mode_key, weights), seqs) in groups
                .iter()
                .filter(|((_, _, _), v)| select(v.first().expect("non-empty group").zone))
            {
                let lens: Vec<u64> = seqs.iter().map(|p| p.len).collect();
                let (computes, sends) = match *mode_key {
                    0 => lower_ring_group(
                        sim, model, cfg, dir, plan, ranks, &lens, weights, &seg_dep, &comm_dep,
                        &mut out, &peaks,
                    )?,
                    1 => lower_allgather_group(
                        sim, model, cfg, dir, ranks, &lens, weights, &seg_dep, &comm_dep, &mut out,
                        &peaks,
                    )?,
                    2 => lower_ulysses_group(
                        sim, model, cfg, dir, ranks, &lens, weights, &seg_dep, &comm_dep, &mut out,
                        &peaks,
                    )?,
                    _ => lower_double_ring_group(
                        sim, model, cfg, dir, plan, ranks, &lens, weights, &seg_dep, &comm_dep,
                        &mut out, &peaks,
                    )?,
                };
                for (rank, id) in computes {
                    seg_computes[rank].push(id);
                    rank_attn[rank].push(id);
                    out.attn_compute.push((rank, id));
                }
                for (rank, id) in sends {
                    seg_sends[rank].push(id);
                }
            }

            // Local placements in this segment.
            if select(Zone::Local) {
                for (rank, seqs) in locals.iter().enumerate() {
                    if seqs.is_empty() {
                        continue;
                    }
                    let flops: f64 = seqs
                        .iter()
                        .map(|p| attention_seq_flops(model, p.len))
                        .sum::<f64>()
                        * dir.flops_scale();
                    let dur = SimDuration::from_secs_f64(
                        cfg.attention_kernel.kernel_time(flops, peaks[rank]),
                    );
                    let deps = seg_dep[rank].into_iter().collect();
                    let id = sim.compute(
                        rank,
                        Stream::Compute,
                        dur,
                        deps,
                        Some(TraceInfo {
                            rank,
                            category: TraceCategory::AttentionCompute,
                            label: format!("attn-local {}", dir.label()),
                        }),
                    )?;
                    seg_computes[rank].push(id);
                    rank_attn[rank].push(id);
                    out.attn_compute.push((rank, id));
                }
            }

            // Advance the per-rank ordering dependencies past this segment.
            for rank in 0..nranks {
                if !seg_computes[rank].is_empty() {
                    let m = sim.marker(seg_computes[rank].clone())?;
                    seg_dep[rank] = Some(m);
                }
                if !seg_sends[rank].is_empty() {
                    let m = sim.marker(seg_sends[rank].clone())?;
                    comm_dep[rank] = Some(m);
                }
            }
        }

        // Attention-done barrier per rank.
        let mut attn_done: Vec<TaskId> = Vec::with_capacity(nranks);
        for rank in 0..nranks {
            let mut deps = rank_attn[rank].clone();
            if deps.is_empty() {
                deps.extend(mb_entry[rank]);
            }
            attn_done.push(sim.marker(deps)?);
        }

        // Linear phase, optionally sandwiched by remap / inverse remap.
        // `rank_speed` alone is physics (slow kernels); speed-proportional
        // *targets* additionally require scheduler awareness, declared
        // either in the executor config or by the plan itself.
        let attn_tokens = plan.tokens_per_rank(nranks, mb);
        let aware = cfg.speed_aware_remap || plan.options.speed_aware_remap;
        let remap_plan = if !plan.options.remapping {
            None
        } else {
            match speed.as_ref().filter(|_| aware) {
                Some(s) => needs_remap_weighted(&attn_tokens, s, cfg.remap_slack)
                    .then(|| plan_remap_weighted(&cluster, &attn_tokens, s)),
                None => needs_remap(&attn_tokens, cfg.remap_slack)
                    .then(|| plan_remap(&cluster, &attn_tokens)),
            }
        };

        // Forward remap flows.
        let mut inbound: Vec<Vec<TaskId>> = vec![Vec::new(); nranks];
        if let Some(rp) = &remap_plan {
            for m in &rp.moves {
                let bytes = hidden_bytes(model, m.tokens) * dir.comm_scale();
                let launch = sim.compute(
                    m.from,
                    Stream::Comm(1),
                    SimDuration::from_secs_f64(COMM_LAUNCH_OVERHEAD_S),
                    vec![attn_done[m.from]],
                    None,
                )?;
                let flow = sim.transfer(
                    bytes,
                    cluster.direct_path(m.from, m.to),
                    vec![launch],
                    Some(TraceInfo {
                        rank: m.from,
                        category: TraceCategory::Remap,
                        label: format!("remap {}->{}", m.from, m.to),
                    }),
                )?;
                inbound[m.to].push(flow);
                out.remap_flows.push(flow);
            }
        }
        let linear_tokens: Vec<u64> = match &remap_plan {
            Some(rp) => rp.targets.clone(),
            None => attn_tokens.clone(),
        };

        // Linear compute per rank.
        let mut linear_ids: Vec<Option<TaskId>> = vec![None; nranks];
        for rank in 0..nranks {
            let tokens = linear_tokens[rank];
            if tokens == 0 && inbound[rank].is_empty() && rank_attn[rank].is_empty() {
                continue;
            }
            let flops = tokens as f64
                * linear_flops_per_token(model)
                * dir.flops_scale()
                * cfg.moe_linear_factor;
            let secs = cfg.gemm_kernel.kernel_time(flops, peaks[rank])
                + cfg.tp_overhead_per_token * tokens as f64 * dir.flops_scale();
            let mut deps = vec![attn_done[rank]];
            deps.extend(inbound[rank].iter().copied());
            let id = sim.compute(
                rank,
                Stream::Compute,
                SimDuration::from_secs_f64(secs),
                deps,
                Some(TraceInfo {
                    rank,
                    category: TraceCategory::LinearCompute,
                    label: format!("linear {}", dir.label()),
                }),
            )?;
            linear_ids[rank] = Some(id);
            out.linear_compute.push((rank, id));
        }

        // Inverse remap: moves reversed, gated on the holder's linear task.
        let mut inverse_in: Vec<Vec<TaskId>> = vec![Vec::new(); nranks];
        if let Some(rp) = &remap_plan {
            for m in &rp.moves {
                let bytes = hidden_bytes(model, m.tokens) * dir.comm_scale();
                let mut deps = Vec::new();
                deps.extend(linear_ids[m.to]);
                let launch = sim.compute(
                    m.to,
                    Stream::Comm(1),
                    SimDuration::from_secs_f64(COMM_LAUNCH_OVERHEAD_S),
                    deps,
                    None,
                )?;
                let flow = sim.transfer(
                    bytes,
                    cluster.direct_path(m.to, m.from),
                    vec![launch],
                    Some(TraceInfo {
                        rank: m.to,
                        category: TraceCategory::Remap,
                        label: format!("unmap {}->{}", m.to, m.from),
                    }),
                )?;
                inverse_in[m.from].push(flow);
                out.remap_flows.push(flow);
            }
        }

        // Exit marker per rank.
        let mut exits = Vec::with_capacity(nranks);
        for rank in 0..nranks {
            let mut deps: Vec<TaskId> = Vec::new();
            deps.extend(linear_ids[rank]);
            deps.extend(inverse_in[rank].iter().copied());
            if deps.is_empty() {
                deps.push(attn_done[rank]);
            }
            exits.push(sim.marker(deps)?);
        }
        mb_entry = exits.iter().copied().map(Some).collect();
        out.exit = exits;
    }

    // Empty plans still need exits.
    if out.exit.is_empty() {
        let mut exits = Vec::with_capacity(nranks);
        for rank in 0..nranks {
            exits.push(sim.marker(mb_entry[rank].into_iter().collect())?);
        }
        out.exit = exits;
    }

    // Data-parallel gradient synchronization: one aggregated ring
    // all-reduce per layer during the backward pass. `Overlapped` starts at
    // layer entry (modelling bucketed overlap with the adjacent layer's
    // backward compute — the layer period becomes max(work, all-reduce));
    // `Blocking` serializes after the layer's work.
    if dir == Direction::Backward && cfg.grad_sync != GradSync::Off && nranks > 1 {
        let total = zeppelin_model::memory::grad_bytes_per_layer(model);
        // A bandwidth-optimal ring all-reduce moves 2·B·(R-1)/R bytes per
        // rank; model it as one aggregated neighbour flow per rank.
        let per_rank = 2.0 * total * (nranks as f64 - 1.0) / nranks as f64;
        let mut arrivals: Vec<Option<TaskId>> = vec![None; nranks];
        for src in 0..nranks {
            let dst = (src + 1) % nranks;
            let deps: Vec<TaskId> = match cfg.grad_sync {
                GradSync::Overlapped => entry[src].into_iter().collect(),
                GradSync::Blocking => vec![out.exit[src]],
                GradSync::Off => unreachable!("guarded above"),
            };
            let launch = sim.compute(
                src,
                Stream::Comm(2),
                SimDuration::from_secs_f64(COMM_LAUNCH_OVERHEAD_S),
                deps,
                None,
            )?;
            let completion = if !cluster.same_node(src, dst) {
                // NCCL all-reduce stripes cross-node hops over all NICs.
                lower_routed_transfer(sim, &cluster, cfg, src, dst, per_rank, launch, &mut out)?
            } else {
                let flow = sim.transfer(
                    per_rank,
                    cluster.direct_path(src, dst),
                    vec![launch],
                    Some(TraceInfo {
                        rank: src,
                        category: TraceCategory::Other,
                        label: format!("grad-ar {}->{}", src, dst),
                    }),
                )?;
                out.comm_tasks.push(flow);
                flow
            };
            arrivals[dst] = Some(completion);
        }
        let mut exits = Vec::with_capacity(nranks);
        for rank in 0..nranks {
            let mut deps = vec![out.exit[rank]];
            deps.extend(arrivals[rank]);
            exits.push(sim.marker(deps)?);
        }
        out.exit = exits;
    }
    Ok(out)
}

/// Lowers one fused ring-attention group; returns its compute tasks and
/// its per-sender transfer completions.
#[allow(clippy::too_many_arguments)]
fn lower_ring_group(
    sim: &mut Simulator,
    model: &ModelConfig,
    cfg: &ExecConfig,
    dir: Direction,
    plan: &IterationPlan,
    ranks: &[Rank],
    lens: &[u64],
    weights: &[u32],
    seg_dep: &[Option<TaskId>],
    comm_dep: &[Option<TaskId>],
    out: &mut LayerOutcome,
    peaks: &[f64],
) -> Result<GroupTasks, SimError> {
    let cluster = sim.cluster().clone();
    let g = ranks.len();
    let mut computes: Vec<(Rank, TaskId)> = Vec::new();
    let mut sends: Vec<(Rank, TaskId)> = Vec::new();
    // Per-position previous-round compute and inbound transfer.
    let mut prev_compute: Vec<Option<TaskId>> = vec![None; g];
    let mut arrive: Vec<Option<TaskId>> = vec![None; g];

    for r in 0..g {
        // Compute round r on every position.
        let mut this_compute: Vec<TaskId> = Vec::with_capacity(g);
        for (p, &rank) in ranks.iter().enumerate() {
            let flops: f64 = lens
                .iter()
                .map(|&len| ring_round_flops_weighted(model, len, g, weights, p, r))
                .sum::<f64>()
                * dir.flops_scale();
            let dur =
                SimDuration::from_secs_f64(cfg.attention_kernel.kernel_time(flops, peaks[rank]));
            let mut deps: Vec<TaskId> = Vec::new();
            if r == 0 {
                deps.extend(seg_dep[rank]);
            } else {
                deps.extend(arrive[p]);
                deps.extend(prev_compute[p]);
            }
            let id = sim.compute(
                rank,
                Stream::Compute,
                dur,
                deps,
                Some(TraceInfo {
                    rank,
                    category: TraceCategory::AttentionCompute,
                    label: format!("attn r{r} {}", dir.label()),
                }),
            )?;
            this_compute.push(id);
            computes.push((rank, id));
        }

        // Send round-r KV onward (becomes round r+1 input), overlapping the
        // round-r compute; double-buffering gates on the receiver's r-1 use.
        if r + 1 < g {
            let mut new_arrive: Vec<Option<TaskId>> = vec![None; g];
            for (p, &src) in ranks.iter().enumerate() {
                let next = (p + 1) % g;
                let dst = ranks[next];
                let bytes: f64 = lens
                    .iter()
                    .map(|&len| ring_round_kv_bytes_weighted(model, len, g, weights, p, r))
                    .sum::<f64>()
                    * dir.comm_scale();
                // Send-recv semantics: both endpoints must post their
                // kernel before data moves. Round-0 launches queue behind
                // the previous queue segment's communication on each side.
                let mut send_deps: Vec<TaskId> = Vec::new();
                let mut recv_deps: Vec<TaskId> = Vec::new();
                if r == 0 {
                    send_deps.extend(comm_dep[src]);
                    recv_deps.extend(comm_dep[dst]);
                } else {
                    send_deps.extend(arrive[p]); // KV to forward has arrived.
                    recv_deps.extend(arrive[next]); // Receiver's stream free.
                    recv_deps.extend(prev_compute[next]); // Receive buffer free.
                }
                let send_launch = sim.compute(
                    src,
                    Stream::Comm(0),
                    SimDuration::from_secs_f64(COMM_LAUNCH_OVERHEAD_S),
                    send_deps,
                    None,
                )?;
                let recv_launch = sim.compute(
                    dst,
                    Stream::Comm(0),
                    SimDuration::from_secs_f64(COMM_LAUNCH_OVERHEAD_S),
                    recv_deps,
                    None,
                )?;
                let launch = sim.marker(vec![send_launch, recv_launch])?;
                let completion = if !cluster.same_node(src, dst) && plan.options.routing {
                    lower_routed_transfer(sim, &cluster, cfg, src, dst, bytes, launch, out)?
                } else {
                    let flow = sim.transfer(
                        bytes,
                        cluster.direct_path(src, dst),
                        vec![launch],
                        Some(TraceInfo {
                            rank: src,
                            category: TraceCategory::RingComm,
                            label: format!("kv r{r} {}->{}", src, dst),
                        }),
                    )?;
                    out.comm_tasks.push(flow);
                    flow
                };
                new_arrive[next] = Some(completion);
                sends.push((src, completion));
                sends.push((dst, completion));
            }
            arrive = new_arrive;
        }
        prev_compute = this_compute.into_iter().map(Some).collect();
    }
    Ok((computes, sends))
}

/// Lowers a routed inter-node transfer (three pipelined stages); returns a
/// marker that completes when all data has been combined at `dst`.
#[allow(clippy::too_many_arguments)]
fn lower_routed_transfer(
    sim: &mut Simulator,
    cluster: &zeppelin_sim::topology::ClusterSpec,
    cfg: &ExecConfig,
    src: Rank,
    dst: Rank,
    bytes: f64,
    launch: TaskId,
    out: &mut LayerOutcome,
) -> Result<TaskId, SimError> {
    let routed = route_internode(cluster, src, dst, bytes);
    let chunks = cfg.routing_pipeline.max(1);
    let mut finals: Vec<TaskId> = Vec::new();
    for (dispatch, inter, combine) in &routed.shares {
        let mut prev_stage1: Option<TaskId> = None;
        let mut prev_stage2: Option<TaskId> = None;
        let mut prev_stage3: Option<TaskId> = None;
        for _ in 0..chunks {
            let share = 1.0 / chunks as f64;
            // Stage 1: dispatch (skipped when the source is its own proxy).
            let stage1 = match dispatch {
                Some(d) => {
                    let mut deps = vec![launch];
                    deps.extend(prev_stage1);
                    let t = sim.transfer(
                        d.bytes * share,
                        cluster.direct_path(d.src, d.dst),
                        deps,
                        Some(TraceInfo {
                            rank: d.src,
                            category: TraceCategory::Dispatch,
                            label: format!("dispatch {}->{}", d.src, d.dst),
                        }),
                    )?;
                    out.comm_tasks.push(t);
                    prev_stage1 = Some(t);
                    t
                }
                None => launch,
            };
            // Stage 2: the multi-NIC inter-node hop.
            let mut deps = vec![stage1];
            deps.extend(prev_stage2);
            let stage2 = sim.transfer(
                inter.bytes * share,
                cluster.direct_path(inter.src, inter.dst),
                deps,
                Some(TraceInfo {
                    rank: inter.src,
                    category: TraceCategory::InterNode,
                    label: format!("inter {}->{}", inter.src, inter.dst),
                }),
            )?;
            out.comm_tasks.push(stage2);
            prev_stage2 = Some(stage2);
            // Stage 3: combine at the destination.
            let last = match combine {
                Some(c) => {
                    let mut deps = vec![stage2];
                    deps.extend(prev_stage3);
                    let t = sim.transfer(
                        c.bytes * share,
                        cluster.direct_path(c.src, c.dst),
                        deps,
                        Some(TraceInfo {
                            rank: c.src,
                            category: TraceCategory::Combine,
                            label: format!("combine {}->{}", c.src, c.dst),
                        }),
                    )?;
                    out.comm_tasks.push(t);
                    prev_stage3 = Some(t);
                    t
                }
                None => stage2,
            };
            finals.push(last);
        }
    }
    sim.marker(finals)
}

/// Lowers one fused all-gather attention group (LLaMA CP); returns its
/// compute tasks and per-sender transfer completions.
#[allow(clippy::too_many_arguments)]
fn lower_allgather_group(
    sim: &mut Simulator,
    model: &ModelConfig,
    cfg: &ExecConfig,
    dir: Direction,
    ranks: &[Rank],
    lens: &[u64],
    weights: &[u32],
    seg_dep: &[Option<TaskId>],
    comm_dep: &[Option<TaskId>],
    out: &mut LayerOutcome,
    peaks: &[f64],
) -> Result<GroupTasks, SimError> {
    let cluster = sim.cluster().clone();
    let g = ranks.len();
    // Ring all-gather: g-1 rounds; each position forwards the chunk that
    // arrived last round. Track per-position inbound transfers.
    let mut arrive: Vec<Option<TaskId>> = vec![None; g];
    let mut inbound: Vec<Vec<TaskId>> = vec![Vec::new(); g];
    let mut sends: Vec<(Rank, TaskId)> = Vec::new();
    for r in 0..g.saturating_sub(1) {
        let mut new_arrive: Vec<Option<TaskId>> = vec![None; g];
        for (p, &src) in ranks.iter().enumerate() {
            let next = (p + 1) % g;
            let dst = ranks[next];
            let bytes: f64 = lens
                .iter()
                .map(|&len| ring_round_kv_bytes_weighted(model, len, g, weights, p, r))
                .sum::<f64>()
                * dir.comm_scale();
            let mut send_deps: Vec<TaskId> = Vec::new();
            let mut recv_deps: Vec<TaskId> = Vec::new();
            if r == 0 {
                send_deps.extend(comm_dep[src]);
                recv_deps.extend(comm_dep[dst]);
            } else {
                send_deps.extend(arrive[p]);
                recv_deps.extend(arrive[next]);
            }
            let send_launch = sim.compute(
                src,
                Stream::Comm(0),
                SimDuration::from_secs_f64(COMM_LAUNCH_OVERHEAD_S),
                send_deps,
                None,
            )?;
            let recv_launch = sim.compute(
                dst,
                Stream::Comm(0),
                SimDuration::from_secs_f64(COMM_LAUNCH_OVERHEAD_S),
                recv_deps,
                None,
            )?;
            let launch = sim.marker(vec![send_launch, recv_launch])?;
            // NCCL all-gathers are multi-channel: cross-node hops stripe
            // over every NIC of the node (this is library behaviour, not
            // Zeppelin's routing layer — hence unconditional here).
            let flow = if !cluster.same_node(src, dst) {
                lower_routed_transfer(sim, &cluster, cfg, src, dst, bytes, launch, out)?
            } else {
                let f = sim.transfer(
                    bytes,
                    cluster.direct_path(src, dst),
                    vec![launch],
                    Some(TraceInfo {
                        rank: src,
                        category: TraceCategory::RingComm,
                        label: format!("allgather r{r} {}->{}", src, dst),
                    }),
                )?;
                out.comm_tasks.push(f);
                f
            };
            new_arrive[next] = Some(flow);
            inbound[next].push(flow);
            sends.push((src, flow));
            sends.push((dst, flow));
        }
        arrive = new_arrive;
    }

    // One local attention kernel per rank over the fully gathered KV.
    let mut computes = Vec::with_capacity(g);
    for (p, &rank) in ranks.iter().enumerate() {
        let flops: f64 = lens
            .iter()
            .map(|&len| position_total_flops_weighted(model, len, g, weights, p))
            .sum::<f64>()
            * dir.flops_scale();
        let dur = SimDuration::from_secs_f64(cfg.attention_kernel.kernel_time(flops, peaks[rank]));
        let mut deps: Vec<TaskId> = inbound[p].clone();
        deps.extend(seg_dep[rank]);
        let id = sim.compute(
            rank,
            Stream::Compute,
            dur,
            deps,
            Some(TraceInfo {
                rank,
                category: TraceCategory::AttentionCompute,
                label: format!("attn-ag {}", dir.label()),
            }),
        )?;
        computes.push((rank, id));
    }
    Ok((computes, sends))
}

/// Lowers one fused DeepSpeed-Ulysses group: all-to-all to head-parallel
/// layout, one balanced full-sequence attention kernel per rank, all-to-all
/// back. Both collectives sit on the critical path, but their traffic is
/// spread across every rank pair (and thus every NIC).
#[allow(clippy::too_many_arguments)]
fn lower_ulysses_group(
    sim: &mut Simulator,
    model: &ModelConfig,
    cfg: &ExecConfig,
    dir: Direction,
    ranks: &[Rank],
    lens: &[u64],
    weights: &[u32],
    seg_dep: &[Option<TaskId>],
    comm_dep: &[Option<TaskId>],
    out: &mut LayerOutcome,
    peaks: &[f64],
) -> Result<GroupTasks, SimError> {
    let cluster = sim.cluster().clone();
    let g = ranks.len();
    let h_bytes = model.hidden as f64 * model.dtype_bytes as f64;
    let shard_tokens: Vec<u64> = (0..g)
        .map(|p| {
            lens.iter()
                .map(|&len| position_tokens_weighted(len, g, weights, p))
                .sum()
        })
        .collect();
    let mut sends: Vec<(Rank, TaskId)> = Vec::new();

    // All-to-all #1: QKV from sequence-sharded to head-sharded layout.
    let a2a = |sim: &mut Simulator,
               out: &mut LayerOutcome,
               sends: &mut Vec<(Rank, TaskId)>,
               per_pair_bytes: &dyn Fn(usize) -> f64,
               gate: &dyn Fn(usize) -> Option<TaskId>,
               label: &str|
     -> Result<Vec<Vec<TaskId>>, SimError> {
        let mut inbound: Vec<Vec<TaskId>> = vec![Vec::new(); g];
        for p in 0..g {
            for q in 0..g {
                if p == q {
                    continue;
                }
                let (src, dst) = (ranks[p], ranks[q]);
                let mut send_deps: Vec<TaskId> = comm_dep[src].into_iter().collect();
                send_deps.extend(gate(p));
                let recv_deps: Vec<TaskId> = comm_dep[dst].into_iter().collect();
                let send_launch = sim.compute(
                    src,
                    Stream::Comm(0),
                    SimDuration::from_secs_f64(COMM_LAUNCH_OVERHEAD_S),
                    send_deps,
                    None,
                )?;
                let recv_launch = sim.compute(
                    dst,
                    Stream::Comm(0),
                    SimDuration::from_secs_f64(COMM_LAUNCH_OVERHEAD_S),
                    recv_deps,
                    None,
                )?;
                let launch = sim.marker(vec![send_launch, recv_launch])?;
                let flow = sim.transfer(
                    per_pair_bytes(p),
                    cluster.direct_path(src, dst),
                    vec![launch],
                    Some(TraceInfo {
                        rank: src,
                        category: TraceCategory::RingComm,
                        label: format!("{label} {}->{}", src, dst),
                    }),
                )?;
                out.comm_tasks.push(flow);
                inbound[q].push(flow);
                sends.push((src, flow));
                sends.push((dst, flow));
            }
        }
        Ok(inbound)
    };

    let qkv_bytes = |p: usize| 3.0 * shard_tokens[p] as f64 * h_bytes / g as f64 * dir.comm_scale();
    let inbound1 = a2a(sim, out, &mut sends, &qkv_bytes, &|_| None, "a2a-qkv")?;

    // Head-parallel attention: each rank computes the full causal pattern
    // for heads/G heads — perfectly balanced by construction.
    let mut compute_ids: Vec<TaskId> = Vec::with_capacity(g);
    for (p, &rank) in ranks.iter().enumerate() {
        let flops: f64 = lens
            .iter()
            .map(|&len| zeppelin_model::flops::attention_seq_flops(model, len))
            .sum::<f64>()
            / g as f64
            * dir.flops_scale();
        let dur = SimDuration::from_secs_f64(cfg.attention_kernel.kernel_time(flops, peaks[rank]));
        let mut deps: Vec<TaskId> = inbound1[p].clone();
        deps.extend(seg_dep[rank]);
        let id = sim.compute(
            rank,
            Stream::Compute,
            dur,
            deps,
            Some(TraceInfo {
                rank,
                category: TraceCategory::AttentionCompute,
                label: format!("attn-ulysses {}", dir.label()),
            }),
        )?;
        compute_ids.push(id);
    }

    // All-to-all #2: outputs back to the sequence-sharded layout. The pair
    // (q -> p) carries p's shard of q's heads; gate on q's compute.
    let out_bytes = |q: usize| {
        // Symmetric volume: each rank redistributes its full-sequence
        // output slice; per-pair share mirrors a2a#1's with one tensor.
        shard_tokens[q] as f64 * h_bytes / g as f64 * dir.comm_scale()
    };
    let compute_gate = compute_ids.clone();
    let inbound2 = a2a(
        sim,
        out,
        &mut sends,
        &out_bytes,
        &|p| Some(compute_gate[p]),
        "a2a-out",
    )?;

    // A rank's attention output is complete once its compute finished and
    // its output shards arrived.
    let mut computes = Vec::with_capacity(g);
    for (p, &rank) in ranks.iter().enumerate() {
        let mut deps = vec![compute_ids[p]];
        deps.extend(inbound2[p].iter().copied());
        let done = sim.marker(deps)?;
        computes.push((rank, done));
    }
    Ok((computes, sends))
}

/// Lowers one fused LoongTrain-style double-ring group. Positions are
/// grouped node-major into inner rings of size `m`; KV rotates within the
/// node for `m` steps, then the whole window hops to the next node — one
/// cross-node hop per rank per node visited, performed by all ranks in
/// parallel (every NIC active), instead of per-round boundary crossings.
///
/// Falls back to the plain ring when the group does not decompose into
/// equal node-major slices.
#[allow(clippy::too_many_arguments)]
fn lower_double_ring_group(
    sim: &mut Simulator,
    model: &ModelConfig,
    cfg: &ExecConfig,
    dir: Direction,
    plan: &IterationPlan,
    ranks: &[Rank],
    lens: &[u64],
    weights: &[u32],
    seg_dep: &[Option<TaskId>],
    comm_dep: &[Option<TaskId>],
    out: &mut LayerOutcome,
    peaks: &[f64],
) -> Result<GroupTasks, SimError> {
    let cluster = sim.cluster().clone();
    let g = ranks.len();
    // Node-major decomposition check.
    let mut node_order: Vec<usize> = Vec::new();
    for &r in ranks {
        let node = cluster.node_of(r);
        if node_order.last() != Some(&node) {
            node_order.push(node);
        }
    }
    let n = node_order.len();
    let uniform = n > 1 && g.is_multiple_of(n) && {
        let m = g / n;
        ranks
            .chunks(m)
            .enumerate()
            .all(|(a, slice)| slice.iter().all(|&r| cluster.node_of(r) == node_order[a]))
    };
    if !uniform {
        return lower_ring_group(
            sim, model, cfg, dir, plan, ranks, lens, weights, seg_dep, comm_dep, out, peaks,
        );
    }
    let m = g / n;
    // KV source position of `p = a·m + b` at step `t = o·m + i`.
    let source = |p: usize, t: usize| -> usize {
        let (a, b) = (p / m, p % m);
        let (o, i) = (t / m, t % m);
        ((a + n - o % n) % n) * m + (b + m - i % m) % m
    };
    let mut computes: Vec<(Rank, TaskId)> = Vec::new();
    let mut sends: Vec<(Rank, TaskId)> = Vec::new();
    let mut prev_compute: Vec<Option<TaskId>> = vec![None; g];
    let mut arrive: Vec<Option<TaskId>> = vec![None; g];

    for t in 0..g {
        let mut this_compute: Vec<TaskId> = Vec::with_capacity(g);
        for (p, &rank) in ranks.iter().enumerate() {
            let src = source(p, t);
            let flops: f64 = lens
                .iter()
                .map(|&len| position_pair_flops_weighted(model, len, g, weights, p, src))
                .sum::<f64>()
                * dir.flops_scale();
            let dur =
                SimDuration::from_secs_f64(cfg.attention_kernel.kernel_time(flops, peaks[rank]));
            let mut deps: Vec<TaskId> = Vec::new();
            if t == 0 {
                deps.extend(seg_dep[rank]);
            } else {
                deps.extend(arrive[p]);
                deps.extend(prev_compute[p]);
            }
            let id = sim.compute(
                rank,
                Stream::Compute,
                dur,
                deps,
                Some(TraceInfo {
                    rank,
                    category: TraceCategory::AttentionCompute,
                    label: format!("attn dr{t} {}", dir.label()),
                }),
            )?;
            this_compute.push(id);
            computes.push((rank, id));
        }

        if t + 1 < g {
            let inner_step = (t + 1) % m != 0; // Next step stays in-node?
            let mut new_arrive: Vec<Option<TaskId>> = vec![None; g];
            for (p, &src_rank) in ranks.iter().enumerate() {
                let (a, b) = (p / m, p % m);
                let dst_pos = if inner_step {
                    a * m + (b + 1) % m
                } else {
                    ((a + 1) % n) * m + (b + 1) % m
                };
                let dst = ranks[dst_pos];
                let bytes: f64 = lens
                    .iter()
                    .map(|&len| {
                        2.0 * position_tokens_weighted(len, g, weights, source(p, t)) as f64
                            * model.hidden as f64
                            * model.dtype_bytes as f64
                    })
                    .sum::<f64>()
                    * dir.comm_scale();
                let mut send_deps: Vec<TaskId> = Vec::new();
                let mut recv_deps: Vec<TaskId> = Vec::new();
                if t == 0 {
                    send_deps.extend(comm_dep[src_rank]);
                    recv_deps.extend(comm_dep[dst]);
                } else {
                    send_deps.extend(arrive[p]);
                    recv_deps.extend(arrive[dst_pos]);
                    recv_deps.extend(prev_compute[dst_pos]);
                }
                let send_launch = sim.compute(
                    src_rank,
                    Stream::Comm(0),
                    SimDuration::from_secs_f64(COMM_LAUNCH_OVERHEAD_S),
                    send_deps,
                    None,
                )?;
                let recv_launch = sim.compute(
                    dst,
                    Stream::Comm(0),
                    SimDuration::from_secs_f64(COMM_LAUNCH_OVERHEAD_S),
                    recv_deps,
                    None,
                )?;
                let launch = sim.marker(vec![send_launch, recv_launch])?;
                let completion = if !cluster.same_node(src_rank, dst) && plan.options.routing {
                    lower_routed_transfer(sim, &cluster, cfg, src_rank, dst, bytes, launch, out)?
                } else {
                    let flow = sim.transfer(
                        bytes,
                        cluster.direct_path(src_rank, dst),
                        vec![launch],
                        Some(TraceInfo {
                            rank: src_rank,
                            category: TraceCategory::RingComm,
                            label: format!("dr-kv t{t} {}->{}", src_rank, dst),
                        }),
                    )?;
                    out.comm_tasks.push(flow);
                    flow
                };
                new_arrive[dst_pos] = Some(completion);
                sends.push((src_rank, completion));
                sends.push((dst, completion));
            }
            arrive = new_arrive;
        }
        prev_compute = this_compute.into_iter().map(Some).collect();
    }
    Ok((computes, sends))
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeppelin_core::plan::{IterationPlan, PlanOptions};
    use zeppelin_model::config::llama_3b;
    use zeppelin_sim::topology::{cluster_a, tiny_cluster};

    fn ring_plan(ranks: Vec<usize>, len: u64, zone: Zone, routing: bool) -> IterationPlan {
        IterationPlan {
            scheduler: "test".into(),
            placements: vec![SeqPlacement {
                seq_index: 0,
                len,
                zone,
                ranks,
                mode: AttnMode::Ring,
                micro_batch: 0,
                weights: Vec::new(),
            }],
            options: PlanOptions {
                routing,
                remapping: false,
                speed_aware_remap: false,
            },
            micro_batches: 1,
            redundant_attn_frac: 0.0,
        }
    }

    fn run(plan: &IterationPlan, cluster: &zeppelin_sim::topology::ClusterSpec) -> (f64, usize) {
        let model = llama_3b();
        let cfg = ExecConfig::default();
        let mut sim = Simulator::new(cluster);
        let entry = vec![None; cluster.total_gpus()];
        let out = lower_layer(&mut sim, &model, plan, &cfg, Direction::Forward, &entry).unwrap();
        assert_eq!(out.exit.len(), cluster.total_gpus());
        let report = sim.run().unwrap();
        (report.makespan.as_secs_f64(), sim.task_count())
    }

    #[test]
    fn local_only_plan_runs() {
        let c = tiny_cluster(1, 2);
        let plan = ring_plan(vec![0], 4096, Zone::Local, false);
        let (t, _) = run(&plan, &c);
        assert!(t > 0.0 && t < 1.0, "t {t}");
    }

    #[test]
    fn ring_plan_produces_rounds() {
        let c = tiny_cluster(1, 4);
        let plan = ring_plan(vec![0, 1, 2, 3], 8192, Zone::IntraNode, false);
        let model = llama_3b();
        let cfg = ExecConfig::default();
        let mut sim = Simulator::new(&c);
        let entry = vec![None; 4];
        let out = lower_layer(&mut sim, &model, &plan, &cfg, Direction::Forward, &entry).unwrap();
        // 4 rounds × 4 positions computes; 3 rounds × 4 transfers.
        assert_eq!(out.attn_compute.len(), 16);
        assert_eq!(out.comm_tasks.len(), 12);
        sim.run().unwrap();
    }

    #[test]
    fn routing_reduces_internode_ring_time() {
        let c = cluster_a(2);
        let ranks: Vec<usize> = (0..16).collect();
        let direct = ring_plan(ranks.clone(), 65536, Zone::InterNode, false);
        let routed = ring_plan(ranks, 65536, Zone::InterNode, true);
        let (t_direct, _) = run(&direct, &c);
        let (t_routed, _) = run(&routed, &c);
        assert!(
            t_routed < t_direct,
            "routed {t_routed} should beat direct {t_direct}"
        );
    }

    #[test]
    fn backward_is_heavier_than_forward() {
        let c = tiny_cluster(1, 4);
        let plan = ring_plan(vec![0, 1, 2, 3], 8192, Zone::IntraNode, false);
        let model = llama_3b();
        let cfg = ExecConfig::default();
        let time = |dir| {
            let mut sim = Simulator::new(&c);
            let entry = vec![None; 4];
            lower_layer(&mut sim, &model, &plan, &cfg, dir, &entry).unwrap();
            sim.run().unwrap().makespan.as_secs_f64()
        };
        let f = time(Direction::Forward);
        let b = time(Direction::Backward);
        assert!(b > 1.5 * f, "bwd {b} vs fwd {f}");
    }

    #[test]
    fn allgather_mode_gathers_before_compute() {
        let c = tiny_cluster(1, 4);
        let mut plan = ring_plan(vec![0, 1, 2, 3], 8192, Zone::IntraNode, false);
        plan.placements[0].mode = AttnMode::AllGather;
        let model = llama_3b();
        let cfg = ExecConfig::default();
        let mut sim = Simulator::new(&c);
        let entry = vec![None; 4];
        let out = lower_layer(&mut sim, &model, &plan, &cfg, Direction::Forward, &entry).unwrap();
        // One compute per rank; 3 rounds × 4 transfers.
        assert_eq!(out.attn_compute.len(), 4);
        assert_eq!(out.comm_tasks.len(), 12);
        let report = sim.run().unwrap();
        // Every compute starts after every one of its inbound transfers.
        for &(rank, id) in &out.attn_compute {
            let start = report.span(id).0;
            let _ = rank;
            assert!(start.as_nanos() > 0);
        }
    }

    #[test]
    fn remapping_balances_linear_phase() {
        let c = tiny_cluster(1, 2);
        let model = llama_3b();
        let cfg = ExecConfig::default();
        // All tokens on rank 0; rank 1 idle.
        let base = IterationPlan {
            scheduler: "test".into(),
            placements: vec![SeqPlacement {
                seq_index: 0,
                len: 8000,
                zone: Zone::Local,
                ranks: vec![0],
                mode: AttnMode::Ring,
                micro_batch: 0,
                weights: Vec::new(),
            }],
            options: PlanOptions {
                routing: false,
                remapping: false,
                speed_aware_remap: false,
            },
            micro_batches: 1,
            redundant_attn_frac: 0.0,
        };
        let mut remapped = base.clone();
        remapped.options.remapping = true;

        let lower_run = |plan: &IterationPlan| {
            let mut sim = Simulator::new(&c);
            let entry = vec![None; 2];
            let out =
                lower_layer(&mut sim, &model, plan, &cfg, Direction::Forward, &entry).unwrap();
            let report = sim.run().unwrap();
            (out, report)
        };
        let (out_b, _) = lower_run(&base);
        let (out_r, _) = lower_run(&remapped);
        assert!(out_b.remap_flows.is_empty());
        assert!(!out_r.remap_flows.is_empty());
        // Remap splits linear work across both ranks.
        assert_eq!(out_b.linear_compute.len(), 1);
        assert_eq!(out_r.linear_compute.len(), 2);
    }

    #[test]
    fn micro_batches_serialize_per_rank() {
        let c = tiny_cluster(1, 1);
        let model = llama_3b();
        let cfg = ExecConfig::default();
        let one_mb = IterationPlan {
            scheduler: "t".into(),
            placements: vec![SeqPlacement {
                seq_index: 0,
                len: 4096,
                zone: Zone::Local,
                ranks: vec![0],
                mode: AttnMode::Ring,
                micro_batch: 0,
                weights: Vec::new(),
            }],
            options: PlanOptions::default(),
            micro_batches: 1,
            redundant_attn_frac: 0.0,
        };
        let mut two_mb = one_mb.clone();
        two_mb.placements.push(SeqPlacement {
            seq_index: 1,
            len: 4096,
            zone: Zone::Local,
            ranks: vec![0],
            mode: AttnMode::Ring,
            micro_batch: 1,
            weights: Vec::new(),
        });
        two_mb.micro_batches = 2;
        let t = |plan: &IterationPlan| {
            let mut sim = Simulator::new(&c);
            lower_layer(&mut sim, &model, plan, &cfg, Direction::Forward, &[None]).unwrap();
            sim.run().unwrap().makespan.as_secs_f64()
        };
        let t1 = t(&one_mb);
        let t2 = t(&two_mb);
        assert!(t2 > 1.8 * t1, "two micro-batches {t2} vs one {t1}");
    }

    #[test]
    fn empty_plan_yields_exits() {
        let c = tiny_cluster(1, 2);
        let plan = IterationPlan {
            scheduler: "t".into(),
            placements: vec![],
            options: PlanOptions::default(),
            micro_batches: 1,
            redundant_attn_frac: 0.0,
        };
        let model = llama_3b();
        let cfg = ExecConfig::default();
        let mut sim = Simulator::new(&c);
        let out = lower_layer(
            &mut sim,
            &model,
            &plan,
            &cfg,
            Direction::Forward,
            &[None, None],
        )
        .unwrap();
        assert_eq!(out.exit.len(), 2);
        let r = sim.run().unwrap();
        assert_eq!(r.makespan.as_nanos(), 0);
    }

    #[test]
    fn gradient_sync_costs_and_overlap() {
        let c = cluster_a(2);
        let model = llama_3b();
        let plan = ring_plan((0..16).collect(), 32_768, Zone::InterNode, false);
        let t = |sync| {
            let cfg = ExecConfig {
                grad_sync: sync,
                ..ExecConfig::default()
            };
            let mut sim = Simulator::new(&c);
            let entry = vec![None; 16];
            lower_layer(&mut sim, &model, &plan, &cfg, Direction::Backward, &entry).unwrap();
            sim.run().unwrap().makespan.as_secs_f64()
        };
        let off = t(GradSync::Off);
        let overlapped = t(GradSync::Overlapped);
        let blocking = t(GradSync::Blocking);
        assert!(blocking > off, "blocking {blocking} vs off {off}");
        assert!(
            overlapped <= blocking,
            "overlapped {overlapped} should not exceed blocking {blocking}"
        );
        assert!(overlapped >= off, "sync can only add time");
    }

    #[test]
    fn gradient_sync_is_skipped_in_forward() {
        let c = tiny_cluster(1, 2);
        let model = llama_3b();
        let plan = ring_plan(vec![0, 1], 4_096, Zone::IntraNode, false);
        let cfg = ExecConfig {
            grad_sync: GradSync::Blocking,
            ..ExecConfig::default()
        };
        let count = |dir| {
            let mut sim = Simulator::new(&c);
            lower_layer(&mut sim, &model, &plan, &cfg, dir, &[None, None]).unwrap();
            sim.task_count()
        };
        // Backward carries extra all-reduce tasks.
        assert!(count(Direction::Backward) > count(Direction::Forward));
    }

    #[test]
    fn ulysses_mode_balances_and_completes() {
        let c = cluster_a(2);
        let mut plan = ring_plan((0..16).collect(), 65_536, Zone::InterNode, false);
        plan.placements[0].mode = AttnMode::Ulysses;
        let model = llama_3b();
        let cfg = ExecConfig::default();
        let mut sim = Simulator::new(&c);
        let entry = vec![None; 16];
        let out = lower_layer(&mut sim, &model, &plan, &cfg, Direction::Forward, &entry).unwrap();
        // One completion marker per rank.
        assert_eq!(out.attn_compute.len(), 16);
        // Two all-to-alls of 16×15 pair flows each.
        assert_eq!(out.comm_tasks.len(), 2 * 16 * 15);
        let report = sim.run().unwrap();
        assert!(report.makespan.as_secs_f64() > 0.0);
        // Attention compute busy time is near-identical across ranks.
        let busy = report.trace.busy_by_rank_category();
        let attn: Vec<u64> = (0..16)
            .map(|r| {
                busy.get(&(r, TraceCategory::AttentionCompute))
                    .map(|d| d.as_nanos())
                    .unwrap_or(0)
            })
            .collect();
        let (min, max) = (attn.iter().min().unwrap(), attn.iter().max().unwrap());
        assert!(max - min <= max / 100, "{attn:?}");
    }

    #[test]
    fn double_ring_crosses_nodes_once_per_node_pass() {
        let c = cluster_a(2);
        let model = llama_3b();
        let cfg = ExecConfig::default();
        let count_cross = |mode: AttnMode| {
            let mut plan = ring_plan((0..16).collect(), 65_536, Zone::InterNode, false);
            plan.placements[0].mode = mode;
            let mut sim = Simulator::new(&c);
            let entry = vec![None; 16];
            lower_layer(&mut sim, &model, &plan, &cfg, Direction::Forward, &entry).unwrap();
            let report = sim.run().unwrap();
            let cross = report
                .trace
                .events()
                .iter()
                .filter(|e| {
                    e.category == TraceCategory::RingComm && {
                        // Labels end in "src->dst".
                        let lbl = &e.label;
                        let arrow = lbl.rfind("->").unwrap();
                        let dst: usize = lbl[arrow + 2..].trim().parse().unwrap();
                        !c.same_node(e.rank, dst)
                    }
                })
                .count();
            (cross, report.makespan.as_secs_f64())
        };
        let (ring_cross, ring_time) = count_cross(AttnMode::Ring);
        let (dr_cross, dr_time) = count_cross(AttnMode::DoubleRing);
        // Plain ring: 2 boundary hops × 15 rounds = 30 cross-node sends.
        // Double ring: 16 ranks × 1 outer hop = 16, but spread over all
        // NICs simultaneously.
        assert_eq!(ring_cross, 30);
        assert_eq!(dr_cross, 16);
        assert!(
            dr_time < ring_time,
            "double ring {dr_time} should beat plain ring {ring_time}"
        );
    }

    #[test]
    fn double_ring_falls_back_to_ring_off_node_boundaries() {
        let c = cluster_a(2);
        let model = llama_3b();
        let cfg = ExecConfig::default();
        // Group of 3 ranks straddling a node boundary unevenly.
        let mut plan = ring_plan(vec![6, 7, 8], 12_000, Zone::InterNode, false);
        plan.placements[0].mode = AttnMode::DoubleRing;
        let mut sim = Simulator::new(&c);
        let entry = vec![None; 16];
        let out = lower_layer(&mut sim, &model, &plan, &cfg, Direction::Forward, &entry).unwrap();
        // Plain-ring structure: 3 rounds × 3 computes.
        assert_eq!(out.attn_compute.len(), 9);
        sim.run().unwrap();
    }

    #[test]
    fn weighted_ring_groups_track_rank_speed() {
        // A straggler at half speed: with speed-proportional chunk weights
        // matching the physical speeds, every position finishes its rounds
        // together and the ring beats the uniform-chunk layout.
        let c = tiny_cluster(1, 4);
        let model = llama_3b();
        let mut cfg = ExecConfig::default();
        cfg.rank_speed = vec![1.0, 0.5, 1.0, 1.0];
        let t = |weights: Vec<u32>| {
            let mut plan = ring_plan(vec![0, 1, 2, 3], 32_768, Zone::IntraNode, false);
            plan.placements[0].weights = weights;
            let mut sim = Simulator::new(&c);
            let entry = vec![None; 4];
            lower_layer(&mut sim, &model, &plan, &cfg, Direction::Forward, &entry).unwrap();
            sim.run().unwrap().makespan.as_secs_f64()
        };
        let uniform = t(Vec::new());
        let weighted = t(vec![1024, 512, 1024, 1024]);
        assert!(
            weighted < uniform,
            "speed-matched weights {weighted} should beat uniform {uniform}"
        );
    }

    #[test]
    fn queue_orders_both_execute_and_stay_close() {
        // §3.2 argues for inter-first ordering because Zeppelin's real
        // engine launches queues coarsely on shared streams. This executor
        // tracks dependencies at task granularity (per-round computes,
        // send/recv launches, double buffering), which already prevents
        // most cross-queue blocking — so the two orders must both execute
        // correctly and land within a few percent of each other. The
        // ordering ablation bench reports the measured deltas per workload.
        let c = cluster_a(2);
        let mut plan = ring_plan((0..16).collect(), 49152, Zone::InterNode, false);
        plan.placements.push(SeqPlacement {
            seq_index: 1,
            len: 12288,
            zone: Zone::IntraNode,
            ranks: vec![8, 9, 10, 11],
            mode: AttnMode::Ring,
            micro_batch: 0,
            weights: Vec::new(),
        });
        for r in [4usize, 5, 12, 13] {
            plan.placements.push(SeqPlacement {
                seq_index: 2 + r,
                len: 2048,
                zone: Zone::Local,
                ranks: vec![r],
                mode: AttnMode::Ring,
                micro_batch: 0,
                weights: Vec::new(),
            });
        }
        let model = llama_3b();
        let t = |order| {
            let cfg = ExecConfig {
                queue_order: order,
                ..ExecConfig::default()
            };
            let mut sim = Simulator::new(&c);
            let entry = vec![None; 16];
            lower_layer(&mut sim, &model, &plan, &cfg, Direction::Forward, &entry).unwrap();
            sim.run().unwrap().makespan.as_secs_f64()
        };
        let inter_first = t(QueueOrder::InterFirst);
        let local_first = t(QueueOrder::LocalFirst);
        assert!(inter_first > 0.0 && local_first > 0.0);
        let ratio = inter_first / local_first;
        assert!(
            (0.9..1.1).contains(&ratio),
            "orders diverged: inter-first {inter_first} vs local-first {local_first}"
        );
    }
}

#[cfg(test)]
mod straggler_tests {
    use crate::step::{simulate_step, StepConfig};
    use zeppelin_core::scheduler::SchedulerCtx;
    use zeppelin_core::zeppelin::Zeppelin;
    use zeppelin_data::batch::Batch;
    use zeppelin_model::config::llama_3b;
    use zeppelin_sim::topology::cluster_a;

    #[test]
    fn short_rank_speed_vectors_are_rejected_with_a_typed_error() {
        // A 3-entry vector on a 16-rank cluster used to mean full speed for
        // ranks 3..16 in the kernel path and padded speed in the remap path.
        let cluster = cluster_a(2);
        let ctx = SchedulerCtx::new(&cluster, &llama_3b());
        let batch = Batch::new(vec![4_000; 16]);
        let mut cfg = StepConfig::default();
        cfg.exec.rank_speed = vec![1.0, 0.5, 1.0];
        let err = simulate_step(&Zeppelin::new(), &batch, &ctx, &cfg).unwrap_err();
        assert!(
            matches!(
                err,
                crate::step::StepError::Exec(crate::lower::ExecConfigError::RankSpeedLength {
                    got: 3,
                    nranks: 16,
                })
            ),
            "{err}"
        );
        cfg.exec.rank_speed = vec![1.0; 16];
        cfg.exec.rank_speed[4] = f64::NAN;
        let err = simulate_step(&Zeppelin::new(), &batch, &ctx, &cfg).unwrap_err();
        assert!(
            matches!(
                err,
                crate::step::StepError::Exec(crate::lower::ExecConfigError::RankSpeedValue {
                    rank: 4,
                    ..
                })
            ),
            "{err}"
        );
    }

    #[test]
    fn rank_speed_slows_affected_kernels() {
        let cluster = cluster_a(2);
        let ctx = SchedulerCtx::new(&cluster, &llama_3b());
        let batch = Batch::new(vec![4_000; 16]);
        let healthy = simulate_step(&Zeppelin::new(), &batch, &ctx, &StepConfig::default())
            .unwrap()
            .throughput;
        let mut cfg = StepConfig::default();
        cfg.exec.rank_speed = vec![1.0; 16];
        cfg.exec.rank_speed[5] = 0.25;
        let degraded = simulate_step(&Zeppelin::new(), &batch, &ctx, &cfg)
            .unwrap()
            .throughput;
        assert!(
            degraded < healthy * 0.9,
            "degraded {degraded} vs healthy {healthy}"
        );
    }
}

#[cfg(test)]
mod chained_tests {
    use super::*;
    use crate::step::{simulate_step, StepConfig};
    use zeppelin_core::scheduler::SchedulerCtx;
    use zeppelin_core::zeppelin::Zeppelin;
    use zeppelin_data::batch::Batch;
    use zeppelin_model::config::llama_3b;
    use zeppelin_sim::topology::cluster_a;

    #[test]
    fn chained_layers_match_single_layer_without_cross_layer_effects() {
        // With gradient sync off there is nothing to overlap across layers,
        // so per-layer times are identical regardless of chain length.
        let cluster = cluster_a(2);
        let ctx = SchedulerCtx::new(&cluster, &llama_3b());
        let batch = Batch::new(vec![30_000, 9_000, 4_000, 2_000, 1_000, 500, 19_036]);
        let run = |chain: usize| {
            let cfg = StepConfig {
                chained_layers: chain,
                ..StepConfig::default()
            };
            simulate_step(&Zeppelin::new(), &batch, &ctx, &cfg)
                .unwrap()
                .layer_forward
                .as_secs_f64()
        };
        let one = run(1);
        let four = run(4);
        assert!((one - four).abs() / one < 0.01, "one {one} vs four {four}");
    }

    #[test]
    fn overlapped_grad_sync_amortizes_across_chained_layers() {
        // Local-heavy batch: attention needs no NICs, so the all-reduce has
        // the fabric to itself and overlap can hide it under compute. (On
        // communication-bound batches the NICs are already saturated and
        // overlap saves little — physically correct, asserted elsewhere.)
        let cluster = cluster_a(2);
        let ctx = SchedulerCtx::new(&cluster, &llama_3b());
        let batch = Batch::new(vec![4_096; 16]);
        let run = |sync: GradSync, chain: usize| {
            let mut cfg = StepConfig {
                chained_layers: chain,
                ..StepConfig::default()
            };
            cfg.exec.grad_sync = sync;
            simulate_step(&Zeppelin::new(), &batch, &ctx, &cfg)
                .unwrap()
                .layer_backward
                .as_secs_f64()
        };
        let off = run(GradSync::Off, 4);
        let overlapped = run(GradSync::Overlapped, 4);
        let blocking = run(GradSync::Blocking, 4);
        // Chained, the overlapped all-reduce hides under the adjacent
        // layer's backward work far better than the blocking variant.
        assert!(blocking > off * 1.05, "blocking {blocking} vs off {off}");
        assert!(
            (overlapped - off) < 0.5 * (blocking - off),
            "overlapped {overlapped}, blocking {blocking}, off {off}"
        );
    }

    #[test]
    fn weighted_remap_engages_with_rank_speed() {
        let cluster = cluster_a(1);
        let ctx = SchedulerCtx::new(&cluster, &llama_3b());
        // Imbalanced batch so remap triggers.
        let batch = Batch::new(vec![20_000, 600, 500, 400, 300, 200, 100, 10_668]);
        let mut cfg = StepConfig::default();
        cfg.exec.rank_speed = vec![1.0, 1.0, 0.5, 1.0, 1.0, 1.0, 1.0, 1.0];
        cfg.exec.speed_aware_remap = true;
        let r = simulate_step(&Zeppelin::new(), &batch, &ctx, &cfg).unwrap();
        // The slow rank's linear busy time stays near the others (its
        // token share shrank proportionally).
        let lin = &r.forward_phase.linear;
        let slow = lin[2].as_secs_f64();
        let fast_max = lin
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 2)
            .map(|(_, d)| d.as_secs_f64())
            .fold(0.0f64, f64::max);
        assert!(
            slow < fast_max * 1.15,
            "slow-rank linear {slow} vs fastest {fast_max}"
        );
    }
}

//! Fault-aware training runs: failure detection, recovery policies, and
//! goodput accounting.
//!
//! [`run_training_faults`] drives the same scheduler/step machinery as
//! [`run_training`](crate::trainer::run_training) but against a run-level
//! [`FaultSchedule`] expressed in wall-clock time. Each step attempt maps
//! the slice of the schedule that overlaps its window into step-simulation
//! terms:
//!
//! - GPU slowdown windows become per-rank speed factors
//!   ([`ExecConfig::rank_speed`](crate::lower::ExecConfig::rank_speed)),
//!   overlap-weighted over the window;
//! - NIC degradations and link flaps become sim-level NIC capacity faults
//!   covering the whole attempt;
//! - rank crashes are injected as sim-level crashes, so the failure signal
//!   (`SimError::RankUnavailable`) genuinely comes from the engine rather
//!   than from bookkeeping.
//!
//! Failure detection combines that crash signal with a step-time anomaly
//! threshold (a flap-stretched step past `anomaly_threshold ×` the healthy
//! baseline models a collective timeout). What happens next is the
//! [`RecoveryPolicy`]: fail-stop, blind retry, elastic replanning over the
//! survivors ([`SchedulerCtx::shrink_to_survivors`]), or checkpoint
//! rollback with a restore-cost model.
//!
//! The resulting [`FaultRunReport`] separates **throughput** (useful tokens
//! per second of productive step time) from **goodput** (useful tokens per
//! second of wall time, including lost attempts, detection, backoff, and
//! restores). Goodput ≤ throughput always; the gap is the price of the
//! faults under the chosen policy.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::SeedableRng;

use zeppelin_core::scheduler::{Scheduler, SchedulerCtx};
use zeppelin_data::batch::{sample_batch, Batch};
use zeppelin_data::distribution::LengthDistribution;
use zeppelin_sim::fault::FaultSchedule;
use zeppelin_sim::time::{SimDuration, SimTime};
use zeppelin_sim::topology::Rank;

use crate::step::simulate_step;
use crate::trainer::{RunConfig, RunError, StepSummary};

/// What the trainer does when a failure is detected.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryPolicy {
    /// Surface the failure as a typed error and stop. Crashes abort the run
    /// with [`RunError::RankLost`]; flap-degraded steps merely run slow.
    FailStop,
    /// Re-run the failed step on the unchanged cluster after a backoff.
    /// Recovers from transient faults (flaps); a permanent crash burns
    /// every retry and ends in [`RunError::RetriesExhausted`].
    RetryWithBackoff {
        /// Retries after the first failed attempt.
        max_retries: usize,
        /// Wall time between attempts.
        backoff: SimDuration,
    },
    /// Shrink the cluster to the surviving ranks (whole-node eviction),
    /// re-derive the plan, and continue the run elastically.
    ReplanSurvivors,
    /// Like [`RecoveryPolicy::ReplanSurvivors`], but training state only
    /// exists at periodic checkpoints: committed steps since the last
    /// checkpoint are rolled back and re-run, and each recovery pays a
    /// restore cost.
    CheckpointRestart {
        /// Checkpoint period in steps (a checkpoint exists before step 0).
        every_steps: usize,
        /// Wall time to restore from a checkpoint.
        restore_cost: SimDuration,
    },
}

impl RecoveryPolicy {
    /// Stable name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryPolicy::FailStop => "fail-stop",
            RecoveryPolicy::RetryWithBackoff { .. } => "retry+backoff",
            RecoveryPolicy::ReplanSurvivors => "replan-survivors",
            RecoveryPolicy::CheckpointRestart { .. } => "checkpoint-restart",
        }
    }
}

/// Periodic-checkpoint bookkeeping shared by
/// [`RecoveryPolicy::CheckpointRestart`] and the cluster layer's
/// checkpoint-and-requeue preemption: given how many steps have committed,
/// where is the last durable checkpoint and what rolls back.
///
/// A checkpoint always exists before step 0 (the initial weights), and one
/// is cut after every `every_steps` committed steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpointer {
    /// Checkpoint period in steps (clamped to ≥ 1).
    pub every_steps: usize,
    /// Wall time to restore training state from a checkpoint.
    pub restore_cost: SimDuration,
}

impl Checkpointer {
    /// Builds a checkpointer; a period of 0 is treated as 1 (checkpoint
    /// after every step).
    pub fn new(every_steps: usize, restore_cost: SimDuration) -> Checkpointer {
        Checkpointer {
            every_steps: every_steps.max(1),
            restore_cost,
        }
    }

    /// The step index of the newest checkpoint at or below `committed`
    /// committed steps — where a restore resumes from.
    pub fn floor(&self, committed: usize) -> usize {
        committed - (committed % self.every_steps.max(1))
    }

    /// How many committed steps a restore from the newest checkpoint
    /// discards.
    pub fn rolled_back(&self, committed: usize) -> usize {
        committed - self.floor(committed)
    }
}

/// Configuration of a fault-aware training run.
#[derive(Debug, Clone)]
pub struct FaultRunConfig {
    /// The underlying run (steps, tokens, seed, step config).
    pub run: RunConfig,
    /// Recovery policy applied on detected failures.
    pub policy: RecoveryPolicy,
    /// A completed step slower than `anomaly_threshold ×` the healthy
    /// baseline is flagged degraded; combined with an overlapping link
    /// flap it is treated as a collective timeout (the attempt is
    /// abandoned and charged `anomaly_threshold ×` baseline of wall time).
    pub anomaly_threshold: f64,
    /// Wall time to detect a failure and coordinate the response (health
    /// checks, collective teardown).
    pub detection_overhead: SimDuration,
}

impl Default for FaultRunConfig {
    fn default() -> Self {
        FaultRunConfig {
            run: RunConfig::default(),
            policy: RecoveryPolicy::ReplanSurvivors,
            anomaly_threshold: 1.5,
            detection_overhead: SimDuration::from_millis(50),
        }
    }
}

/// One recovery action taken during the run.
#[derive(Debug, Clone)]
pub struct RecoveryEvent {
    /// Step during which the failure was detected.
    pub step: usize,
    /// Wall-clock instant of detection.
    pub at: SimTime,
    /// Human-readable description of the failure and response.
    pub action: String,
    /// Wall time charged to this failure (lost attempt, detection,
    /// backoff, restore).
    pub lost: SimDuration,
}

/// Result of a fault-aware training run, separating goodput from
/// throughput.
#[derive(Debug, Clone)]
pub struct FaultRunReport {
    /// Scheduler name.
    pub scheduler: String,
    /// Recovery policy name.
    pub policy: String,
    /// Steps whose work survived to the end of the run.
    pub committed_steps: usize,
    /// Total wall time: productive steps, lost attempts, detection,
    /// backoff, and restores.
    pub wall_time: SimDuration,
    /// Wall time spent in steps that stayed committed.
    pub productive_time: SimDuration,
    /// Tokens in committed steps.
    pub useful_tokens: u64,
    /// Tokens of discarded work: failed attempts and rolled-back steps
    /// (each failed attempt is charged its full batch — an upper bound).
    pub lost_tokens: u64,
    /// `useful_tokens / productive_time` in tokens/second.
    pub throughput: f64,
    /// `useful_tokens / wall_time` in tokens/second; ≤ throughput, equal
    /// only on a fault-free run.
    pub goodput: f64,
    /// Committed steps slower than the anomaly threshold (ran under a
    /// slowdown or degradation but finished).
    pub degraded_steps: usize,
    /// Wall time spent detecting, backing off, and restoring (excludes the
    /// lost attempts themselves).
    pub recovery_latency: SimDuration,
    /// Every recovery action, in order.
    pub recoveries: Vec<RecoveryEvent>,
    /// Ranks still alive at the end of the run.
    pub final_ranks: usize,
    /// Per-step records of the committed steps.
    pub steps: Vec<StepSummary>,
}

/// Attempts per step before giving up on transient failures.
const MAX_TRANSIENT_RETRIES: usize = 16;

fn scale(d: SimDuration, f: f64) -> SimDuration {
    SimDuration::from_secs_f64(d.as_secs_f64() * f)
}

fn offset_in(window_start: SimTime, at: SimTime) -> SimDuration {
    SimDuration::from_nanos(at.as_nanos().saturating_sub(window_start.as_nanos()))
}

/// Runs `scheduler` under `faults` with the recovery behaviour of
/// `cfg.policy`, accounting wall time, lost work, and goodput.
///
/// Batches are sampled up front from `dist` with the run seed, so a retried
/// or rolled-back step replays exactly the batch its failed attempt saw.
///
/// # Errors
///
/// - [`RunError::NoSteps`] / [`RunError::EmptyBatch`] as for
///   [`run_training`](crate::trainer::run_training);
/// - [`RunError::Faults`] if the schedule is inconsistent with the cluster;
/// - [`RunError::RankLost`] when a crash is detected under
///   [`RecoveryPolicy::FailStop`];
/// - [`RunError::RetriesExhausted`] when retries cannot complete a step;
/// - [`RunError::NoSurvivors`] when every node has died;
/// - [`RunError::Step`] for planning/simulation failures unrelated to the
///   schedule (e.g. the surviving memory no longer fits the batch).
pub fn run_training_faults(
    scheduler: &dyn Scheduler,
    dist: &LengthDistribution,
    ctx: &SchedulerCtx,
    cfg: &FaultRunConfig,
    faults: &FaultSchedule,
) -> Result<FaultRunReport, RunError> {
    if cfg.run.steps == 0 {
        return Err(RunError::NoSteps);
    }
    faults.validate(&ctx.cluster).map_err(RunError::Faults)?;

    let mut rng = StdRng::seed_from_u64(cfg.run.seed);
    let mut batches: Vec<Batch> = Vec::with_capacity(cfg.run.steps);
    for i in 0..cfg.run.steps {
        let b = sample_batch(dist, &mut rng, cfg.run.tokens_per_step);
        if b.total_tokens() == 0 {
            return Err(RunError::EmptyBatch { step: i });
        }
        batches.push(b);
    }

    // Healthy-baseline step time on a given cluster: the anomaly detector's
    // reference, re-derived after every elastic shrink.
    let healthy = |c: &SchedulerCtx, batch: &Batch, step: usize| -> Result<SimDuration, RunError> {
        let mut scfg = cfg.run.step.clone();
        scfg.seed = cfg.run.seed.wrapping_add(step as u64);
        let rep = simulate_step(scheduler, batch, c, &scfg)
            .map_err(|source| RunError::Step { step, source })?;
        Ok(rep.step_time)
    };

    // Elastic state: dead ranks in *original* numbering, the current
    // (possibly shrunk) context, and the old→new rank/node maps.
    let orig_ranks = ctx.cluster.total_gpus();
    let nic_count = ctx.cluster.node.nic_count;
    let mut dead_old: BTreeSet<Rank> = BTreeSet::new();
    let mut cur_ctx = ctx.clone();
    let mut rank_map: Vec<Option<Rank>> = (0..orig_ranks).map(Some).collect();
    let mut node_map: Vec<Option<usize>> = (0..ctx.cluster.nodes).map(Some).collect();

    let mut baseline = healthy(&cur_ctx, &batches[0], 0)?;

    let mut wall = SimTime::ZERO;
    let mut recovery_latency = SimDuration::ZERO;
    let mut lost_tokens = 0u64;
    let mut recoveries: Vec<RecoveryEvent> = Vec::new();
    let mut committed: Vec<StepSummary> = Vec::new();
    let mut committed_degraded: Vec<bool> = Vec::new();
    let mut name = String::new();

    let mut step = 0usize;
    let mut attempts_this_step = 0usize;
    while step < cfg.run.steps {
        let batch = &batches[step];
        let w0 = wall;
        let w1 = w0 + baseline;
        attempts_this_step += 1;

        // Map the schedule slice overlapping [w0, w1) into step terms.
        let nnew = cur_ctx.cluster.total_gpus();
        let mut old_of = vec![0usize; nnew];
        for (old, &m) in rank_map.iter().enumerate() {
            if let Some(nr) = m {
                old_of[nr] = old;
            }
        }
        let mut scfg = cfg.run.step.clone();
        scfg.seed = cfg.run.seed.wrapping_add(step as u64);
        let speeds: Vec<f64> = (0..nnew)
            .map(|nr| faults.speed_over(old_of[nr], w0, w1))
            .collect();
        if speeds.iter().any(|&s| s != 1.0) {
            scfg.exec.rank_speed = speeds;
        }
        let mut stf = FaultSchedule::new();
        for old_nic in faults.affected_nics() {
            let f = faults.nic_factor_over(old_nic, w0, w1);
            if f < 1.0 {
                if let Some(new_node) = node_map[old_nic / nic_count] {
                    stf = stf.nic_degrade(
                        new_node * nic_count + old_nic % nic_count,
                        f,
                        SimTime::ZERO,
                        None,
                    );
                }
            }
        }
        for (r, _) in faults.crashes_in(w0, w1) {
            if let Some(nr) = rank_map[r] {
                // Injected just after t=0 so the engine itself raises
                // RankUnavailable (t=0 would be FaultBeforeStart).
                stf = stf.rank_crash(nr, SimTime::from_nanos(1));
            }
        }
        scfg.faults = stf;

        let outcome = simulate_step(scheduler, batch, &cur_ctx, &scfg);

        // Crash detection: anything scheduled up to the end of what this
        // attempt actually spanned and not yet handled. A committed step
        // can run past the estimated window; a failed one is bounded by it.
        let span_end = match &outcome {
            Ok(rep) => w0 + rep.step_time,
            Err(_) => w1,
        };
        let new_crashes: Vec<(Rank, SimTime)> = faults
            .crashes_in(SimTime::ZERO, span_end)
            .into_iter()
            .filter(|(r, _)| !dead_old.contains(r))
            .collect();

        if !new_crashes.is_empty() {
            for &(r, _) in &new_crashes {
                dead_old.insert(r);
            }
            let (first_rank, first_at) = new_crashes[0];
            let detect_at = first_at.max(w0).saturating_add(cfg.detection_overhead);
            // Wall burnt by the doomed attempt plus detection.
            let mut lost_wall = offset_in(w0, first_at).saturating_add(cfg.detection_overhead);
            lost_tokens += batch.total_tokens();

            match &cfg.policy {
                RecoveryPolicy::FailStop => {
                    return Err(RunError::RankLost {
                        rank: first_rank,
                        step,
                    });
                }
                RecoveryPolicy::RetryWithBackoff { max_retries, .. } => {
                    // The dead rank stays in the collective: every retry
                    // would time out at the anomaly threshold, so the run
                    // ends after exhausting them. The report is discarded
                    // with the run, so no further accounting is needed.
                    return Err(RunError::RetriesExhausted {
                        step,
                        attempts: max_retries.saturating_add(1),
                    });
                }
                RecoveryPolicy::ReplanSurvivors | RecoveryPolicy::CheckpointRestart { .. } => {
                    let dead: Vec<Rank> = dead_old.iter().copied().collect();
                    let (new_ctx, map) = ctx
                        .shrink_to_survivors(&dead)
                        .map_err(|_| RunError::NoSurvivors { step })?;
                    node_map = (0..ctx.cluster.nodes)
                        .map(|n| {
                            map[ctx.cluster.rank_of(n, 0)].map(|nr| new_ctx.cluster.node_of(nr))
                        })
                        .collect();
                    rank_map = map;
                    cur_ctx = new_ctx;
                    let survivors = cur_ctx.cluster.total_gpus();

                    let mut action = format!(
                        "rank {first_rank} crashed ({} rank(s) lost); replanned onto {survivors} survivor(s)",
                        new_crashes.len(),
                    );
                    if let RecoveryPolicy::CheckpointRestart {
                        every_steps,
                        restore_cost,
                    } = &cfg.policy
                    {
                        let ckpt = Checkpointer::new(*every_steps, *restore_cost);
                        let last_ckpt = ckpt.floor(step);
                        let rolled = committed.len().saturating_sub(last_ckpt);
                        while committed.len() > last_ckpt {
                            let s = committed.pop().expect("len checked");
                            committed_degraded.pop();
                            lost_tokens += s.tokens;
                        }
                        lost_wall = lost_wall.saturating_add(*restore_cost);
                        step = last_ckpt;
                        action.push_str(&format!(
                            "; restored checkpoint at step {last_ckpt} ({rolled} step(s) rolled back)"
                        ));
                    }

                    wall = w0.saturating_add(lost_wall);
                    recovery_latency = recovery_latency.saturating_add(lost_wall);
                    recoveries.push(RecoveryEvent {
                        step,
                        at: detect_at,
                        action,
                        lost: lost_wall,
                    });
                    // The anomaly baseline changes with the cluster.
                    baseline = healthy(&cur_ctx, &batches[step], step)?;
                    attempts_this_step = 0;
                    continue;
                }
            }
        }

        let rep = outcome.map_err(|source| RunError::Step { step, source })?;
        let slow = rep.step_time.as_secs_f64() > cfg.anomaly_threshold * baseline.as_secs_f64();
        if slow && faults.flap_overlaps(w0, w1) && !matches!(cfg.policy, RecoveryPolicy::FailStop) {
            // Collective timeout on a flapping link: abandon the attempt at
            // the threshold, back off, and retry once the link settles.
            if attempts_this_step > MAX_TRANSIENT_RETRIES {
                return Err(RunError::RetriesExhausted {
                    step,
                    attempts: attempts_this_step,
                });
            }
            let mut lost_wall =
                scale(baseline, cfg.anomaly_threshold).saturating_add(cfg.detection_overhead);
            if let RecoveryPolicy::RetryWithBackoff { backoff, .. } = &cfg.policy {
                lost_wall = lost_wall.saturating_add(*backoff);
            }
            lost_tokens += batch.total_tokens();
            wall = w0.saturating_add(lost_wall);
            recovery_latency = recovery_latency.saturating_add(lost_wall);
            recoveries.push(RecoveryEvent {
                step,
                at: wall,
                action: format!(
                    "step {step} timed out ({}x baseline) during a link flap; retrying",
                    cfg.anomaly_threshold
                ),
                lost: lost_wall,
            });
            continue;
        }

        // Commit.
        wall = w0.saturating_add(rep.step_time);
        name = rep.scheduler.clone();
        committed.push(StepSummary::from(&rep));
        committed_degraded.push(slow);
        step += 1;
        attempts_this_step = 0;
    }

    let productive = committed
        .iter()
        .fold(SimDuration::ZERO, |a, s| a.saturating_add(s.step_time));
    let useful_tokens: u64 = committed.iter().map(|s| s.tokens).sum();
    let wall_time = SimDuration::from_nanos(wall.as_nanos());
    let throughput = if productive > SimDuration::ZERO {
        useful_tokens as f64 / productive.as_secs_f64()
    } else {
        0.0
    };
    let goodput = if wall_time > SimDuration::ZERO {
        useful_tokens as f64 / wall_time.as_secs_f64()
    } else {
        0.0
    };

    Ok(FaultRunReport {
        scheduler: name,
        policy: cfg.policy.name().to_string(),
        committed_steps: committed.len(),
        wall_time,
        productive_time: productive,
        useful_tokens,
        lost_tokens,
        throughput,
        goodput,
        degraded_steps: committed_degraded.iter().filter(|&&d| d).count(),
        recovery_latency,
        recoveries,
        final_ranks: cur_ctx.cluster.total_gpus(),
        steps: committed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::StepConfig;
    use zeppelin_core::zeppelin::Zeppelin;
    use zeppelin_data::datasets::arxiv;
    use zeppelin_model::config::llama_3b;
    use zeppelin_sim::topology::cluster_a;

    fn ctx() -> SchedulerCtx {
        SchedulerCtx::new(&cluster_a(2), &llama_3b()).with_capacity(8192)
    }

    fn cfg(steps: usize, policy: RecoveryPolicy) -> FaultRunConfig {
        FaultRunConfig {
            run: RunConfig {
                steps,
                tokens_per_step: 32_768,
                seed: 11,
                step: StepConfig::default(),
            },
            policy,
            ..FaultRunConfig::default()
        }
    }

    /// Mean fault-free step time, used to place faults mid-run.
    fn nominal_step(c: &SchedulerCtx) -> SimDuration {
        let r = run_training_faults(
            &Zeppelin::new(),
            &arxiv(),
            c,
            &cfg(2, RecoveryPolicy::FailStop),
            &FaultSchedule::new(),
        )
        .unwrap();
        scale(r.productive_time, 0.5)
    }

    #[test]
    fn fault_free_run_has_equal_goodput_and_throughput() {
        let r = run_training_faults(
            &Zeppelin::new(),
            &arxiv(),
            &ctx(),
            &cfg(3, RecoveryPolicy::ReplanSurvivors),
            &FaultSchedule::new(),
        )
        .unwrap();
        assert_eq!(r.committed_steps, 3);
        assert_eq!(r.lost_tokens, 0);
        assert!(r.recoveries.is_empty());
        assert_eq!(r.final_ranks, 16);
        assert!((r.goodput - r.throughput).abs() < 1e-6 * r.throughput);
    }

    #[test]
    fn failstop_surfaces_rank_lost() {
        let c = ctx();
        let crash_at = SimTime::ZERO + scale(nominal_step(&c), 1.5);
        let faults = FaultSchedule::new().node_crash(&c.cluster, 1, crash_at);
        let err = run_training_faults(
            &Zeppelin::new(),
            &arxiv(),
            &c,
            &cfg(4, RecoveryPolicy::FailStop),
            &faults,
        )
        .unwrap_err();
        assert!(
            matches!(err, RunError::RankLost { rank, step: 1 } if (8..16).contains(&rank)),
            "got {err}"
        );
    }

    #[test]
    fn retry_with_backoff_exhausts_on_permanent_crash() {
        let c = ctx();
        let crash_at = SimTime::ZERO + scale(nominal_step(&c), 0.5);
        let faults = FaultSchedule::new().rank_crash(9, crash_at);
        let policy = RecoveryPolicy::RetryWithBackoff {
            max_retries: 2,
            backoff: SimDuration::from_millis(10),
        };
        let err = run_training_faults(&Zeppelin::new(), &arxiv(), &c, &cfg(4, policy), &faults)
            .unwrap_err();
        assert!(
            matches!(
                err,
                RunError::RetriesExhausted {
                    step: 0,
                    attempts: 3
                }
            ),
            "got {err}"
        );
    }

    #[test]
    fn replan_survivors_completes_with_goodput_below_throughput() {
        let c = ctx();
        let crash_at = SimTime::ZERO + scale(nominal_step(&c), 1.4);
        let faults = FaultSchedule::new().node_crash(&c.cluster, 0, crash_at);
        let r = run_training_faults(
            &Zeppelin::new(),
            &arxiv(),
            &c,
            &cfg(5, RecoveryPolicy::ReplanSurvivors),
            &faults,
        )
        .unwrap();
        assert_eq!(r.committed_steps, 5);
        assert_eq!(r.final_ranks, 8);
        assert_eq!(r.recoveries.len(), 1);
        assert!(r.lost_tokens > 0);
        assert!(
            r.goodput < r.throughput,
            "goodput {} vs {}",
            r.goodput,
            r.throughput
        );
        assert!(r.recovery_latency > SimDuration::ZERO);
        assert!(r.wall_time > r.productive_time);
    }

    #[test]
    fn checkpoint_restart_rolls_back_committed_steps() {
        let c = ctx();
        let nominal = nominal_step(&c);
        let crash_at = SimTime::ZERO + scale(nominal, 3.4);
        let faults = FaultSchedule::new().node_crash(&c.cluster, 1, crash_at);
        let policy = RecoveryPolicy::CheckpointRestart {
            every_steps: 2,
            restore_cost: SimDuration::from_millis(200),
        };
        let r =
            run_training_faults(&Zeppelin::new(), &arxiv(), &c, &cfg(6, policy), &faults).unwrap();
        assert_eq!(r.committed_steps, 6);
        assert_eq!(r.final_ranks, 8);
        // The crash in step 3 rolled back to the checkpoint at step 2:
        // at least one committed step was discarded along with the attempt.
        assert!(r.recoveries[0].action.contains("rolled back"));
        assert!(
            r.lost_tokens > r.steps[0].tokens,
            "rollback should lose a committed step's tokens"
        );
        assert!(r.goodput < r.throughput);
    }

    #[test]
    fn transient_flap_is_retried_and_the_run_completes() {
        let c = ctx();
        let nominal = nominal_step(&c);
        // All NICs of node 0 flap during step 1's window, healing shortly
        // after: retries eventually land past the flap.
        let start = SimTime::ZERO + nominal;
        let end = start + scale(nominal, 2.0);
        let mut faults = FaultSchedule::new();
        for nic in 0..4 {
            faults = faults.link_flap(nic, start, Some(end));
        }
        let policy = RecoveryPolicy::RetryWithBackoff {
            max_retries: 8,
            backoff: SimDuration::from_millis(20),
        };
        let r =
            run_training_faults(&Zeppelin::new(), &arxiv(), &c, &cfg(4, policy), &faults).unwrap();
        assert_eq!(r.committed_steps, 4);
        assert_eq!(r.final_ranks, 16, "no rank died");
        assert!(
            !r.recoveries.is_empty() || r.degraded_steps > 0,
            "the flap must be visible somewhere"
        );
        assert!(r.goodput <= r.throughput + 1e-9);
    }

    #[test]
    fn gpu_slowdown_degrades_without_recovery_events() {
        let c = ctx();
        // Rank 3 at 30% speed for the whole run: steps stretch but commit.
        let faults = FaultSchedule::new().gpu_slowdown(3, 0.3, SimTime::ZERO, None);
        let r = run_training_faults(
            &Zeppelin::new(),
            &arxiv(),
            &c,
            &cfg(3, RecoveryPolicy::ReplanSurvivors),
            &faults,
        )
        .unwrap();
        assert_eq!(r.committed_steps, 3);
        assert!(r.recoveries.is_empty(), "a slow GPU is not a failure");
        let healthy = run_training_faults(
            &Zeppelin::new(),
            &arxiv(),
            &c,
            &cfg(3, RecoveryPolicy::ReplanSurvivors),
            &FaultSchedule::new(),
        )
        .unwrap();
        assert!(
            r.wall_time > healthy.wall_time,
            "slowdown must cost wall time: {} vs {}",
            r.wall_time,
            healthy.wall_time
        );
    }

    #[test]
    fn deterministic_across_invocations() {
        let c = ctx();
        let crash_at = SimTime::ZERO + scale(nominal_step(&c), 1.2);
        let faults = FaultSchedule::new().node_crash(&c.cluster, 1, crash_at);
        let run = || {
            run_training_faults(
                &Zeppelin::new(),
                &arxiv(),
                &c,
                &cfg(4, RecoveryPolicy::ReplanSurvivors),
                &faults,
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.wall_time, b.wall_time);
        assert_eq!(a.useful_tokens, b.useful_tokens);
        assert_eq!(a.lost_tokens, b.lost_tokens);
        assert_eq!(a.committed_steps, b.committed_steps);
    }

    #[test]
    fn checkpointer_floors_and_rolls_back() {
        let c = Checkpointer::new(4, SimDuration::from_millis(100));
        assert_eq!(c.floor(0), 0);
        assert_eq!(c.floor(3), 0);
        assert_eq!(c.floor(4), 4);
        assert_eq!(c.floor(11), 8);
        assert_eq!(c.rolled_back(11), 3);
        // Period 0 clamps to 1: every committed step is durable.
        let every = Checkpointer::new(0, SimDuration::ZERO);
        assert_eq!(every.floor(7), 7);
        assert_eq!(every.rolled_back(7), 0);
    }

    #[test]
    fn invalid_schedule_is_a_typed_error() {
        let c = ctx();
        let faults = FaultSchedule::new().rank_crash(99, SimTime::from_nanos(5));
        let err = run_training_faults(
            &Zeppelin::new(),
            &arxiv(),
            &c,
            &cfg(2, RecoveryPolicy::ReplanSurvivors),
            &faults,
        )
        .unwrap_err();
        assert!(matches!(err, RunError::Faults(_)), "got {err}");
    }
}

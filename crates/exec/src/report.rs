//! Machine-readable (JSON) rendering of step and run reports.
//!
//! A tiny hand-rolled writer — the workspace deliberately avoids a JSON
//! dependency — producing stable, documented schemas for downstream
//! tooling (dashboards, regression tracking). Traces are exported
//! separately via [`zeppelin_sim::trace::Trace::to_chrome_json`].

use std::fmt::Write as _;

use crate::step::StepReport;
use crate::trainer::RunReport;

/// Escapes a string for a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as JSON (finite values only; NaN/inf become `null`).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn num_array(vs: impl IntoIterator<Item = f64>) -> String {
    let items: Vec<String> = vs.into_iter().map(num).collect();
    format!("[{}]", items.join(","))
}

/// Serializes one step report (without timelines).
///
/// Schema: `scheduler`, `tokens`, `throughput_tps`, `step_time_s`,
/// `layer_forward_s`, `layer_backward_s`, `plan_wall_s`, `micro_batches`,
/// `placements`, `nic_tx_utilization[]`, `compute_busy_frac[]`,
/// `fwd_attention_s[]`, `fwd_linear_s[]`, `fwd_remap_s[]`, `fwd_comm_s[]`.
pub fn step_report_json(r: &StepReport) -> String {
    let mut out = String::from("{");
    let _ = write!(out, "\"scheduler\":\"{}\",", escape(&r.scheduler));
    let _ = write!(out, "\"tokens\":{},", r.tokens);
    let _ = write!(out, "\"throughput_tps\":{},", num(r.throughput));
    let _ = write!(out, "\"step_time_s\":{},", num(r.step_time.as_secs_f64()));
    let _ = write!(
        out,
        "\"layer_forward_s\":{},",
        num(r.layer_forward.as_secs_f64())
    );
    let _ = write!(
        out,
        "\"layer_backward_s\":{},",
        num(r.layer_backward.as_secs_f64())
    );
    let _ = write!(out, "\"plan_wall_s\":{},", num(r.plan_wall.as_secs_f64()));
    let _ = write!(out, "\"micro_batches\":{},", r.plan.micro_batches);
    let _ = write!(out, "\"placements\":{},", r.plan.placements.len());
    let _ = write!(
        out,
        "\"nic_tx_utilization\":{},",
        num_array(r.nic_tx_utilization.iter().copied())
    );
    let _ = write!(
        out,
        "\"compute_busy_frac\":{},",
        num_array(r.compute_busy_frac.iter().copied())
    );
    for (name, v) in [
        ("fwd_attention_s", &r.forward_phase.attention),
        ("fwd_linear_s", &r.forward_phase.linear),
        ("fwd_remap_s", &r.forward_phase.remap),
        ("fwd_comm_s", &r.forward_phase.comm),
    ] {
        let _ = write!(
            out,
            "\"{name}\":{},",
            num_array(v.iter().map(|d| d.as_secs_f64()))
        );
    }
    out.pop(); // Trailing comma.
    out.push('}');
    out
}

/// Serializes a multi-step run report.
///
/// Schema: `scheduler`, `mean_throughput_tps`, `min_throughput_tps`,
/// `max_throughput_tps`, `mean_step_time_s`, `steps[]` with per-step
/// `{step_time_s, tokens, throughput_tps, sequences}`.
pub fn run_report_json(r: &RunReport) -> String {
    let mut out = String::from("{");
    let _ = write!(out, "\"scheduler\":\"{}\",", escape(&r.scheduler));
    let _ = write!(out, "\"mean_throughput_tps\":{},", num(r.mean_throughput));
    let _ = write!(out, "\"min_throughput_tps\":{},", num(r.min_throughput));
    let _ = write!(out, "\"max_throughput_tps\":{},", num(r.max_throughput));
    let _ = write!(
        out,
        "\"mean_step_time_s\":{},",
        num(r.mean_step_time.as_secs_f64())
    );
    out.push_str("\"steps\":[");
    for (i, s) in r.steps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"step_time_s\":{},\"tokens\":{},\"throughput_tps\":{},\"sequences\":{}}}",
            num(s.step_time.as_secs_f64()),
            s.tokens,
            num(s.throughput),
            s.sequences
        );
    }
    out.push_str("]}");
    out
}

/// A minimal JSON well-formedness check used by tests and debug assertions:
/// braces/brackets balance outside strings and the text is non-empty.
pub fn looks_like_json(s: &str) -> bool {
    let mut depth: i64 = 0;
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    !s.is_empty() && depth == 0 && !in_str
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::{simulate_step, StepConfig};
    use crate::trainer::{run_training, RunConfig};
    use zeppelin_core::scheduler::SchedulerCtx;
    use zeppelin_core::zeppelin::Zeppelin;
    use zeppelin_data::batch::Batch;
    use zeppelin_data::datasets::arxiv;
    use zeppelin_model::config::llama_3b;
    use zeppelin_sim::topology::cluster_a;

    fn a_step_report() -> StepReport {
        let cluster = cluster_a(1);
        let ctx = SchedulerCtx::new(&cluster, &llama_3b()).with_capacity(16_384);
        let batch = Batch::new(vec![9_000, 3_000, 1_000, 500]);
        simulate_step(&Zeppelin::new(), &batch, &ctx, &StepConfig::default()).unwrap()
    }

    #[test]
    fn step_json_is_wellformed_and_complete() {
        let json = step_report_json(&a_step_report());
        assert!(looks_like_json(&json), "{json}");
        for key in [
            "scheduler",
            "throughput_tps",
            "step_time_s",
            "nic_tx_utilization",
            "fwd_attention_s",
            "micro_batches",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key}");
        }
        assert!(!json.contains("NaN"));
    }

    #[test]
    fn run_json_includes_every_step() {
        let cluster = cluster_a(1);
        let ctx = SchedulerCtx::new(&cluster, &llama_3b()).with_capacity(16_384);
        let cfg = RunConfig {
            steps: 3,
            tokens_per_step: 16_384,
            seed: 1,
            step: StepConfig::default(),
        };
        let report = run_training(&Zeppelin::new(), &arxiv(), &ctx, &cfg).unwrap();
        let json = run_report_json(&report);
        assert!(looks_like_json(&json), "{json}");
        assert_eq!(json.matches("step_time_s").count(), 3 + 1);
    }

    #[test]
    fn escaping_and_degenerate_numbers() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num_array([1.0, f64::INFINITY]), "[1,null]");
    }

    #[test]
    fn wellformedness_checker_rejects_junk() {
        assert!(looks_like_json("{\"a\":[1,2]}"));
        assert!(!looks_like_json("{\"a\":[1,2}"));
        assert!(!looks_like_json("{\"a\": \"unterminated}"));
        assert!(!looks_like_json(""));
        assert!(looks_like_json("{\"quote\":\"\\\"}\\\"\"}"));
    }
}

//! # zeppelin-model
//!
//! Analytic transformer cost model for the Zeppelin reproduction.
//!
//! This crate answers, in closed form, every "how much does this cost?"
//! question the schedulers and the simulator need:
//!
//! - [`config`]: the paper's five model configurations (LLaMA 3B/7B/13B/30B,
//!   8×550M MoE) and tensor-parallel sharding;
//! - [`flops`]: exact causal-attention pair counting at block granularity
//!   plus linear-module FLOPs — the quadratic-vs-linear split at the heart
//!   of the paper;
//! - [`kernel`]: saturating-efficiency kernel timing (small kernels are
//!   launch-bound, large ones track peak);
//! - [`memory`]: KV/hidden communication volumes and the token-capacity
//!   model that seeds the partitioner's `L`;
//! - [`moe`]: routing-imbalance sampling for mixture-of-experts models.
//!
//! # Examples
//!
//! ```
//! use zeppelin_model::config::llama_7b;
//! use zeppelin_model::flops::{attention_seq_flops, linear_layer_flops};
//!
//! let cfg = llama_7b();
//! // Attention overtakes the linear modules somewhere past 16k tokens.
//! assert!(attention_seq_flops(&cfg, 4_096) < linear_layer_flops(&cfg, 4_096));
//! assert!(attention_seq_flops(&cfg, 131_072) > linear_layer_flops(&cfg, 131_072));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod flops;
pub mod kernel;
pub mod memory;
pub mod moe;

pub use config::{
    llama_13b, llama_30b, llama_3b, llama_7b, moe_8x550m, paper_models, ModelConfig, MoeConfig,
};
pub use flops::{
    attention_block_flops, attention_dense_block_flops, attention_seq_flops, causal_pairs,
    causal_pairs_full, linear_flops_per_token, linear_layer_flops, BACKWARD_COMM_MULTIPLIER,
    BACKWARD_FLOPS_MULTIPLIER,
};
pub use kernel::{KernelModel, COMM_LAUNCH_OVERHEAD_S};
pub use memory::{
    activation_bytes_per_token, fits_in_memory, grad_bytes_per_layer, hidden_bytes, kv_bytes,
    model_state_bytes, token_capacity,
};
pub use moe::{imbalance_factor, sample_expert_loads, SplitMix64};

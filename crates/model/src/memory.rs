//! Byte accounting: communication volumes and memory capacity.
//!
//! Two kinds of byte counts matter to Zeppelin:
//!
//! - **communication volume**: KV activations exchanged by distributed
//!   attention (linear in tokens) and hidden states moved by the remapping
//!   layer;
//! - **memory capacity**: how many tokens a GPU can hold, which seeds the
//!   partitioner's capacity `L` and node capacity `P·L`.
//!
//! The capacity model is an explicit approximation (documented per item);
//! its role in the reproduction is to provide a realistic, size-dependent
//! `L`, not byte-exact Megatron accounting.

use crate::config::ModelConfig;

/// Bytes of K+V activations for `tokens` tokens in one layer.
pub fn kv_bytes(cfg: &ModelConfig, tokens: u64) -> f64 {
    2.0 * tokens as f64 * cfg.hidden as f64 * cfg.dtype_bytes as f64
}

/// Bytes of the hidden-state activation of `tokens` tokens (what the
/// remapping layer moves per direction).
pub fn hidden_bytes(cfg: &ModelConfig, tokens: u64) -> f64 {
    tokens as f64 * cfg.hidden as f64 * cfg.dtype_bytes as f64
}

/// Approximate activation memory per token across the whole model, bytes.
///
/// Assumes FlashAttention plus full activation recomputation (standard for
/// long-context training, and what lets the paper fit 4k tokens/GPU on the
/// 30B model): only ≈ 8 × hidden bytes per token per layer stay resident
/// (layer input, KV, and recompute workspace).
pub fn activation_bytes_per_token(cfg: &ModelConfig) -> f64 {
    8.0 * cfg.hidden as f64 * cfg.dtype_bytes as f64 * cfg.layers as f64
}

/// Gradient bytes produced by one transformer layer (bf16 grads for the
/// layer's weights); what data-parallel gradient synchronization moves.
pub fn grad_bytes_per_layer(cfg: &ModelConfig) -> f64 {
    let h = cfg.hidden as f64;
    let attn = 4.0 * h * h;
    let mlp = match &cfg.moe {
        None => 3.0 * h * cfg.ffn_hidden as f64,
        Some(m) => {
            m.num_experts as f64 * 3.0 * h * m.expert_ffn_hidden as f64 + h * m.num_experts as f64
        }
    };
    (attn + mlp + 2.0 * h) * 2.0
}

/// Approximate persistent model-state bytes per GPU under ZeRO-1 data
/// parallelism of width `dp`: bf16 weights (2 B) + bf16 grads (2 B) resident,
/// fp32 master + Adam moments (12 B) sharded across the DP group.
pub fn model_state_bytes(cfg: &ModelConfig, dp: usize) -> f64 {
    assert!(dp >= 1, "dp must be at least 1");
    let p = cfg.param_count() as f64;
    p * (2.0 + 2.0 + 12.0 / dp as f64)
}

/// Token capacity `L` of one GPU: how many tokens of activations fit after
/// model state, with a 8% headroom for workspace and fragmentation.
///
/// Returns at least 1024 so degenerate configs still make progress; callers
/// validating real deployments should check [`fits_in_memory`] instead.
pub fn token_capacity(cfg: &ModelConfig, gpu_mem_bytes: u64, dp: usize) -> u64 {
    let budget = gpu_mem_bytes as f64 * 0.92 - model_state_bytes(cfg, dp);
    let per_token = activation_bytes_per_token(cfg);
    let cap = (budget / per_token).floor();
    if cap < 1024.0 {
        1024
    } else {
        cap as u64
    }
}

/// Whether `tokens` tokens of activations plus model state fit in memory.
pub fn fits_in_memory(cfg: &ModelConfig, gpu_mem_bytes: u64, dp: usize, tokens: u64) -> bool {
    let need = model_state_bytes(cfg, dp) + tokens as f64 * activation_bytes_per_token(cfg);
    need <= gpu_mem_bytes as f64 * 0.92
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::config::{llama_13b, llama_30b, llama_3b, llama_7b};

    #[test]
    fn kv_bytes_match_hand_calculation() {
        let cfg = llama_3b();
        // 2 tensors × 4096 tokens × 3200 hidden × 2 bytes.
        assert!((kv_bytes(&cfg, 4096) - 2.0 * 4096.0 * 3200.0 * 2.0).abs() < 1.0);
        // The paper's per-round volume: 4k-token KV chunk of the 3B model is
        // ~52 MB, which at 25 GB/s is ~2.1 ms (§5.4.1 observes 2.18 ms).
        let secs = kv_bytes(&cfg, 4096) / 25e9;
        assert!((secs - 2.1e-3).abs() < 0.2e-3, "got {secs}");
    }

    #[test]
    fn hidden_is_half_of_kv() {
        let cfg = llama_7b();
        assert!((2.0 * hidden_bytes(&cfg, 100) - kv_bytes(&cfg, 100)).abs() < 1e-6);
    }

    #[test]
    fn capacity_shrinks_with_model_size() {
        let mem = 80 * (1u64 << 30);
        let c3 = token_capacity(&llama_3b(), mem, 64);
        let c7 = token_capacity(&llama_7b(), mem, 64);
        let c13 = token_capacity(&llama_13b(), mem, 64);
        assert!(c3 > c7 && c7 > c13, "{c3} {c7} {c13}");
        // 4k tokens/GPU (the paper's setting) must fit for the 7B model.
        assert!(c7 >= 4096, "7B capacity {c7} too small for the paper setup");
    }

    #[test]
    fn capacity_grows_with_dp_sharding() {
        let mem = 80 * (1u64 << 30);
        let narrow = token_capacity(&llama_30b(), mem, 8);
        let wide = token_capacity(&llama_30b(), mem, 256);
        assert!(wide >= narrow);
    }

    #[test]
    fn fits_in_memory_is_consistent_with_capacity() {
        let cfg = llama_7b();
        let mem = 80 * (1u64 << 30);
        let cap = token_capacity(&cfg, mem, 64);
        assert!(fits_in_memory(&cfg, mem, 64, cap));
        assert!(!fits_in_memory(&cfg, mem, 64, cap + cap / 4 + 4096));
    }

    #[test]
    fn grad_bytes_track_layer_parameters() {
        let cfg = llama_7b();
        // 4h^2 + 3·h·ffn params at 2 bytes each, plus norms.
        let expected = (4.0 * 4096.0f64 * 4096.0 + 3.0 * 4096.0 * 11008.0 + 2.0 * 4096.0) * 2.0;
        assert!((grad_bytes_per_layer(&cfg) - expected).abs() < 1.0);
        // MoE layers synchronize every expert's gradients.
        let moe = crate::config::moe_8x550m();
        let dense_like = ModelConfig {
            moe: None,
            ..moe.clone()
        };
        assert!(grad_bytes_per_layer(&moe) > 4.0 * grad_bytes_per_layer(&dense_like));
    }

    #[test]
    fn capacity_has_a_floor() {
        // A model far too large for the GPU still reports the floor.
        let cfg = llama_30b();
        assert_eq!(token_capacity(&cfg, 1 << 30, 1), 1024);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_dp_panics() {
        model_state_bytes(&llama_7b(), 0);
    }
}

//! Model architecture configurations.
//!
//! LLaMA-family dense configurations (3B/7B/13B/30B) and the paper's
//! 8×550M mixture-of-experts configuration, plus tensor-parallel folding.

/// Mixture-of-experts settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoeConfig {
    /// Number of experts per MoE layer.
    pub num_experts: usize,
    /// Experts activated per token.
    pub top_k: usize,
    /// Hidden size of each expert's FFN.
    pub expert_ffn_hidden: usize,
}

/// A transformer architecture, LLaMA-style (pre-norm, gated MLP, MHA).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Human-readable name (e.g. `"LLaMA-7B"`).
    pub name: String,
    /// Hidden (embedding) dimension.
    pub hidden: usize,
    /// Number of attention heads (multi-head attention; no GQA, per paper).
    pub num_heads: usize,
    /// Gated-MLP intermediate dimension (dense layers).
    pub ffn_hidden: usize,
    /// Number of transformer layers.
    pub layers: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Bytes per element of activations/weights (2 = bf16).
    pub dtype_bytes: usize,
    /// MoE settings; `None` for dense models.
    pub moe: Option<MoeConfig>,
}

impl ModelConfig {
    /// Dimension of one attention head.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is not divisible by `num_heads` (invalid config).
    pub fn head_dim(&self) -> usize {
        assert!(
            self.hidden.is_multiple_of(self.num_heads),
            "hidden {} not divisible by heads {}",
            self.hidden,
            self.num_heads
        );
        self.hidden / self.num_heads
    }

    /// Approximate parameter count (embeddings + per-layer weights).
    pub fn param_count(&self) -> u64 {
        let h = self.hidden as u64;
        let attn = 4 * h * h; // Q, K, V, O projections.
        let mlp = match &self.moe {
            None => 3 * h * self.ffn_hidden as u64, // gate, up, down.
            Some(m) => {
                let per_expert = 3 * h * m.expert_ffn_hidden as u64;
                m.num_experts as u64 * per_expert + h * m.num_experts as u64 // + router.
            }
        };
        let norms = 2 * h;
        let per_layer = attn + mlp + norms;
        let embed = 2 * h * self.vocab as u64; // tied in practice; count both ends.
        embed + self.layers as u64 * per_layer
    }

    /// Whether this is a mixture-of-experts model.
    pub fn is_moe(&self) -> bool {
        self.moe.is_some()
    }

    /// Returns the per-GPU shard of this model under tensor parallelism of
    /// size `tp`: heads, FFN and vocab are split `tp`-ways. Used when a TP
    /// group is folded into one logical data-parallel worker.
    ///
    /// # Panics
    ///
    /// Panics if `tp` does not divide `num_heads` (Megatron requirement).
    pub fn tp_shard(&self, tp: usize) -> ModelConfig {
        assert!(tp >= 1, "tp must be at least 1");
        assert!(
            self.num_heads.is_multiple_of(tp),
            "tp {tp} must divide num_heads {}",
            self.num_heads
        );
        ModelConfig {
            name: format!("{}/tp{}", self.name, tp),
            hidden: self.hidden,
            num_heads: self.num_heads, // logical width is unchanged; see exec.
            ffn_hidden: self.ffn_hidden,
            layers: self.layers,
            vocab: self.vocab,
            dtype_bytes: self.dtype_bytes,
            moe: self.moe,
        }
    }
}

/// LLaMA 3B (open-llama 3B shape): h=3200, 26 layers, 32 heads.
pub fn llama_3b() -> ModelConfig {
    ModelConfig {
        name: "LLaMA-3B".into(),
        hidden: 3200,
        num_heads: 32,
        ffn_hidden: 8640,
        layers: 26,
        vocab: 32000,
        dtype_bytes: 2,
        moe: None,
    }
}

/// LLaMA 7B: h=4096, 32 layers, 32 heads.
pub fn llama_7b() -> ModelConfig {
    ModelConfig {
        name: "LLaMA-7B".into(),
        hidden: 4096,
        num_heads: 32,
        ffn_hidden: 11008,
        layers: 32,
        vocab: 32000,
        dtype_bytes: 2,
        moe: None,
    }
}

/// LLaMA 13B: h=5120, 40 layers, 40 heads.
pub fn llama_13b() -> ModelConfig {
    ModelConfig {
        name: "LLaMA-13B".into(),
        hidden: 5120,
        num_heads: 40,
        ffn_hidden: 13824,
        layers: 40,
        vocab: 32000,
        dtype_bytes: 2,
        moe: None,
    }
}

/// LLaMA 30B: h=6656, 60 layers, 52 heads.
pub fn llama_30b() -> ModelConfig {
    ModelConfig {
        name: "LLaMA-30B".into(),
        hidden: 6656,
        num_heads: 52,
        ffn_hidden: 17920,
        layers: 60,
        vocab: 32000,
        dtype_bytes: 2,
        moe: None,
    }
}

/// The paper's 8×550M MoE: 8 experts, top-2 routing, ~550M params/expert.
pub fn moe_8x550m() -> ModelConfig {
    ModelConfig {
        name: "MoE-8x550M".into(),
        hidden: 2048,
        num_heads: 16,
        ffn_hidden: 5632,
        layers: 24,
        vocab: 32000,
        dtype_bytes: 2,
        moe: Some(MoeConfig {
            num_experts: 8,
            top_k: 2,
            expert_ffn_hidden: 5632,
        }),
    }
}

/// All five paper configurations, in evaluation order.
pub fn paper_models() -> Vec<ModelConfig> {
    vec![
        llama_3b(),
        llama_7b(),
        llama_13b(),
        llama_30b(),
        moe_8x550m(),
    ]
}

/// Model names accepted by [`by_name`] (canonical spellings).
pub const MODEL_NAMES: [&str; 5] = ["3b", "7b", "13b", "30b", "moe"];

/// Resolves a model preset by its CLI/protocol/trace name. Shared by the
/// serving registry, the CLI, and per-job model resolution in the cluster
/// simulation, so every layer accepts one vocabulary.
///
/// # Errors
///
/// Returns the offending name for unknown models.
pub fn by_name(name: &str) -> Result<ModelConfig, String> {
    match name.to_ascii_lowercase().as_str() {
        "3b" | "llama-3b" => Ok(llama_3b()),
        "7b" | "llama-7b" => Ok(llama_7b()),
        "13b" | "llama-13b" => Ok(llama_13b()),
        "30b" | "llama-30b" => Ok(llama_30b()),
        "moe" | "8x550m" => Ok(moe_8x550m()),
        other => Err(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_counts_land_near_nominal_sizes() {
        let b = 1e9;
        let p7 = llama_7b().param_count() as f64;
        assert!((5.5 * b..8.0 * b).contains(&p7), "7B got {p7}");
        let p13 = llama_13b().param_count() as f64;
        assert!((11.0 * b..15.0 * b).contains(&p13), "13B got {p13}");
        let p30 = llama_30b().param_count() as f64;
        assert!((28.0 * b..36.0 * b).contains(&p30), "30B got {p30}");
        let p3 = llama_3b().param_count() as f64;
        assert!((2.5 * b..4.0 * b).contains(&p3), "3B got {p3}");
    }

    #[test]
    fn moe_param_count_covers_all_experts() {
        let m = moe_8x550m();
        // 8 experts × 3 × 2048 × 5632 ≈ 277M per layer from experts alone.
        let dense_equiv = ModelConfig {
            moe: None,
            ..m.clone()
        };
        assert!(m.param_count() > 3 * dense_equiv.param_count());
    }

    #[test]
    fn head_dim_divides() {
        for m in paper_models() {
            assert_eq!(m.head_dim() * m.num_heads, m.hidden);
        }
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn bad_head_config_panics() {
        let mut m = llama_7b();
        m.num_heads = 33;
        let _ = m.head_dim();
    }

    #[test]
    fn tp_shard_requires_divisibility() {
        let m = llama_13b();
        let s = m.tp_shard(2);
        assert!(s.name.contains("tp2"));
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn tp_shard_rejects_non_divisor() {
        llama_7b().tp_shard(3);
    }

    #[test]
    fn paper_models_enumerates_five() {
        assert_eq!(paper_models().len(), 5);
        assert!(paper_models().iter().any(|m| m.is_moe()));
    }
}

//! FLOP accounting for transformer modules.
//!
//! Two scaling regimes drive everything in the paper:
//!
//! - **linear modules** (projections, gated MLP, norms): FLOPs proportional
//!   to token count;
//! - **self-attention** with a causal mask: FLOPs proportional to the number
//!   of attending `(query, key)` pairs — quadratic in sequence length.
//!
//! Attention work is counted exactly at *block* granularity: for any query
//! token range × key/value token range we count the causal pairs in closed
//! form. This is what makes zigzag ring balance, packing redundancy, and the
//! partitioner's quadratic budgets exact rather than approximate.

use crate::config::ModelConfig;

/// FLOPs per attending `(query, key)` pair across all heads.
///
/// One pair costs `2·head_dim` FLOPs in `Q·Kᵀ` and `2·head_dim` in `P·V`,
/// summed over heads: `4·hidden` in total.
pub fn flops_per_pair(cfg: &ModelConfig) -> f64 {
    4.0 * cfg.hidden as f64
}

/// Number of causal attending pairs between a query token range and a
/// key/value token range (global token indices; key attends if `k <= q`).
///
/// Ranges are `[q_start, q_start + q_len)` × `[kv_start, kv_start + kv_len)`.
pub fn causal_pairs(q_start: u64, q_len: u64, kv_start: u64, kv_len: u64) -> u64 {
    if q_len == 0 || kv_len == 0 {
        return 0;
    }
    let qe = q_start + q_len;
    let lo = kv_start;
    let hi = kv_start + kv_len;
    // For query q the pair count is clamp(q + 1 - lo, 0, kv_len).
    // Region 1: q in [max(qs, lo), min(qe, hi - 1)) contributes q + 1 - lo.
    let r1s = q_start.max(lo);
    let r1e = qe.min(hi - 1);
    let mut total = 0u64;
    if r1e > r1s {
        let a = r1s + 1 - lo;
        let b = r1e - lo;
        total += (a + b) * (b - a + 1) / 2;
    }
    // Region 2: q in [max(qs, hi - 1), qe) contributes kv_len.
    let r2s = q_start.max(hi - 1);
    if qe > r2s {
        total += (qe - r2s) * kv_len;
    }
    total
}

/// Causal attending pairs of one full sequence of length `s` (`s(s+1)/2`).
pub fn causal_pairs_full(s: u64) -> u64 {
    s * (s + 1) / 2
}

/// Forward attention FLOPs for a causal block (query range × kv range).
pub fn attention_block_flops(
    cfg: &ModelConfig,
    q_start: u64,
    q_len: u64,
    kv_start: u64,
    kv_len: u64,
) -> f64 {
    causal_pairs(q_start, q_len, kv_start, kv_len) as f64 * flops_per_pair(cfg)
}

/// Forward attention FLOPs of one full causal sequence of length `s`.
pub fn attention_seq_flops(cfg: &ModelConfig, s: u64) -> f64 {
    causal_pairs_full(s) as f64 * flops_per_pair(cfg)
}

/// Forward attention FLOPs of a *non-causal* (full) block, used to account
/// for the redundant cross-sequence computation of naive packing.
pub fn attention_dense_block_flops(cfg: &ModelConfig, q_len: u64, kv_len: u64) -> f64 {
    (q_len as f64) * (kv_len as f64) * flops_per_pair(cfg)
}

/// Forward FLOPs per token in the linear modules of one layer.
///
/// Dense: QKVO projections (`2·4h²`) plus the gated MLP (`2·3·h·ffn`).
/// MoE: QKVO plus `top_k` expert MLPs plus the router matmul.
pub fn linear_flops_per_token(cfg: &ModelConfig) -> f64 {
    let h = cfg.hidden as f64;
    let attn_proj = 2.0 * 4.0 * h * h;
    let mlp = match &cfg.moe {
        None => 2.0 * 3.0 * h * cfg.ffn_hidden as f64,
        Some(m) => {
            let experts = 2.0 * 3.0 * h * m.expert_ffn_hidden as f64 * m.top_k as f64;
            let router = 2.0 * h * m.num_experts as f64;
            experts + router
        }
    };
    attn_proj + mlp
}

/// Forward FLOPs of the linear modules of one layer for `tokens` tokens.
pub fn linear_layer_flops(cfg: &ModelConfig, tokens: u64) -> f64 {
    tokens as f64 * linear_flops_per_token(cfg)
}

/// Multiplier applied to forward FLOPs to account for the backward pass
/// (gradients w.r.t. activations and weights ≈ 2× forward).
pub const BACKWARD_FLOPS_MULTIPLIER: f64 = 2.0;

/// Multiplier applied to forward communication volume in the backward pass
/// (KV and dKV both travel the ring, matching the paper's §5.4.1 timelines).
pub const BACKWARD_COMM_MULTIPLIER: f64 = 2.0;

/// Forward FLOPs of one full layer (attention + linear) for one sequence of
/// length `s`; convenience used by balance metrics.
pub fn layer_seq_flops(cfg: &ModelConfig, s: u64) -> f64 {
    attention_seq_flops(cfg, s) + linear_layer_flops(cfg, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{llama_7b, moe_8x550m};

    /// Brute-force reference for causal pair counting.
    fn causal_pairs_naive(qs: u64, ql: u64, ks: u64, kl: u64) -> u64 {
        let mut n = 0;
        for q in qs..qs + ql {
            for k in ks..ks + kl {
                if k <= q {
                    n += 1;
                }
            }
        }
        n
    }

    #[test]
    fn causal_pairs_matches_bruteforce() {
        for qs in 0..8 {
            for ql in 0..6 {
                for ks in 0..8 {
                    for kl in 0..6 {
                        assert_eq!(
                            causal_pairs(qs, ql, ks, kl),
                            causal_pairs_naive(qs, ql, ks, kl),
                            "qs={qs} ql={ql} ks={ks} kl={kl}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn full_sequence_is_triangular_number() {
        assert_eq!(causal_pairs(0, 10, 0, 10), 55);
        assert_eq!(causal_pairs_full(10), 55);
        assert_eq!(causal_pairs_full(1), 1);
        assert_eq!(causal_pairs_full(0), 0);
    }

    #[test]
    fn disjoint_future_block_is_empty() {
        // KV strictly after all queries: nothing attends.
        assert_eq!(causal_pairs(0, 4, 4, 4), 0);
        // KV strictly before all queries: dense block.
        assert_eq!(causal_pairs(4, 4, 0, 4), 16);
    }

    #[test]
    fn block_decomposition_is_exact() {
        // Splitting a sequence into chunks must conserve total pairs.
        let s = 64u64;
        let chunk = 8u64;
        let mut total = 0;
        for qc in 0..s / chunk {
            for kc in 0..s / chunk {
                total += causal_pairs(qc * chunk, chunk, kc * chunk, chunk);
            }
        }
        assert_eq!(total, causal_pairs_full(s));
    }

    #[test]
    fn attention_flops_scale_quadratically() {
        let cfg = llama_7b();
        let f1 = attention_seq_flops(&cfg, 1000);
        let f2 = attention_seq_flops(&cfg, 2000);
        let ratio = f2 / f1;
        assert!((ratio - 4.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn linear_flops_scale_linearly() {
        let cfg = llama_7b();
        let f1 = linear_layer_flops(&cfg, 1000);
        let f2 = linear_layer_flops(&cfg, 2000);
        assert!((f2 / f1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn seven_b_linear_flops_match_param_heuristic() {
        // Forward linear FLOPs/token ≈ 2 × (per-layer weight params).
        let cfg = llama_7b();
        let per_layer_params = 4.0 * 4096.0 * 4096.0 + 3.0 * 4096.0 * 11008.0;
        let expected = 2.0 * per_layer_params;
        assert!((linear_flops_per_token(&cfg) - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn moe_uses_topk_experts_not_all() {
        // top-2 of 8 experts: QKVO + 2 expert FFNs + router, not 8 FFNs.
        let cfg = moe_8x550m();
        let moe_flops = linear_flops_per_token(&cfg);
        let h = cfg.hidden as f64;
        let one_expert = 2.0 * 3.0 * h * 5632.0;
        let attn = 2.0 * 4.0 * h * h;
        assert!((moe_flops - (attn + 2.0 * one_expert + 2.0 * h * 8.0)).abs() < 1.0);
    }

    #[test]
    fn dense_block_vs_causal_diagonal() {
        let cfg = llama_7b();
        let dense = attention_dense_block_flops(&cfg, 100, 100);
        let causal = attention_block_flops(&cfg, 0, 100, 0, 100);
        // Causal diagonal block is ~half of dense.
        assert!(causal < dense);
        assert!(causal / dense > 0.5 && causal / dense < 0.52);
    }

    #[test]
    fn layer_flops_combines_both_regimes() {
        let cfg = llama_7b();
        let s = 4096;
        let total = layer_seq_flops(&cfg, s);
        assert!((total - attention_seq_flops(&cfg, s) - linear_layer_flops(&cfg, s)).abs() < 1.0);
        // At 4k, linear still dominates attention for 7B.
        assert!(linear_layer_flops(&cfg, s) > attention_seq_flops(&cfg, s));
        // At 128k, attention dominates.
        let s = 131072;
        assert!(attention_seq_flops(&cfg, s) > linear_layer_flops(&cfg, s));
    }
}

//! GPU kernel performance model.
//!
//! Kernel duration is a fixed launch/scheduling overhead plus FLOPs divided
//! by a peak fraction: `t = overhead + flops / (peak · max_efficiency)`.
//!
//! The *achieved* efficiency this induces,
//! `flops / (peak · t) = max_eff · flops / (flops + peak · overhead · max_eff)`,
//! saturates towards `max_efficiency` for large kernels and collapses for
//! small ones — the computation-inefficiency regime for short sequences that
//! the paper's Fig. 5 builds on — without double-counting the launch cost.

/// A launch-overhead + peak-fraction kernel timing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelModel {
    /// Fixed per-kernel launch + scheduling latency, seconds.
    pub launch_overhead_s: f64,
    /// Fraction of peak FLOP/s reached by asymptotically large kernels.
    pub max_efficiency: f64,
}

impl KernelModel {
    /// Model for FlashAttention-style variable-length attention kernels.
    pub fn attention() -> Self {
        KernelModel {
            launch_overhead_s: 20e-6,
            max_efficiency: 0.5,
        }
    }

    /// Model for dense GEMM-dominated linear modules (higher occupancy).
    pub fn gemm() -> Self {
        KernelModel {
            launch_overhead_s: 10e-6,
            max_efficiency: 0.62,
        }
    }

    /// Duration in seconds of a kernel of `flops` FLOPs on a GPU with
    /// `peak_flops` FLOP/s peak throughput.
    ///
    /// Zero-FLOP kernels cost nothing (they are not launched).
    ///
    /// # Panics
    ///
    /// Panics if `peak_flops` is not strictly positive.
    pub fn kernel_time(&self, flops: f64, peak_flops: f64) -> f64 {
        assert!(peak_flops > 0.0, "peak_flops must be positive");
        if flops <= 0.0 {
            return 0.0;
        }
        self.launch_overhead_s + flops / (peak_flops * self.max_efficiency)
    }

    /// Achieved fraction of peak for a kernel of `flops` FLOPs: the
    /// saturating efficiency curve induced by the launch overhead.
    pub fn achieved_efficiency(&self, flops: f64, peak_flops: f64) -> f64 {
        if flops <= 0.0 {
            return 0.0;
        }
        flops / (peak_flops * self.kernel_time(flops, peak_flops))
    }
}

/// Fixed latency charged per point-to-point transfer launch (NCCL kernel
/// launch + RDMA setup), seconds. Applied by the executor on the sender's
/// communication stream, which also serializes launches per GPU.
pub const COMM_LAUNCH_OVERHEAD_S: f64 = 15e-6;

#[cfg(test)]
mod tests {
    use super::*;

    const PEAK: f64 = 312e12;

    #[test]
    fn achieved_efficiency_saturates_monotonically() {
        let m = KernelModel::attention();
        let mut last = 0.0;
        for exp in 6..18 {
            let e = m.achieved_efficiency(10f64.powi(exp), PEAK);
            assert!(e >= last, "efficiency must be non-decreasing");
            assert!(e <= m.max_efficiency + 1e-12);
            last = e;
        }
        assert!(m.achieved_efficiency(1e15, PEAK) > 0.99 * m.max_efficiency);
    }

    #[test]
    fn small_kernels_are_overhead_bound() {
        let m = KernelModel::attention();
        let tiny = m.kernel_time(1e6, PEAK);
        // 1 MFLOP on a 312 TFLOP/s part is dominated by the 20 µs launch.
        assert!(tiny < 1.1 * m.launch_overhead_s, "got {tiny}");
        assert!(tiny > m.launch_overhead_s);
        // And its achieved efficiency is tiny.
        assert!(m.achieved_efficiency(1e6, PEAK) < 0.01);
    }

    #[test]
    fn large_kernels_track_peak_efficiency() {
        let m = KernelModel::attention();
        let flops = 1e15;
        let t = m.kernel_time(flops, PEAK);
        let ideal = flops / (PEAK * m.max_efficiency);
        assert!((t - ideal) / ideal < 0.01);
    }

    #[test]
    fn zero_flops_costs_nothing() {
        assert_eq!(KernelModel::attention().kernel_time(0.0, 1e12), 0.0);
        assert_eq!(KernelModel::attention().achieved_efficiency(0.0, 1e12), 0.0);
    }

    #[test]
    fn kernel_time_is_monotone_in_flops() {
        let m = KernelModel::gemm();
        let mut last = 0.0;
        for exp in 6..18 {
            let t = m.kernel_time(10f64.powi(exp), 989e12);
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn chunking_a_kernel_costs_extra_overhead() {
        // Splitting one kernel into 8 pays 7 extra launch overheads; the
        // partitioner must weigh this against balance gains.
        let m = KernelModel::attention();
        let whole = m.kernel_time(8e12, PEAK);
        let split: f64 = (0..8).map(|_| m.kernel_time(1e12, PEAK)).sum();
        let extra = split - whole;
        assert!((extra - 7.0 * m.launch_overhead_s).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_peak_panics() {
        KernelModel::gemm().kernel_time(1.0, 0.0);
    }
}

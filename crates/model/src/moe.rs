//! Mixture-of-experts routing imbalance model.
//!
//! The paper observes (§5.1) that for MoE models "flop cannot be accurately
//! estimated prior to routing, which undermines Hybrid DP's flop-based token
//! assignment and often leads to imbalanced expert computation". We model
//! this with a popularity-skewed router: expert loads are drawn from a
//! softmax over Gaussian popularity scores, and the *imbalance factor*
//! (max load / mean load) stretches the critical-path time of MoE linear
//! modules.
//!
//! The sampler is deterministic from a seed (splitmix64), keeping the whole
//! simulation reproducible without external RNG dependencies in this crate.

/// Deterministic splitmix64 stream, sufficient for load sampling.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Standard normal via Box–Muller.
    pub fn next_gaussian(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.next_f64().max(1e-300);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// Samples per-expert token loads for `tokens` tokens routed to
/// `num_experts` experts with `top_k` assignments per token.
///
/// `skew` controls popularity spread: 0.0 yields a perfectly uniform router,
/// ~0.5 resembles a well-regularized router, larger values a collapsed one.
///
/// The returned loads sum to exactly `tokens * top_k`.
///
/// # Panics
///
/// Panics if `num_experts == 0`, `top_k == 0`, or `skew` is not finite (a
/// NaN or infinite skew would poison the softmax weights).
pub fn sample_expert_loads(
    seed: u64,
    num_experts: usize,
    top_k: usize,
    tokens: u64,
    skew: f64,
) -> Vec<u64> {
    assert!(num_experts > 0, "need at least one expert");
    assert!(top_k > 0, "top_k must be positive");
    assert!(skew.is_finite(), "skew must be finite, got {skew}");
    let mut rng = SplitMix64::new(seed);
    // Popularity via softmax of Gaussian scores.
    let scores: Vec<f64> = (0..num_experts)
        .map(|_| rng.next_gaussian() * skew)
        .collect();
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let weights: Vec<f64> = scores.iter().map(|s| (s - max).exp()).collect();
    let total_w: f64 = weights.iter().sum();
    let assignments = tokens * top_k as u64;
    // Largest-remainder rounding keeps the sum exact.
    let mut loads: Vec<u64> = Vec::with_capacity(num_experts);
    let mut fracs: Vec<(usize, f64)> = Vec::with_capacity(num_experts);
    let mut assigned = 0u64;
    for (i, w) in weights.iter().enumerate() {
        let exact = assignments as f64 * w / total_w;
        let floor = exact.floor() as u64;
        loads.push(floor);
        assigned += floor;
        fracs.push((i, exact - floor as f64));
    }
    // total_cmp: a NaN frac (however it might arise) must never panic the
    // planner mid-sort; every float has a total order and the index
    // tie-break keeps the rounding deterministic.
    fracs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut left = assignments - assigned;
    for (i, _) in fracs {
        if left == 0 {
            break;
        }
        loads[i] += 1;
        left -= 1;
    }
    loads
}

/// Imbalance factor of a load vector: `max / mean` (≥ 1 for non-empty loads).
///
/// Returns 1.0 for empty or all-zero loads (nothing to imbalance).
pub fn imbalance_factor(loads: &[u64]) -> f64 {
    if loads.is_empty() {
        return 1.0;
    }
    let sum: u64 = loads.iter().sum();
    if sum == 0 {
        return 1.0;
    }
    let mean = sum as f64 / loads.len() as f64;
    let max = *loads.iter().max().expect("non-empty") as f64;
    max / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_sum_to_assignments() {
        for seed in 0..20 {
            let loads = sample_expert_loads(seed, 8, 2, 4096, 0.5);
            assert_eq!(loads.len(), 8);
            assert_eq!(loads.iter().sum::<u64>(), 4096 * 2);
        }
    }

    #[test]
    fn zero_skew_is_near_uniform() {
        let loads = sample_expert_loads(7, 8, 2, 80000, 0.0);
        let f = imbalance_factor(&loads);
        assert!((f - 1.0).abs() < 1e-3, "factor {f}");
    }

    #[test]
    fn higher_skew_means_higher_imbalance() {
        let mild: f64 = (0..10)
            .map(|s| imbalance_factor(&sample_expert_loads(s, 8, 2, 100000, 0.3)))
            .sum::<f64>()
            / 10.0;
        let harsh: f64 = (0..10)
            .map(|s| imbalance_factor(&sample_expert_loads(s, 8, 2, 100000, 1.5)))
            .sum::<f64>()
            / 10.0;
        assert!(harsh > mild, "harsh {harsh} vs mild {mild}");
        assert!(mild >= 1.0);
    }

    #[test]
    fn sampler_is_deterministic() {
        let a = sample_expert_loads(42, 8, 2, 12345, 0.7);
        let b = sample_expert_loads(42, 8, 2, 12345, 0.7);
        assert_eq!(a, b);
        let c = sample_expert_loads(43, 8, 2, 12345, 0.7);
        assert_ne!(a, c);
    }

    #[test]
    fn imbalance_factor_edge_cases() {
        assert_eq!(imbalance_factor(&[]), 1.0);
        assert_eq!(imbalance_factor(&[0, 0]), 1.0);
        assert_eq!(imbalance_factor(&[4, 4, 4, 4]), 1.0);
        assert!((imbalance_factor(&[8, 0, 0, 0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn gaussian_has_sane_moments() {
        let mut rng = SplitMix64::new(9);
        let n = 20000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let g = rng.next_gaussian();
            sum += g;
            sq += g * g;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    #[should_panic(expected = "at least one expert")]
    fn zero_experts_panics() {
        sample_expert_loads(0, 0, 2, 10, 0.5);
    }

    #[test]
    #[should_panic(expected = "skew must be finite")]
    fn nan_skew_is_rejected_upfront() {
        // Regression: a NaN skew used to reach the largest-remainder sort
        // as NaN fracs and panic inside `partial_cmp(..).unwrap()`.
        sample_expert_loads(1, 8, 2, 4096, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "skew must be finite")]
    fn infinite_skew_is_rejected_upfront() {
        sample_expert_loads(1, 8, 2, 4096, f64::INFINITY);
    }
}

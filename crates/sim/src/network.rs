//! Fluid-flow network model with max-min fair bandwidth sharing.
//!
//! Transfers are modelled as *flows*: a byte count draining over a path of
//! capacitated ports. Whenever the set of active flows changes, the network
//! recomputes a progressive-filling max-min fair rate allocation: all flows'
//! rates rise together until some port saturates; flows through saturated
//! ports freeze at the current level; the rest keep rising. This captures the
//! contention effects Zeppelin exploits — NICs shared between GPU pairs,
//! asymmetric ring traffic, multi-NIC routing — without per-packet detail.
//!
//! The network is advanced lazily: callers move it to the current simulation
//! time, mutate the flow set, and ask for the next completion instant.
//!
//! # Incremental allocation
//!
//! The allocator is *incremental*: a port→flow reverse index identifies the
//! connected component of flows that transitively share ports with a mutated
//! flow, and progressive filling runs over that component only. This is exact,
//! not approximate — the max-min fair fixed point is unique, and flows in
//! disjoint components share no port, so their saturation levels are computed
//! from component-local state in both the global and the component-restricted
//! filling. Every floating-point expression matches the from-scratch
//! reference ([`crate::reference`]) operation for operation, so rates come
//! out bit-for-bit equal (the one theoretical exception is a cross-component
//! *near*-tie inside the 1e-12 freeze tolerance, which would require two
//! independently computed levels to differ by less than one part in 10^12
//! without being equal).
//!
//! Callers that mutate several flows at one instant should wrap the mutations
//! in [`FlowNetwork::begin_update`] / [`FlowNetwork::commit_update`] so the
//! network pays one component recomputation per event instant instead of one
//! per mutation. Batching is also exact: the allocation depends only on the
//! final flow set, never on rates left over from intermediate states.
//!
//! Completion queries are served from a lazily invalidated min-heap of
//! projected completion instants instead of a full scan; see
//! [`FlowNetwork::next_completion`].

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::partition::{fill_component, FillOutput, FillScratch, Partitioner};
use crate::pool;
use crate::time::{SimDuration, SimTime};
use crate::topology::Port;

/// Bytes below which a flow is considered drained (absorbs f64 rounding).
const EPS_BYTES: f64 = 1e-6;

/// Tolerance (in nanoseconds) when deciding whether a heap entry's projected
/// completion could still beat the best freshly evaluated candidate.
///
/// Heap keys can be stale by the drift between a projection made at an older
/// clock and one made now: the real-arithmetic value is identical (remaining
/// shrinks exactly as the clock advances), so the drift is a few ulps of f64
/// rounding plus at most 1 ns of ceil-boundary movement. 16 ns is orders of
/// magnitude above any reachable drift; entries within the slack are simply
/// re-evaluated exactly, so a generous slack costs a little work, never
/// correctness.
const SLACK_NS: u64 = 16;

/// Default minimum total component flows before a rebalance fans out to the
/// worker pool: below this the per-commit thread-scope setup costs more
/// than the filling it parallelizes.
const DEFAULT_PAR_THRESHOLD: usize = 64;

/// Handle to an active flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey(usize);

impl FlowKey {
    /// The arena slot behind this key (for dense side tables; slots are
    /// recycled, so pair with liveness tracking keyed on the flow lifecycle).
    pub(crate) fn slot(self) -> usize {
        self.0
    }
}

/// One slot of the flow arena: a live flow, or a vacant slot awaiting
/// recycling (the `path` buffer is kept so restarts allocate nothing).
///
/// Public (opaquely) because the partitioner and the worker pool read flow
/// paths directly from the arena; all mutation stays inside this module.
#[derive(Debug, Default)]
pub struct FlowSlot {
    /// Interned port indices the flow traverses (deduplicated).
    path: Vec<usize>,
    /// Bytes still to move.
    remaining: f64,
    /// Current max-min fair rate in bytes/s.
    rate: f64,
    /// Whether the flow already sits in the drained-ready list.
    drained_listed: bool,
    /// Whether the slot currently holds a flow.
    live: bool,
}

impl FlowSlot {
    /// Interned port indices of the flow (empty path ⇒ vacant slot).
    pub fn path(&self) -> &[usize] {
        &self.path
    }

    /// Whether the slot currently holds a flow.
    pub fn is_live(&self) -> bool {
        self.live
    }
}

/// Allocator and pool counters, for perf accounting and bench exhibits.
///
/// Everything here is observational: counters never feed back into rates or
/// completion instants. `worker_busy_ns` is wall-clock and therefore
/// nondeterministic; all other fields are deterministic for a given run.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// Rebalances that did work (dirty ports at a commit barrier).
    pub rebalances: u64,
    /// Connected components filled across all rebalances.
    pub components: u64,
    /// Flow re-ratings summed over all fills.
    pub filled_flows: u64,
    /// Rebalances dispatched to the worker pool.
    pub parallel_rebalances: u64,
    /// Per-worker wall-clock nanoseconds spent inside the fill kernel.
    pub worker_busy_ns: Vec<u64>,
}

/// The set of concurrently active flows over a shared port inventory.
#[derive(Debug)]
pub struct FlowNetwork {
    port_caps: Vec<f64>,
    port_index: HashMap<Port, usize>,
    /// Reverse index: flows currently crossing each port.
    port_flows: Vec<Vec<usize>>,
    /// Maintained sum of rates through each port (exact per rebalance).
    port_rate_sum: Vec<f64>,
    /// Flow arena; slots are recycled LIFO via `free_keys`.
    flows: Vec<FlowSlot>,
    /// Per-slot generation; bumped whenever the slot's heap keys go stale.
    slot_gen: Vec<u64>,
    free_keys: Vec<usize>,
    clock: SimTime,
    active: usize,
    /// Whether a `begin_update` batch is open.
    batching: bool,
    /// Ports touched by mutations since the last rebalance.
    dirty_ports: Vec<usize>,
    /// Min-heap of `(projected completion ns, slot, generation)` entries
    /// computed at the *current* clock — their keys are exact.
    heap_fresh: BinaryHeap<Reverse<(u64, usize, u64)>>,
    /// Entries surviving from before the last clock advance; their keys can
    /// drift from a fresh projection by f64 rounding, bounded by [`SLACK_NS`].
    heap_stale: BinaryHeap<Reverse<(u64, usize, u64)>>,
    /// Slots whose flows have drained but are not yet finished.
    drained_ready: Vec<usize>,
    /// Connected-component index rebuilt at every rebalance.
    partitioner: Partitioner,
    /// Fill workspace for the sequential path.
    fill_scratch: FillScratch,
    /// Reused output buffer for the sequential path.
    fill_out: FillOutput,
    /// Persistent per-worker fill workspaces for the pool path.
    worker_scratch: Vec<FillScratch>,
    /// Recycled scratch buffer for interning start-flow paths.
    tmp_path: Vec<usize>,
    /// Worker threads per parallel rebalance (1 ⇒ always sequential).
    workers: usize,
    /// Minimum total component flows before the pool is used.
    par_threshold: usize,
    stats: NetStats,
}

impl Default for FlowNetwork {
    fn default() -> Self {
        Self::new()
    }
}

impl FlowNetwork {
    /// Creates an empty network; ports are interned on first use.
    ///
    /// The worker count defaults to [`crate::pool::workers_from_env`]
    /// (`ZEPPELIN_SIM_WORKERS`, else sequential); override it with
    /// [`FlowNetwork::set_workers`].
    pub fn new() -> Self {
        FlowNetwork {
            port_caps: Vec::new(),
            port_index: HashMap::new(),
            port_flows: Vec::new(),
            port_rate_sum: Vec::new(),
            flows: Vec::new(),
            slot_gen: Vec::new(),
            free_keys: Vec::new(),
            clock: SimTime::ZERO,
            active: 0,
            batching: false,
            dirty_ports: Vec::new(),
            heap_fresh: BinaryHeap::new(),
            heap_stale: BinaryHeap::new(),
            drained_ready: Vec::new(),
            partitioner: Partitioner::new(),
            fill_scratch: FillScratch::default(),
            fill_out: FillOutput::default(),
            worker_scratch: Vec::new(),
            tmp_path: Vec::new(),
            workers: crate::pool::workers_from_env(),
            par_threshold: DEFAULT_PAR_THRESHOLD,
            stats: NetStats::default(),
        }
    }

    /// Sets the worker-pool width for rebalances (clamped to ≥ 1; 1 means
    /// fully sequential). Any width produces bit-identical allocations —
    /// this is purely a wall-clock knob.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Worker-pool width currently in effect.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Sets the minimum total component flows a rebalance must touch before
    /// it fans out to the pool (test/bench knob; the default amortizes the
    /// per-commit thread-scope setup).
    pub fn set_parallel_threshold(&mut self, flows: usize) {
        self.par_threshold = flows;
    }

    /// Allocator and pool counters accumulated since construction.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Current internal clock (latest `advance_to` instant).
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Number of currently active flows.
    pub fn active_flows(&self) -> usize {
        self.active
    }

    fn intern(&mut self, port: Port, capacity: f64) -> usize {
        if let Some(&i) = self.port_index.get(&port) {
            return i;
        }
        let i = self.port_caps.len();
        self.port_caps.push(capacity);
        self.port_flows.push(Vec::new());
        self.port_rate_sum.push(0.0);
        self.port_index.insert(port, i);
        i
    }

    /// Opens a batch: subsequent flow mutations accumulate without
    /// rebalancing until [`FlowNetwork::commit_update`].
    ///
    /// Batching is exact — the max-min allocation depends only on the final
    /// flow set — and saves one recomputation per mutation when several flows
    /// start or finish at the same instant. The clock must not be advanced
    /// and completions must not be queried while a batch is open.
    ///
    /// # Panics
    ///
    /// Panics if a batch is already open.
    pub fn begin_update(&mut self) {
        assert!(!self.batching, "begin_update while a batch is already open");
        self.batching = true;
    }

    /// Closes the batch opened by [`FlowNetwork::begin_update`] and
    /// rebalances once for all accumulated mutations.
    ///
    /// # Panics
    ///
    /// Panics if no batch is open.
    pub fn commit_update(&mut self) {
        assert!(self.batching, "commit_update without begin_update");
        self.batching = false;
        self.rebalance();
    }

    fn after_mutation(&mut self) {
        if !self.batching {
            self.rebalance();
        }
    }

    /// Updates (or interns) the capacity of `port`, re-rating every flow in
    /// its connected component.
    ///
    /// This is how time-varying infrastructure (NIC degradation, link flaps)
    /// enters the allocator: the port is marked dirty and the next rebalance
    /// floods its component exactly as it does for a flow start or finish.
    /// Batchable inside [`FlowNetwork::begin_update`] /
    /// [`FlowNetwork::commit_update`] like any other mutation. Callers should
    /// [`FlowNetwork::advance_to`] the change instant first so bytes already
    /// moved were drained at the old rates.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity` is finite and positive; a dead link is
    /// modelled as a tiny residual capacity, never zero, so projected
    /// completion instants stay finite.
    pub fn set_port_capacity(&mut self, port: Port, capacity: f64) {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "port {port:?} capacity must be finite and positive, got {capacity}"
        );
        let i = self.intern(port, capacity);
        self.port_caps[i] = capacity;
        self.dirty_ports.push(i);
        self.after_mutation();
    }

    /// Starts a flow of `bytes` over `path` at the current clock.
    ///
    /// `capacity_of` supplies the bandwidth of each port the first time it is
    /// seen (ports are identified by value, so capacities must be stable).
    /// Duplicate ports within one path are collapsed: a flow consumes a
    /// port's bandwidth once regardless of how the path was assembled.
    ///
    /// # Panics
    ///
    /// Panics if `path` is empty or `bytes` is not finite and non-negative;
    /// both indicate planner bugs upstream.
    pub fn start_flow(
        &mut self,
        bytes: f64,
        path: &[Port],
        mut capacity_of: impl FnMut(Port) -> f64,
    ) -> FlowKey {
        assert!(!path.is_empty(), "flow path must be non-empty");
        assert!(
            bytes.is_finite() && bytes >= 0.0,
            "flow size must be finite and non-negative, got {bytes}"
        );
        let mut interned = std::mem::take(&mut self.tmp_path);
        interned.clear();
        for &p in path {
            let cap = capacity_of(p);
            assert!(cap > 0.0, "port {p:?} must have positive capacity");
            interned.push(self.intern(p, cap));
        }
        interned.sort_unstable();
        interned.dedup();
        self.insert_flow(bytes, interned)
    }

    /// Like [`FlowNetwork::start_flow`] for a path already free of duplicate
    /// ports, skipping the dedup pass. The engine dedups each transfer path
    /// once for byte accounting and hands the result straight here.
    ///
    /// # Panics
    ///
    /// Panics like [`FlowNetwork::start_flow`]; additionally, duplicate ports
    /// in `path` are a caller bug (checked in debug builds).
    pub fn start_flow_deduped(
        &mut self,
        bytes: f64,
        path: &[Port],
        mut capacity_of: impl FnMut(Port) -> f64,
    ) -> FlowKey {
        assert!(!path.is_empty(), "flow path must be non-empty");
        assert!(
            bytes.is_finite() && bytes >= 0.0,
            "flow size must be finite and non-negative, got {bytes}"
        );
        let mut interned = std::mem::take(&mut self.tmp_path);
        interned.clear();
        for &p in path {
            let cap = capacity_of(p);
            assert!(cap > 0.0, "port {p:?} must have positive capacity");
            interned.push(self.intern(p, cap));
        }
        interned.sort_unstable();
        debug_assert!(
            interned.windows(2).all(|w| w[0] != w[1]),
            "start_flow_deduped requires a duplicate-free path"
        );
        self.insert_flow(bytes, interned)
    }

    /// Installs an interned path into a (possibly recycled) arena slot. The
    /// slot's previous path buffer is swapped back into `tmp_path`, so the
    /// steady state of churn — start, drain, finish, start — allocates
    /// nothing: path buffers rotate between the arena and the scratch slot.
    fn insert_flow(&mut self, bytes: f64, mut interned: Vec<usize>) -> FlowKey {
        let drained = bytes <= EPS_BYTES;
        let key = match self.free_keys.pop() {
            Some(k) => k,
            None => {
                self.flows.push(FlowSlot::default());
                self.slot_gen.push(0);
                self.flows.len() - 1
            }
        };
        let slot = &mut self.flows[key];
        debug_assert!(!slot.live, "recycled slot still live");
        std::mem::swap(&mut slot.path, &mut interned);
        self.tmp_path = interned;
        slot.remaining = bytes;
        slot.rate = 0.0;
        slot.drained_listed = drained;
        slot.live = true;
        self.slot_gen[key] += 1;
        for i in 0..self.flows[key].path.len() {
            let p = self.flows[key].path[i];
            self.port_flows[p].push(key);
            self.dirty_ports.push(p);
        }
        if drained {
            self.drained_ready.push(key);
        }
        self.active += 1;
        self.after_mutation();
        FlowKey(key)
    }

    /// Advances the fluid model to `now`, draining all flows at their rates.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the internal clock, or if a batch is open
    /// (rates are stale mid-batch, so draining against them would be wrong).
    pub fn advance_to(&mut self, now: SimTime) {
        assert!(!self.batching, "advance_to during an open batch");
        let dt = now.since(self.clock).as_secs_f64();
        if dt > 0.0 {
            // Projections made before this instant are no longer exact:
            // demote them to the slack-checked heap.
            self.heap_stale.append(&mut self.heap_fresh);
            for (k, f) in self.flows.iter_mut().enumerate() {
                if f.live {
                    f.remaining = (f.remaining - f.rate * dt).max(0.0);
                    if !f.drained_listed && f.remaining <= EPS_BYTES {
                        f.drained_listed = true;
                        self.drained_ready.push(k);
                    }
                }
            }
        }
        self.clock = now;
    }

    /// Keys of flows that have fully drained as of the current clock.
    ///
    /// Allocates a fresh `Vec`; hot paths should prefer
    /// [`FlowNetwork::collect_drained`].
    pub fn drained(&self) -> Vec<FlowKey> {
        self.flows
            .iter()
            .enumerate()
            .filter_map(|(k, f)| (f.live && f.remaining <= EPS_BYTES).then_some(FlowKey(k)))
            .collect()
    }

    /// Appends the keys of drained-but-unfinished flows to `out` in
    /// ascending key order, without scanning the flow table or allocating
    /// (beyond `out`'s own growth).
    pub fn collect_drained(&mut self, out: &mut Vec<FlowKey>) {
        self.drained_ready.sort_unstable();
        out.extend(self.drained_ready.iter().map(|&k| FlowKey(k)));
    }

    /// Removes a flow (normally one reported by [`FlowNetwork::drained`] or
    /// [`FlowNetwork::collect_drained`]) and rebalances the remaining flows.
    ///
    /// # Panics
    ///
    /// Panics if the key is stale.
    pub fn finish_flow(&mut self, key: FlowKey) {
        assert!(self.flows[key.0].live, "stale flow key");
        debug_assert!(
            self.flows[key.0].remaining <= EPS_BYTES,
            "finishing a flow with {} bytes left",
            self.flows[key.0].remaining
        );
        // The path buffer stays in the vacated slot for the next occupant;
        // take it briefly so the reverse-index cleanup can borrow freely.
        let path = std::mem::take(&mut self.flows[key.0].path);
        for &p in &path {
            let on_port = &mut self.port_flows[p];
            let pos = on_port
                .iter()
                .position(|&k| k == key.0)
                .expect("flow indexed on its ports");
            on_port.swap_remove(pos);
            self.dirty_ports.push(p);
        }
        let slot = &mut self.flows[key.0];
        slot.path = path;
        if slot.drained_listed {
            if let Some(pos) = self.drained_ready.iter().position(|&k| k == key.0) {
                self.drained_ready.swap_remove(pos);
            }
        }
        slot.live = false;
        slot.rate = 0.0;
        self.slot_gen[key.0] += 1; // Invalidate any heap entries for the slot.
        self.free_keys.push(key.0);
        self.active -= 1;
        self.after_mutation();
    }

    /// Earliest instant at which some active flow drains, if any are active.
    ///
    /// The instant is rounded up to nanosecond granularity; callers should
    /// `advance_to` it and then collect [`FlowNetwork::drained`] flows.
    ///
    /// Served from two min-heaps of projected completion instants. Keys
    /// pushed since the last clock advance are *exact* (identical to what a
    /// full scan would compute right now, because nothing moved the
    /// remaining-bytes values they were derived from); keys surviving from
    /// older clocks can drift by f64 rounding, bounded by [`SLACK_NS`].
    /// Dead entries — the flow finished or was re-projected (detected by a
    /// per-slot generation) — are dropped lazily. Any old entry that could
    /// still beat the best exact key is re-projected with the exact
    /// full-scan expression and re-homed, so the returned instant is
    /// identical to what a scan over all flows would produce.
    pub fn next_completion(&mut self) -> Option<SimTime> {
        debug_assert!(!self.batching, "next_completion during an open batch");
        if self.active == 0 {
            return None;
        }
        if !self.drained_ready.is_empty() {
            // A drained flow completes "now" (the scan's secs = 0.0 case).
            return Some(self.clock);
        }
        loop {
            // Current best exact candidate: the first live fresh entry.
            let best = loop {
                match self.heap_fresh.peek() {
                    Some(&Reverse((ns, k, gen))) => {
                        if self.slot_gen[k] == gen {
                            break Some(ns);
                        }
                        self.heap_fresh.pop();
                    }
                    None => break None,
                }
            };
            // Examine every surviving old entry that could still beat it.
            let Some(&Reverse((key_ns, k, gen))) = self.heap_stale.peek() else {
                return best.map(SimTime::from_nanos);
            };
            if let Some(b) = best {
                if key_ns > b.saturating_add(SLACK_NS) {
                    // Its exact value is ≥ key - SLACK_NS > best: keep it for
                    // a later call; nothing deeper can beat best either.
                    return Some(SimTime::from_nanos(b));
                }
            }
            self.heap_stale.pop();
            if self.slot_gen[k] != gen {
                continue; // Dead: finished or already re-projected.
            }
            let f = &self.flows[k];
            debug_assert!(f.live, "live generation points at a vacant slot");
            debug_assert!(f.remaining > EPS_BYTES, "drained flow missing from list");
            if f.rate <= 0.0 {
                continue; // Starved: re-projected at the next rebalance.
            }
            let t = self.clock + SimDuration::from_secs_f64(f.remaining / f.rate);
            self.slot_gen[k] += 1;
            self.heap_fresh
                .push(Reverse((t.as_nanos(), k, self.slot_gen[k])));
        }
    }

    /// Current rate of a flow in bytes/s (for tests and introspection).
    pub fn rate_of(&self, key: FlowKey) -> f64 {
        let f = &self.flows[key.0];
        assert!(f.live, "stale flow key");
        f.rate
    }

    /// Remaining bytes of a flow (for tests and introspection).
    pub fn remaining_of(&self, key: FlowKey) -> f64 {
        let f = &self.flows[key.0];
        assert!(f.live, "stale flow key");
        f.remaining
    }

    /// Sum of current rates through `port`, in bytes/s.
    ///
    /// O(1): read from a per-port sum maintained by the allocator (this backs
    /// the per-NIC utilization accounting behind the paper's Fig. 2).
    pub fn port_usage(&self, port: Port) -> f64 {
        let Some(&idx) = self.port_index.get(&port) else {
            return 0.0;
        };
        self.port_rate_sum[idx]
    }

    /// Recomputes the max-min fair allocation for every connected component
    /// reachable from the ports dirtied since the last rebalance.
    ///
    /// The [`Partitioner`] splits the dirty region into true components;
    /// each is filled independently by [`fill_component`] — sequentially,
    /// or on the scoped worker pool when the commit is wide enough
    /// (`workers > 1`, ≥ 2 components, and at least `par_threshold` flows
    /// in play). Results are applied in ascending component id either way
    /// (the commit-barrier ordering rule), so the pool is invisible to the
    /// simulation: rates, port sums, and heap contents come out
    /// bit-identical at any worker count. Flows outside the dirty region
    /// share no port with it (directly or transitively), so their rates are
    /// already at the fixed point and stay untouched.
    fn rebalance(&mut self) {
        if self.dirty_ports.is_empty() {
            return;
        }
        self.partitioner
            .partition(&self.dirty_ports, &self.port_flows, &self.flows);
        self.dirty_ports.clear();
        let ncomps = self.partitioner.components();
        self.stats.rebalances += 1;
        self.stats.components += ncomps as u64;
        self.stats.filled_flows += self.partitioner.flow_count() as u64;
        let use_pool =
            self.workers > 1 && ncomps >= 2 && self.partitioner.flow_count() >= self.par_threshold;
        if use_pool {
            self.stats.parallel_rebalances += 1;
            if self.worker_scratch.len() < self.workers {
                self.worker_scratch
                    .resize_with(self.workers, FillScratch::default);
            }
            if self.stats.worker_busy_ns.len() < self.workers {
                self.stats.worker_busy_ns.resize(self.workers, 0);
            }
            let mut results = pool::fill_parallel(
                self.workers,
                &self.partitioner,
                &self.port_caps,
                &self.port_flows,
                &self.flows,
                &mut self.worker_scratch,
                &mut self.stats.worker_busy_ns,
            );
            // Commit barrier: apply in ascending component id, regardless
            // of which worker finished which component first.
            results.sort_unstable_by_key(|&(c, _)| c);
            for (c, out) in &results {
                self.apply_fill(*c, out);
            }
        } else {
            for c in 0..ncomps {
                let mut out = std::mem::take(&mut self.fill_out);
                fill_component(
                    &self.port_caps,
                    &self.port_flows,
                    &self.flows,
                    self.partitioner.component(c),
                    &mut self.fill_scratch,
                    &mut out,
                );
                self.apply_fill(c, &out);
                self.fill_out = out;
            }
        }
        // Shed dead entries if churn let the heaps outgrow the flow set.
        if self.heap_fresh.len() + self.heap_stale.len() > 64 + 4 * self.active {
            self.rebuild_heap();
        }
    }

    /// Writes one component's fill results into the live tables and
    /// re-projects its completion instants.
    fn apply_fill(&mut self, c: usize, out: &FillOutput) {
        let comp = self.partitioner.component(c);
        for (i, &k) in comp.flows.iter().enumerate() {
            self.flows[k].rate = out.rates[i];
        }
        // Refresh the maintained per-port rate sums for the component.
        for (j, &p) in comp.ports.iter().enumerate() {
            self.port_rate_sum[p] = out.port_sums[j];
        }
        // Re-project completion instants for the component's flows.
        for &k in comp.flows {
            self.slot_gen[k] += 1;
            let f = &self.flows[k];
            if f.remaining <= EPS_BYTES {
                continue; // Listed in drained_ready; completes "now".
            }
            if f.rate > 0.0 {
                let t = self.clock + SimDuration::from_secs_f64(f.remaining / f.rate);
                self.heap_fresh
                    .push(Reverse((t.as_nanos(), k, self.slot_gen[k])));
            }
            // rate == 0: starved; re-projected once a rebalance feeds it.
        }
    }

    /// Drops every dead or drifted heap entry by re-projecting all live
    /// flows at the current clock (projections at the current clock are
    /// exact, so this never changes what
    /// [`FlowNetwork::next_completion`] returns).
    fn rebuild_heap(&mut self) {
        self.heap_fresh.clear();
        self.heap_stale.clear();
        for k in 0..self.flows.len() {
            let f = &self.flows[k];
            if !f.live || f.remaining <= EPS_BYTES || f.rate <= 0.0 {
                continue;
            }
            let t = self.clock + SimDuration::from_secs_f64(f.remaining / f.rate);
            self.slot_gen[k] += 1;
            self.heap_fresh
                .push(Reverse((t.as_nanos(), k, self.slot_gen[k])));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ReferenceNet;
    use crate::topology::{cluster_a, tiny_cluster};

    fn cap_fn(c: &crate::topology::ClusterSpec) -> impl FnMut(Port) -> f64 + '_ {
        move |p| c.port_capacity(p)
    }

    #[test]
    fn single_flow_gets_bottleneck_bandwidth() {
        let c = cluster_a(2);
        let mut net = FlowNetwork::new();
        // Cross-node: bottleneck is the 25 GB/s NIC, not the 32 GB/s PCIe.
        let k = net.start_flow(25e9, &c.direct_path(0, 8), cap_fn(&c));
        assert!((net.rate_of(k) - 25e9).abs() / 25e9 < 1e-9);
        let done = net.next_completion().unwrap();
        assert!((done.as_secs_f64() - 1.0).abs() < 1e-6);
        net.advance_to(done);
        assert_eq!(net.drained(), vec![k]);
        net.finish_flow(k);
        assert_eq!(net.active_flows(), 0);
    }

    #[test]
    fn two_flows_share_a_nic_fairly() {
        let c = cluster_a(2);
        let mut net = FlowNetwork::new();
        // GPUs 0 and 1 share NIC 0 on Cluster A.
        let k0 = net.start_flow(1e9, &c.direct_path(0, 8), cap_fn(&c));
        let k1 = net.start_flow(1e9, &c.direct_path(1, 9), cap_fn(&c));
        assert!((net.rate_of(k0) - 12.5e9).abs() / 12.5e9 < 1e-9);
        assert!((net.rate_of(k1) - 12.5e9).abs() / 12.5e9 < 1e-9);
    }

    #[test]
    fn distinct_nics_do_not_contend() {
        let c = cluster_a(2);
        let mut net = FlowNetwork::new();
        let k0 = net.start_flow(1e9, &c.direct_path(0, 8), cap_fn(&c));
        let k2 = net.start_flow(1e9, &c.direct_path(2, 10), cap_fn(&c));
        assert!((net.rate_of(k0) - 25e9).abs() / 25e9 < 1e-9);
        assert!((net.rate_of(k2) - 25e9).abs() / 25e9 < 1e-9);
    }

    #[test]
    fn finishing_a_flow_releases_bandwidth() {
        let c = cluster_a(2);
        let mut net = FlowNetwork::new();
        let k0 = net.start_flow(12.5e9, &c.direct_path(0, 8), cap_fn(&c));
        let k1 = net.start_flow(50e9, &c.direct_path(1, 9), cap_fn(&c));
        // Both run at 12.5 GB/s; k0 finishes at t=1s.
        let t1 = net.next_completion().unwrap();
        assert!((t1.as_secs_f64() - 1.0).abs() < 1e-6);
        net.advance_to(t1);
        assert_eq!(net.drained(), vec![k0]);
        net.finish_flow(k0);
        // k1 has 37.5 GB left and now runs at the full 25 GB/s: +1.5s.
        assert!((net.rate_of(k1) - 25e9).abs() / 25e9 < 1e-6);
        let t2 = net.next_completion().unwrap();
        assert!((t2.as_secs_f64() - 2.5).abs() < 1e-5);
    }

    #[test]
    fn max_min_not_just_equal_split() {
        // Three flows: two share port A (cap 10), one uses only port B
        // (cap 30) which the first also crosses. Max-min: the A-flows get 5
        // each; the B-only flow gets the residual 25, not 10.
        let mut net = FlowNetwork::new();
        let cap = |p: Port| match p {
            Port::NicTx(0) => 10.0,
            Port::NicTx(1) => 30.0,
            _ => unreachable!(),
        };
        let a1 = net.start_flow(1.0, &[Port::NicTx(0), Port::NicTx(1)], cap);
        let a2 = net.start_flow(1.0, &[Port::NicTx(0)], cap);
        let b = net.start_flow(1.0, &[Port::NicTx(1)], cap);
        assert!((net.rate_of(a1) - 5.0).abs() < 1e-9);
        assert!((net.rate_of(a2) - 5.0).abs() < 1e-9);
        assert!((net.rate_of(b) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn port_usage_never_exceeds_capacity() {
        let c = tiny_cluster(2, 4);
        let mut net = FlowNetwork::new();
        let mut keys = Vec::new();
        for src in 0..4 {
            for dst in 4..8 {
                keys.push(net.start_flow(1e9, &c.direct_path(src, dst), cap_fn(&c)));
            }
        }
        for local in 0..4 {
            let tx = Port::NicTx(local);
            assert!(net.port_usage(tx) <= c.port_capacity(tx) * (1.0 + 1e-9));
        }
        // All 16 flows still active.
        assert_eq!(net.active_flows(), 16);
        for k in &keys {
            assert!(net.rate_of(*k) > 0.0);
        }
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let c = tiny_cluster(1, 2);
        let mut net = FlowNetwork::new();
        let k = net.start_flow(0.0, &c.direct_path(0, 1), cap_fn(&c));
        assert_eq!(net.next_completion(), Some(SimTime::ZERO));
        assert_eq!(net.drained(), vec![k]);
    }

    #[test]
    fn duplicate_ports_in_path_are_collapsed() {
        let mut net = FlowNetwork::new();
        let k = net.start_flow(1.0, &[Port::NicTx(0), Port::NicTx(0)], |_| 10.0);
        // Counted once: full 10, not 5.
        assert!((net.rate_of(k) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn advance_is_lazy_and_monotonic() {
        let c = tiny_cluster(1, 2);
        let mut net = FlowNetwork::new();
        let k = net.start_flow(200e9, &c.direct_path(0, 1), cap_fn(&c));
        net.advance_to(SimTime::from_nanos(500_000_000));
        // 200 GB/s nvlink for 0.5 s = 100 GB moved.
        assert!((net.remaining_of(k) - 100e9).abs() / 100e9 < 1e-6);
        // Advancing to the same instant is a no-op.
        net.advance_to(SimTime::from_nanos(500_000_000));
        assert!((net.remaining_of(k) - 100e9).abs() / 100e9 < 1e-6);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn advance_backwards_panics() {
        let mut net = FlowNetwork::new();
        net.advance_to(SimTime::from_nanos(10));
        net.advance_to(SimTime::from_nanos(5));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_path_panics() {
        FlowNetwork::new().start_flow(1.0, &[], |_| 1.0);
    }

    #[test]
    fn keys_are_recycled_without_aliasing() {
        let c = tiny_cluster(1, 2);
        let mut net = FlowNetwork::new();
        let k = net.start_flow(0.0, &c.direct_path(0, 1), cap_fn(&c));
        net.finish_flow(k);
        let k2 = net.start_flow(5.0, &c.direct_path(1, 0), cap_fn(&c));
        assert_eq!(k, k2, "slot should be recycled");
        assert!(net.remaining_of(k2) > 0.0);
    }

    #[test]
    fn batched_updates_match_individual_bitwise() {
        let c = cluster_a(2);
        let paths: Vec<Vec<Port>> = (0..6).map(|i| c.direct_path(i, 8 + i % 8)).collect();
        let mut one_by_one = FlowNetwork::new();
        let keys_a: Vec<FlowKey> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| one_by_one.start_flow(1e9 + i as f64, p, cap_fn(&c)))
            .collect();
        let mut batched = FlowNetwork::new();
        batched.begin_update();
        let keys_b: Vec<FlowKey> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| batched.start_flow(1e9 + i as f64, p, cap_fn(&c)))
            .collect();
        batched.commit_update();
        for (ka, kb) in keys_a.iter().zip(&keys_b) {
            assert_eq!(
                one_by_one.rate_of(*ka).to_bits(),
                batched.rate_of(*kb).to_bits()
            );
        }
        assert_eq!(one_by_one.next_completion(), batched.next_completion());
    }

    #[test]
    #[should_panic(expected = "batch is already open")]
    fn nested_batches_panic() {
        let mut net = FlowNetwork::new();
        net.begin_update();
        net.begin_update();
    }

    #[test]
    fn deduped_start_matches_plain_start() {
        let c = cluster_a(2);
        let mut plain = FlowNetwork::new();
        let mut deduped = FlowNetwork::new();
        let mut path = c.direct_path(0, 8);
        let ka = plain.start_flow(3e9, &path, cap_fn(&c));
        path.sort_unstable();
        path.dedup();
        let kb = deduped.start_flow_deduped(3e9, &path, cap_fn(&c));
        assert_eq!(plain.rate_of(ka).to_bits(), deduped.rate_of(kb).to_bits());
        assert_eq!(plain.next_completion(), deduped.next_completion());
    }

    #[test]
    fn collect_drained_matches_scan() {
        let c = tiny_cluster(2, 2);
        let mut net = FlowNetwork::new();
        let _slow = net.start_flow(100e9, &c.direct_path(0, 2), cap_fn(&c));
        let fast = net.start_flow(1e9, &c.direct_path(1, 3), cap_fn(&c));
        let t = net.next_completion().unwrap();
        net.advance_to(t);
        let mut collected = Vec::new();
        net.collect_drained(&mut collected);
        assert_eq!(collected, net.drained());
        assert_eq!(collected, vec![fast]);
    }

    #[test]
    fn capacity_change_rerates_inflight_flows() {
        let c = cluster_a(2);
        let mut net = FlowNetwork::new();
        // 50 GB over the 25 GB/s NIC: 2 s nominal.
        let k = net.start_flow(50e9, &c.direct_path(0, 8), cap_fn(&c));
        assert!((net.rate_of(k) - 25e9).abs() / 25e9 < 1e-9);
        // At t=1s the NIC degrades to 20% capacity.
        let t1 = SimTime::from_nanos(1_000_000_000);
        net.advance_to(t1);
        net.begin_update();
        net.set_port_capacity(Port::NicTx(0), 5e9);
        net.set_port_capacity(Port::NicRx(4), 5e9);
        net.commit_update();
        assert!((net.rate_of(k) - 5e9).abs() / 5e9 < 1e-9);
        // 25 GB left at 5 GB/s: finishes at t = 1 + 5 = 6 s.
        let done = net.next_completion().unwrap();
        assert!((done.as_secs_f64() - 6.0).abs() < 1e-6, "{done}");
        // Restoring capacity speeds it back up.
        net.advance_to(SimTime::from_nanos(2_000_000_000));
        net.begin_update();
        net.set_port_capacity(Port::NicTx(0), 25e9);
        net.set_port_capacity(Port::NicRx(4), 25e9);
        net.commit_update();
        let done = net.next_completion().unwrap();
        // 20 GB left at 25 GB/s from t=2: done at 2.8 s.
        assert!((done.as_secs_f64() - 2.8).abs() < 1e-6, "{done}");
    }

    #[test]
    fn capacity_change_matches_reference_bitwise() {
        let c = cluster_a(2);
        let mut net = FlowNetwork::new();
        let mut oracle = ReferenceNet::new();
        // Two flows sharing NIC 0, one on NIC 1.
        let specs = [(0usize, 8usize, 40e9), (1, 9, 30e9), (2, 10, 20e9)];
        let mut live = Vec::new();
        for &(src, dst, bytes) in &specs {
            let path = c.direct_path(src, dst);
            live.push((
                net.start_flow(bytes, &path, cap_fn(&c)),
                oracle.start_flow(bytes, &path, cap_fn(&c)),
            ));
        }
        let t1 = SimTime::from_nanos(500_000_000);
        net.advance_to(t1);
        oracle.advance_to(t1);
        for (port, cap) in [(Port::NicTx(0), 10e9), (Port::NicRx(5), 8e9)] {
            net.set_port_capacity(port, cap);
            oracle.set_port_capacity(port, cap);
            for &(k, r) in &live {
                assert_eq!(net.rate_of(k).to_bits(), oracle.rate_of(r).to_bits());
            }
            assert_eq!(net.next_completion(), oracle.next_completion());
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        FlowNetwork::new().set_port_capacity(Port::NicTx(0), 0.0);
    }

    /// Random interleaved churn stays bit-identical to the from-scratch
    /// reference allocator across starts, advances, and finishes.
    #[test]
    fn incremental_matches_reference_under_churn() {
        let c = cluster_a(4);
        let ranks = 32u64;
        let mut net = FlowNetwork::new();
        let mut oracle = ReferenceNet::new();
        let mut live: Vec<(FlowKey, crate::reference::RefFlowKey)> = Vec::new();
        // Deterministic LCG so the schedule is reproducible.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for step in 0..400 {
            match next(3) {
                0 | 1 => {
                    let src = next(ranks) as usize;
                    let mut dst = next(ranks) as usize;
                    if dst == src {
                        dst = (dst + 1) % ranks as usize;
                    }
                    let bytes = if step % 17 == 0 {
                        0.0
                    } else {
                        1e6 * (1 + next(5000)) as f64
                    };
                    let path = c.direct_path(src, dst);
                    let k = net.start_flow(bytes, &path, cap_fn(&c));
                    let r = oracle.start_flow(bytes, &path, cap_fn(&c));
                    live.push((k, r));
                }
                _ => {
                    // Advance both to the earliest completion and retire
                    // everything that drained.
                    let (a, b) = (net.next_completion(), oracle.next_completion());
                    assert_eq!(a, b, "next_completion diverged at step {step}");
                    if let Some(t) = a {
                        net.advance_to(t);
                        oracle.advance_to(t);
                        let mut done = Vec::new();
                        net.collect_drained(&mut done);
                        assert_eq!(done, net.drained());
                        let oracle_done = oracle.drained();
                        assert_eq!(done.len(), oracle_done.len());
                        for k in done {
                            let pos = live.iter().position(|&(a, _)| a == k).unwrap();
                            let (_, r) = live.swap_remove(pos);
                            assert!(oracle_done.contains(&r));
                            net.finish_flow(k);
                            oracle.finish_flow(r);
                        }
                    }
                }
            }
            for &(k, r) in &live {
                assert_eq!(
                    net.rate_of(k).to_bits(),
                    oracle.rate_of(r).to_bits(),
                    "rate diverged at step {step}"
                );
                assert_eq!(
                    net.remaining_of(k).to_bits(),
                    oracle.remaining_of(r).to_bits()
                );
            }
        }
    }
}

//! Fluid-flow network model with max-min fair bandwidth sharing.
//!
//! Transfers are modelled as *flows*: a byte count draining over a path of
//! capacitated ports. Whenever the set of active flows changes, the network
//! recomputes a progressive-filling max-min fair rate allocation: all flows'
//! rates rise together until some port saturates; flows through saturated
//! ports freeze at the current level; the rest keep rising. This captures the
//! contention effects Zeppelin exploits — NICs shared between GPU pairs,
//! asymmetric ring traffic, multi-NIC routing — without per-packet detail.
//!
//! The network is advanced lazily: callers move it to the current simulation
//! time, mutate the flow set, and ask for the next completion instant.

use std::collections::HashMap;

use crate::time::{SimDuration, SimTime};
use crate::topology::Port;

/// Bytes below which a flow is considered drained (absorbs f64 rounding).
const EPS_BYTES: f64 = 1e-6;

/// Handle to an active flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey(usize);

#[derive(Debug)]
struct ActiveFlow {
    /// Interned port indices the flow traverses (deduplicated).
    path: Vec<usize>,
    /// Bytes still to move.
    remaining: f64,
    /// Current max-min fair rate in bytes/s.
    rate: f64,
}

/// The set of concurrently active flows over a shared port inventory.
#[derive(Debug, Default)]
pub struct FlowNetwork {
    port_caps: Vec<f64>,
    port_index: HashMap<Port, usize>,
    flows: Vec<Option<ActiveFlow>>,
    free_keys: Vec<usize>,
    clock: SimTime,
    active: usize,
}

impl FlowNetwork {
    /// Creates an empty network; ports are interned on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current internal clock (latest `advance_to` instant).
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Number of currently active flows.
    pub fn active_flows(&self) -> usize {
        self.active
    }

    fn intern(&mut self, port: Port, capacity: f64) -> usize {
        if let Some(&i) = self.port_index.get(&port) {
            return i;
        }
        let i = self.port_caps.len();
        self.port_caps.push(capacity);
        self.port_index.insert(port, i);
        i
    }

    /// Starts a flow of `bytes` over `path` at the current clock.
    ///
    /// `capacity_of` supplies the bandwidth of each port the first time it is
    /// seen (ports are identified by value, so capacities must be stable).
    /// Duplicate ports within one path are collapsed: a flow consumes a
    /// port's bandwidth once regardless of how the path was assembled.
    ///
    /// # Panics
    ///
    /// Panics if `path` is empty or `bytes` is not finite and non-negative;
    /// both indicate planner bugs upstream.
    pub fn start_flow(
        &mut self,
        bytes: f64,
        path: &[Port],
        mut capacity_of: impl FnMut(Port) -> f64,
    ) -> FlowKey {
        assert!(!path.is_empty(), "flow path must be non-empty");
        assert!(
            bytes.is_finite() && bytes >= 0.0,
            "flow size must be finite and non-negative, got {bytes}"
        );
        let mut interned: Vec<usize> = path
            .iter()
            .map(|&p| {
                let cap = capacity_of(p);
                assert!(cap > 0.0, "port {p:?} must have positive capacity");
                self.intern(p, cap)
            })
            .collect();
        interned.sort_unstable();
        interned.dedup();
        let flow = ActiveFlow {
            path: interned,
            remaining: bytes,
            rate: 0.0,
        };
        let key = match self.free_keys.pop() {
            Some(k) => {
                self.flows[k] = Some(flow);
                k
            }
            None => {
                self.flows.push(Some(flow));
                self.flows.len() - 1
            }
        };
        self.active += 1;
        self.recompute_rates();
        FlowKey(key)
    }

    /// Advances the fluid model to `now`, draining all flows at their rates.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the internal clock.
    pub fn advance_to(&mut self, now: SimTime) {
        let dt = now.since(self.clock).as_secs_f64();
        if dt > 0.0 {
            for slot in self.flows.iter_mut().flatten() {
                slot.remaining = (slot.remaining - slot.rate * dt).max(0.0);
            }
        }
        self.clock = now;
    }

    /// Keys of flows that have fully drained as of the current clock.
    pub fn drained(&self) -> Vec<FlowKey> {
        self.flows
            .iter()
            .enumerate()
            .filter_map(|(k, s)| match s {
                Some(f) if f.remaining <= EPS_BYTES => Some(FlowKey(k)),
                _ => None,
            })
            .collect()
    }

    /// Removes a flow (normally one reported by [`FlowNetwork::drained`]) and
    /// rebalances the remaining flows.
    ///
    /// # Panics
    ///
    /// Panics if the key is stale.
    pub fn finish_flow(&mut self, key: FlowKey) {
        let slot = self.flows[key.0].take().expect("stale flow key");
        debug_assert!(
            slot.remaining <= EPS_BYTES,
            "finishing a flow with {} bytes left",
            slot.remaining
        );
        self.free_keys.push(key.0);
        self.active -= 1;
        self.recompute_rates();
    }

    /// Earliest instant at which some active flow drains, if any are active.
    ///
    /// The instant is rounded up to nanosecond granularity; callers should
    /// `advance_to` it and then collect [`FlowNetwork::drained`] flows.
    pub fn next_completion(&self) -> Option<SimTime> {
        let mut best: Option<f64> = None;
        for f in self.flows.iter().flatten() {
            let secs = if f.remaining <= EPS_BYTES {
                0.0
            } else if f.rate > 0.0 {
                f.remaining / f.rate
            } else {
                continue; // Starved flow: cannot finish until rates change.
            };
            best = Some(match best {
                Some(b) => b.min(secs),
                None => secs,
            });
        }
        best.map(|secs| self.clock + SimDuration::from_secs_f64(secs))
    }

    /// Current rate of a flow in bytes/s (for tests and introspection).
    pub fn rate_of(&self, key: FlowKey) -> f64 {
        self.flows[key.0].as_ref().expect("stale flow key").rate
    }

    /// Remaining bytes of a flow (for tests and introspection).
    pub fn remaining_of(&self, key: FlowKey) -> f64 {
        self.flows[key.0]
            .as_ref()
            .expect("stale flow key")
            .remaining
    }

    /// Sum of current rates through `port`, in bytes/s.
    pub fn port_usage(&self, port: Port) -> f64 {
        let Some(&idx) = self.port_index.get(&port) else {
            return 0.0;
        };
        self.flows
            .iter()
            .flatten()
            .filter(|f| f.path.contains(&idx))
            .map(|f| f.rate)
            .sum()
    }

    /// Recomputes the progressive-filling max-min fair allocation.
    ///
    /// All active flows rise from rate 0 together; each port `p` saturates at
    /// level `(cap_p - frozen_p) / unfrozen_p`. The minimum such level across
    /// ports freezes every unfrozen flow crossing a bottleneck port, and the
    /// process repeats until all flows are frozen.
    fn recompute_rates(&mut self) {
        let n_ports = self.port_caps.len();
        let mut frozen_usage = vec![0.0f64; n_ports];
        let mut unfrozen_count = vec![0usize; n_ports];
        let mut live: Vec<usize> = Vec::new();
        for (k, slot) in self.flows.iter().enumerate() {
            if let Some(f) = slot {
                live.push(k);
                for &p in &f.path {
                    unfrozen_count[p] += 1;
                }
            }
        }
        let mut frozen = vec![false; self.flows.len()];
        let mut remaining_live = live.len();
        while remaining_live > 0 {
            // Find the lowest saturation level among contended ports.
            let mut level = f64::INFINITY;
            for p in 0..n_ports {
                if unfrozen_count[p] > 0 {
                    let l = (self.port_caps[p] - frozen_usage[p]) / unfrozen_count[p] as f64;
                    if l < level {
                        level = l;
                    }
                }
            }
            debug_assert!(level.is_finite(), "live flows but no contended port");
            let level = level.max(0.0);
            // Freeze every unfrozen flow that crosses a bottleneck port.
            let mut froze_any = false;
            for &k in &live {
                if frozen[k] {
                    continue;
                }
                let f = self.flows[k].as_ref().expect("live flow");
                let at_bottleneck = f.path.iter().any(|&p| {
                    let l = (self.port_caps[p] - frozen_usage[p]) / unfrozen_count[p] as f64;
                    l <= level + level.abs() * 1e-12
                });
                if at_bottleneck {
                    frozen[k] = true;
                    froze_any = true;
                    remaining_live -= 1;
                    let path = self.flows[k].as_ref().expect("live flow").path.clone();
                    self.flows[k].as_mut().expect("live flow").rate = level;
                    for p in path {
                        frozen_usage[p] += level;
                        unfrozen_count[p] -= 1;
                    }
                }
            }
            debug_assert!(froze_any, "max-min fair filling made no progress");
            if !froze_any {
                break; // Defensive: avoid an infinite loop under fp anomalies.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{cluster_a, tiny_cluster};

    fn cap_fn(c: &crate::topology::ClusterSpec) -> impl FnMut(Port) -> f64 + '_ {
        move |p| c.port_capacity(p)
    }

    #[test]
    fn single_flow_gets_bottleneck_bandwidth() {
        let c = cluster_a(2);
        let mut net = FlowNetwork::new();
        // Cross-node: bottleneck is the 25 GB/s NIC, not the 32 GB/s PCIe.
        let k = net.start_flow(25e9, &c.direct_path(0, 8), cap_fn(&c));
        assert!((net.rate_of(k) - 25e9).abs() / 25e9 < 1e-9);
        let done = net.next_completion().unwrap();
        assert!((done.as_secs_f64() - 1.0).abs() < 1e-6);
        net.advance_to(done);
        assert_eq!(net.drained(), vec![k]);
        net.finish_flow(k);
        assert_eq!(net.active_flows(), 0);
    }

    #[test]
    fn two_flows_share_a_nic_fairly() {
        let c = cluster_a(2);
        let mut net = FlowNetwork::new();
        // GPUs 0 and 1 share NIC 0 on Cluster A.
        let k0 = net.start_flow(1e9, &c.direct_path(0, 8), cap_fn(&c));
        let k1 = net.start_flow(1e9, &c.direct_path(1, 9), cap_fn(&c));
        assert!((net.rate_of(k0) - 12.5e9).abs() / 12.5e9 < 1e-9);
        assert!((net.rate_of(k1) - 12.5e9).abs() / 12.5e9 < 1e-9);
    }

    #[test]
    fn distinct_nics_do_not_contend() {
        let c = cluster_a(2);
        let mut net = FlowNetwork::new();
        let k0 = net.start_flow(1e9, &c.direct_path(0, 8), cap_fn(&c));
        let k2 = net.start_flow(1e9, &c.direct_path(2, 10), cap_fn(&c));
        assert!((net.rate_of(k0) - 25e9).abs() / 25e9 < 1e-9);
        assert!((net.rate_of(k2) - 25e9).abs() / 25e9 < 1e-9);
    }

    #[test]
    fn finishing_a_flow_releases_bandwidth() {
        let c = cluster_a(2);
        let mut net = FlowNetwork::new();
        let k0 = net.start_flow(12.5e9, &c.direct_path(0, 8), cap_fn(&c));
        let k1 = net.start_flow(50e9, &c.direct_path(1, 9), cap_fn(&c));
        // Both run at 12.5 GB/s; k0 finishes at t=1s.
        let t1 = net.next_completion().unwrap();
        assert!((t1.as_secs_f64() - 1.0).abs() < 1e-6);
        net.advance_to(t1);
        assert_eq!(net.drained(), vec![k0]);
        net.finish_flow(k0);
        // k1 has 37.5 GB left and now runs at the full 25 GB/s: +1.5s.
        assert!((net.rate_of(k1) - 25e9).abs() / 25e9 < 1e-6);
        let t2 = net.next_completion().unwrap();
        assert!((t2.as_secs_f64() - 2.5).abs() < 1e-5);
    }

    #[test]
    fn max_min_not_just_equal_split() {
        // Three flows: two share port A (cap 10), one uses only port B
        // (cap 30) which the first also crosses. Max-min: the A-flows get 5
        // each; the B-only flow gets the residual 25, not 10.
        let mut net = FlowNetwork::new();
        let cap = |p: Port| match p {
            Port::NicTx(0) => 10.0,
            Port::NicTx(1) => 30.0,
            _ => unreachable!(),
        };
        let a1 = net.start_flow(1.0, &[Port::NicTx(0), Port::NicTx(1)], cap);
        let a2 = net.start_flow(1.0, &[Port::NicTx(0)], cap);
        let b = net.start_flow(1.0, &[Port::NicTx(1)], cap);
        assert!((net.rate_of(a1) - 5.0).abs() < 1e-9);
        assert!((net.rate_of(a2) - 5.0).abs() < 1e-9);
        assert!((net.rate_of(b) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn port_usage_never_exceeds_capacity() {
        let c = tiny_cluster(2, 4);
        let mut net = FlowNetwork::new();
        let mut keys = Vec::new();
        for src in 0..4 {
            for dst in 4..8 {
                keys.push(net.start_flow(1e9, &c.direct_path(src, dst), cap_fn(&c)));
            }
        }
        for local in 0..4 {
            let tx = Port::NicTx(local);
            assert!(net.port_usage(tx) <= c.port_capacity(tx) * (1.0 + 1e-9));
        }
        // All 16 flows still active.
        assert_eq!(net.active_flows(), 16);
        for k in &keys {
            assert!(net.rate_of(*k) > 0.0);
        }
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let c = tiny_cluster(1, 2);
        let mut net = FlowNetwork::new();
        let k = net.start_flow(0.0, &c.direct_path(0, 1), cap_fn(&c));
        assert_eq!(net.next_completion(), Some(SimTime::ZERO));
        assert_eq!(net.drained(), vec![k]);
    }

    #[test]
    fn duplicate_ports_in_path_are_collapsed() {
        let mut net = FlowNetwork::new();
        let k = net.start_flow(1.0, &[Port::NicTx(0), Port::NicTx(0)], |_| 10.0);
        // Counted once: full 10, not 5.
        assert!((net.rate_of(k) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn advance_is_lazy_and_monotonic() {
        let c = tiny_cluster(1, 2);
        let mut net = FlowNetwork::new();
        let k = net.start_flow(200e9, &c.direct_path(0, 1), cap_fn(&c));
        net.advance_to(SimTime::from_nanos(500_000_000));
        // 200 GB/s nvlink for 0.5 s = 100 GB moved.
        assert!((net.remaining_of(k) - 100e9).abs() / 100e9 < 1e-6);
        // Advancing to the same instant is a no-op.
        net.advance_to(SimTime::from_nanos(500_000_000));
        assert!((net.remaining_of(k) - 100e9).abs() / 100e9 < 1e-6);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn advance_backwards_panics() {
        let mut net = FlowNetwork::new();
        net.advance_to(SimTime::from_nanos(10));
        net.advance_to(SimTime::from_nanos(5));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_path_panics() {
        FlowNetwork::new().start_flow(1.0, &[], |_| 1.0);
    }

    #[test]
    fn keys_are_recycled_without_aliasing() {
        let c = tiny_cluster(1, 2);
        let mut net = FlowNetwork::new();
        let k = net.start_flow(0.0, &c.direct_path(0, 1), cap_fn(&c));
        net.finish_flow(k);
        let k2 = net.start_flow(5.0, &c.direct_path(1, 0), cap_fn(&c));
        assert_eq!(k, k2, "slot should be recycled");
        assert!(net.remaining_of(k2) > 0.0);
    }
}

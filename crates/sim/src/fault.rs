//! Deterministic infrastructure-fault schedules.
//!
//! Real DP training fleets do not run on the pristine hardware the rest of
//! this crate models: GPUs thermally throttle, NICs degrade, links flap, and
//! whole nodes crash. A [`FaultSchedule`] scripts such events against the
//! simulation clock so every layer above (engine, trainer, recovery policy)
//! can be exercised **deterministically** — the same schedule against the
//! same DAG produces the same [`SimReport`](crate::engine::SimReport) or the
//! same typed error, bit for bit.
//!
//! Four fault shapes are modelled:
//!
//! - [`FaultEvent::GpuSlowdown`]: a rank computes at `factor` × nominal
//!   speed during a window (thermal throttling, noisy neighbours);
//! - [`FaultEvent::NicDegrade`]: a NIC's tx/rx capacity is scaled by
//!   `factor` during a window (congestion, partial link failure);
//! - [`FaultEvent::LinkFlap`]: a NIC collapses to [`FLAP_RESIDUAL`] of its
//!   capacity during a window — effectively unusable, but capacities stay
//!   positive so the max-min allocator's projections remain finite;
//! - [`FaultEvent::RankCrash`]: a rank dies permanently at an instant; any
//!   unfinished work assigned to it turns the run into
//!   [`SimError::RankUnavailable`].
//!
//! Windows are half-open `[start, end)`; `end = None` means the fault lasts
//! for the rest of the run. Overlapping windows compose multiplicatively.
//!
//! The [`FaultSchedule::random`] generator draws a schedule from a seed with
//! the workspace's deterministic RNG, which is what the determinism property
//! suite (`tests/fault_props.rs`) runs against.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::error::SimError;
use crate::time::SimTime;
use crate::topology::{ClusterSpec, Rank};

/// Residual capacity fraction of a flapping link.
///
/// A flapped NIC is useless for bulk transfers (1000× degradation) but keeps
/// a positive capacity: the allocator's completion projections stay finite
/// and traffic resumes cleanly when the window closes.
pub const FLAP_RESIDUAL: f64 = 1e-3;

/// One scripted infrastructure fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// `rank` computes at `factor` × nominal speed during `[start, end)`.
    GpuSlowdown {
        /// Affected rank.
        rank: Rank,
        /// Speed multiplier in `(0, 1]` (0.5 = half speed).
        factor: f64,
        /// Window start.
        start: SimTime,
        /// Window end (`None` = rest of the run).
        end: Option<SimTime>,
    },
    /// Global NIC `nic`'s tx and rx capacity is scaled by `factor` during
    /// `[start, end)`.
    NicDegrade {
        /// Global NIC index (`node * nic_count + local_nic`).
        nic: usize,
        /// Capacity multiplier in `(0, 1]`.
        factor: f64,
        /// Window start.
        start: SimTime,
        /// Window end (`None` = rest of the run).
        end: Option<SimTime>,
    },
    /// Link flap: NIC `nic` collapses to [`FLAP_RESIDUAL`] of its capacity
    /// during `[start, end)`.
    LinkFlap {
        /// Global NIC index.
        nic: usize,
        /// Window start.
        start: SimTime,
        /// Window end (`None` = rest of the run).
        end: Option<SimTime>,
    },
    /// `rank` dies permanently at `at`.
    RankCrash {
        /// The crashing rank.
        rank: Rank,
        /// Crash instant.
        at: SimTime,
    },
}

impl FaultEvent {
    /// The `[start, end)` window of the event (`at..at` for crashes, which
    /// are instants, not windows).
    fn window(&self) -> (SimTime, Option<SimTime>) {
        match *self {
            FaultEvent::GpuSlowdown { start, end, .. }
            | FaultEvent::NicDegrade { start, end, .. }
            | FaultEvent::LinkFlap { start, end, .. } => (start, end),
            FaultEvent::RankCrash { at, .. } => (at, Some(at)),
        }
    }

    /// True if the window covers instant `t` (half-open; crashes never
    /// "cover" an instant).
    fn covers(&self, t: SimTime) -> bool {
        let (start, end) = self.window();
        t >= start && end.is_none_or(|e| t < e)
    }
}

/// A deterministic script of infrastructure faults against the sim clock.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty (fault-free) schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// The scripted events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True if no faults are scripted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds an event.
    pub fn push(&mut self, ev: FaultEvent) -> &mut Self {
        self.events.push(ev);
        self
    }

    /// Builder: GPU slowdown window.
    pub fn gpu_slowdown(
        mut self,
        rank: Rank,
        factor: f64,
        start: SimTime,
        end: Option<SimTime>,
    ) -> Self {
        self.events.push(FaultEvent::GpuSlowdown {
            rank,
            factor,
            start,
            end,
        });
        self
    }

    /// Builder: NIC degradation window.
    pub fn nic_degrade(
        mut self,
        nic: usize,
        factor: f64,
        start: SimTime,
        end: Option<SimTime>,
    ) -> Self {
        self.events.push(FaultEvent::NicDegrade {
            nic,
            factor,
            start,
            end,
        });
        self
    }

    /// Builder: link flap window.
    pub fn link_flap(mut self, nic: usize, start: SimTime, end: Option<SimTime>) -> Self {
        self.events.push(FaultEvent::LinkFlap { nic, start, end });
        self
    }

    /// Builder: permanent rank crash.
    pub fn rank_crash(mut self, rank: Rank, at: SimTime) -> Self {
        self.events.push(FaultEvent::RankCrash { rank, at });
        self
    }

    /// Builder: crashes every rank of `node` (and flaps its NICs) at `at` —
    /// the whole-node failure the elastic-recovery exhibits script.
    pub fn node_crash(mut self, cluster: &ClusterSpec, node: usize, at: SimTime) -> Self {
        for rank in cluster.ranks_on_node(node) {
            self.events.push(FaultEvent::RankCrash { rank, at });
        }
        for local in 0..cluster.node.nic_count {
            self.events.push(FaultEvent::LinkFlap {
                nic: node * cluster.node.nic_count + local,
                start: at,
                end: None,
            });
        }
        self
    }

    /// Checks every event against `cluster`: ranks and NICs must exist,
    /// factors must lie in `(0, 1]`, and windows must be non-empty.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTopology`] describing the first offending
    /// event.
    pub fn validate(&self, cluster: &ClusterSpec) -> Result<(), SimError> {
        let nranks = cluster.total_gpus();
        let nnics = cluster.nodes * cluster.node.nic_count;
        let check_rank = |rank: Rank| {
            if rank >= nranks {
                return Err(SimError::InvalidTopology(format!(
                    "fault references rank {rank} but the cluster has {nranks} ranks"
                )));
            }
            Ok(())
        };
        let check_nic = |nic: usize| {
            if nic >= nnics {
                return Err(SimError::InvalidTopology(format!(
                    "fault references NIC {nic} but the cluster has {nnics} NICs"
                )));
            }
            Ok(())
        };
        let check_factor = |factor: f64| {
            if !(factor > 0.0 && factor <= 1.0) {
                return Err(SimError::InvalidTopology(format!(
                    "fault factor {factor} outside (0, 1]"
                )));
            }
            Ok(())
        };
        let check_window = |start: SimTime, end: Option<SimTime>| {
            if let Some(e) = end {
                if e <= start {
                    return Err(SimError::InvalidTopology(format!(
                        "fault window [{start}, {e}) is empty"
                    )));
                }
            }
            Ok(())
        };
        for ev in &self.events {
            match *ev {
                FaultEvent::GpuSlowdown {
                    rank,
                    factor,
                    start,
                    end,
                } => {
                    check_rank(rank)?;
                    check_factor(factor)?;
                    check_window(start, end)?;
                }
                FaultEvent::NicDegrade {
                    nic,
                    factor,
                    start,
                    end,
                } => {
                    check_nic(nic)?;
                    check_factor(factor)?;
                    check_window(start, end)?;
                }
                FaultEvent::LinkFlap { nic, start, end } => {
                    check_nic(nic)?;
                    check_window(start, end)?;
                }
                FaultEvent::RankCrash { rank, .. } => check_rank(rank)?,
            }
        }
        Ok(())
    }

    /// Compute-speed multiplier of `rank` at instant `t` (product of all
    /// covering slowdown windows; 1.0 when healthy).
    pub fn speed_at(&self, rank: Rank, t: SimTime) -> f64 {
        let mut f = 1.0;
        for ev in &self.events {
            if let FaultEvent::GpuSlowdown {
                rank: r, factor, ..
            } = *ev
            {
                if r == rank && ev.covers(t) {
                    f *= factor;
                }
            }
        }
        f
    }

    /// Capacity multiplier of global NIC `nic` at instant `t` (product of
    /// all covering degradation and flap windows; 1.0 when healthy).
    pub fn nic_factor_at(&self, nic: usize, t: SimTime) -> f64 {
        let mut f = 1.0;
        for ev in &self.events {
            match *ev {
                FaultEvent::NicDegrade { nic: n, factor, .. } if n == nic && ev.covers(t) => {
                    f *= factor
                }
                FaultEvent::LinkFlap { nic: n, .. } if n == nic && ev.covers(t) => {
                    f *= FLAP_RESIDUAL
                }
                _ => {}
            }
        }
        f
    }

    /// Overlap-weighted compute-speed multiplier of `rank` over the window
    /// `[w0, w1)`: a slowdown covering half the window at factor 0.5 yields
    /// 0.75. Used by the trainer to fold run-level fault windows into
    /// per-step effective speeds.
    pub fn speed_over(&self, rank: Rank, w0: SimTime, w1: SimTime) -> f64 {
        let span = w1.as_nanos().saturating_sub(w0.as_nanos()) as f64;
        if span <= 0.0 {
            return self.speed_at(rank, w0);
        }
        let mut f = 1.0;
        for ev in &self.events {
            if let FaultEvent::GpuSlowdown {
                rank: r, factor, ..
            } = *ev
            {
                if r != rank {
                    continue;
                }
                let frac = overlap_fraction(ev.window(), w0, w1, span);
                f *= 1.0 - frac * (1.0 - factor);
            }
        }
        f
    }

    /// Overlap-weighted capacity multiplier of NIC `nic` over `[w0, w1)`
    /// (same weighting as [`FaultSchedule::speed_over`]).
    pub fn nic_factor_over(&self, nic: usize, w0: SimTime, w1: SimTime) -> f64 {
        let span = w1.as_nanos().saturating_sub(w0.as_nanos()) as f64;
        if span <= 0.0 {
            return self.nic_factor_at(nic, w0);
        }
        let mut f = 1.0;
        for ev in &self.events {
            let factor = match *ev {
                FaultEvent::NicDegrade { nic: n, factor, .. } if n == nic => factor,
                FaultEvent::LinkFlap { nic: n, .. } if n == nic => FLAP_RESIDUAL,
                _ => continue,
            };
            let frac = overlap_fraction(ev.window(), w0, w1, span);
            f *= 1.0 - frac * (1.0 - factor);
        }
        f
    }

    /// True if any flap window overlaps `[w0, w1)` (the trainer's
    /// collective-timeout signal).
    pub fn flap_overlaps(&self, w0: SimTime, w1: SimTime) -> bool {
        self.events.iter().any(|ev| {
            matches!(ev, FaultEvent::LinkFlap { .. })
                && overlap_fraction(ev.window(), w0, w1, 1.0) > 0.0
        })
    }

    /// Crashes with `w0 <= at < w1`, as `(rank, at)` pairs sorted by
    /// instant then rank.
    pub fn crashes_in(&self, w0: SimTime, w1: SimTime) -> Vec<(Rank, SimTime)> {
        let mut out: Vec<(Rank, SimTime)> = self
            .events
            .iter()
            .filter_map(|ev| match *ev {
                FaultEvent::RankCrash { rank, at } if at >= w0 && at < w1 => Some((rank, at)),
                _ => None,
            })
            .collect();
        out.sort_unstable_by_key(|&(rank, at)| (at, rank));
        out
    }

    /// Ranks crashed strictly before `t`, deduplicated and sorted.
    pub fn crashed_before(&self, t: SimTime) -> Vec<Rank> {
        let mut out: Vec<Rank> = self
            .events
            .iter()
            .filter_map(|ev| match *ev {
                FaultEvent::RankCrash { rank, at } if at < t => Some(rank),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Ranks referenced by slowdown windows, deduplicated and sorted.
    pub fn slowdown_ranks(&self) -> Vec<Rank> {
        let mut out: Vec<Rank> = self
            .events
            .iter()
            .filter_map(|ev| match *ev {
                FaultEvent::GpuSlowdown { rank, .. } => Some(rank),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// NICs referenced by degradation or flap windows, deduplicated and
    /// sorted.
    pub fn affected_nics(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .events
            .iter()
            .filter_map(|ev| match *ev {
                FaultEvent::NicDegrade { nic, .. } | FaultEvent::LinkFlap { nic, .. } => Some(nic),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All distinct instants at which some fault begins, ends, or fires,
    /// sorted ascending. These are the engine's fault-event instants.
    pub fn boundaries(&self) -> Vec<SimTime> {
        let mut out = Vec::with_capacity(self.events.len() * 2);
        for ev in &self.events {
            let (start, end) = ev.window();
            out.push(start);
            if let Some(e) = end {
                // A crash "window" is the instant itself; do not duplicate.
                if e != start {
                    out.push(e);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// A view of this schedule re-based to `origin`: window instants shift
    /// left by `origin`, windows entirely in the past are dropped, and
    /// windows straddling the origin are clamped to start at zero. Crashes
    /// before the origin are dropped (the rank is already dead; track that
    /// with [`FaultSchedule::crashed_before`]).
    ///
    /// The trainer uses this to hand each step's simulation the slice of the
    /// run-level schedule that is active during the step.
    pub fn rebased(&self, origin: SimTime) -> FaultSchedule {
        let shift =
            |t: SimTime| SimTime::from_nanos(t.as_nanos().saturating_sub(origin.as_nanos()));
        let mut out = FaultSchedule::new();
        for ev in &self.events {
            match *ev {
                FaultEvent::GpuSlowdown {
                    rank,
                    factor,
                    start,
                    end,
                } => {
                    if end.is_none_or(|e| e > origin) {
                        out.events.push(FaultEvent::GpuSlowdown {
                            rank,
                            factor,
                            start: shift(start),
                            end: end.map(shift),
                        });
                    }
                }
                FaultEvent::NicDegrade {
                    nic,
                    factor,
                    start,
                    end,
                } => {
                    if end.is_none_or(|e| e > origin) {
                        out.events.push(FaultEvent::NicDegrade {
                            nic,
                            factor,
                            start: shift(start),
                            end: end.map(shift),
                        });
                    }
                }
                FaultEvent::LinkFlap { nic, start, end } => {
                    if end.is_none_or(|e| e > origin) {
                        out.events.push(FaultEvent::LinkFlap {
                            nic,
                            start: shift(start),
                            end: end.map(shift),
                        });
                    }
                }
                FaultEvent::RankCrash { rank, at } => {
                    if at >= origin {
                        out.events.push(FaultEvent::RankCrash {
                            rank,
                            at: shift(at),
                        });
                    }
                }
            }
        }
        out
    }

    /// Draws a random schedule over `[0, horizon)` for `cluster` from
    /// `seed` — deterministic per seed, which the determinism property
    /// suite relies on. The draw mixes slowdowns, degradations, flaps, and
    /// (with low probability) a crash.
    pub fn random(seed: u64, cluster: &ClusterSpec, horizon: SimTime) -> FaultSchedule {
        let mut rng = StdRng::seed_from_u64(seed);
        let nranks = cluster.total_gpus();
        let nnics = cluster.nodes * cluster.node.nic_count;
        let h = horizon.as_nanos().max(2);
        let mut out = FaultSchedule::new();
        let count = rng.random_range(1usize..=6);
        for _ in 0..count {
            let start = rng.random_range(0u64..h - 1);
            let len = rng.random_range(1u64..=h - start);
            let end = if rng.random_range(0u64..4) == 0 {
                None
            } else {
                Some(SimTime::from_nanos(start + len))
            };
            let start = SimTime::from_nanos(start);
            match rng.random_range(0u64..10) {
                0..=3 => {
                    out.events.push(FaultEvent::GpuSlowdown {
                        rank: rng.random_range(0usize..nranks),
                        factor: rng.random_range(0.1f64..1.0),
                        start,
                        end,
                    });
                }
                4..=6 => {
                    out.events.push(FaultEvent::NicDegrade {
                        nic: rng.random_range(0usize..nnics),
                        factor: rng.random_range(0.05f64..1.0),
                        start,
                        end,
                    });
                }
                7 | 8 => {
                    out.events.push(FaultEvent::LinkFlap {
                        nic: rng.random_range(0usize..nnics),
                        start,
                        end,
                    });
                }
                _ => {
                    out.events.push(FaultEvent::RankCrash {
                        rank: rng.random_range(0usize..nranks),
                        at: start,
                    });
                }
            }
        }
        out
    }
}

/// Fraction of `[w0, w1)` (whose length is `span` ns) covered by `window`.
fn overlap_fraction(
    window: (SimTime, Option<SimTime>),
    w0: SimTime,
    w1: SimTime,
    span: f64,
) -> f64 {
    let (start, end) = window;
    let lo = start.max(w0).as_nanos();
    let hi = end.unwrap_or(SimTime::MAX).min(w1).as_nanos();
    if hi <= lo || span <= 0.0 {
        return 0.0;
    }
    (hi - lo) as f64 / span
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{cluster_a, tiny_cluster};

    fn s(secs: u64) -> SimTime {
        SimTime::from_nanos(secs * 1_000_000_000)
    }

    #[test]
    fn point_factors_compose_multiplicatively() {
        let f = FaultSchedule::new()
            .gpu_slowdown(3, 0.5, s(1), Some(s(3)))
            .gpu_slowdown(3, 0.8, s(2), None);
        assert_eq!(f.speed_at(3, s(0)), 1.0);
        assert_eq!(f.speed_at(3, s(1)), 0.5);
        assert!((f.speed_at(3, s(2)) - 0.4).abs() < 1e-12);
        assert!((f.speed_at(3, s(4)) - 0.8).abs() < 1e-12);
        assert_eq!(f.speed_at(2, s(2)), 1.0);
    }

    #[test]
    fn nic_factor_includes_flaps() {
        let f = FaultSchedule::new()
            .nic_degrade(1, 0.25, s(0), Some(s(2)))
            .link_flap(1, s(1), Some(s(2)));
        assert!((f.nic_factor_at(1, s(0)) - 0.25).abs() < 1e-12);
        assert!((f.nic_factor_at(1, s(1)) - 0.25 * FLAP_RESIDUAL).abs() < 1e-12);
        assert_eq!(f.nic_factor_at(1, s(2)), 1.0);
        assert_eq!(f.nic_factor_at(0, s(1)), 1.0);
    }

    #[test]
    fn overlap_weighting_is_proportional() {
        // Slowdown to 0.5 covering [1, 2) of the window [0, 2): weight 1/2.
        let f = FaultSchedule::new().gpu_slowdown(0, 0.5, s(1), Some(s(2)));
        assert!((f.speed_over(0, s(0), s(2)) - 0.75).abs() < 1e-12);
        // Fully covered window.
        assert!((f.speed_over(0, s(1), s(2)) - 0.5).abs() < 1e-12);
        // Disjoint window.
        assert_eq!(f.speed_over(0, s(3), s(4)), 1.0);
    }

    #[test]
    fn crash_queries_sort_and_filter() {
        let f = FaultSchedule::new()
            .rank_crash(5, s(4))
            .rank_crash(1, s(2))
            .rank_crash(3, s(2));
        assert_eq!(f.crashes_in(s(0), s(3)), vec![(1, s(2)), (3, s(2))]);
        assert_eq!(
            f.crashes_in(s(2), s(5)),
            vec![(1, s(2)), (3, s(2)), (5, s(4))]
        );
        assert_eq!(f.crashed_before(s(3)), vec![1, 3]);
        assert!(f.crashed_before(s(2)).is_empty());
    }

    #[test]
    fn node_crash_covers_all_ranks_and_nics() {
        let c = cluster_a(2);
        let f = FaultSchedule::new().node_crash(&c, 1, s(3));
        let crashes = f.crashes_in(s(0), s(10));
        assert_eq!(crashes.len(), 8);
        assert!(crashes
            .iter()
            .all(|&(r, at)| (8..16).contains(&r) && at == s(3)));
        assert_eq!(f.affected_nics(), vec![4, 5, 6, 7]);
        assert!(f.validate(&c).is_ok());
    }

    #[test]
    fn validation_rejects_bad_events() {
        let c = tiny_cluster(1, 2);
        let bad_rank = FaultSchedule::new().rank_crash(7, s(1));
        assert!(matches!(
            bad_rank.validate(&c),
            Err(SimError::InvalidTopology(_))
        ));
        let bad_nic = FaultSchedule::new().link_flap(9, s(0), None);
        assert!(bad_nic.validate(&c).is_err());
        let bad_factor = FaultSchedule::new().gpu_slowdown(0, 0.0, s(0), None);
        assert!(bad_factor.validate(&c).is_err());
        let empty_window = FaultSchedule::new().gpu_slowdown(0, 0.5, s(2), Some(s(2)));
        assert!(empty_window.validate(&c).is_err());
        assert!(FaultSchedule::new().validate(&c).is_ok());
    }

    #[test]
    fn boundaries_are_sorted_and_deduped() {
        let f = FaultSchedule::new()
            .gpu_slowdown(0, 0.5, s(1), Some(s(3)))
            .link_flap(0, s(3), Some(s(5)))
            .rank_crash(1, s(1));
        assert_eq!(f.boundaries(), vec![s(1), s(3), s(5)]);
    }

    #[test]
    fn rebase_shifts_and_drops() {
        let f = FaultSchedule::new()
            .gpu_slowdown(0, 0.5, s(1), Some(s(3)))
            .nic_degrade(1, 0.5, s(0), Some(s(2)))
            .rank_crash(2, s(1))
            .rank_crash(3, s(5));
        let r = f.rebased(s(2));
        // The [1,3) slowdown straddles the origin: clamped to [0,1).
        assert!((r.speed_at(0, SimTime::ZERO) - 0.5).abs() < 1e-12);
        assert_eq!(r.speed_at(0, s(1)), 1.0);
        // The [0,2) degrade ended exactly at the origin: dropped.
        assert_eq!(r.nic_factor_at(1, SimTime::ZERO), 1.0);
        // Crash at 1 < origin dropped; crash at 5 shifts to 3.
        assert_eq!(r.crashes_in(SimTime::ZERO, s(10)), vec![(3, s(3))]);
    }

    #[test]
    fn random_schedules_are_deterministic_and_valid() {
        let c = cluster_a(2);
        for seed in 0..50 {
            let a = FaultSchedule::random(seed, &c, s(10));
            let b = FaultSchedule::random(seed, &c, s(10));
            assert_eq!(a, b, "seed {seed} diverged");
            a.validate(&c).expect("random schedule validates");
            assert!(!a.is_empty());
        }
        assert_ne!(
            FaultSchedule::random(1, &c, s(10)),
            FaultSchedule::random(2, &c, s(10)),
        );
    }
}

//! Simulation time: integer nanoseconds for deterministic event ordering.
//!
//! All simulated instants and durations are integer nanoseconds. Costs derived
//! from floating-point models (FLOPs / bandwidth) are rounded *up* when
//! converted, so zero-cost work never collapses event ordering and simulated
//! times are conservative.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the instant as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the instant as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; simulation clocks never run
    /// backwards, so this indicates a scheduling bug.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("simulation time moved backwards"),
        )
    }

    /// Saturating addition of a duration (saturates at [`SimTime::MAX`]).
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from integer microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from integer milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Converts fractional seconds to a duration, rounding up to 1 ns
    /// granularity so strictly positive costs never become zero.
    ///
    /// Negative and NaN inputs are treated as zero: they arise only from
    /// degenerate cost models (e.g. empty workloads) where "no time" is the
    /// correct reading.
    pub fn from_secs_f64(secs: f64) -> Self {
        // Deliberately `!(> 0.0)`: NaN must fall into the zero branch.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(secs > 0.0) {
            return SimDuration(0);
        }
        let ns = (secs * 1e9).ceil();
        if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating duration addition.
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, d: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(d.0)
                .expect("simulation time overflowed u64 nanoseconds"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(other.0)
                .expect("simulation duration overflowed u64 nanoseconds"),
        )
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;

    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

/// Formats a nanosecond count with a human-scale unit.
fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(SimDuration::default(), SimDuration::ZERO);
    }

    #[test]
    fn add_duration_advances_time() {
        let t = SimTime::from_nanos(10) + SimDuration::from_nanos(5);
        assert_eq!(t.as_nanos(), 15);
    }

    #[test]
    fn since_computes_elapsed() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(40);
        assert_eq!(a.since(b).as_nanos(), 60);
        assert_eq!((a - b).as_nanos(), 60);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn since_panics_on_backwards_clock() {
        let _ = SimTime::from_nanos(1).since(SimTime::from_nanos(2));
    }

    #[test]
    fn from_secs_rounds_up() {
        // 1.5 ns rounds up to 2 ns.
        assert_eq!(SimDuration::from_secs_f64(1.5e-9).as_nanos(), 2);
        // Tiny positive costs never round to zero.
        assert_eq!(SimDuration::from_secs_f64(1e-12).as_nanos(), 1);
    }

    #[test]
    fn from_secs_clamps_degenerate_inputs() {
        assert_eq!(SimDuration::from_secs_f64(0.0).as_nanos(), 0);
        assert_eq!(SimDuration::from_secs_f64(-3.0).as_nanos(), 0);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN).as_nanos(), 0);
        assert_eq!(
            SimDuration::from_secs_f64(f64::INFINITY).as_nanos(),
            u64::MAX
        );
    }

    #[test]
    fn unit_conversions_are_consistent() {
        let d = SimDuration::from_millis(3);
        assert_eq!(d.as_nanos(), 3_000_000);
        assert!((d.as_millis_f64() - 3.0).abs() < 1e-12);
        assert!((d.as_secs_f64() - 0.003).abs() < 1e-12);
        assert!((d.as_micros_f64() - 3000.0).abs() < 1e-9);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(format!("{}", SimDuration::from_nanos(5)), "5ns");
        assert_eq!(format!("{}", SimDuration::from_nanos(5_000)), "5.000us");
        assert_eq!(format!("{}", SimDuration::from_nanos(5_000_000)), "5.000ms");
        assert_eq!(
            format!("{}", SimDuration::from_nanos(5_000_000_000)),
            "5.000s"
        );
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_nanos(1)),
            SimTime::MAX
        );
        let big = SimDuration::from_nanos(u64::MAX);
        assert_eq!(big.saturating_add(big).as_nanos(), u64::MAX);
    }

    #[test]
    fn duration_max() {
        let a = SimDuration::from_nanos(3);
        let b = SimDuration::from_nanos(9);
        assert_eq!(a.max(b), b);
    }
}

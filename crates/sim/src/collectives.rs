//! Reusable collective-communication builders.
//!
//! NCCL-style collectives decomposed into their point-to-point constituents
//! as task sub-DAGs: ring all-gather, ring all-reduce
//! (reduce-scatter + all-gather), and all-to-all. Each builder returns
//! per-rank completion markers so callers can chain dependencies, and every
//! transfer contends for bandwidth in the shared flow network like any
//! other traffic.
//!
//! The executor crates build their *attention-specific* communication
//! (zigzag ring rounds, routed transfers) by hand because those interleave
//! with compute; these builders serve gradient synchronization, optimizer
//! gathers, and tests.

// Indexed loops here walk parallel arrays (tableau columns, per-rank
// slots); iterator rewrites would obscure the math.
#![allow(clippy::needless_range_loop)]

use crate::engine::{Simulator, Stream, TaskId, TraceInfo};
use crate::error::SimError;
use crate::time::SimDuration;
use crate::topology::Rank;
use crate::trace::TraceCategory;

/// Launch latency charged per p2p operation inside a collective, seconds.
const LAUNCH_S: f64 = 15e-6;

fn launch(sim: &mut Simulator, rank: Rank, deps: Vec<TaskId>) -> Result<TaskId, SimError> {
    sim.compute(
        rank,
        Stream::Comm(3),
        SimDuration::from_secs_f64(LAUNCH_S),
        deps,
        None,
    )
}

/// Builds a ring all-gather of `bytes_per_rank` from every rank.
///
/// After completion each rank holds every rank's shard. Returns one marker
/// per rank that fires when that rank's gather is complete.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if fewer than two ranks are given or ranks repeat.
///
/// # Examples
///
/// ```
/// use zeppelin_sim::collectives::ring_allgather;
/// use zeppelin_sim::engine::Simulator;
/// use zeppelin_sim::topology::tiny_cluster;
///
/// let cluster = tiny_cluster(1, 4);
/// let mut sim = Simulator::new(&cluster);
/// ring_allgather(&mut sim, &[0, 1, 2, 3], 1e9, &[None; 4], "demo").unwrap();
/// let report = sim.run().unwrap();
/// // (G-1) rounds of 1 GB over the 200 GB/s fabric: 15 ms.
/// assert!((report.makespan.as_secs_f64() - 0.015).abs() < 1e-3);
/// ```
pub fn ring_allgather(
    sim: &mut Simulator,
    ranks: &[Rank],
    bytes_per_rank: f64,
    deps: &[Option<TaskId>],
    label: &str,
) -> Result<Vec<TaskId>, SimError> {
    validate_group(ranks);
    let cluster = sim.cluster().clone();
    let g = ranks.len();
    let mut inbound: Vec<Vec<TaskId>> = vec![Vec::new(); g];
    let mut arrive: Vec<Option<TaskId>> = vec![None; g];
    for round in 0..g - 1 {
        let mut next_arrive: Vec<Option<TaskId>> = vec![None; g];
        for (p, &src) in ranks.iter().enumerate() {
            let next = (p + 1) % g;
            let dst = ranks[next];
            let mut ldeps: Vec<TaskId> = Vec::new();
            if round == 0 {
                ldeps.extend(deps.get(p).copied().flatten());
            } else {
                ldeps.extend(arrive[p]);
            }
            let l = launch(sim, src, ldeps)?;
            let flow = sim.transfer(
                bytes_per_rank,
                cluster.direct_path(src, dst),
                vec![l],
                Some(TraceInfo {
                    rank: src,
                    category: TraceCategory::Other,
                    label: format!("{label}-ag r{round} {src}->{dst}"),
                }),
            )?;
            next_arrive[next] = Some(flow);
            inbound[next].push(flow);
        }
        arrive = next_arrive;
    }
    let mut done = Vec::with_capacity(g);
    for (p, mut d) in inbound.into_iter().enumerate() {
        d.extend(deps.get(p).copied().flatten());
        done.push(sim.marker(d)?);
    }
    Ok(done)
}

/// Builds a bandwidth-optimal ring all-reduce of `total_bytes` per rank
/// (reduce-scatter then all-gather, `2(G-1)` chunk rounds of `B/G` each).
///
/// Returns one completion marker per rank.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if fewer than two ranks are given or ranks repeat.
pub fn ring_allreduce(
    sim: &mut Simulator,
    ranks: &[Rank],
    total_bytes: f64,
    deps: &[Option<TaskId>],
    label: &str,
) -> Result<Vec<TaskId>, SimError> {
    validate_group(ranks);
    let cluster = sim.cluster().clone();
    let g = ranks.len();
    let chunk = total_bytes / g as f64;
    let rounds = 2 * (g - 1);
    let mut arrive: Vec<Option<TaskId>> = vec![None; g];
    let mut last_inbound: Vec<Option<TaskId>> = vec![None; g];
    for round in 0..rounds {
        let mut next_arrive: Vec<Option<TaskId>> = vec![None; g];
        for (p, &src) in ranks.iter().enumerate() {
            let next = (p + 1) % g;
            let dst = ranks[next];
            let mut ldeps: Vec<TaskId> = Vec::new();
            if round == 0 {
                ldeps.extend(deps.get(p).copied().flatten());
            } else {
                ldeps.extend(arrive[p]);
            }
            let l = launch(sim, src, ldeps)?;
            let flow = sim.transfer(
                chunk,
                cluster.direct_path(src, dst),
                vec![l],
                Some(TraceInfo {
                    rank: src,
                    category: TraceCategory::Other,
                    label: format!("{label}-ar r{round} {src}->{dst}"),
                }),
            )?;
            next_arrive[next] = Some(flow);
            last_inbound[next] = Some(flow);
        }
        arrive = next_arrive;
    }
    let mut done = Vec::with_capacity(g);
    for p in 0..g {
        let mut d: Vec<TaskId> = last_inbound[p].into_iter().collect();
        d.extend(deps.get(p).copied().flatten());
        done.push(sim.marker(d)?);
    }
    Ok(done)
}

/// Builds an all-to-all: rank `i` sends `bytes[i][j]` to rank `j`
/// (`bytes[i][i]` ignored). Returns per-rank completion markers that fire
/// when all of that rank's inbound shards arrived.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if the byte matrix is not `G × G` or the group is invalid.
pub fn all_to_all(
    sim: &mut Simulator,
    ranks: &[Rank],
    bytes: &[Vec<f64>],
    deps: &[Option<TaskId>],
    label: &str,
) -> Result<Vec<TaskId>, SimError> {
    validate_group(ranks);
    let g = ranks.len();
    assert!(
        bytes.len() == g && bytes.iter().all(|r| r.len() == g),
        "byte matrix must be G x G"
    );
    let cluster = sim.cluster().clone();
    let mut inbound: Vec<Vec<TaskId>> = vec![Vec::new(); g];
    for (p, &src) in ranks.iter().enumerate() {
        for (q, &dst) in ranks.iter().enumerate() {
            if p == q || bytes[p][q] <= 0.0 {
                continue;
            }
            let ldeps: Vec<TaskId> = deps.get(p).copied().flatten().into_iter().collect();
            let l = launch(sim, src, ldeps)?;
            let flow = sim.transfer(
                bytes[p][q],
                cluster.direct_path(src, dst),
                vec![l],
                Some(TraceInfo {
                    rank: src,
                    category: TraceCategory::Other,
                    label: format!("{label}-a2a {src}->{dst}"),
                }),
            )?;
            inbound[q].push(flow);
        }
    }
    let mut done = Vec::with_capacity(g);
    for (p, mut d) in inbound.into_iter().enumerate() {
        d.extend(deps.get(p).copied().flatten());
        done.push(sim.marker(d)?);
    }
    Ok(done)
}

fn validate_group(ranks: &[Rank]) {
    assert!(ranks.len() >= 2, "collective group needs >= 2 ranks");
    let mut sorted = ranks.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), ranks.len(), "collective group repeats a rank");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::tiny_cluster;

    #[test]
    fn allgather_time_matches_ring_bound() {
        // 4 ranks on one node, NVLink 200 GB/s: (G-1) rounds of B bytes.
        let c = tiny_cluster(1, 4);
        let mut sim = Simulator::new(&c);
        let ranks = [0, 1, 2, 3];
        ring_allgather(&mut sim, &ranks, 20e9, &[None; 4], "t").unwrap();
        let r = sim.run().unwrap();
        let expected = 3.0 * 20e9 / 200e9; // 0.3 s.
        let got = r.makespan.as_secs_f64();
        assert!((got - expected).abs() / expected < 0.01, "got {got}");
    }

    #[test]
    fn allreduce_moves_twice_the_allgather_volume() {
        let c = tiny_cluster(1, 4);
        let time = |ar: bool| {
            let mut sim = Simulator::new(&c);
            if ar {
                ring_allreduce(&mut sim, &[0, 1, 2, 3], 80e9, &[None; 4], "t").unwrap();
            } else {
                ring_allgather(&mut sim, &[0, 1, 2, 3], 20e9, &[None; 4], "t").unwrap();
            }
            sim.run().unwrap().makespan.as_secs_f64()
        };
        let ag = time(false);
        let ar = time(true);
        // All-reduce of B: 2(G-1)·B/G per rank = 2× all-gather of B/G.
        assert!((ar / ag - 2.0).abs() < 0.05, "ar {ar} vs ag {ag}");
    }

    #[test]
    fn all_to_all_delivers_everything_concurrently() {
        let c = tiny_cluster(1, 4);
        let mut sim = Simulator::new(&c);
        let bytes = vec![vec![10e9; 4]; 4];
        all_to_all(&mut sim, &[0, 1, 2, 3], &bytes, &[None; 4], "t").unwrap();
        let r = sim.run().unwrap();
        // Each rank sends 3×10 GB through its 200 GB/s egress: 0.15 s.
        let got = r.makespan.as_secs_f64();
        assert!((got - 0.15).abs() < 0.01, "got {got}");
    }

    #[test]
    fn collectives_respect_dependencies() {
        let c = tiny_cluster(1, 2);
        let mut sim = Simulator::new(&c);
        let gate = sim
            .compute(
                0,
                Stream::Compute,
                SimDuration::from_millis(5),
                vec![],
                None,
            )
            .unwrap();
        let done = ring_allgather(&mut sim, &[0, 1], 1e6, &[Some(gate), None], "gated").unwrap();
        let r = sim.run().unwrap();
        // Rank 0's gather cannot complete before the gate.
        assert!(r.span(done[0]).1.as_millis_f64() >= 5.0);
    }

    #[test]
    fn all_to_all_skips_zero_cells() {
        let c = tiny_cluster(1, 3);
        let mut sim = Simulator::new(&c);
        let mut bytes = vec![vec![0.0; 3]; 3];
        bytes[0][1] = 1e6;
        let before = sim.task_count();
        all_to_all(&mut sim, &[0, 1, 2], &bytes, &[None; 3], "t").unwrap();
        // 1 launch + 1 flow + 3 markers.
        assert_eq!(sim.task_count() - before, 5);
        sim.run().unwrap();
    }

    #[test]
    #[should_panic(expected = ">= 2 ranks")]
    fn single_rank_group_panics() {
        let c = tiny_cluster(1, 2);
        let mut sim = Simulator::new(&c);
        let _ = ring_allgather(&mut sim, &[0], 1.0, &[None], "t");
    }

    #[test]
    #[should_panic(expected = "repeats")]
    fn duplicate_rank_panics() {
        let c = tiny_cluster(1, 2);
        let mut sim = Simulator::new(&c);
        let _ = ring_allreduce(&mut sim, &[0, 0], 1.0, &[None, None], "t");
    }

    #[test]
    #[should_panic(expected = "G x G")]
    fn bad_matrix_panics() {
        let c = tiny_cluster(1, 2);
        let mut sim = Simulator::new(&c);
        let _ = all_to_all(&mut sim, &[0, 1], &[vec![0.0; 2]], &[None, None], "t");
    }
}

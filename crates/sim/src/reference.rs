//! Frozen from-scratch max-min fair allocator, kept as a test oracle.
//!
//! [`ReferenceNet`] is the pre-incremental allocator preserved verbatim: every
//! mutation triggers a whole-network progressive filling, completions are
//! found by scanning all flows, and drained flows are collected into a fresh
//! `Vec`. It is deliberately simple and obviously correct, which makes it the
//! oracle for the equivalence property suite (`tests/netflow_equiv_props.rs`)
//! and the from-scratch baseline in the churn benchmarks.
//!
//! [`crate::network::FlowNetwork`] must agree with this implementation
//! bit-for-bit on rates and completion instants; see the module docs there
//! for the argument of why the incremental algorithm preserves that.

use std::collections::HashMap;

use crate::time::{SimDuration, SimTime};
use crate::topology::Port;

/// Bytes below which a flow is considered drained (absorbs f64 rounding).
const EPS_BYTES: f64 = 1e-6;

/// Handle to an active flow in a [`ReferenceNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RefFlowKey(usize);

#[derive(Debug)]
struct ActiveFlow {
    /// Interned port indices the flow traverses (deduplicated).
    path: Vec<usize>,
    /// Bytes still to move.
    remaining: f64,
    /// Current max-min fair rate in bytes/s.
    rate: f64,
}

/// From-scratch reference implementation of the flow network.
#[derive(Debug, Default)]
pub struct ReferenceNet {
    port_caps: Vec<f64>,
    port_index: HashMap<Port, usize>,
    flows: Vec<Option<ActiveFlow>>,
    free_keys: Vec<usize>,
    clock: SimTime,
    active: usize,
}

impl ReferenceNet {
    /// Creates an empty network; ports are interned on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current internal clock (latest `advance_to` instant).
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Number of currently active flows.
    pub fn active_flows(&self) -> usize {
        self.active
    }

    fn intern(&mut self, port: Port, capacity: f64) -> usize {
        if let Some(&i) = self.port_index.get(&port) {
            return i;
        }
        let i = self.port_caps.len();
        self.port_caps.push(capacity);
        self.port_index.insert(port, i);
        i
    }

    /// Starts a flow of `bytes` over `path` at the current clock.
    ///
    /// # Panics
    ///
    /// Panics if `path` is empty or `bytes` is not finite and non-negative.
    pub fn start_flow(
        &mut self,
        bytes: f64,
        path: &[Port],
        mut capacity_of: impl FnMut(Port) -> f64,
    ) -> RefFlowKey {
        assert!(!path.is_empty(), "flow path must be non-empty");
        assert!(
            bytes.is_finite() && bytes >= 0.0,
            "flow size must be finite and non-negative, got {bytes}"
        );
        let mut interned: Vec<usize> = path
            .iter()
            .map(|&p| {
                let cap = capacity_of(p);
                assert!(cap > 0.0, "port {p:?} must have positive capacity");
                self.intern(p, cap)
            })
            .collect();
        interned.sort_unstable();
        interned.dedup();
        let flow = ActiveFlow {
            path: interned,
            remaining: bytes,
            rate: 0.0,
        };
        let key = match self.free_keys.pop() {
            Some(k) => {
                self.flows[k] = Some(flow);
                k
            }
            None => {
                self.flows.push(Some(flow));
                self.flows.len() - 1
            }
        };
        self.active += 1;
        self.recompute_rates();
        RefFlowKey(key)
    }

    /// Updates (or interns) the capacity of `port` and recomputes every
    /// rate from scratch (mirror of [`FlowNetwork::set_port_capacity`]).
    ///
    /// # Panics
    ///
    /// Panics unless `capacity` is finite and positive.
    ///
    /// [`FlowNetwork::set_port_capacity`]: crate::network::FlowNetwork::set_port_capacity
    pub fn set_port_capacity(&mut self, port: Port, capacity: f64) {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "port {port:?} capacity must be finite and positive, got {capacity}"
        );
        let i = self.intern(port, capacity);
        self.port_caps[i] = capacity;
        self.recompute_rates();
    }

    /// Advances the fluid model to `now`, draining all flows at their rates.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the internal clock.
    pub fn advance_to(&mut self, now: SimTime) {
        let dt = now.since(self.clock).as_secs_f64();
        if dt > 0.0 {
            for slot in self.flows.iter_mut().flatten() {
                slot.remaining = (slot.remaining - slot.rate * dt).max(0.0);
            }
        }
        self.clock = now;
    }

    /// Keys of flows that have fully drained as of the current clock.
    pub fn drained(&self) -> Vec<RefFlowKey> {
        self.flows
            .iter()
            .enumerate()
            .filter_map(|(k, s)| match s {
                Some(f) if f.remaining <= EPS_BYTES => Some(RefFlowKey(k)),
                _ => None,
            })
            .collect()
    }

    /// Removes a flow and rebalances the remaining flows.
    ///
    /// # Panics
    ///
    /// Panics if the key is stale.
    pub fn finish_flow(&mut self, key: RefFlowKey) {
        let slot = self.flows[key.0].take().expect("stale flow key");
        debug_assert!(
            slot.remaining <= EPS_BYTES,
            "finishing a flow with {} bytes left",
            slot.remaining
        );
        self.free_keys.push(key.0);
        self.active -= 1;
        self.recompute_rates();
    }

    /// Earliest instant at which some active flow drains, if any are active.
    pub fn next_completion(&self) -> Option<SimTime> {
        let mut best: Option<f64> = None;
        for f in self.flows.iter().flatten() {
            let secs = if f.remaining <= EPS_BYTES {
                0.0
            } else if f.rate > 0.0 {
                f.remaining / f.rate
            } else {
                continue; // Starved flow: cannot finish until rates change.
            };
            best = Some(match best {
                Some(b) => b.min(secs),
                None => secs,
            });
        }
        best.map(|secs| self.clock + SimDuration::from_secs_f64(secs))
    }

    /// Current rate of a flow in bytes/s.
    pub fn rate_of(&self, key: RefFlowKey) -> f64 {
        self.flows[key.0].as_ref().expect("stale flow key").rate
    }

    /// Remaining bytes of a flow.
    pub fn remaining_of(&self, key: RefFlowKey) -> f64 {
        self.flows[key.0]
            .as_ref()
            .expect("stale flow key")
            .remaining
    }

    /// Sum of current rates through `port`, in bytes/s (O(flows · path)).
    pub fn port_usage(&self, port: Port) -> f64 {
        let Some(&idx) = self.port_index.get(&port) else {
            return 0.0;
        };
        self.flows
            .iter()
            .flatten()
            .filter(|f| f.path.contains(&idx))
            .map(|f| f.rate)
            .sum()
    }

    /// Whole-network progressive-filling max-min fair allocation.
    fn recompute_rates(&mut self) {
        let n_ports = self.port_caps.len();
        let mut frozen_usage = vec![0.0f64; n_ports];
        let mut unfrozen_count = vec![0usize; n_ports];
        let mut live: Vec<usize> = Vec::new();
        for (k, slot) in self.flows.iter().enumerate() {
            if let Some(f) = slot {
                live.push(k);
                for &p in &f.path {
                    unfrozen_count[p] += 1;
                }
            }
        }
        let mut frozen = vec![false; self.flows.len()];
        let mut remaining_live = live.len();
        while remaining_live > 0 {
            // Find the lowest saturation level among contended ports.
            let mut level = f64::INFINITY;
            for p in 0..n_ports {
                if unfrozen_count[p] > 0 {
                    let l = (self.port_caps[p] - frozen_usage[p]) / unfrozen_count[p] as f64;
                    if l < level {
                        level = l;
                    }
                }
            }
            debug_assert!(level.is_finite(), "live flows but no contended port");
            let level = level.max(0.0);
            // Freeze every unfrozen flow that crosses a bottleneck port.
            let mut froze_any = false;
            for &k in &live {
                if frozen[k] {
                    continue;
                }
                let f = self.flows[k].as_ref().expect("live flow");
                let at_bottleneck = f.path.iter().any(|&p| {
                    let l = (self.port_caps[p] - frozen_usage[p]) / unfrozen_count[p] as f64;
                    l <= level + level.abs() * 1e-12
                });
                if at_bottleneck {
                    frozen[k] = true;
                    froze_any = true;
                    remaining_live -= 1;
                    let path = self.flows[k].as_ref().expect("live flow").path.clone();
                    self.flows[k].as_mut().expect("live flow").rate = level;
                    for p in path {
                        frozen_usage[p] += level;
                        unfrozen_count[p] -= 1;
                    }
                }
            }
            debug_assert!(froze_any, "max-min fair filling made no progress");
            if !froze_any {
                break; // Defensive: avoid an infinite loop under fp anomalies.
            }
        }
    }
}

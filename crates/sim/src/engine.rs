//! Discrete-event execution engine for task DAGs over a simulated cluster.
//!
//! A simulation is a DAG of tasks:
//!
//! - **Compute** tasks occupy one stream of one GPU for a fixed duration;
//!   tasks on the same `(rank, stream)` pair serialize in the order they
//!   become ready (a CUDA-stream analogue).
//! - **Transfer** tasks move bytes over a port path through the shared
//!   [`FlowNetwork`]; concurrent transfers contend for bandwidth and their
//!   durations emerge from max-min fair sharing.
//! - **Marker** tasks are zero-cost join/fork points.
//!
//! Dependencies must point at already-created tasks, which statically rules
//! out cycles. The engine is fully deterministic: identical inputs produce
//! identical schedules.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap, VecDeque};

use crate::arena::{Slab, SlabKey};
use crate::error::SimError;
use crate::fault::FaultSchedule;
use crate::network::{FlowKey, FlowNetwork, NetStats};
use crate::time::{SimDuration, SimTime};
use crate::topology::{ClusterSpec, Port, Rank};
use crate::trace::{Trace, TraceCategory, TraceEvent};

/// Identifies a task within one [`Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

/// Logical execution stream on a GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stream {
    /// The main computation stream (attention / GEMM kernels).
    Compute,
    /// A communication-launch stream (kernel-launch serialization for
    /// copies that are not modelled as network flows).
    Comm(u8),
}

/// What a task does when it runs.
#[derive(Debug, Clone)]
pub enum TaskKind {
    /// Occupies `(rank, stream)` for `duration`.
    Compute {
        /// GPU executing the kernel.
        rank: Rank,
        /// Stream the kernel serializes on.
        stream: Stream,
        /// Kernel duration.
        duration: SimDuration,
    },
    /// Moves `bytes` across `path` through the shared flow network.
    Transfer {
        /// Bytes to move.
        bytes: f64,
        /// Port path (see [`ClusterSpec::direct_path`] and the routing layer).
        path: Vec<Port>,
    },
    /// Completes instantly once all dependencies complete.
    Marker,
}

/// Trace attribution for a task (optional; untraced tasks still execute).
#[derive(Debug, Clone)]
pub struct TraceInfo {
    /// Rank the event is attributed to in the timeline.
    pub rank: Rank,
    /// Event category (colours lanes in trace viewers).
    pub category: TraceCategory,
    /// Human-readable label.
    pub label: String,
}

/// A task plus its dependencies.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// The work performed.
    pub kind: TaskKind,
    /// Tasks that must complete first; each id must be `<` this task's id.
    pub deps: Vec<TaskId>,
    /// Optional timeline attribution.
    pub trace: Option<TraceInfo>,
}

/// Engine and allocator counters for one run.
///
/// Observational only: nothing here feeds back into the schedule, and —
/// except for the wall-clock `net.worker_busy_ns` — every field is
/// deterministic for a given DAG, fault schedule, and worker count.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Events popped from the arena-backed event heap.
    pub events: u64,
    /// Flow-network allocator and worker-pool counters.
    pub net: NetStats,
}

/// Result of running a simulation to completion.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Instant the last task completed.
    pub makespan: SimTime,
    /// Per-task `(start, end)` instants, indexed by [`TaskId`].
    pub spans: Vec<(SimTime, SimTime)>,
    /// Timeline of traced tasks.
    pub trace: Trace,
    /// Total bytes that traversed each port (utilization accounting).
    pub port_bytes: std::collections::HashMap<Port, f64>,
    /// Performance counters (see [`SimStats`]; not simulated semantics).
    pub stats: SimStats,
}

impl SimReport {
    /// Span of one task.
    pub fn span(&self, id: TaskId) -> (SimTime, SimTime) {
        self.spans[id.0]
    }

    /// Duration of one task.
    pub fn duration(&self, id: TaskId) -> SimDuration {
        let (s, e) = self.spans[id.0];
        e.since(s)
    }

    /// Fraction of a port's capacity used over the whole makespan
    /// (`bytes / (capacity · makespan)`); 0.0 for unused ports or an empty
    /// schedule.
    pub fn port_utilization(&self, cluster: &ClusterSpec, port: Port) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        let bytes = self.port_bytes.get(&port).copied().unwrap_or(0.0);
        bytes / (cluster.port_capacity(port) * secs)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// A kernel completes; the generation invalidates completions scheduled
    /// before a fault changed the rank's compute speed.
    ComputeDone(TaskId, u64),
    NetCheck(u64),
    /// A fault window opens, closes, or a crash fires at this instant.
    Fault,
}

/// A kernel currently occupying a stream, tracked so fault boundaries can
/// settle partial progress and reschedule the completion.
struct RunningKernel {
    task: TaskId,
    /// Nominal (full-speed) nanoseconds of work left as of `since`.
    left_ns: f64,
    /// Instant the current speed segment began.
    since: SimTime,
}

#[derive(Default)]
struct StreamState {
    busy: bool,
    queue: VecDeque<TaskId>,
    running: Option<RunningKernel>,
}

/// Wall-clock duration for `left_ns` nominal nanoseconds at `speed`.
///
/// Full speed takes the exact integer path: `from_secs_f64(ns / 1e9)` is not
/// bit-exact for all integers (f64 division rounds), and fault-free runs must
/// reproduce the pre-fault engine schedule bit for bit.
fn kernel_eta(left_ns: f64, speed: f64) -> SimDuration {
    if speed == 1.0 {
        SimDuration::from_nanos(left_ns.ceil() as u64)
    } else {
        SimDuration::from_secs_f64(left_ns / (speed * 1e9))
    }
}

/// Builds and runs one task DAG over a cluster.
pub struct Simulator {
    cluster: ClusterSpec,
    tasks: Vec<TaskSpec>,
    /// Worker-pool width handed to the flow network (1 ⇒ sequential).
    workers: usize,
    /// Optional override of the network's parallel-dispatch threshold.
    par_threshold: Option<usize>,
}

impl Simulator {
    /// Creates a simulator for `cluster`.
    ///
    /// The rebalance worker count defaults to
    /// [`crate::pool::workers_from_env`] (`ZEPPELIN_SIM_WORKERS`, else
    /// sequential); see [`Simulator::set_workers`].
    ///
    /// # Panics
    ///
    /// Panics if the cluster fails validation; construct clusters through the
    /// presets or validate before use.
    pub fn new(cluster: &ClusterSpec) -> Self {
        cluster.validate().expect("invalid cluster");
        Simulator {
            cluster: cluster.clone(),
            tasks: Vec::new(),
            workers: crate::pool::workers_from_env(),
            par_threshold: None,
        }
    }

    /// Sets the worker-pool width used for network rebalances (clamped to
    /// ≥ 1). Purely a wall-clock knob: reports are bit-identical at any
    /// width.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Worker-pool width currently in effect.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Overrides the minimum component-flow count before rebalances fan out
    /// to the pool (test/bench knob; see
    /// [`FlowNetwork::set_parallel_threshold`]).
    pub fn set_parallel_threshold(&mut self, flows: usize) {
        self.par_threshold = Some(flows);
    }

    /// The cluster this simulator runs on.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Number of tasks added so far.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Adds a task and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownDependency`] if a dependency id is not
    /// smaller than the new task's id (forward references are how cycles
    /// would sneak in), and [`SimError::EmptyFlowPath`] for a transfer with
    /// no ports.
    pub fn add_task(&mut self, spec: TaskSpec) -> Result<TaskId, SimError> {
        let id = TaskId(self.tasks.len());
        for &d in &spec.deps {
            if d.0 >= id.0 {
                return Err(SimError::UnknownDependency {
                    task: id.0,
                    dep: d.0,
                });
            }
        }
        if let TaskKind::Transfer { path, .. } = &spec.kind {
            if path.is_empty() {
                return Err(SimError::EmptyFlowPath { task: id.0 });
            }
        }
        self.tasks.push(spec);
        Ok(id)
    }

    /// Convenience: adds a compute task.
    pub fn compute(
        &mut self,
        rank: Rank,
        stream: Stream,
        duration: SimDuration,
        deps: Vec<TaskId>,
        trace: Option<TraceInfo>,
    ) -> Result<TaskId, SimError> {
        self.add_task(TaskSpec {
            kind: TaskKind::Compute {
                rank,
                stream,
                duration,
            },
            deps,
            trace,
        })
    }

    /// Convenience: adds a transfer task.
    pub fn transfer(
        &mut self,
        bytes: f64,
        path: Vec<Port>,
        deps: Vec<TaskId>,
        trace: Option<TraceInfo>,
    ) -> Result<TaskId, SimError> {
        self.add_task(TaskSpec {
            kind: TaskKind::Transfer { bytes, path },
            deps,
            trace,
        })
    }

    /// Convenience: adds a zero-cost marker joining `deps`.
    pub fn marker(&mut self, deps: Vec<TaskId>) -> Result<TaskId, SimError> {
        self.add_task(TaskSpec {
            kind: TaskKind::Marker,
            deps,
            trace: None,
        })
    }

    /// Runs the DAG to completion on healthy hardware.
    ///
    /// Equivalent to [`Simulator::run_with_faults`] with an empty schedule.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DependencyCycle`] if some tasks never became
    /// ready (unreachable with the forward-reference check, kept as a
    /// defensive invariant).
    pub fn run(&self) -> Result<SimReport, SimError> {
        self.run_with_faults(&FaultSchedule::default())
    }

    /// Runs the DAG to completion under a scripted [`FaultSchedule`].
    ///
    /// GPU slowdown windows stretch kernels (partial progress is settled at
    /// every window boundary), NIC degradations and flaps re-rate in-flight
    /// flows through the incremental max-min allocator, and rank crashes
    /// abort the run if any task assigned to the dead rank has not finished.
    /// With an empty schedule the produced report is bit-for-bit identical
    /// to [`Simulator::run`].
    ///
    /// # Errors
    ///
    /// - [`SimError::InvalidTopology`] if the schedule references ranks or
    ///   NICs outside the cluster or has malformed windows;
    /// - [`SimError::FaultBeforeStart`] if a rank is dead at time zero yet
    ///   the DAG assigns work to it;
    /// - [`SimError::RankUnavailable`] if a crash fires while work assigned
    ///   to the rank is still pending;
    /// - [`SimError::DependencyCycle`] as for [`Simulator::run`].
    pub fn run_with_faults(&self, faults: &FaultSchedule) -> Result<SimReport, SimError> {
        faults.validate(&self.cluster)?;
        let n = self.tasks.len();

        // Ranks referenced by crash events, with the ids of every task that
        // needs that rank alive (kernels on it, transfers through its
        // NVLink/PCIe ports — NICs are node-shared and handled as flaps).
        let crash_ranks: BTreeSet<Rank> = faults
            .crashes_in(SimTime::ZERO, SimTime::MAX)
            .into_iter()
            .map(|(rank, _)| rank)
            .collect();
        let mut rank_tasks: HashMap<Rank, Vec<usize>> = HashMap::new();
        if !crash_ranks.is_empty() {
            let mut touched: Vec<Rank> = Vec::new();
            for (i, t) in self.tasks.iter().enumerate() {
                touched.clear();
                match &t.kind {
                    TaskKind::Compute { rank, .. } => touched.push(*rank),
                    TaskKind::Transfer { path, .. } => {
                        for &p in path {
                            match p {
                                Port::NvlinkOut(r)
                                | Port::NvlinkIn(r)
                                | Port::PcieOut(r)
                                | Port::PcieIn(r) => touched.push(r),
                                Port::NicTx(_) | Port::NicRx(_) => {}
                            }
                        }
                    }
                    TaskKind::Marker => {}
                }
                touched.sort_unstable();
                touched.dedup();
                for &r in &touched {
                    if crash_ranks.contains(&r) {
                        rank_tasks.entry(r).or_default().push(i);
                    }
                }
            }
            // A rank dead at t=0 with work assigned can never make progress.
            for (rank, _) in faults.crashes_in(SimTime::ZERO, SimTime::from_nanos(1)) {
                if rank_tasks.get(&rank).is_some_and(|ts| !ts.is_empty()) {
                    return Err(SimError::FaultBeforeStart { rank });
                }
            }
        }

        // Per-rank compute speed and per-NIC capacity factor at time zero.
        let slow_ranks = faults.slowdown_ranks();
        let affected_nics = faults.affected_nics();
        let mut kernel_speed = vec![1.0f64; self.cluster.total_gpus()];
        for &r in &slow_ranks {
            kernel_speed[r] = faults.speed_at(r, SimTime::ZERO);
        }
        let mut nic_factor: HashMap<usize, f64> =
            affected_nics.iter().map(|&nic| (nic, 1.0)).collect();
        let mut indeg = vec![0usize; n];
        let mut dependents: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for (i, t) in self.tasks.iter().enumerate() {
            indeg[i] = t.deps.len();
            for &d in &t.deps {
                dependents[d.0].push(TaskId(i));
            }
        }

        let mut net = FlowNetwork::new();
        net.set_workers(self.workers);
        if let Some(t) = self.par_threshold {
            net.set_parallel_threshold(t);
        }
        // Dense side table: flow arena slot → owning task id (slots are
        // recycled by the network, so entries are reset as flows finish).
        let mut flow_task: Vec<usize> = Vec::new();
        let mut port_bytes: HashMap<Port, f64> = HashMap::new();
        // Reused across instants: deduplicated transfer path / drained keys.
        let mut dedup_path: Vec<Port> = Vec::new();
        let mut drained_keys: Vec<FlowKey> = Vec::new();
        // Streams as a dense table: per rank, slot 0 is the compute stream
        // and slot 1+i is Comm(i); dimensions come from a DAG pre-scan.
        let mut comm_streams = 0usize;
        let mut max_rank = 0usize;
        for t in &self.tasks {
            if let TaskKind::Compute { rank, stream, .. } = &t.kind {
                max_rank = max_rank.max(*rank);
                if let Stream::Comm(i) = stream {
                    comm_streams = comm_streams.max(*i as usize + 1);
                }
            }
        }
        let stream_slots = 1 + comm_streams;
        let rank_dim = self.cluster.total_gpus().max(max_rank + 1);
        let mut streams: Vec<StreamState> = Vec::new();
        streams.resize_with(rank_dim * stream_slots, StreamState::default);
        let sidx = |rank: Rank, stream: Stream| -> usize {
            rank * stream_slots
                + match stream {
                    Stream::Compute => 0,
                    Stream::Comm(i) => 1 + i as usize,
                }
        };
        let mut spans = vec![(SimTime::ZERO, SimTime::ZERO); n];
        let mut done = vec![false; n];
        let mut done_count = 0usize;
        let mut now = SimTime::ZERO;
        let mut net_gen: u64 = 0;

        // Arena-backed event heap: entries carry a generation-stamped
        // [`SlabKey`] instead of the payload, so sift-up/down moves small
        // fixed tuples and event slots recycle instead of reallocating.
        let mut event_arena: Slab<Event> = Slab::new();
        let mut events: BinaryHeap<Reverse<(SimTime, u64, SlabKey)>> = BinaryHeap::new();
        let mut seq: u64 = 0;
        let mut events_popped: u64 = 0;
        let push_event = |events: &mut BinaryHeap<Reverse<(SimTime, u64, SlabKey)>>,
                          arena: &mut Slab<Event>,
                          t: SimTime,
                          ev: Event,
                          seq: &mut u64| {
            // Ordering is (time, insertion seq); seq is unique, so the slab
            // key never decides and pop order matches the pre-arena engine.
            *seq += 1;
            events.push(Reverse((t, *seq, arena.insert(ev))));
        };

        // Fault boundaries enter the heap first: their low sequence numbers
        // make them pop before completions at the same instant, so capacity
        // and speed changes apply before same-instant launches, and a crash
        // at t kills work that would have finished exactly at t (windows are
        // half-open).
        for t in faults.boundaries() {
            push_event(&mut events, &mut event_arena, t, Event::Fault, &mut seq);
        }
        // NIC windows already open at time zero (the t=0 boundary pops only
        // after the first launch phase below).
        for &nicn in &affected_nics {
            let f = faults.nic_factor_at(nicn, SimTime::ZERO);
            if f != 1.0 {
                nic_factor.insert(nicn, f);
                let bw = self.cluster.node.nic.bw;
                net.set_port_capacity(Port::NicTx(nicn), bw * f);
                net.set_port_capacity(Port::NicRx(nicn), bw * f);
            }
        }
        // Per-task generation stamp; bumped when a speed change reschedules
        // a running kernel, invalidating the previously queued completion.
        let mut compute_gen = vec![0u64; n];

        // Work list of tasks that just became ready.
        let mut ready: VecDeque<TaskId> = (0..n).filter(|&i| indeg[i] == 0).map(TaskId).collect();

        macro_rules! reschedule_net {
            () => {
                net_gen += 1;
                if let Some(t) = net.next_completion() {
                    push_event(
                        &mut events,
                        &mut event_arena,
                        t.max(now),
                        Event::NetCheck(net_gen),
                        &mut seq,
                    );
                }
            };
        }

        loop {
            // Launch everything that is ready at the current instant.
            let mut net_dirty = false;
            while let Some(id) = ready.pop_front() {
                let task = &self.tasks[id.0];
                match &task.kind {
                    TaskKind::Marker => {
                        spans[id.0] = (now, now);
                        done[id.0] = true;
                        done_count += 1;
                        for &dep in &dependents[id.0] {
                            indeg[dep.0] -= 1;
                            if indeg[dep.0] == 0 {
                                ready.push_back(dep);
                            }
                        }
                    }
                    TaskKind::Compute { rank, stream, .. } => {
                        let st = &mut streams[sidx(*rank, *stream)];
                        st.queue.push_back(id);
                        if !st.busy {
                            st.busy = true;
                            let head = st.queue.pop_front().expect("just pushed");
                            let TaskKind::Compute { rank, duration, .. } = self.tasks[head.0].kind
                            else {
                                unreachable!("compute queue holds compute tasks")
                            };
                            let left_ns = duration.as_nanos() as f64;
                            let speed = kernel_speed.get(rank).copied().unwrap_or(1.0);
                            spans[head.0].0 = now;
                            st.running = Some(RunningKernel {
                                task: head,
                                left_ns,
                                since: now,
                            });
                            push_event(
                                &mut events,
                                &mut event_arena,
                                now + kernel_eta(left_ns, speed),
                                Event::ComputeDone(head, compute_gen[head.0]),
                                &mut seq,
                            );
                        }
                    }
                    TaskKind::Transfer { bytes, path } => {
                        spans[id.0].0 = now;
                        if *bytes <= 0.0 {
                            // Nothing to move; completes instantly.
                            spans[id.0].1 = now;
                            done[id.0] = true;
                            done_count += 1;
                            for &dep in &dependents[id.0] {
                                indeg[dep.0] -= 1;
                                if indeg[dep.0] == 0 {
                                    ready.push_back(dep);
                                }
                            }
                        } else {
                            if !net_dirty {
                                // One clock advance and one rate rebalance
                                // cover every flow launched at this instant.
                                net.advance_to(now);
                                net.begin_update();
                                net_dirty = true;
                            }
                            dedup_path.clear();
                            dedup_path.extend_from_slice(path);
                            dedup_path.sort_unstable();
                            dedup_path.dedup();
                            for &port in &dedup_path {
                                *port_bytes.entry(port).or_insert(0.0) += *bytes;
                            }
                            let key = net.start_flow_deduped(*bytes, &dedup_path, |p| {
                                let f = match p {
                                    Port::NicTx(nicn) | Port::NicRx(nicn) => {
                                        nic_factor.get(&nicn).copied().unwrap_or(1.0)
                                    }
                                    _ => 1.0,
                                };
                                self.cluster.port_capacity(p) * f
                            });
                            let slot = key.slot();
                            if flow_task.len() <= slot {
                                flow_task.resize(slot + 1, usize::MAX);
                            }
                            flow_task[slot] = id.0;
                        }
                    }
                }
            }
            if net_dirty {
                net.commit_update();
                reschedule_net!();
            }

            // Fault boundaries can outlive the workload; once every task is
            // done the remaining events are irrelevant (in particular a
            // crash after the last completion must not fail the run).
            if done_count == n {
                break;
            }

            // Pull the next event; its payload lives in (and vacates) the
            // arena, keyed by a generation-stamped slab key.
            let Some(Reverse((t, _, key))) = events.pop() else {
                break;
            };
            let ev = event_arena.remove(key);
            events_popped += 1;
            now = t;
            match ev {
                Event::ComputeDone(id, gen) => {
                    if gen != compute_gen[id.0] {
                        continue; // Stale: a fault rescheduled this kernel.
                    }
                    spans[id.0].1 = now;
                    done[id.0] = true;
                    done_count += 1;
                    // Free the stream and start the next queued kernel.
                    let TaskKind::Compute { rank, stream, .. } = self.tasks[id.0].kind else {
                        unreachable!("compute-done for non-compute task")
                    };
                    let st = &mut streams[sidx(rank, stream)];
                    st.running = None;
                    if let Some(next) = st.queue.pop_front() {
                        let TaskKind::Compute { duration, .. } = self.tasks[next.0].kind else {
                            unreachable!("compute queue holds compute tasks")
                        };
                        let left_ns = duration.as_nanos() as f64;
                        let speed = kernel_speed.get(rank).copied().unwrap_or(1.0);
                        spans[next.0].0 = now;
                        st.running = Some(RunningKernel {
                            task: next,
                            left_ns,
                            since: now,
                        });
                        push_event(
                            &mut events,
                            &mut event_arena,
                            now + kernel_eta(left_ns, speed),
                            Event::ComputeDone(next, compute_gen[next.0]),
                            &mut seq,
                        );
                    } else {
                        st.busy = false;
                    }
                    for &dep in &dependents[id.0] {
                        indeg[dep.0] -= 1;
                        if indeg[dep.0] == 0 {
                            ready.push_back(dep);
                        }
                    }
                }
                Event::NetCheck(generation) => {
                    if generation != net_gen {
                        continue; // Stale: the flow set changed since scheduling.
                    }
                    net.advance_to(now);
                    drained_keys.clear();
                    net.collect_drained(&mut drained_keys);
                    if drained_keys.is_empty() {
                        // Rounding moved completion past this instant; re-arm.
                        reschedule_net!();
                        continue;
                    }
                    // Batch the removals: one rebalance for the whole
                    // completion group instead of one per finished flow.
                    net.begin_update();
                    for &key in &drained_keys {
                        net.finish_flow(key);
                        let owner = std::mem::replace(&mut flow_task[key.slot()], usize::MAX);
                        debug_assert_ne!(owner, usize::MAX, "flow has owner task");
                        let id = TaskId(owner);
                        spans[id.0].1 = now;
                        done[id.0] = true;
                        done_count += 1;
                        for &dep in &dependents[id.0] {
                            indeg[dep.0] -= 1;
                            if indeg[dep.0] == 0 {
                                ready.push_back(dep);
                            }
                        }
                    }
                    net.commit_update();
                    reschedule_net!();
                }
                Event::Fault => {
                    // Crashes first: any unfinished work on a dead rank is
                    // unrecoverable, and at equal instants the crash wins
                    // (windows are half-open, so t is inside the fault).
                    let next_ns = SimTime::from_nanos(now.as_nanos().saturating_add(1));
                    for (rank, at) in faults.crashes_in(now, next_ns) {
                        let pending = rank_tasks
                            .get(&rank)
                            .map(|ts| ts.iter().filter(|&&i| !done[i]).count())
                            .unwrap_or(0);
                        if pending > 0 {
                            return Err(SimError::RankUnavailable { rank, at, pending });
                        }
                    }
                    // Re-rate NICs whose capacity factor changed here; one
                    // batched rebalance covers every affected port.
                    let mut nic_dirty = false;
                    for &nicn in &affected_nics {
                        let f = faults.nic_factor_at(nicn, now);
                        if f != nic_factor[&nicn] {
                            if !nic_dirty {
                                net.advance_to(now);
                                net.begin_update();
                                nic_dirty = true;
                            }
                            let bw = self.cluster.node.nic.bw;
                            net.set_port_capacity(Port::NicTx(nicn), bw * f);
                            net.set_port_capacity(Port::NicRx(nicn), bw * f);
                            nic_factor.insert(nicn, f);
                        }
                    }
                    if nic_dirty {
                        net.commit_update();
                        reschedule_net!();
                    }
                    // Settle running kernels on ranks whose speed changed
                    // and reschedule their completions at the new speed.
                    for &r in &slow_ranks {
                        let s = faults.speed_at(r, now);
                        let old = kernel_speed[r];
                        if s == old {
                            continue;
                        }
                        kernel_speed[r] = s;
                        // Slot order (Compute, then Comm(0..)) matches the
                        // sorted-key order of the old map-based table, so
                        // event sequence numbers are unchanged.
                        for slot in 0..stream_slots {
                            let st = &mut streams[r * stream_slots + slot];
                            if let Some(run) = st.running.as_mut() {
                                let elapsed = now.since(run.since).as_nanos() as f64;
                                run.left_ns = (run.left_ns - elapsed * old).max(0.0);
                                run.since = now;
                                compute_gen[run.task.0] += 1;
                                push_event(
                                    &mut events,
                                    &mut event_arena,
                                    now + kernel_eta(run.left_ns, s),
                                    Event::ComputeDone(run.task, compute_gen[run.task.0]),
                                    &mut seq,
                                );
                            }
                        }
                    }
                }
            }
        }

        if done_count != n {
            return Err(SimError::DependencyCycle {
                stuck: n - done_count,
            });
        }

        let makespan = spans.iter().map(|&(_, e)| e).max().unwrap_or(SimTime::ZERO);
        let mut trace = Trace::new();
        for (i, task) in self.tasks.iter().enumerate() {
            if let Some(info) = &task.trace {
                trace.push(TraceEvent {
                    rank: info.rank,
                    category: info.category,
                    label: info.label.clone(),
                    start: spans[i].0,
                    end: spans[i].1,
                });
            }
        }
        Ok(SimReport {
            makespan,
            spans,
            trace,
            port_bytes,
            stats: SimStats {
                events: events_popped,
                net: net.stats().clone(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::tiny_cluster;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn empty_dag_finishes_at_zero() {
        let sim = Simulator::new(&tiny_cluster(1, 2));
        let r = sim.run().unwrap();
        assert_eq!(r.makespan, SimTime::ZERO);
    }

    #[test]
    fn sequential_dependencies_accumulate() {
        let mut sim = Simulator::new(&tiny_cluster(1, 2));
        let a = sim
            .compute(0, Stream::Compute, ms(2), vec![], None)
            .unwrap();
        let b = sim
            .compute(0, Stream::Compute, ms(3), vec![a], None)
            .unwrap();
        let r = sim.run().unwrap();
        assert_eq!(r.makespan.as_nanos(), 5_000_000);
        assert_eq!(r.span(b).0.as_nanos(), 2_000_000);
    }

    #[test]
    fn independent_tasks_on_different_gpus_run_in_parallel() {
        let mut sim = Simulator::new(&tiny_cluster(1, 2));
        sim.compute(0, Stream::Compute, ms(4), vec![], None)
            .unwrap();
        sim.compute(1, Stream::Compute, ms(4), vec![], None)
            .unwrap();
        let r = sim.run().unwrap();
        assert_eq!(r.makespan.as_nanos(), 4_000_000);
    }

    #[test]
    fn same_stream_serializes_independent_tasks() {
        let mut sim = Simulator::new(&tiny_cluster(1, 2));
        sim.compute(0, Stream::Compute, ms(4), vec![], None)
            .unwrap();
        sim.compute(0, Stream::Compute, ms(4), vec![], None)
            .unwrap();
        let r = sim.run().unwrap();
        assert_eq!(r.makespan.as_nanos(), 8_000_000);
    }

    #[test]
    fn different_streams_on_one_gpu_overlap() {
        let mut sim = Simulator::new(&tiny_cluster(1, 2));
        sim.compute(0, Stream::Compute, ms(4), vec![], None)
            .unwrap();
        sim.compute(0, Stream::Comm(0), ms(4), vec![], None)
            .unwrap();
        let r = sim.run().unwrap();
        assert_eq!(r.makespan.as_nanos(), 4_000_000);
    }

    #[test]
    fn transfer_duration_matches_bandwidth() {
        let c = tiny_cluster(1, 2);
        let mut sim = Simulator::new(&c);
        // 200 GB over a 200 GB/s NVLink pair: 1 second.
        sim.transfer(200e9, c.direct_path(0, 1), vec![], None)
            .unwrap();
        let r = sim.run().unwrap();
        assert!((r.makespan.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn compute_and_transfer_overlap() {
        let c = tiny_cluster(1, 2);
        let mut sim = Simulator::new(&c);
        sim.compute(
            0,
            Stream::Compute,
            SimDuration::from_secs_f64(1.0),
            vec![],
            None,
        )
        .unwrap();
        sim.transfer(200e9, c.direct_path(0, 1), vec![], None)
            .unwrap();
        let r = sim.run().unwrap();
        assert!((r.makespan.as_secs_f64() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn contending_transfers_slow_each_other() {
        let c = tiny_cluster(2, 1);
        let mut sim = Simulator::new(&c);
        // Two flows out of the same NIC (node0 gpu0 -> node1 gpu0): the
        // tiny cluster has 1 GPU and 1 NIC per node, so they share 12.5 GB/s.
        sim.transfer(12.5e9, c.direct_path(0, 1), vec![], None)
            .unwrap();
        sim.transfer(12.5e9, c.direct_path(0, 1), vec![], None)
            .unwrap();
        let r = sim.run().unwrap();
        assert!((r.makespan.as_secs_f64() - 2.0).abs() < 1e-5);
    }

    #[test]
    fn dependent_transfer_starts_after_compute() {
        let c = tiny_cluster(1, 2);
        let mut sim = Simulator::new(&c);
        let a = sim
            .compute(
                0,
                Stream::Compute,
                SimDuration::from_secs_f64(0.5),
                vec![],
                None,
            )
            .unwrap();
        let t = sim
            .transfer(100e9, c.direct_path(0, 1), vec![a], None)
            .unwrap();
        let r = sim.run().unwrap();
        assert!((r.span(t).0.as_secs_f64() - 0.5).abs() < 1e-6);
        assert!((r.makespan.as_secs_f64() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn staggered_contention_releases_bandwidth() {
        let c = tiny_cluster(2, 1);
        let mut sim = Simulator::new(&c);
        // Flow A alone for 1 s, then flow B joins (dep on a 1 s compute).
        sim.transfer(25e9, c.direct_path(0, 1), vec![], None)
            .unwrap();
        let gate = sim
            .compute(
                0,
                Stream::Compute,
                SimDuration::from_secs_f64(1.0),
                vec![],
                None,
            )
            .unwrap();
        let b = sim
            .transfer(12.5e9, c.direct_path(0, 1), vec![gate], None)
            .unwrap();
        let r = sim.run().unwrap();
        // A: 12.5 GB alone (1 s), then shares -> 12.5 GB left at 6.25 GB/s
        // would be 2 s... max-min: both at 6.25 GB/s after t=1.
        // A finishes at 1 + 12.5/6.25 = 3 s; B moved 12.5 GB by then at
        // 6.25 GB/s = 2 s of its own... B needs 12.5/6.25 = 2 s -> done at 3 s.
        assert!((r.makespan.as_secs_f64() - 3.0).abs() < 1e-4);
        assert!((r.span(b).0.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_byte_transfer_is_instant() {
        let c = tiny_cluster(1, 2);
        let mut sim = Simulator::new(&c);
        let t = sim
            .transfer(0.0, c.direct_path(0, 1), vec![], None)
            .unwrap();
        let after = sim
            .compute(0, Stream::Compute, ms(1), vec![t], None)
            .unwrap();
        let r = sim.run().unwrap();
        assert_eq!(r.span(t).0, r.span(t).1);
        assert_eq!(r.span(after).0, SimTime::ZERO);
    }

    #[test]
    fn markers_join_without_cost() {
        let mut sim = Simulator::new(&tiny_cluster(1, 2));
        let a = sim
            .compute(0, Stream::Compute, ms(1), vec![], None)
            .unwrap();
        let b = sim
            .compute(1, Stream::Compute, ms(2), vec![], None)
            .unwrap();
        let m = sim.marker(vec![a, b]).unwrap();
        let after = sim
            .compute(0, Stream::Compute, ms(1), vec![m], None)
            .unwrap();
        let r = sim.run().unwrap();
        assert_eq!(r.span(after).0.as_nanos(), 2_000_000);
        assert_eq!(r.makespan.as_nanos(), 3_000_000);
    }

    #[test]
    fn forward_dependency_is_rejected() {
        let mut sim = Simulator::new(&tiny_cluster(1, 2));
        let err = sim
            .add_task(TaskSpec {
                kind: TaskKind::Marker,
                deps: vec![TaskId(5)],
                trace: None,
            })
            .unwrap_err();
        assert!(matches!(err, SimError::UnknownDependency { .. }));
    }

    #[test]
    fn empty_transfer_path_is_rejected() {
        let mut sim = Simulator::new(&tiny_cluster(1, 2));
        let err = sim.transfer(1.0, vec![], vec![], None).unwrap_err();
        assert!(matches!(err, SimError::EmptyFlowPath { .. }));
    }

    #[test]
    fn trace_records_attributed_tasks_only() {
        let mut sim = Simulator::new(&tiny_cluster(1, 2));
        sim.compute(
            0,
            Stream::Compute,
            ms(1),
            vec![],
            Some(TraceInfo {
                rank: 0,
                category: TraceCategory::AttentionCompute,
                label: "attn".into(),
            }),
        )
        .unwrap();
        sim.compute(1, Stream::Compute, ms(1), vec![], None)
            .unwrap();
        let r = sim.run().unwrap();
        assert_eq!(r.trace.events().len(), 1);
        assert_eq!(r.trace.events()[0].label, "attn");
    }

    #[test]
    fn port_bytes_account_every_transfer() {
        let c = tiny_cluster(2, 1);
        let mut sim = Simulator::new(&c);
        sim.transfer(3e9, c.direct_path(0, 1), vec![], None)
            .unwrap();
        sim.transfer(2e9, c.direct_path(0, 1), vec![], None)
            .unwrap();
        sim.transfer(1e9, c.direct_path(1, 0), vec![], None)
            .unwrap();
        let r = sim.run().unwrap();
        use crate::topology::Port;
        assert!((r.port_bytes[&Port::NicTx(0)] - 5e9).abs() < 1.0);
        assert!((r.port_bytes[&Port::NicTx(1)] - 1e9).abs() < 1.0);
        assert!((r.port_bytes[&Port::NicRx(1)] - 5e9).abs() < 1.0);
        // Utilization: 5 GB over the makespan at 12.5 GB/s.
        let u = r.port_utilization(&c, Port::NicTx(0));
        assert!(u > 0.9 && u <= 1.0 + 1e-9, "utilization {u}");
        // Unused port reads zero.
        assert_eq!(r.port_utilization(&c, Port::NvlinkOut(0)), 0.0);
    }

    #[test]
    fn determinism_same_inputs_same_schedule() {
        let build = || {
            let c = tiny_cluster(2, 2);
            let mut sim = Simulator::new(&c);
            let mut last = None;
            for i in 0..20 {
                let deps = last.map(|l| vec![l]).unwrap_or_default();
                let t = if i % 3 == 0 {
                    sim.transfer(
                        1e9 * (i + 1) as f64,
                        c.direct_path(i % 4, (i + 1) % 4),
                        deps,
                        None,
                    )
                    .unwrap()
                } else {
                    sim.compute(i % 4, Stream::Compute, ms(i as u64 % 5 + 1), deps, None)
                        .unwrap()
                };
                last = Some(t);
                if i % 7 == 0 {
                    sim.transfer(5e8, c.direct_path((i + 2) % 4, (i + 3) % 4), vec![], None)
                        .unwrap();
                }
            }
            sim.run().unwrap()
        };
        let r1 = build();
        let r2 = build();
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.spans.len(), r2.spans.len());
        for (a, b) in r1.spans.iter().zip(&r2.spans) {
            assert_eq!(a, b);
        }
    }

    mod faults {
        use super::*;
        use crate::fault::FaultSchedule;
        use crate::time::SimTime;

        fn at_ms(v: u64) -> SimTime {
            SimTime::from_nanos(v * 1_000_000)
        }

        #[test]
        fn empty_schedule_matches_plain_run_bitwise() {
            let c = tiny_cluster(2, 2);
            let mut sim = Simulator::new(&c);
            let a = sim
                .compute(0, Stream::Compute, ms(3), vec![], None)
                .unwrap();
            sim.compute(0, Stream::Compute, ms(2), vec![], None)
                .unwrap();
            sim.transfer(5e9, c.direct_path(0, 2), vec![a], None)
                .unwrap();
            sim.transfer(3e9, c.direct_path(1, 3), vec![], None)
                .unwrap();
            let plain = sim.run().unwrap();
            let faulted = sim.run_with_faults(&FaultSchedule::new()).unwrap();
            assert_eq!(plain.makespan, faulted.makespan);
            assert_eq!(plain.spans, faulted.spans);
        }

        #[test]
        fn slowdown_stretches_kernel() {
            let mut sim = Simulator::new(&tiny_cluster(1, 2));
            let k = sim
                .compute(0, Stream::Compute, ms(10), vec![], None)
                .unwrap();
            // Half speed for the whole run: 10 ms of work takes 20 ms.
            let f = FaultSchedule::new().gpu_slowdown(0, 0.5, SimTime::ZERO, None);
            let r = sim.run_with_faults(&f).unwrap();
            assert!(
                (r.duration(k).as_secs_f64() - 0.020).abs() < 1e-6,
                "duration {}",
                r.duration(k)
            );
        }

        #[test]
        fn slowdown_window_settles_partial_progress() {
            let mut sim = Simulator::new(&tiny_cluster(1, 2));
            sim.compute(0, Stream::Compute, ms(10), vec![], None)
                .unwrap();
            // Half speed during [0, 5ms): 2.5 ms of nominal work done, the
            // remaining 7.5 ms runs at full speed -> ends at 12.5 ms.
            let f = FaultSchedule::new().gpu_slowdown(0, 0.5, SimTime::ZERO, Some(at_ms(5)));
            let r = sim.run_with_faults(&f).unwrap();
            assert!(
                (r.makespan.as_secs_f64() - 0.0125).abs() < 1e-6,
                "makespan {}",
                r.makespan
            );
            // Unaffected ranks are untouched.
            let mut sim2 = Simulator::new(&tiny_cluster(1, 2));
            sim2.compute(1, Stream::Compute, ms(10), vec![], None)
                .unwrap();
            let r2 = sim2.run_with_faults(&f).unwrap();
            assert_eq!(r2.makespan.as_nanos(), 10_000_000);
        }

        #[test]
        fn nic_degrade_stretches_transfer() {
            let c = tiny_cluster(2, 1);
            let mut sim = Simulator::new(&c);
            // 25 GB over a 12.5 GB/s NIC takes 2 s; at half capacity 4 s.
            sim.transfer(25e9, c.direct_path(0, 1), vec![], None)
                .unwrap();
            let f = FaultSchedule::new().nic_degrade(0, 0.5, SimTime::ZERO, None);
            let r = sim.run_with_faults(&f).unwrap();
            assert!(
                (r.makespan.as_secs_f64() - 4.0).abs() < 1e-5,
                "makespan {}",
                r.makespan
            );
        }

        #[test]
        fn link_flap_heals_and_traffic_resumes() {
            let c = tiny_cluster(2, 1);
            let mut sim = Simulator::new(&c);
            // 12.5 GB normally takes 1 s. The NIC flaps for the first
            // second (residual 1e-3), then heals: ~2 s total.
            sim.transfer(12.5e9, c.direct_path(0, 1), vec![], None)
                .unwrap();
            let f = FaultSchedule::new().link_flap(
                0,
                SimTime::ZERO,
                Some(SimTime::from_nanos(1_000_000_000)),
            );
            let r = sim.run_with_faults(&f).unwrap();
            let got = r.makespan.as_secs_f64();
            assert!((got - 2.0).abs() < 0.01, "makespan {got}");
        }

        #[test]
        fn crash_with_pending_work_errors() {
            let mut sim = Simulator::new(&tiny_cluster(1, 2));
            sim.compute(1, Stream::Compute, ms(10), vec![], None)
                .unwrap();
            let f = FaultSchedule::new().rank_crash(1, at_ms(5));
            let err = sim.run_with_faults(&f).unwrap_err();
            assert_eq!(
                err,
                SimError::RankUnavailable {
                    rank: 1,
                    at: at_ms(5),
                    pending: 1
                }
            );
        }

        #[test]
        fn crash_after_completion_is_harmless() {
            let mut sim = Simulator::new(&tiny_cluster(1, 2));
            sim.compute(1, Stream::Compute, ms(10), vec![], None)
                .unwrap();
            let f = FaultSchedule::new().rank_crash(1, at_ms(20));
            let r = sim.run_with_faults(&f).unwrap();
            assert_eq!(r.makespan.as_nanos(), 10_000_000);
        }

        #[test]
        fn crash_of_idle_rank_is_harmless() {
            let mut sim = Simulator::new(&tiny_cluster(1, 2));
            sim.compute(0, Stream::Compute, ms(10), vec![], None)
                .unwrap();
            let f = FaultSchedule::new().rank_crash(1, at_ms(5));
            let r = sim.run_with_faults(&f).unwrap();
            assert_eq!(r.makespan.as_nanos(), 10_000_000);
        }

        #[test]
        fn crash_kills_pending_transfer_through_its_ports() {
            let c = tiny_cluster(2, 1);
            let mut sim = Simulator::new(&c);
            sim.transfer(25e9, c.direct_path(0, 1), vec![], None)
                .unwrap();
            // Rank 1 is the receiver (PcieIn(1) in the path): its crash
            // mid-transfer dooms the flow.
            let f = FaultSchedule::new().rank_crash(1, at_ms(100));
            let err = sim.run_with_faults(&f).unwrap_err();
            assert!(matches!(err, SimError::RankUnavailable { rank: 1, .. }));
        }

        #[test]
        fn dead_on_arrival_rank_is_reported_before_start() {
            let mut sim = Simulator::new(&tiny_cluster(1, 2));
            sim.compute(0, Stream::Compute, ms(1), vec![], None)
                .unwrap();
            let f = FaultSchedule::new().rank_crash(0, SimTime::ZERO);
            let err = sim.run_with_faults(&f).unwrap_err();
            assert_eq!(err, SimError::FaultBeforeStart { rank: 0 });
        }

        #[test]
        fn invalid_schedule_is_rejected() {
            let sim = Simulator::new(&tiny_cluster(1, 2));
            let f = FaultSchedule::new().rank_crash(99, at_ms(1));
            assert!(matches!(
                sim.run_with_faults(&f),
                Err(SimError::InvalidTopology(_))
            ));
        }

        #[test]
        fn faulted_runs_are_deterministic() {
            let c = tiny_cluster(2, 2);
            let run = |seed: u64| {
                let mut sim = Simulator::new(&c);
                let mut last = None;
                for i in 0..24 {
                    let deps = last.map(|l| vec![l]).unwrap_or_default();
                    let t = if i % 3 == 0 {
                        sim.transfer(
                            2e9 * (i + 1) as f64,
                            c.direct_path(i % 4, (i + 1) % 4),
                            deps,
                            None,
                        )
                        .unwrap()
                    } else {
                        sim.compute(i % 4, Stream::Compute, ms(i as u64 % 5 + 1), deps, None)
                            .unwrap()
                    };
                    last = Some(t);
                }
                let f = FaultSchedule::new()
                    .gpu_slowdown(0, 0.4, at_ms(1), Some(at_ms(9)))
                    .gpu_slowdown(2, 0.7, at_ms(2), None)
                    .nic_degrade(1, 0.3, at_ms(3), Some(at_ms(7)))
                    .link_flap(0, at_ms(5), Some(at_ms(6)))
                    .gpu_slowdown(seed as usize % 4, 0.9, at_ms(4), Some(at_ms(8)));
                sim.run_with_faults(&f).unwrap()
            };
            for seed in 0..4 {
                let a = run(seed);
                let b = run(seed);
                assert_eq!(a.makespan, b.makespan, "seed {seed}");
                assert_eq!(a.spans, b.spans, "seed {seed}");
            }
        }
    }
}

//! Discrete-event execution engine for task DAGs over a simulated cluster.
//!
//! A simulation is a DAG of tasks:
//!
//! - **Compute** tasks occupy one stream of one GPU for a fixed duration;
//!   tasks on the same `(rank, stream)` pair serialize in the order they
//!   become ready (a CUDA-stream analogue).
//! - **Transfer** tasks move bytes over a port path through the shared
//!   [`FlowNetwork`]; concurrent transfers contend for bandwidth and their
//!   durations emerge from max-min fair sharing.
//! - **Marker** tasks are zero-cost join/fork points.
//!
//! Dependencies must point at already-created tasks, which statically rules
//! out cycles. The engine is fully deterministic: identical inputs produce
//! identical schedules.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use crate::error::SimError;
use crate::network::{FlowKey, FlowNetwork};
use crate::time::{SimDuration, SimTime};
use crate::topology::{ClusterSpec, Port, Rank};
use crate::trace::{Trace, TraceCategory, TraceEvent};

/// Identifies a task within one [`Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

/// Logical execution stream on a GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stream {
    /// The main computation stream (attention / GEMM kernels).
    Compute,
    /// A communication-launch stream (kernel-launch serialization for
    /// copies that are not modelled as network flows).
    Comm(u8),
}

/// What a task does when it runs.
#[derive(Debug, Clone)]
pub enum TaskKind {
    /// Occupies `(rank, stream)` for `duration`.
    Compute {
        /// GPU executing the kernel.
        rank: Rank,
        /// Stream the kernel serializes on.
        stream: Stream,
        /// Kernel duration.
        duration: SimDuration,
    },
    /// Moves `bytes` across `path` through the shared flow network.
    Transfer {
        /// Bytes to move.
        bytes: f64,
        /// Port path (see [`ClusterSpec::direct_path`] and the routing layer).
        path: Vec<Port>,
    },
    /// Completes instantly once all dependencies complete.
    Marker,
}

/// Trace attribution for a task (optional; untraced tasks still execute).
#[derive(Debug, Clone)]
pub struct TraceInfo {
    /// Rank the event is attributed to in the timeline.
    pub rank: Rank,
    /// Event category (colours lanes in trace viewers).
    pub category: TraceCategory,
    /// Human-readable label.
    pub label: String,
}

/// A task plus its dependencies.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// The work performed.
    pub kind: TaskKind,
    /// Tasks that must complete first; each id must be `<` this task's id.
    pub deps: Vec<TaskId>,
    /// Optional timeline attribution.
    pub trace: Option<TraceInfo>,
}

/// Result of running a simulation to completion.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Instant the last task completed.
    pub makespan: SimTime,
    /// Per-task `(start, end)` instants, indexed by [`TaskId`].
    pub spans: Vec<(SimTime, SimTime)>,
    /// Timeline of traced tasks.
    pub trace: Trace,
    /// Total bytes that traversed each port (utilization accounting).
    pub port_bytes: std::collections::HashMap<Port, f64>,
}

impl SimReport {
    /// Span of one task.
    pub fn span(&self, id: TaskId) -> (SimTime, SimTime) {
        self.spans[id.0]
    }

    /// Duration of one task.
    pub fn duration(&self, id: TaskId) -> SimDuration {
        let (s, e) = self.spans[id.0];
        e.since(s)
    }

    /// Fraction of a port's capacity used over the whole makespan
    /// (`bytes / (capacity · makespan)`); 0.0 for unused ports or an empty
    /// schedule.
    pub fn port_utilization(&self, cluster: &ClusterSpec, port: Port) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        let bytes = self.port_bytes.get(&port).copied().unwrap_or(0.0);
        bytes / (cluster.port_capacity(port) * secs)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    ComputeDone(TaskId),
    NetCheck(u64),
}

#[derive(Default)]
struct StreamState {
    busy: bool,
    queue: VecDeque<TaskId>,
}

/// Builds and runs one task DAG over a cluster.
pub struct Simulator {
    cluster: ClusterSpec,
    tasks: Vec<TaskSpec>,
}

impl Simulator {
    /// Creates a simulator for `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if the cluster fails validation; construct clusters through the
    /// presets or validate before use.
    pub fn new(cluster: &ClusterSpec) -> Self {
        cluster.validate().expect("invalid cluster");
        Simulator {
            cluster: cluster.clone(),
            tasks: Vec::new(),
        }
    }

    /// The cluster this simulator runs on.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Number of tasks added so far.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Adds a task and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownDependency`] if a dependency id is not
    /// smaller than the new task's id (forward references are how cycles
    /// would sneak in), and [`SimError::EmptyFlowPath`] for a transfer with
    /// no ports.
    pub fn add_task(&mut self, spec: TaskSpec) -> Result<TaskId, SimError> {
        let id = TaskId(self.tasks.len());
        for &d in &spec.deps {
            if d.0 >= id.0 {
                return Err(SimError::UnknownDependency {
                    task: id.0,
                    dep: d.0,
                });
            }
        }
        if let TaskKind::Transfer { path, .. } = &spec.kind {
            if path.is_empty() {
                return Err(SimError::EmptyFlowPath { task: id.0 });
            }
        }
        self.tasks.push(spec);
        Ok(id)
    }

    /// Convenience: adds a compute task.
    pub fn compute(
        &mut self,
        rank: Rank,
        stream: Stream,
        duration: SimDuration,
        deps: Vec<TaskId>,
        trace: Option<TraceInfo>,
    ) -> Result<TaskId, SimError> {
        self.add_task(TaskSpec {
            kind: TaskKind::Compute {
                rank,
                stream,
                duration,
            },
            deps,
            trace,
        })
    }

    /// Convenience: adds a transfer task.
    pub fn transfer(
        &mut self,
        bytes: f64,
        path: Vec<Port>,
        deps: Vec<TaskId>,
        trace: Option<TraceInfo>,
    ) -> Result<TaskId, SimError> {
        self.add_task(TaskSpec {
            kind: TaskKind::Transfer { bytes, path },
            deps,
            trace,
        })
    }

    /// Convenience: adds a zero-cost marker joining `deps`.
    pub fn marker(&mut self, deps: Vec<TaskId>) -> Result<TaskId, SimError> {
        self.add_task(TaskSpec {
            kind: TaskKind::Marker,
            deps,
            trace: None,
        })
    }

    /// Runs the DAG to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DependencyCycle`] if some tasks never became
    /// ready (unreachable with the forward-reference check, kept as a
    /// defensive invariant).
    pub fn run(&self) -> Result<SimReport, SimError> {
        let n = self.tasks.len();
        let mut indeg = vec![0usize; n];
        let mut dependents: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for (i, t) in self.tasks.iter().enumerate() {
            indeg[i] = t.deps.len();
            for &d in &t.deps {
                dependents[d.0].push(TaskId(i));
            }
        }

        let mut net = FlowNetwork::new();
        let mut flow_task: HashMap<FlowKey, TaskId> = HashMap::new();
        let mut port_bytes: HashMap<Port, f64> = HashMap::new();
        // Reused across instants: deduplicated transfer path / drained keys.
        let mut dedup_path: Vec<Port> = Vec::new();
        let mut drained_keys: Vec<FlowKey> = Vec::new();
        let mut streams: HashMap<(Rank, Stream), StreamState> = HashMap::new();
        let mut spans = vec![(SimTime::ZERO, SimTime::ZERO); n];
        let mut done = vec![false; n];
        let mut done_count = 0usize;
        let mut now = SimTime::ZERO;
        let mut net_gen: u64 = 0;

        let mut events: BinaryHeap<Reverse<(SimTime, u64, usize, Event)>> = BinaryHeap::new();
        let mut seq: u64 = 0;
        let push_event = |events: &mut BinaryHeap<_>, t: SimTime, ev: Event, seq: &mut u64| {
            // The third tuple element keeps compute-done before net-check at
            // equal instants irrelevant; ordering is (time, insertion seq).
            *seq += 1;
            events.push(Reverse((t, *seq, 0usize, ev)));
        };

        // Work list of tasks that just became ready.
        let mut ready: VecDeque<TaskId> = (0..n).filter(|&i| indeg[i] == 0).map(TaskId).collect();

        macro_rules! reschedule_net {
            () => {
                net_gen += 1;
                if let Some(t) = net.next_completion() {
                    push_event(&mut events, t.max(now), Event::NetCheck(net_gen), &mut seq);
                }
            };
        }

        loop {
            // Launch everything that is ready at the current instant.
            let mut net_dirty = false;
            while let Some(id) = ready.pop_front() {
                let task = &self.tasks[id.0];
                match &task.kind {
                    TaskKind::Marker => {
                        spans[id.0] = (now, now);
                        done[id.0] = true;
                        done_count += 1;
                        for &dep in &dependents[id.0] {
                            indeg[dep.0] -= 1;
                            if indeg[dep.0] == 0 {
                                ready.push_back(dep);
                            }
                        }
                    }
                    TaskKind::Compute { rank, stream, .. } => {
                        let st = streams.entry((*rank, *stream)).or_default();
                        st.queue.push_back(id);
                        if !st.busy {
                            st.busy = true;
                            let head = st.queue.pop_front().expect("just pushed");
                            let TaskKind::Compute { duration, .. } = self.tasks[head.0].kind else {
                                unreachable!("compute queue holds compute tasks")
                            };
                            spans[head.0].0 = now;
                            push_event(
                                &mut events,
                                now + duration,
                                Event::ComputeDone(head),
                                &mut seq,
                            );
                        }
                    }
                    TaskKind::Transfer { bytes, path } => {
                        spans[id.0].0 = now;
                        if *bytes <= 0.0 {
                            // Nothing to move; completes instantly.
                            spans[id.0].1 = now;
                            done[id.0] = true;
                            done_count += 1;
                            for &dep in &dependents[id.0] {
                                indeg[dep.0] -= 1;
                                if indeg[dep.0] == 0 {
                                    ready.push_back(dep);
                                }
                            }
                        } else {
                            if !net_dirty {
                                // One clock advance and one rate rebalance
                                // cover every flow launched at this instant.
                                net.advance_to(now);
                                net.begin_update();
                                net_dirty = true;
                            }
                            dedup_path.clear();
                            dedup_path.extend_from_slice(path);
                            dedup_path.sort_unstable();
                            dedup_path.dedup();
                            for &port in &dedup_path {
                                *port_bytes.entry(port).or_insert(0.0) += *bytes;
                            }
                            let key = net.start_flow_deduped(*bytes, &dedup_path, |p| {
                                self.cluster.port_capacity(p)
                            });
                            flow_task.insert(key, id);
                        }
                    }
                }
            }
            if net_dirty {
                net.commit_update();
                reschedule_net!();
            }

            // Pull the next event.
            let Some(Reverse((t, _, _, ev))) = events.pop() else {
                break;
            };
            now = t;
            match ev {
                Event::ComputeDone(id) => {
                    spans[id.0].1 = now;
                    done[id.0] = true;
                    done_count += 1;
                    // Free the stream and start the next queued kernel.
                    let TaskKind::Compute { rank, stream, .. } = self.tasks[id.0].kind else {
                        unreachable!("compute-done for non-compute task")
                    };
                    let st = streams.get_mut(&(rank, stream)).expect("stream exists");
                    if let Some(next) = st.queue.pop_front() {
                        let TaskKind::Compute { duration, .. } = self.tasks[next.0].kind else {
                            unreachable!("compute queue holds compute tasks")
                        };
                        spans[next.0].0 = now;
                        push_event(
                            &mut events,
                            now + duration,
                            Event::ComputeDone(next),
                            &mut seq,
                        );
                    } else {
                        st.busy = false;
                    }
                    for &dep in &dependents[id.0] {
                        indeg[dep.0] -= 1;
                        if indeg[dep.0] == 0 {
                            ready.push_back(dep);
                        }
                    }
                }
                Event::NetCheck(generation) => {
                    if generation != net_gen {
                        continue; // Stale: the flow set changed since scheduling.
                    }
                    net.advance_to(now);
                    drained_keys.clear();
                    net.collect_drained(&mut drained_keys);
                    if drained_keys.is_empty() {
                        // Rounding moved completion past this instant; re-arm.
                        reschedule_net!();
                        continue;
                    }
                    // Batch the removals: one rebalance for the whole
                    // completion group instead of one per finished flow.
                    net.begin_update();
                    for &key in &drained_keys {
                        net.finish_flow(key);
                        let id = flow_task.remove(&key).expect("flow has owner task");
                        spans[id.0].1 = now;
                        done[id.0] = true;
                        done_count += 1;
                        for &dep in &dependents[id.0] {
                            indeg[dep.0] -= 1;
                            if indeg[dep.0] == 0 {
                                ready.push_back(dep);
                            }
                        }
                    }
                    net.commit_update();
                    reschedule_net!();
                }
            }
        }

        if done_count != n {
            return Err(SimError::DependencyCycle {
                stuck: n - done_count,
            });
        }

        let makespan = spans.iter().map(|&(_, e)| e).max().unwrap_or(SimTime::ZERO);
        let mut trace = Trace::new();
        for (i, task) in self.tasks.iter().enumerate() {
            if let Some(info) = &task.trace {
                trace.push(TraceEvent {
                    rank: info.rank,
                    category: info.category,
                    label: info.label.clone(),
                    start: spans[i].0,
                    end: spans[i].1,
                });
            }
        }
        Ok(SimReport {
            makespan,
            spans,
            trace,
            port_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::tiny_cluster;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn empty_dag_finishes_at_zero() {
        let sim = Simulator::new(&tiny_cluster(1, 2));
        let r = sim.run().unwrap();
        assert_eq!(r.makespan, SimTime::ZERO);
    }

    #[test]
    fn sequential_dependencies_accumulate() {
        let mut sim = Simulator::new(&tiny_cluster(1, 2));
        let a = sim
            .compute(0, Stream::Compute, ms(2), vec![], None)
            .unwrap();
        let b = sim
            .compute(0, Stream::Compute, ms(3), vec![a], None)
            .unwrap();
        let r = sim.run().unwrap();
        assert_eq!(r.makespan.as_nanos(), 5_000_000);
        assert_eq!(r.span(b).0.as_nanos(), 2_000_000);
    }

    #[test]
    fn independent_tasks_on_different_gpus_run_in_parallel() {
        let mut sim = Simulator::new(&tiny_cluster(1, 2));
        sim.compute(0, Stream::Compute, ms(4), vec![], None)
            .unwrap();
        sim.compute(1, Stream::Compute, ms(4), vec![], None)
            .unwrap();
        let r = sim.run().unwrap();
        assert_eq!(r.makespan.as_nanos(), 4_000_000);
    }

    #[test]
    fn same_stream_serializes_independent_tasks() {
        let mut sim = Simulator::new(&tiny_cluster(1, 2));
        sim.compute(0, Stream::Compute, ms(4), vec![], None)
            .unwrap();
        sim.compute(0, Stream::Compute, ms(4), vec![], None)
            .unwrap();
        let r = sim.run().unwrap();
        assert_eq!(r.makespan.as_nanos(), 8_000_000);
    }

    #[test]
    fn different_streams_on_one_gpu_overlap() {
        let mut sim = Simulator::new(&tiny_cluster(1, 2));
        sim.compute(0, Stream::Compute, ms(4), vec![], None)
            .unwrap();
        sim.compute(0, Stream::Comm(0), ms(4), vec![], None)
            .unwrap();
        let r = sim.run().unwrap();
        assert_eq!(r.makespan.as_nanos(), 4_000_000);
    }

    #[test]
    fn transfer_duration_matches_bandwidth() {
        let c = tiny_cluster(1, 2);
        let mut sim = Simulator::new(&c);
        // 200 GB over a 200 GB/s NVLink pair: 1 second.
        sim.transfer(200e9, c.direct_path(0, 1), vec![], None)
            .unwrap();
        let r = sim.run().unwrap();
        assert!((r.makespan.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn compute_and_transfer_overlap() {
        let c = tiny_cluster(1, 2);
        let mut sim = Simulator::new(&c);
        sim.compute(
            0,
            Stream::Compute,
            SimDuration::from_secs_f64(1.0),
            vec![],
            None,
        )
        .unwrap();
        sim.transfer(200e9, c.direct_path(0, 1), vec![], None)
            .unwrap();
        let r = sim.run().unwrap();
        assert!((r.makespan.as_secs_f64() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn contending_transfers_slow_each_other() {
        let c = tiny_cluster(2, 1);
        let mut sim = Simulator::new(&c);
        // Two flows out of the same NIC (node0 gpu0 -> node1 gpu0): the
        // tiny cluster has 1 GPU and 1 NIC per node, so they share 12.5 GB/s.
        sim.transfer(12.5e9, c.direct_path(0, 1), vec![], None)
            .unwrap();
        sim.transfer(12.5e9, c.direct_path(0, 1), vec![], None)
            .unwrap();
        let r = sim.run().unwrap();
        assert!((r.makespan.as_secs_f64() - 2.0).abs() < 1e-5);
    }

    #[test]
    fn dependent_transfer_starts_after_compute() {
        let c = tiny_cluster(1, 2);
        let mut sim = Simulator::new(&c);
        let a = sim
            .compute(
                0,
                Stream::Compute,
                SimDuration::from_secs_f64(0.5),
                vec![],
                None,
            )
            .unwrap();
        let t = sim
            .transfer(100e9, c.direct_path(0, 1), vec![a], None)
            .unwrap();
        let r = sim.run().unwrap();
        assert!((r.span(t).0.as_secs_f64() - 0.5).abs() < 1e-6);
        assert!((r.makespan.as_secs_f64() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn staggered_contention_releases_bandwidth() {
        let c = tiny_cluster(2, 1);
        let mut sim = Simulator::new(&c);
        // Flow A alone for 1 s, then flow B joins (dep on a 1 s compute).
        sim.transfer(25e9, c.direct_path(0, 1), vec![], None)
            .unwrap();
        let gate = sim
            .compute(
                0,
                Stream::Compute,
                SimDuration::from_secs_f64(1.0),
                vec![],
                None,
            )
            .unwrap();
        let b = sim
            .transfer(12.5e9, c.direct_path(0, 1), vec![gate], None)
            .unwrap();
        let r = sim.run().unwrap();
        // A: 12.5 GB alone (1 s), then shares -> 12.5 GB left at 6.25 GB/s
        // would be 2 s... max-min: both at 6.25 GB/s after t=1.
        // A finishes at 1 + 12.5/6.25 = 3 s; B moved 12.5 GB by then at
        // 6.25 GB/s = 2 s of its own... B needs 12.5/6.25 = 2 s -> done at 3 s.
        assert!((r.makespan.as_secs_f64() - 3.0).abs() < 1e-4);
        assert!((r.span(b).0.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_byte_transfer_is_instant() {
        let c = tiny_cluster(1, 2);
        let mut sim = Simulator::new(&c);
        let t = sim
            .transfer(0.0, c.direct_path(0, 1), vec![], None)
            .unwrap();
        let after = sim
            .compute(0, Stream::Compute, ms(1), vec![t], None)
            .unwrap();
        let r = sim.run().unwrap();
        assert_eq!(r.span(t).0, r.span(t).1);
        assert_eq!(r.span(after).0, SimTime::ZERO);
    }

    #[test]
    fn markers_join_without_cost() {
        let mut sim = Simulator::new(&tiny_cluster(1, 2));
        let a = sim
            .compute(0, Stream::Compute, ms(1), vec![], None)
            .unwrap();
        let b = sim
            .compute(1, Stream::Compute, ms(2), vec![], None)
            .unwrap();
        let m = sim.marker(vec![a, b]).unwrap();
        let after = sim
            .compute(0, Stream::Compute, ms(1), vec![m], None)
            .unwrap();
        let r = sim.run().unwrap();
        assert_eq!(r.span(after).0.as_nanos(), 2_000_000);
        assert_eq!(r.makespan.as_nanos(), 3_000_000);
    }

    #[test]
    fn forward_dependency_is_rejected() {
        let mut sim = Simulator::new(&tiny_cluster(1, 2));
        let err = sim
            .add_task(TaskSpec {
                kind: TaskKind::Marker,
                deps: vec![TaskId(5)],
                trace: None,
            })
            .unwrap_err();
        assert!(matches!(err, SimError::UnknownDependency { .. }));
    }

    #[test]
    fn empty_transfer_path_is_rejected() {
        let mut sim = Simulator::new(&tiny_cluster(1, 2));
        let err = sim.transfer(1.0, vec![], vec![], None).unwrap_err();
        assert!(matches!(err, SimError::EmptyFlowPath { .. }));
    }

    #[test]
    fn trace_records_attributed_tasks_only() {
        let mut sim = Simulator::new(&tiny_cluster(1, 2));
        sim.compute(
            0,
            Stream::Compute,
            ms(1),
            vec![],
            Some(TraceInfo {
                rank: 0,
                category: TraceCategory::AttentionCompute,
                label: "attn".into(),
            }),
        )
        .unwrap();
        sim.compute(1, Stream::Compute, ms(1), vec![], None)
            .unwrap();
        let r = sim.run().unwrap();
        assert_eq!(r.trace.events().len(), 1);
        assert_eq!(r.trace.events()[0].label, "attn");
    }

    #[test]
    fn port_bytes_account_every_transfer() {
        let c = tiny_cluster(2, 1);
        let mut sim = Simulator::new(&c);
        sim.transfer(3e9, c.direct_path(0, 1), vec![], None)
            .unwrap();
        sim.transfer(2e9, c.direct_path(0, 1), vec![], None)
            .unwrap();
        sim.transfer(1e9, c.direct_path(1, 0), vec![], None)
            .unwrap();
        let r = sim.run().unwrap();
        use crate::topology::Port;
        assert!((r.port_bytes[&Port::NicTx(0)] - 5e9).abs() < 1.0);
        assert!((r.port_bytes[&Port::NicTx(1)] - 1e9).abs() < 1.0);
        assert!((r.port_bytes[&Port::NicRx(1)] - 5e9).abs() < 1.0);
        // Utilization: 5 GB over the makespan at 12.5 GB/s.
        let u = r.port_utilization(&c, Port::NicTx(0));
        assert!(u > 0.9 && u <= 1.0 + 1e-9, "utilization {u}");
        // Unused port reads zero.
        assert_eq!(r.port_utilization(&c, Port::NvlinkOut(0)), 0.0);
    }

    #[test]
    fn determinism_same_inputs_same_schedule() {
        let build = || {
            let c = tiny_cluster(2, 2);
            let mut sim = Simulator::new(&c);
            let mut last = None;
            for i in 0..20 {
                let deps = last.map(|l| vec![l]).unwrap_or_default();
                let t = if i % 3 == 0 {
                    sim.transfer(
                        1e9 * (i + 1) as f64,
                        c.direct_path(i % 4, (i + 1) % 4),
                        deps,
                        None,
                    )
                    .unwrap()
                } else {
                    sim.compute(i % 4, Stream::Compute, ms(i as u64 % 5 + 1), deps, None)
                        .unwrap()
                };
                last = Some(t);
                if i % 7 == 0 {
                    sim.transfer(5e8, c.direct_path((i + 2) % 4, (i + 3) % 4), vec![], None)
                        .unwrap();
                }
            }
            sim.run().unwrap()
        };
        let r1 = build();
        let r2 = build();
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.spans.len(), r2.spans.len());
        for (a, b) in r1.spans.iter().zip(&r2.spans) {
            assert_eq!(a, b);
        }
    }
}

//! Generation-stamped slab arena for hot discrete-event state.
//!
//! The engine's event heap used to carry its payload inline in every heap
//! entry; sift-up/sift-down then moved the whole tuple around on every push
//! and pop. A [`Slab`] keeps payloads in recycled slots and hands out a
//! small copyable [`SlabKey`] instead, so heap entries shrink to
//! `(time, seq, key)` and the per-event allocation disappears: freed slots
//! are reused in LIFO order, which also keeps the hot end of the arena in
//! cache.
//!
//! Keys are *generation-stamped*: a slot's stamp is bumped every time it is
//! vacated, so a key that outlives its payload can never silently alias a
//! recycled slot — [`Slab::get`] reports it dead and [`Slab::remove`]
//! panics. The network's flow table uses the same discipline with its own
//! per-slot generation (see `slot_gen` in [`crate::network`]) because its
//! heap invalidation semantics predate this module; both are instances of
//! the pattern documented here.

/// Copyable handle to a slab slot, valid for one occupancy of that slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlabKey {
    idx: u32,
    gen: u32,
}

impl SlabKey {
    /// Slot index this key points at (stable while the entry lives).
    pub fn index(self) -> usize {
        self.idx as usize
    }
}

#[derive(Debug)]
struct Entry<T> {
    /// Bumped on every removal; a key is live iff its stamp matches.
    gen: u32,
    val: Option<T>,
}

/// A free-list slab: O(1) insert and remove with slot recycling.
#[derive(Debug)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slots ever allocated (live + recyclable).
    pub fn slots(&self) -> usize {
        self.entries.len()
    }

    /// Stores `val`, recycling a freed slot when one is available.
    pub fn insert(&mut self, val: T) -> SlabKey {
        self.len += 1;
        match self.free.pop() {
            Some(idx) => {
                let e = &mut self.entries[idx as usize];
                debug_assert!(e.val.is_none(), "free slot holds a value");
                e.val = Some(val);
                SlabKey { idx, gen: e.gen }
            }
            None => {
                let idx = u32::try_from(self.entries.len()).expect("slab capacity exceeds u32");
                self.entries.push(Entry {
                    gen: 0,
                    val: Some(val),
                });
                SlabKey { idx, gen: 0 }
            }
        }
    }

    /// The entry behind `key`, or `None` if the key's generation is stale.
    pub fn get(&self, key: SlabKey) -> Option<&T> {
        let e = self.entries.get(key.idx as usize)?;
        if e.gen != key.gen {
            return None;
        }
        e.val.as_ref()
    }

    /// Removes and returns the entry behind `key`, freeing its slot.
    ///
    /// # Panics
    ///
    /// Panics if the key is stale: its slot was already vacated (and
    /// possibly recycled under a newer generation).
    pub fn remove(&mut self, key: SlabKey) -> T {
        let e = &mut self.entries[key.idx as usize];
        assert_eq!(e.gen, key.gen, "stale slab key");
        let val = e.val.take().expect("live generation holds a value");
        e.gen = e.gen.wrapping_add(1);
        self.free.push(key.idx);
        self.len -= 1;
        val
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.remove(a), "a");
        assert_eq!(s.get(a), None, "removed key is dead");
        assert_eq!(s.remove(b), "b");
        assert!(s.is_empty());
    }

    #[test]
    fn slots_are_recycled_lifo_with_fresh_generations() {
        let mut s = Slab::new();
        let a = s.insert(1u32);
        s.remove(a);
        let b = s.insert(2u32);
        assert_eq!(a.index(), b.index(), "slot recycled");
        assert_ne!(a, b, "generation advanced");
        assert_eq!(s.get(a), None, "old key cannot alias the new entry");
        assert_eq!(s.get(b), Some(&2));
        assert_eq!(s.slots(), 1, "no new slot allocated");
    }

    #[test]
    #[should_panic(expected = "stale slab key")]
    fn double_remove_panics() {
        let mut s = Slab::new();
        let a = s.insert(7u8);
        s.remove(a);
        s.insert(8u8); // Recycles the slot under a new generation.
        s.remove(a);
    }
}

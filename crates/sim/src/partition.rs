//! Flow-network partitioner: incremental connected components over the
//! port↔flow bipartite graph, plus the progressive-filling kernel that both
//! the sequential and the worker-pool rebalance paths share.
//!
//! # Components
//!
//! Two flows interact in max-min fair filling iff they transitively share a
//! port. [`Partitioner::partition`] floods outward from the ports dirtied
//! since the last rebalance and splits the reachable region into its true
//! connected components, each a `(ports, flows)` pair stored in flat arenas
//! (no per-component allocation). Components are discovered — and later
//! applied — in the order the dirty ports were recorded, which is itself
//! deterministic, so the commit barrier has a **fixed component ordering**:
//! results are written back in ascending component id regardless of which
//! worker computed them or when it finished.
//!
//! # One fill kernel, two drivers
//!
//! [`fill_component`] is the only implementation of progressive filling.
//! The sequential path calls it in a loop; the worker pool
//! ([`crate::pool`]) calls it from scoped threads, one component per task.
//! Determinism across worker counts is therefore structural, not tested-in:
//! every float operation on a component happens in the same order whether 1
//! or 8 workers run, and disjoint components share no state. The kernel
//! writes into caller-owned [`FillScratch`]/[`FillOutput`] buffers so
//! workers never contend and repeated rebalances allocate nothing.
//!
//! The floating-point expressions replicate [`crate::reference`]'s
//! whole-network filling operation for operation (see the bit-equality
//! discussion in [`crate::network`]); flows within a component are visited
//! in ascending slot order, matching the reference's whole-table order.

use crate::network::FlowSlot;

/// One connected component: views into the partitioner's flat arenas.
#[derive(Debug, Clone, Copy)]
pub struct ComponentRef<'a> {
    /// Interned port indices of the component, in flood discovery order.
    pub ports: &'a [usize],
    /// Flow slots of the component, sorted ascending.
    pub flows: &'a [usize],
}

/// Span of one component inside the flat port/flow arenas.
#[derive(Debug, Clone, Copy)]
struct CompSpan {
    port_start: u32,
    port_end: u32,
    flow_start: u32,
    flow_end: u32,
}

/// Incremental connected-component index over the port↔flow graph.
///
/// Epoch-stamped marks make each partition pass O(touched region), not
/// O(network); the flat arenas are reused across passes.
#[derive(Debug, Default)]
pub struct Partitioner {
    /// Current partition epoch (stamps start at 0, epochs at 1).
    epoch: u64,
    /// Per-port: stamped when the port joins a component this epoch.
    port_mark: Vec<u64>,
    /// Per-slot: stamped when the flow joins a component this epoch.
    flow_mark: Vec<u64>,
    /// DFS work list of ports.
    stack: Vec<usize>,
    /// Flat arena of component ports.
    comp_ports: Vec<usize>,
    /// Flat arena of component flows.
    comp_flows: Vec<usize>,
    spans: Vec<CompSpan>,
}

impl Partitioner {
    /// Creates an empty partitioner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of components found by the last [`Partitioner::partition`].
    pub fn components(&self) -> usize {
        self.spans.len()
    }

    /// Total flows across all current components.
    pub fn flow_count(&self) -> usize {
        self.comp_flows.len()
    }

    /// Views component `c` of the last partition.
    pub fn component(&self, c: usize) -> ComponentRef<'_> {
        let s = self.spans[c];
        ComponentRef {
            ports: &self.comp_ports[s.port_start as usize..s.port_end as usize],
            flows: &self.comp_flows[s.flow_start as usize..s.flow_end as usize],
        }
    }

    /// Splits the region reachable from `seeds` into connected components.
    ///
    /// Each seed port not already absorbed by an earlier component starts a
    /// new flood over the port→flow→port adjacency. A seed port with no
    /// live flows still forms a (flow-less) component: its maintained rate
    /// sum must be refreshed to zero by the fill that follows, exactly as
    /// the pre-partitioned allocator did. Duplicate seeds are skipped via
    /// the epoch marks.
    pub fn partition(&mut self, seeds: &[usize], port_flows: &[Vec<usize>], flows: &[FlowSlot]) {
        self.port_mark.resize(port_flows.len(), 0);
        self.flow_mark.resize(flows.len(), 0);
        self.epoch += 1;
        let epoch = self.epoch;
        self.comp_ports.clear();
        self.comp_flows.clear();
        self.spans.clear();
        self.stack.clear();
        for &seed in seeds {
            if self.port_mark[seed] == epoch {
                continue; // Already inside an earlier component.
            }
            let port_start = self.comp_ports.len() as u32;
            let flow_start = self.comp_flows.len() as u32;
            self.port_mark[seed] = epoch;
            self.comp_ports.push(seed);
            self.stack.push(seed);
            while let Some(p) = self.stack.pop() {
                for &k in &port_flows[p] {
                    if self.flow_mark[k] != epoch {
                        self.flow_mark[k] = epoch;
                        self.comp_flows.push(k);
                        for &q in flows[k].path() {
                            if self.port_mark[q] != epoch {
                                self.port_mark[q] = epoch;
                                self.comp_ports.push(q);
                                self.stack.push(q);
                            }
                        }
                    }
                }
            }
            // Ascending slot order: the freeze pass mutates per-port state
            // while iterating, so flow order is observable and must match
            // the reference's whole-table order.
            self.comp_flows[flow_start as usize..].sort_unstable();
            self.spans.push(CompSpan {
                port_start,
                port_end: self.comp_ports.len() as u32,
                flow_start,
                flow_end: self.comp_flows.len() as u32,
            });
        }
    }
}

/// Reusable per-caller workspace for [`fill_component`].
///
/// Full-size arrays indexed by port/slot id, epoch-stamped so resets cost
/// O(component); each sequential allocator and each pool worker owns one.
#[derive(Debug, Default)]
pub struct FillScratch {
    /// Current fill epoch (stamps start at 0, epochs at 1).
    epoch: u64,
    /// Per-slot: stamped when the flow freezes in the current filling.
    frozen_mark: Vec<u64>,
    /// Per-port: bandwidth already committed to frozen flows.
    frozen_usage: Vec<f64>,
    /// Per-port: number of unfrozen component flows crossing the port.
    unfrozen_count: Vec<usize>,
    /// Per-slot: rate assigned in the current filling.
    rate: Vec<f64>,
}

/// Rates and per-port sums computed by one [`fill_component`] call.
///
/// `rates[i]` belongs to `component.flows[i]`; `port_sums[j]` to
/// `component.ports[j]`. Kept separate from the live flow table so workers
/// write only caller-owned memory; the commit barrier applies outputs in
/// ascending component order.
#[derive(Debug, Default)]
pub struct FillOutput {
    /// Max-min fair rate per component flow.
    pub rates: Vec<f64>,
    /// Refreshed rate sum per component port.
    pub port_sums: Vec<f64>,
}

/// Progressive max-min filling of one component.
///
/// Component flows rise from rate 0 together; each port `p` saturates at
/// level `(cap_p - frozen_p) / unfrozen_p`. The minimum level across
/// component ports freezes every unfrozen flow crossing a bottleneck port,
/// and the process repeats until all component flows are frozen. Reads only
/// shared network state and the component views; writes only `scratch` and
/// `out`, so concurrent calls on disjoint components are race-free by
/// construction.
pub fn fill_component(
    port_caps: &[f64],
    port_flows: &[Vec<usize>],
    flows: &[FlowSlot],
    comp: ComponentRef<'_>,
    scratch: &mut FillScratch,
    out: &mut FillOutput,
) {
    let s = scratch;
    s.frozen_usage.resize(port_caps.len(), 0.0);
    s.unfrozen_count.resize(port_caps.len(), 0);
    s.frozen_mark.resize(flows.len(), 0);
    s.rate.resize(flows.len(), 0.0);
    s.epoch += 1;
    let epoch = s.epoch;

    for &p in comp.ports {
        s.frozen_usage[p] = 0.0;
        s.unfrozen_count[p] = 0;
    }
    for &k in comp.flows {
        for &p in flows[k].path() {
            s.unfrozen_count[p] += 1;
        }
    }
    let mut remaining_live = comp.flows.len();
    while remaining_live > 0 {
        // Find the lowest saturation level among contended ports.
        let mut level = f64::INFINITY;
        for &p in comp.ports {
            if s.unfrozen_count[p] > 0 {
                let l = (port_caps[p] - s.frozen_usage[p]) / s.unfrozen_count[p] as f64;
                if l < level {
                    level = l;
                }
            }
        }
        debug_assert!(level.is_finite(), "live flows but no contended port");
        let level = level.max(0.0);
        // Freeze every unfrozen flow that crosses a bottleneck port.
        let mut froze_any = false;
        for &k in comp.flows {
            if s.frozen_mark[k] == epoch {
                continue;
            }
            let at_bottleneck = flows[k].path().iter().any(|&p| {
                let l = (port_caps[p] - s.frozen_usage[p]) / s.unfrozen_count[p] as f64;
                l <= level + level.abs() * 1e-12
            });
            if at_bottleneck {
                s.frozen_mark[k] = epoch;
                froze_any = true;
                remaining_live -= 1;
                s.rate[k] = level;
                for &p in flows[k].path() {
                    s.frozen_usage[p] += level;
                    s.unfrozen_count[p] -= 1;
                }
            }
        }
        debug_assert!(froze_any, "max-min fair filling made no progress");
        if !froze_any {
            break; // Defensive: avoid an infinite loop under fp anomalies.
        }
    }

    // Rates in component-flow order, port sums in component-port order. The
    // per-port sum iterates the port's reverse index in its stored order so
    // float addition order matches the pre-partitioned allocator exactly.
    out.rates.clear();
    out.rates.extend(comp.flows.iter().map(|&k| s.rate[k]));
    out.port_sums.clear();
    for &p in comp.ports {
        let mut sum = 0.0;
        for &k in &port_flows[p] {
            sum += s.rate[k];
        }
        out.port_sums.push(sum);
    }
}

//! Error types for the simulator.

use core::fmt;

use crate::time::SimTime;
use crate::topology::Rank;

/// Errors surfaced by simulator construction and execution.
///
/// Marked `#[non_exhaustive]`: fault-injection work showed the variant set
/// grows over time, and downstream crates should match with a wildcard arm
/// so new failure modes are not breaking changes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The cluster description is internally inconsistent.
    InvalidTopology(String),
    /// A task references an unknown task id as a dependency.
    UnknownDependency {
        /// The task holding the dangling reference.
        task: usize,
        /// The referenced (unknown) dependency id.
        dep: usize,
    },
    /// The task graph contains a dependency cycle; the named tasks never ran.
    DependencyCycle {
        /// Number of tasks left unexecuted when the event queue drained.
        stuck: usize,
    },
    /// A flow was created with an empty port path.
    EmptyFlowPath {
        /// The offending task id.
        task: usize,
    },
    /// A generic invariant violation with context.
    Invariant(String),
    /// A rank crashed (per the fault schedule) while tasks assigned to it
    /// were still pending or running, so the DAG can never complete.
    RankUnavailable {
        /// The crashed rank.
        rank: Rank,
        /// Instant of the crash.
        at: SimTime,
        /// Tasks on the rank that had not completed at the crash instant.
        pending: usize,
    },
    /// A fault schedule declares a rank dead at `SimTime::ZERO` yet the DAG
    /// assigns work to it: the run is doomed before it starts.
    FaultBeforeStart {
        /// The rank that is dead on arrival.
        rank: Rank,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidTopology(msg) => write!(f, "invalid topology: {msg}"),
            SimError::UnknownDependency { task, dep } => {
                write!(f, "task {task} depends on unknown task {dep}")
            }
            SimError::DependencyCycle { stuck } => {
                write!(f, "dependency cycle: {stuck} task(s) never became ready")
            }
            SimError::EmptyFlowPath { task } => {
                write!(f, "transfer task {task} has an empty port path")
            }
            SimError::Invariant(msg) => write!(f, "invariant violation: {msg}"),
            SimError::RankUnavailable { rank, at, pending } => {
                write!(
                    f,
                    "rank {rank} crashed at {at} with {pending} task(s) unfinished"
                )
            }
            SimError::FaultBeforeStart { rank } => {
                write!(f, "rank {rank} is dead before the simulation starts")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SimError::UnknownDependency { task: 3, dep: 9 };
        assert_eq!(e.to_string(), "task 3 depends on unknown task 9");
        assert!(SimError::DependencyCycle { stuck: 2 }
            .to_string()
            .contains("2 task(s)"));
        assert!(SimError::InvalidTopology("x".into())
            .to_string()
            .contains("x"));
        assert!(SimError::EmptyFlowPath { task: 1 }
            .to_string()
            .contains("1"));
        assert!(SimError::Invariant("y".into()).to_string().contains("y"));
    }

    #[test]
    fn fault_variants_render_rank_and_instant() {
        let e = SimError::RankUnavailable {
            rank: 9,
            at: SimTime::from_nanos(2_000_000_000),
            pending: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("rank 9"), "{msg}");
        assert!(msg.contains("2.000s"), "{msg}");
        assert!(msg.contains("4 task(s)"), "{msg}");
        assert!(SimError::FaultBeforeStart { rank: 3 }
            .to_string()
            .contains("rank 3"));
    }
}

//! Error types for the simulator.

use core::fmt;

/// Errors surfaced by simulator construction and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The cluster description is internally inconsistent.
    InvalidTopology(String),
    /// A task references an unknown task id as a dependency.
    UnknownDependency {
        /// The task holding the dangling reference.
        task: usize,
        /// The referenced (unknown) dependency id.
        dep: usize,
    },
    /// The task graph contains a dependency cycle; the named tasks never ran.
    DependencyCycle {
        /// Number of tasks left unexecuted when the event queue drained.
        stuck: usize,
    },
    /// A flow was created with an empty port path.
    EmptyFlowPath {
        /// The offending task id.
        task: usize,
    },
    /// A generic invariant violation with context.
    Invariant(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidTopology(msg) => write!(f, "invalid topology: {msg}"),
            SimError::UnknownDependency { task, dep } => {
                write!(f, "task {task} depends on unknown task {dep}")
            }
            SimError::DependencyCycle { stuck } => {
                write!(f, "dependency cycle: {stuck} task(s) never became ready")
            }
            SimError::EmptyFlowPath { task } => {
                write!(f, "transfer task {task} has an empty port path")
            }
            SimError::Invariant(msg) => write!(f, "invariant violation: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SimError::UnknownDependency { task: 3, dep: 9 };
        assert_eq!(e.to_string(), "task 3 depends on unknown task 9");
        assert!(SimError::DependencyCycle { stuck: 2 }
            .to_string()
            .contains("2 task(s)"));
        assert!(SimError::InvalidTopology("x".into())
            .to_string()
            .contains("x"));
        assert!(SimError::EmptyFlowPath { task: 1 }
            .to_string()
            .contains("1"));
        assert!(SimError::Invariant("y".into()).to_string().contains("y"));
    }
}

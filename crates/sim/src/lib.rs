//! # zeppelin-sim
//!
//! Deterministic discrete-event simulator for multi-GPU training clusters.
//!
//! This crate is the hardware substrate of the Zeppelin reproduction: it
//! stands in for the A800/H800/H200 testbeds of the paper. It models
//!
//! - **cluster topology** ([`topology`]): nodes, GPUs, NVSwitch fabric,
//!   NICs, and the GPU–NIC affinity map that Zeppelin's routing layer
//!   disaggregates;
//! - **bandwidth contention** ([`network`]): transfers are fluid flows over
//!   capacitated ports with max-min fair sharing, so shared NICs, asymmetric
//!   ring traffic and multi-NIC routing behave as they do on real RoCE
//!   fabrics (allocated incrementally per connected component; the frozen
//!   from-scratch allocator survives in [`reference`] as a test oracle);
//! - **execution** ([`engine`]): task DAGs with per-GPU compute streams,
//!   giving compute/communication overlap semantics;
//! - **observability** ([`trace`]): per-rank timelines with Chrome-trace
//!   export, used to reproduce the paper's Fig. 12 timeline study.
//!
//! # Examples
//!
//! ```
//! use zeppelin_sim::engine::{Simulator, Stream};
//! use zeppelin_sim::time::SimDuration;
//! use zeppelin_sim::topology::tiny_cluster;
//!
//! let cluster = tiny_cluster(2, 4);
//! let mut sim = Simulator::new(&cluster);
//! let kernel = sim
//!     .compute(0, Stream::Compute, SimDuration::from_millis(2), vec![], None)
//!     .unwrap();
//! let send = sim
//!     .transfer(1e9, cluster.direct_path(0, 4), vec![kernel], None)
//!     .unwrap();
//! let report = sim.run().unwrap();
//! assert!(report.span(send).0 >= report.span(kernel).1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod collectives;
pub mod engine;
pub mod error;
pub mod fault;
pub mod network;
pub mod partition;
pub mod pool;
pub mod reference;
pub mod time;
pub mod topology;
pub mod trace;

pub use arena::{Slab, SlabKey};
pub use collectives::{all_to_all, ring_allgather, ring_allreduce};
pub use engine::{SimReport, SimStats, Simulator, Stream, TaskId, TaskKind, TaskSpec, TraceInfo};
pub use error::SimError;
pub use fault::{FaultEvent, FaultSchedule, FLAP_RESIDUAL};
pub use network::{FlowNetwork, NetStats};
pub use partition::Partitioner;
pub use pool::workers_from_env;
pub use time::{SimDuration, SimTime};
pub use topology::{
    cluster_a, cluster_b, cluster_c, tiny_cluster, ClusterSpec, GpuSpec, NicSpec, NodeSpec, Port,
    Rank,
};
pub use trace::{Trace, TraceCategory, TraceEvent};

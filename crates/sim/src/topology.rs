//! Cluster topology: GPUs, NICs, intra-node fabric, and GPU–NIC affinity.
//!
//! A cluster is a homogeneous set of nodes. Each node holds `gpus_per_node`
//! GPUs connected by an NVSwitch-style non-blocking fabric (modelled as
//! per-GPU ingress/egress ports) and `nic_count` NICs; the affinity map
//! assigns every GPU to exactly one NIC, possibly shared (e.g. the paper's
//! Cluster A pairs two GPUs per NIC behind one PCIe switch).
//!
//! Topologies are pure data; the flow network (see [`crate::network`]) turns
//! the port inventory into capacitated resources.

use crate::error::SimError;

/// Identifies a GPU by its flat rank across the cluster (`node * P + local`).
pub type Rank = usize;

/// One directional capacitated port in the network fabric.
///
/// A flow's path is a sequence of ports it traverses; concurrent flows
/// sharing a port split its bandwidth max-min fairly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Port {
    /// A GPU's egress into the intra-node switch fabric.
    NvlinkOut(Rank),
    /// A GPU's ingress from the intra-node switch fabric.
    NvlinkIn(Rank),
    /// A GPU's egress towards its PCIe switch / NIC complex.
    PcieOut(Rank),
    /// A GPU's ingress from its PCIe switch / NIC complex.
    PcieIn(Rank),
    /// A NIC's transmit direction; index is global (`node * nic_count + i`).
    NicTx(usize),
    /// A NIC's receive direction; index is global.
    NicRx(usize),
}

/// Per-GPU hardware characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Peak dense bf16 throughput in FLOP/s.
    pub peak_flops: f64,
    /// HBM capacity in bytes.
    pub mem_bytes: u64,
    /// Per-direction NVLink/NVSwitch bandwidth in bytes/s.
    pub nvlink_bw: f64,
    /// Per-direction PCIe bandwidth towards the NIC complex in bytes/s.
    pub pcie_bw: f64,
}

/// Per-NIC characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NicSpec {
    /// Per-direction bandwidth in bytes/s (RoCE NICs are full duplex).
    pub bw: f64,
}

/// A homogeneous multi-GPU node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Number of GPUs in the node.
    pub gpus_per_node: usize,
    /// GPU characteristics (identical within a node).
    pub gpu: GpuSpec,
    /// Number of NICs in the node.
    pub nic_count: usize,
    /// NIC characteristics (identical within a node).
    pub nic: NicSpec,
    /// `nic_affinity[local_gpu]` = local NIC index serving that GPU.
    pub nic_affinity: Vec<usize>,
}

/// A cluster of nodes sharing one blueprint, optionally spanning mixed GPU
/// generations via per-node speed tiers.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Human-readable name (e.g. `"Cluster A"`).
    pub name: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Node blueprint, identical across the cluster.
    pub node: NodeSpec,
    /// Per-node relative compute speed tiers for mixed-generation clusters
    /// (e.g. an A800 node in an H800 fleet at `312/989`). Empty means
    /// homogeneous (every node at 1.0); otherwise exactly one positive
    /// finite multiplier per node, applied to that node's GPU FLOP rate.
    /// Fabric and NIC rates stay from the blueprint.
    pub node_tiers: Vec<f64>,
}

/// Converts Gb/s (network convention, bits) to bytes/s.
pub const fn gbit(gbps: f64) -> f64 {
    gbps * 1e9 / 8.0
}

/// Converts GB/s (fabric convention, bytes) to bytes/s.
pub const fn gbyte(gbs: f64) -> f64 {
    gbs * 1e9
}

/// Converts TFLOP/s to FLOP/s.
pub const fn tflops(tf: f64) -> f64 {
    tf * 1e12
}

impl NodeSpec {
    /// Validates internal consistency of the node blueprint.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.gpus_per_node == 0 {
            return Err(SimError::InvalidTopology("node has zero GPUs".into()));
        }
        if self.nic_count == 0 {
            return Err(SimError::InvalidTopology("node has zero NICs".into()));
        }
        if self.nic_affinity.len() != self.gpus_per_node {
            return Err(SimError::InvalidTopology(format!(
                "nic_affinity has {} entries for {} GPUs",
                self.nic_affinity.len(),
                self.gpus_per_node
            )));
        }
        if let Some(&bad) = self.nic_affinity.iter().find(|&&n| n >= self.nic_count) {
            return Err(SimError::InvalidTopology(format!(
                "nic_affinity references NIC {bad} but node has {} NICs",
                self.nic_count
            )));
        }
        if !(self.gpu.peak_flops > 0.0
            && self.gpu.nvlink_bw > 0.0
            && self.gpu.pcie_bw > 0.0
            && self.nic.bw > 0.0)
        {
            return Err(SimError::InvalidTopology(
                "all rates must be strictly positive".into(),
            ));
        }
        Ok(())
    }
}

impl ClusterSpec {
    /// Validates the cluster blueprint.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.nodes == 0 {
            return Err(SimError::InvalidTopology("cluster has zero nodes".into()));
        }
        if !self.node_tiers.is_empty() {
            if self.node_tiers.len() != self.nodes {
                return Err(SimError::InvalidTopology(format!(
                    "node_tiers has {} entries for {} nodes",
                    self.node_tiers.len(),
                    self.nodes
                )));
            }
            if let Some(&bad) = self
                .node_tiers
                .iter()
                .find(|&&t| !(t.is_finite() && t > 0.0))
            {
                return Err(SimError::InvalidTopology(format!(
                    "node tier {bad} is not positive and finite"
                )));
            }
        }
        self.node.validate()
    }

    /// Declares per-node speed tiers (builder form).
    pub fn with_node_tiers(mut self, tiers: Vec<f64>) -> ClusterSpec {
        self.node_tiers = tiers;
        self
    }

    /// Relative compute speed of `node` (1.0 on homogeneous clusters).
    pub fn tier_of(&self, node: usize) -> f64 {
        self.node_tiers.get(node).copied().unwrap_or(1.0)
    }

    /// Per-rank speed factors implied by the node tiers: `None` on a
    /// homogeneous cluster, otherwise one entry per rank (every rank of a
    /// node shares its tier). This is what seeds
    /// `SchedulerCtx::rank_speed` for heterogeneity-aware planning.
    pub fn rank_speeds(&self) -> Option<Vec<f64>> {
        if self.node_tiers.is_empty() {
            return None;
        }
        Some(
            (0..self.total_gpus())
                .map(|r| self.tier_of(self.node_of(r)))
                .collect(),
        )
    }

    /// Total number of GPUs (= DP ranks when TP is folded into the GPU spec).
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.node.gpus_per_node
    }

    /// Node index hosting `rank`.
    pub fn node_of(&self, rank: Rank) -> usize {
        rank / self.node.gpus_per_node
    }

    /// Local GPU index of `rank` within its node.
    pub fn local_of(&self, rank: Rank) -> usize {
        rank % self.node.gpus_per_node
    }

    /// Flat rank for `(node, local)`.
    pub fn rank_of(&self, node: usize, local: usize) -> Rank {
        node * self.node.gpus_per_node + local
    }

    /// True if the two ranks live on the same node.
    pub fn same_node(&self, a: Rank, b: Rank) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Global NIC index affined to `rank`.
    pub fn nic_of(&self, rank: Rank) -> usize {
        self.node_of(rank) * self.node.nic_count + self.node.nic_affinity[self.local_of(rank)]
    }

    /// All ranks hosted on `node`.
    pub fn ranks_on_node(&self, node: usize) -> impl Iterator<Item = Rank> + '_ {
        let p = self.node.gpus_per_node;
        (node * p)..(node * p + p)
    }

    /// Capacity in bytes/s of a port.
    pub fn port_capacity(&self, port: Port) -> f64 {
        match port {
            Port::NvlinkOut(_) | Port::NvlinkIn(_) => self.node.gpu.nvlink_bw,
            Port::PcieOut(_) | Port::PcieIn(_) => self.node.gpu.pcie_bw,
            Port::NicTx(_) | Port::NicRx(_) => self.node.nic.bw,
        }
    }

    /// Port path for a direct GPU-to-GPU transfer.
    ///
    /// Intra-node transfers traverse the sender's fabric egress and the
    /// receiver's ingress. Inter-node transfers go through each side's PCIe
    /// port and its *affined* NIC — the static affinity the routing layer
    /// exists to break.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`; a self-transfer has no path and indicates a
    /// planning bug.
    pub fn direct_path(&self, src: Rank, dst: Rank) -> Vec<Port> {
        assert_ne!(src, dst, "self-transfer has no network path");
        if self.same_node(src, dst) {
            vec![Port::NvlinkOut(src), Port::NvlinkIn(dst)]
        } else {
            vec![
                Port::PcieOut(src),
                Port::NicTx(self.nic_of(src)),
                Port::NicRx(self.nic_of(dst)),
                Port::PcieIn(dst),
            ]
        }
    }

    /// Effective inter-node bandwidth of a single direct GPU pair, bytes/s.
    pub fn direct_internode_bw(&self) -> f64 {
        self.node.nic.bw.min(self.node.gpu.pcie_bw)
    }

    /// Aggregate per-node inter-node bandwidth across all NICs, bytes/s.
    pub fn aggregate_internode_bw(&self) -> f64 {
        self.node.nic.bw * self.node.nic_count as f64
    }

    /// Intra-node per-GPU-pair bandwidth, bytes/s.
    pub fn intranode_bw(&self) -> f64 {
        self.node.gpu.nvlink_bw
    }
}

/// Builds the paper's Cluster A: 8× A800-80G per node, NVSwitch 400 GB/s,
/// 4× 200 Gb/s RoCE NICs with one NIC shared by each pair of GPUs.
pub fn cluster_a(nodes: usize) -> ClusterSpec {
    ClusterSpec {
        name: "Cluster A (A800)".into(),
        nodes,
        node_tiers: Vec::new(),
        node: NodeSpec {
            gpus_per_node: 8,
            gpu: GpuSpec {
                peak_flops: tflops(312.0),
                mem_bytes: 80 * (1 << 30),
                nvlink_bw: gbyte(400.0),
                pcie_bw: gbyte(32.0),
            },
            nic_count: 4,
            nic: NicSpec { bw: gbit(200.0) },
            // GPUs 2i and 2i+1 share NIC i via one PCIe switch.
            nic_affinity: vec![0, 0, 1, 1, 2, 2, 3, 3],
        },
    }
}

/// Builds the paper's Cluster B: 8× H800 per node, 8× 200 Gb/s RoCE NICs
/// with one-to-one GPU–NIC mapping.
pub fn cluster_b(nodes: usize) -> ClusterSpec {
    ClusterSpec {
        name: "Cluster B (H800)".into(),
        nodes,
        node_tiers: Vec::new(),
        node: NodeSpec {
            gpus_per_node: 8,
            gpu: GpuSpec {
                peak_flops: tflops(989.0),
                mem_bytes: 80 * (1 << 30),
                nvlink_bw: gbyte(400.0),
                pcie_bw: gbyte(64.0),
            },
            nic_count: 8,
            nic: NicSpec { bw: gbit(200.0) },
            nic_affinity: (0..8).collect(),
        },
    }
}

/// Builds the paper's Cluster C: 8× H200 per node, 8× 400 Gb/s CX7 NICs
/// with one-to-one GPU–NIC mapping.
pub fn cluster_c(nodes: usize) -> ClusterSpec {
    ClusterSpec {
        name: "Cluster C (H200)".into(),
        nodes,
        node_tiers: Vec::new(),
        node: NodeSpec {
            gpus_per_node: 8,
            gpu: GpuSpec {
                peak_flops: tflops(989.0),
                mem_bytes: 141 * (1 << 30),
                nvlink_bw: gbyte(900.0),
                pcie_bw: gbyte(64.0),
            },
            nic_count: 8,
            nic: NicSpec { bw: gbit(400.0) },
            nic_affinity: (0..8).collect(),
        },
    }
}

/// Relative compute speed of an A800 next to the Hopper generation
/// (312 vs 989 dense bf16 TFLOP/s).
pub const A800_RELATIVE_SPEED: f64 = 312.0 / 989.0;

/// Builds a mixed-generation cluster: Cluster B's fabric blueprint with
/// node tiers cycling A800 → H800 → H200 (relative compute speeds
/// [`A800_RELATIVE_SPEED`], 1.0, 1.0) — the "heterogeneous fleet" setting
/// where a retired-generation pod is pooled with current ones.
pub fn cluster_mixed(nodes: usize) -> ClusterSpec {
    let tiers = (0..nodes)
        .map(|n| match n % 3 {
            0 => A800_RELATIVE_SPEED,
            _ => 1.0,
        })
        .collect();
    let mut c = cluster_b(nodes).with_node_tiers(tiers);
    c.name = "Cluster M (A800+H800+H200)".into();
    c
}

/// Builds a small synthetic cluster, handy for tests and examples.
pub fn tiny_cluster(nodes: usize, gpus_per_node: usize) -> ClusterSpec {
    ClusterSpec {
        name: format!("tiny-{nodes}x{gpus_per_node}"),
        nodes,
        node_tiers: Vec::new(),
        node: NodeSpec {
            gpus_per_node,
            gpu: GpuSpec {
                peak_flops: tflops(100.0),
                mem_bytes: 16 * (1 << 30),
                nvlink_bw: gbyte(200.0),
                pcie_bw: gbyte(32.0),
            },
            nic_count: gpus_per_node,
            nic: NicSpec { bw: gbit(100.0) },
            nic_affinity: (0..gpus_per_node).collect(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for c in [
            cluster_a(2),
            cluster_b(4),
            cluster_c(8),
            cluster_mixed(3),
            tiny_cluster(2, 4),
        ] {
            c.validate().unwrap();
        }
    }

    #[test]
    fn node_tiers_feed_rank_speeds_and_are_validated() {
        let c = cluster_mixed(3);
        assert_eq!(c.node_tiers.len(), 3);
        assert!((c.tier_of(0) - A800_RELATIVE_SPEED).abs() < 1e-12);
        assert_eq!(c.tier_of(1), 1.0);
        let speeds = c.rank_speeds().unwrap();
        assert_eq!(speeds.len(), 24);
        // Every rank of a node shares its tier.
        assert!(speeds[..8].iter().all(|&s| s == c.tier_of(0)));
        assert!(speeds[8..16].iter().all(|&s| s == 1.0));
        // Homogeneous clusters report no speeds at all.
        assert!(cluster_b(3).rank_speeds().is_none());
        assert_eq!(cluster_b(3).tier_of(1), 1.0);

        let mut bad = cluster_mixed(3);
        bad.node_tiers.pop();
        assert!(matches!(bad.validate(), Err(SimError::InvalidTopology(_))));
        let mut bad = cluster_mixed(3);
        bad.node_tiers[1] = f64::NAN;
        assert!(bad.validate().is_err());
        let mut bad = cluster_mixed(3);
        bad.node_tiers[2] = 0.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn rank_addressing_round_trips() {
        let c = cluster_a(3);
        for rank in 0..c.total_gpus() {
            let (n, l) = (c.node_of(rank), c.local_of(rank));
            assert_eq!(c.rank_of(n, l), rank);
            assert!(l < 8);
        }
        assert_eq!(c.total_gpus(), 24);
    }

    #[test]
    fn cluster_a_shares_nics_pairwise() {
        let c = cluster_a(2);
        assert_eq!(c.nic_of(0), c.nic_of(1));
        assert_ne!(c.nic_of(1), c.nic_of(2));
        // Second node's NICs are distinct globals.
        assert_eq!(c.nic_of(8), 4);
        assert_eq!(c.nic_of(15), 7);
    }

    #[test]
    fn direct_path_shapes() {
        let c = cluster_a(2);
        assert_eq!(
            c.direct_path(0, 3),
            vec![Port::NvlinkOut(0), Port::NvlinkIn(3)]
        );
        let cross = c.direct_path(0, 9);
        assert_eq!(
            cross,
            vec![
                Port::PcieOut(0),
                Port::NicTx(0),
                Port::NicRx(4),
                Port::PcieIn(9),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "self-transfer")]
    fn self_path_panics() {
        cluster_a(1).direct_path(2, 2);
    }

    #[test]
    fn bandwidth_helpers() {
        let c = cluster_a(2);
        // 200 Gb/s = 25 GB/s, below PCIe.
        assert!((c.direct_internode_bw() - 25e9).abs() < 1.0);
        assert!((c.aggregate_internode_bw() - 100e9).abs() < 1.0);
        assert!((c.intranode_bw() - 400e9).abs() < 1.0);
    }

    #[test]
    fn validation_rejects_bad_affinity() {
        let mut c = tiny_cluster(1, 2);
        c.node.nic_affinity = vec![0, 5];
        assert!(matches!(c.validate(), Err(SimError::InvalidTopology(_))));
        c.node.nic_affinity = vec![0];
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_degenerate_sizes() {
        let mut c = tiny_cluster(1, 2);
        c.nodes = 0;
        assert!(c.validate().is_err());
        let mut c = tiny_cluster(1, 2);
        c.node.gpus_per_node = 0;
        assert!(c.validate().is_err());
        let mut c = tiny_cluster(1, 2);
        c.node.gpu.peak_flops = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn ranks_on_node_enumerates_contiguously() {
        let c = cluster_a(2);
        let ranks: Vec<_> = c.ranks_on_node(1).collect();
        assert_eq!(ranks, (8..16).collect::<Vec<_>>());
    }

    #[test]
    fn unit_conversions() {
        assert!((gbit(200.0) - 25e9).abs() < 1e-3);
        assert!((gbyte(400.0) - 4e11).abs() < 1e-3);
        assert!((tflops(312.0) - 3.12e14).abs() < 1e-1);
    }
}

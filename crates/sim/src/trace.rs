//! Execution timelines and Chrome-trace export.
//!
//! Traced tasks become [`TraceEvent`]s. A [`Trace`] can be summarized per
//! rank/category (used by the Fig. 12 timeline reproduction) or exported as
//! Chrome `chrome://tracing` / Perfetto JSON for visual inspection.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::time::{SimDuration, SimTime};
use crate::topology::Rank;

/// Category of a traced event; mapped to lanes/colours in viewers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TraceCategory {
    /// Attention kernel execution.
    AttentionCompute,
    /// Linear-module (GEMM/MLP/norm) execution.
    LinearCompute,
    /// Ring attention KV send-receive.
    RingComm,
    /// Routing-layer intra-node dispatch step.
    Dispatch,
    /// Routing-layer inter-node transfer step.
    InterNode,
    /// Routing-layer intra-node combine step.
    Combine,
    /// Remapping-layer all-to-all traffic.
    Remap,
    /// Anything else.
    Other,
}

impl TraceCategory {
    /// Stable lowercase name used in exports and reports.
    pub fn name(self) -> &'static str {
        match self {
            TraceCategory::AttentionCompute => "attention",
            TraceCategory::LinearCompute => "linear",
            TraceCategory::RingComm => "ring_comm",
            TraceCategory::Dispatch => "dispatch",
            TraceCategory::InterNode => "inter_node",
            TraceCategory::Combine => "combine",
            TraceCategory::Remap => "remap",
            TraceCategory::Other => "other",
        }
    }
}

/// One rectangle on the timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Rank the event is attributed to.
    pub rank: Rank,
    /// Category (lane).
    pub category: TraceCategory,
    /// Human-readable label.
    pub label: String,
    /// Start instant.
    pub start: SimTime,
    /// End instant.
    pub end: SimTime,
}

impl TraceEvent {
    /// Event duration.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// An ordered collection of trace events.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// All events in insertion order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Total busy time per `(rank, category)`.
    pub fn busy_by_rank_category(&self) -> BTreeMap<(Rank, TraceCategory), SimDuration> {
        let mut map: BTreeMap<(Rank, TraceCategory), SimDuration> = BTreeMap::new();
        for ev in &self.events {
            let entry = map
                .entry((ev.rank, ev.category))
                .or_insert(SimDuration::ZERO);
            *entry = entry.saturating_add(ev.duration());
        }
        map
    }

    /// Total busy time per category across all ranks.
    pub fn busy_by_category(&self) -> BTreeMap<TraceCategory, SimDuration> {
        let mut map: BTreeMap<TraceCategory, SimDuration> = BTreeMap::new();
        for ev in &self.events {
            let entry = map.entry(ev.category).or_insert(SimDuration::ZERO);
            *entry = entry.saturating_add(ev.duration());
        }
        map
    }

    /// Events attributed to `rank`, in start order.
    pub fn rank_timeline(&self, rank: Rank) -> Vec<&TraceEvent> {
        let mut evs: Vec<&TraceEvent> = self.events.iter().filter(|e| e.rank == rank).collect();
        evs.sort_by_key(|e| (e.start, e.end));
        evs
    }

    /// Idle gaps ("bubbles", §5.4.1 of the paper) on one rank's compute
    /// categories: periods between the rank's first and last compute event
    /// where no attention/linear work runs. Returns `(start, end)` pairs of
    /// gaps at least `min_gap` long, in order.
    pub fn compute_bubbles(&self, rank: Rank, min_gap: SimDuration) -> Vec<(SimTime, SimTime)> {
        let mut intervals: Vec<(SimTime, SimTime)> = self
            .events
            .iter()
            .filter(|e| {
                e.rank == rank
                    && matches!(
                        e.category,
                        TraceCategory::AttentionCompute | TraceCategory::LinearCompute
                    )
            })
            .map(|e| (e.start, e.end))
            .collect();
        intervals.sort();
        let mut bubbles = Vec::new();
        let mut horizon: Option<SimTime> = None;
        for (s, e) in intervals {
            if let Some(h) = horizon {
                if s > h && s.since(h) >= min_gap {
                    bubbles.push((h, s));
                }
            }
            horizon = Some(horizon.map_or(e, |h| h.max(e)));
        }
        bubbles
    }

    /// Total bubble time across all ranks' compute streams.
    pub fn total_bubble_time(&self, min_gap: SimDuration) -> SimDuration {
        let mut ranks: Vec<Rank> = self.events.iter().map(|e| e.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        let mut total = SimDuration::ZERO;
        for r in ranks {
            for (s, e) in self.compute_bubbles(r, min_gap) {
                total = total.saturating_add(e.since(s));
            }
        }
        total
    }

    /// Serializes the trace to Chrome trace-event JSON.
    ///
    /// Load the output in `chrome://tracing` or Perfetto. Ranks become
    /// threads (`tid`), `pid` is fixed at 1, categories become `cat`.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{}}}",
                escape_json(&ev.label),
                ev.category.name(),
                ev.start.as_micros_f64(),
                ev.duration().as_micros_f64(),
                ev.rank
            );
        }
        out.push_str("]}");
        out
    }

    /// Renders a compact ASCII timeline (one row per rank) for terminals.
    ///
    /// `width` is the number of character cells the makespan maps onto.
    pub fn to_ascii(&self, width: usize) -> String {
        let makespan = self
            .events
            .iter()
            .map(|e| e.end)
            .max()
            .unwrap_or(SimTime::ZERO);
        if makespan == SimTime::ZERO || width == 0 || self.events.is_empty() {
            return String::new();
        }
        let mut ranks: Vec<Rank> = self.events.iter().map(|e| e.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        let scale = width as f64 / makespan.as_nanos() as f64;
        let mut out = String::new();
        for rank in ranks {
            let mut row = vec![' '; width];
            for ev in self.events.iter().filter(|e| e.rank == rank) {
                let s = ((ev.start.as_nanos() as f64 * scale) as usize).min(width - 1);
                let e = ((ev.end.as_nanos() as f64 * scale) as usize).clamp(s + 1, width);
                let ch = match ev.category {
                    TraceCategory::AttentionCompute => 'A',
                    TraceCategory::LinearCompute => 'L',
                    TraceCategory::RingComm => 'r',
                    TraceCategory::Dispatch => 'd',
                    TraceCategory::InterNode => 'N',
                    TraceCategory::Combine => 'c',
                    TraceCategory::Remap => 'm',
                    TraceCategory::Other => '.',
                };
                for cell in row.iter_mut().take(e).skip(s) {
                    // Compute wins over comm in shared cells for readability.
                    if *cell == ' ' || ch == 'A' || ch == 'L' {
                        *cell = ch;
                    }
                }
            }
            let _ = writeln!(out, "rank {rank:>3} |{}|", row.iter().collect::<String>());
        }
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(rank: Rank, cat: TraceCategory, s: u64, e: u64) -> TraceEvent {
        TraceEvent {
            rank,
            category: cat,
            label: format!("{}@{}", cat.name(), rank),
            start: SimTime::from_nanos(s),
            end: SimTime::from_nanos(e),
        }
    }

    #[test]
    fn busy_aggregation_sums_durations() {
        let mut t = Trace::new();
        t.push(ev(0, TraceCategory::AttentionCompute, 0, 10));
        t.push(ev(0, TraceCategory::AttentionCompute, 20, 35));
        t.push(ev(1, TraceCategory::RingComm, 0, 7));
        let by_rc = t.busy_by_rank_category();
        assert_eq!(by_rc[&(0, TraceCategory::AttentionCompute)].as_nanos(), 25);
        assert_eq!(by_rc[&(1, TraceCategory::RingComm)].as_nanos(), 7);
        let by_c = t.busy_by_category();
        assert_eq!(by_c[&TraceCategory::AttentionCompute].as_nanos(), 25);
    }

    #[test]
    fn rank_timeline_is_sorted_by_start() {
        let mut t = Trace::new();
        t.push(ev(0, TraceCategory::RingComm, 50, 60));
        t.push(ev(0, TraceCategory::AttentionCompute, 0, 10));
        t.push(ev(1, TraceCategory::AttentionCompute, 0, 10));
        let tl = t.rank_timeline(0);
        assert_eq!(tl.len(), 2);
        assert!(tl[0].start < tl[1].start);
    }

    #[test]
    fn bubbles_are_detected_between_compute_events() {
        let mut t = Trace::new();
        t.push(ev(0, TraceCategory::AttentionCompute, 0, 100));
        t.push(ev(0, TraceCategory::RingComm, 100, 300)); // Comm, not compute.
        t.push(ev(0, TraceCategory::LinearCompute, 300, 400));
        t.push(ev(0, TraceCategory::AttentionCompute, 410, 500)); // 10ns gap.
        let bubbles = t.compute_bubbles(0, SimDuration::from_nanos(50));
        // The 100..300 comm window is a 200ns compute bubble; the 10ns gap
        // is below the threshold.
        assert_eq!(
            bubbles,
            vec![(SimTime::from_nanos(100), SimTime::from_nanos(300))]
        );
        assert_eq!(
            t.total_bubble_time(SimDuration::from_nanos(50)).as_nanos(),
            200
        );
        // Lowering the threshold reveals the small gap too.
        assert_eq!(t.compute_bubbles(0, SimDuration::from_nanos(1)).len(), 2);
    }

    #[test]
    fn overlapping_compute_produces_no_bubbles() {
        let mut t = Trace::new();
        t.push(ev(1, TraceCategory::AttentionCompute, 0, 100));
        t.push(ev(1, TraceCategory::LinearCompute, 50, 150));
        assert!(t.compute_bubbles(1, SimDuration::from_nanos(1)).is_empty());
        // A rank with no compute has no bubbles either.
        assert!(t.compute_bubbles(7, SimDuration::from_nanos(1)).is_empty());
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let mut t = Trace::new();
        t.push(ev(0, TraceCategory::AttentionCompute, 0, 1_000));
        t.push(ev(3, TraceCategory::InterNode, 1_000, 2_500));
        let json = t.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("\"cat\":\"inter_node\""));
        // Exactly one comma between the two events at the top level.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
    }

    #[test]
    fn json_escaping_handles_special_chars() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(escape_json("plain"), "plain");
    }

    #[test]
    fn ascii_timeline_renders_rows() {
        let mut t = Trace::new();
        t.push(ev(0, TraceCategory::AttentionCompute, 0, 500));
        t.push(ev(1, TraceCategory::InterNode, 500, 1000));
        let art = t.to_ascii(20);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('A'));
        assert!(lines[1].contains('N'));
        // Rank 0's work is in the first half, rank 1's in the second.
        let a_pos = lines[0].find('A').unwrap();
        let n_pos = lines[1].find('N').unwrap();
        assert!(a_pos < n_pos);
    }

    #[test]
    fn ascii_timeline_empty_trace_is_empty() {
        assert!(Trace::new().to_ascii(40).is_empty());
    }

    #[test]
    fn category_names_are_stable() {
        assert_eq!(TraceCategory::AttentionCompute.name(), "attention");
        assert_eq!(TraceCategory::Remap.name(), "remap");
    }
}

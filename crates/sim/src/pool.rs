//! Std-only worker pool for component-local rebalances.
//!
//! When a commit barrier closes over mutations touching several disjoint
//! components, the [`crate::partition`] fill kernel can run on them
//! concurrently: each component reads shared network state (`port_caps`,
//! the port→flow reverse index, flow paths) immutably and writes only its
//! own [`FillOutput`], so the work is embarrassingly parallel.
//!
//! The pool is deliberately primitive — `std::thread::scope` plus an mpsc
//! channel drained behind a mutex as the work queue — because the repo
//! vendors no threading crates. Scoped threads borrow the network directly
//! (no per-commit extraction of job data), and each worker keeps a
//! persistent [`FillScratch`] across commits so steady-state rebalances
//! allocate only the per-component output vectors.
//!
//! Determinism: workers race only for *which component* they fill next,
//! never over shared floats. Outputs are keyed by component id and applied
//! at the barrier in ascending id order, so the committed state is
//! bit-identical to the sequential path no matter how the race resolves.
//! Per-worker busy time is the one nondeterministic product, and it flows
//! only into [`crate::network::NetStats`], never into simulated state.
//!
//! Load balance: components are dispatched **largest first** (descending
//! flow count, ties by ascending id). Fill cost grows with a component's
//! flow count, so under the classic longest-processing-time argument this
//! keeps one straggler component from serializing the tail of the barrier
//! — the big jobs start early and the small ones pack around them. Commit
//! order is unaffected: the barrier still applies outputs in ascending
//! component id.

use std::sync::mpsc;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::network::FlowSlot;
use crate::partition::{fill_component, FillOutput, FillScratch, Partitioner};

/// Default worker count: the `ZEPPELIN_SIM_WORKERS` environment variable
/// when set and parseable (clamped to `1..=64`), else 1 (sequential).
///
/// Read once per process; new networks and simulators pick it up at
/// construction, and explicit `set_workers` calls override it.
pub fn workers_from_env() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::env::var("ZEPPELIN_SIM_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map_or(1, |w| w.clamp(1, 64))
    })
}

/// Fills every component of the last partition on a scoped worker pool.
///
/// Spawns `min(workers, components)` threads that pull component ids from a
/// shared queue, fill them with [`fill_component`], and return `(component,
/// output)` pairs. `scratches` must hold at least `workers` entries (one
/// per worker, persistent across calls); `busy_ns[w]` is incremented by
/// worker `w`'s wall-clock fill time.
pub(crate) fn fill_parallel(
    workers: usize,
    parts: &Partitioner,
    port_caps: &[f64],
    port_flows: &[Vec<usize>],
    flows: &[FlowSlot],
    scratches: &mut [FillScratch],
    busy_ns: &mut [u64],
) -> Vec<(usize, FillOutput)> {
    let ncomps = parts.components();
    let spawn = workers.min(ncomps);
    debug_assert!(scratches.len() >= spawn && busy_ns.len() >= spawn);
    let (tx, rx) = mpsc::channel::<usize>();
    // Largest components first (ties by ascending id): starting the
    // longest fills early shortens the barrier's straggler tail, and the
    // ascending-id apply at the barrier keeps commits bit-identical.
    let mut order: Vec<usize> = (0..ncomps).collect();
    order.sort_by_key(|&c| (usize::MAX - parts.component(c).flows.len(), c));
    for c in order {
        tx.send(c).expect("receiver lives until the scope ends");
    }
    drop(tx);
    let queue = Mutex::new(rx);
    let mut results: Vec<(usize, FillOutput)> = Vec::with_capacity(ncomps);
    std::thread::scope(|s| {
        let handles: Vec<_> = scratches
            .iter_mut()
            .take(spawn)
            .map(|scratch| {
                let queue = &queue;
                s.spawn(move || {
                    let mut filled: Vec<(usize, FillOutput)> = Vec::new();
                    let mut busy = 0u64;
                    loop {
                        // Take the lock only to dequeue, never while filling.
                        let job = queue.lock().expect("queue lock poisoned").try_recv();
                        let Ok(c) = job else { break };
                        let t0 = Instant::now();
                        let mut out = FillOutput::default();
                        fill_component(
                            port_caps,
                            port_flows,
                            flows,
                            parts.component(c),
                            scratch,
                            &mut out,
                        );
                        busy += t0.elapsed().as_nanos() as u64;
                        filled.push((c, out));
                    }
                    (busy, filled)
                })
            })
            .collect();
        for (w, h) in handles.into_iter().enumerate() {
            let (busy, filled) = h.join().expect("pool worker panicked");
            busy_ns[w] += busy;
            results.extend(filled);
        }
    });
    debug_assert_eq!(results.len(), ncomps, "every component filled exactly once");
    results
}

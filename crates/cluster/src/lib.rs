//! # zeppelin-cluster
//!
//! Continuous multi-job cluster simulation on top of the single-job
//! training stack: a shared cluster serves a stream of variable-length
//! training jobs with trace-driven arrivals, queueing, priority-based
//! preemption (checkpoint-and-requeue), and elastic grow/shrink of running
//! jobs onto freed nodes.
//!
//! The layer decomposes into four pieces (DESIGN.md §13):
//!
//! - [`trace`]: the workload model — a validated, seeded [`trace::JobTrace`]
//!   of [`trace::JobSpec`]s (tenant, model, dataset, step budget, priority,
//!   node bounds, arrival), with deterministic [`trace::JobTrace::random`] /
//!   [`trace::JobTrace::skewed`] generators and a JSON (de)serializer with
//!   typed errors;
//! - [`policy`]: the pluggable [`policy::ClusterPolicy`] trait over a
//!   read-only [`policy::ClusterView`], returning placement
//!   [`policy::Action`]s; ships FIFO, shortest-remaining-work-first, and a
//!   weighted fair-share policy with preemption and elasticity;
//! - [`driver`]: the discrete-event loop — [`driver::run_cluster`] owns the
//!   free-node pool and job queue, charges replan and checkpoint-restore
//!   costs inside the simulation, and memoizes per-(job, step, width) step
//!   simulations so rollback replays are cheap and deterministic;
//! - [`metrics`]: the [`metrics::ClusterReport`] — per-tenant and
//!   cluster-level goodput vs throughput, JCT and queueing-delay
//!   percentiles, Jain's fairness index, node utilization, preemption and
//!   replan counts, plus the full event log for bit-identical replay
//!   comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod metrics;
pub mod policy;
pub mod trace;

pub use driver::{run_cluster, ClusterConfig, ClusterError};
pub use metrics::{ClusterEvent, ClusterReport, JobOutcome, Outcome, TenantReport};
pub use policy::{Action, ClusterPolicy, ClusterView, FairShare, Fifo, Srwf};
pub use trace::{JobSpec, JobTrace, TraceError, TraceIoError};

//! The discrete-event cluster driver.
//!
//! [`run_cluster`] advances a cluster clock from event to event: job
//! arrivals from the trace and step completions of running jobs. At each
//! instant it processes completions (job-id order), then arrivals, then
//! invokes the [`ClusterPolicy`] repeatedly over a read-only view —
//! applying each action batch before the next invocation — until the
//! policy returns no actions, so nodes freed by a preemption or shrink can
//! be placed within the same instant. Policies must therefore converge to
//! an empty action list once their goals are met; one that keeps emitting
//! actions exhausts the event budget ([`ClusterError::MaxEventsExceeded`]).
//! The whole loop is deterministic: two runs of the same trace under the
//! same policy are bit-identical, event log included.
//!
//! Per-job execution reuses the single-job stack unchanged: batches are
//! pre-sampled at arrival from the job's seed exactly as `run_training`
//! samples them, and each step runs through `simulate_step` on a
//! [`SchedulerCtx`] derived for the job's current node allocation. Step
//! simulations are memoized per `(job, step, width)` so checkpoint-rollback
//! replays and determinism reruns are cheap. Elastic resizes go through
//! [`SchedulerCtx::resize_nodes`] and charge a replan cost; preemption is
//! checkpoint-and-requeue with [`Checkpointer`] rollback semantics and a
//! restore cost on the next start — nothing is free.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use zeppelin_core::scheduler::{Scheduler, SchedulerCtx};
use zeppelin_data::batch::{sample_batch, Batch};
use zeppelin_exec::recovery::Checkpointer;
use zeppelin_exec::step::{simulate_step, StepConfig};
use zeppelin_model::config::ModelConfig;
use zeppelin_sim::time::{SimDuration, SimTime};
use zeppelin_sim::topology::ClusterSpec;

use crate::metrics::{ClusterEvent, ClusterReport, JobOutcome, Outcome};
use crate::policy::{Action, ClusterPolicy, ClusterView, QueuedView, RunningView};
use crate::trace::{JobSpec, JobTrace, TraceError};

/// Configuration of a cluster simulation.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// The shared cluster (jobs run on node-granular slices of it).
    pub cluster: ClusterSpec,
    /// Per-step simulation configuration shared by all jobs.
    pub step: StepConfig,
    /// Wall time charged when a running job is elastically resized (the
    /// planner re-derives its layout before the step restarts).
    pub replan_cost: SimDuration,
    /// Checkpoint cadence and restore cost for preemption rollback.
    pub ckpt: Checkpointer,
    /// Upper bound on processed events — a runaway backstop, not a tuning
    /// knob.
    pub max_events: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            cluster: zeppelin_sim::topology::cluster_a(8),
            step: StepConfig::default(),
            replan_cost: SimDuration::from_millis(200),
            ckpt: Checkpointer::new(2, SimDuration::from_millis(500)),
            max_events: 1_000_000,
        }
    }
}

/// Errors from the cluster driver. Per-job step failures are *not* errors —
/// they terminate that job as [`Outcome::Failed`]; these are whole-run
/// failures.
#[derive(Debug)]
pub enum ClusterError {
    /// The input trace failed validation.
    Trace(TraceError),
    /// The policy returned an inapplicable action (unknown job, node
    /// bounds violated, allocation exceeding the free pool, …).
    BadAction {
        /// Policy name.
        policy: String,
        /// What was wrong.
        detail: String,
    },
    /// Jobs were queued, nothing was running, no arrivals remained, and
    /// the policy started nothing — the simulation cannot make progress.
    Stuck {
        /// The instant of the stall.
        at: SimTime,
    },
    /// The event budget was exhausted (runaway policy loop).
    MaxEventsExceeded,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Trace(e) => write!(f, "invalid trace: {e}"),
            ClusterError::BadAction { policy, detail } => {
                write!(f, "policy \"{policy}\" returned a bad action: {detail}")
            }
            ClusterError::Stuck { at } => {
                write!(
                    f,
                    "no progress possible at {at}: queued jobs but nothing runnable"
                )
            }
            ClusterError::MaxEventsExceeded => write!(f, "event budget exhausted"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<TraceError> for ClusterError {
    fn from(e: TraceError) -> Self {
        ClusterError::Trace(e)
    }
}

/// A step attempt in flight on the cluster clock.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    /// Step index being attempted.
    step: usize,
    /// Instant the attempt began (including any restore/replan overhead).
    began: SimTime,
    /// Instant the step commits if undisturbed.
    end: SimTime,
    /// The step's simulated duration (excluding overhead).
    step_time: SimDuration,
}

/// Mutable per-job state inside the driver.
struct JobState {
    spec: JobSpec,
    model: ModelConfig,
    batches: Vec<Batch>,
    steps_done: usize,
    nodes: usize,
    ctx: Option<SchedulerCtx>,
    run: Option<InFlight>,
    queued_since: SimTime,
    restore_pending: bool,
    first_start: Option<SimTime>,
    queueing_delay: SimDuration,
    productive: SimDuration,
    useful_tokens: u64,
    lost_tokens: u64,
    preemptions: u32,
    replans: u32,
    step_times: Vec<SimDuration>,
    done: Option<(Outcome, SimTime)>,
}

impl JobState {
    fn outcome(&self) -> JobOutcome {
        let (outcome, finish) = self
            .done
            .clone()
            .expect("terminal state required for outcome");
        JobOutcome {
            job: self.spec.id,
            tenant: self.spec.tenant.clone(),
            outcome,
            arrival: self.spec.arrival,
            first_start: self.first_start,
            finish,
            queueing_delay: self.queueing_delay,
            productive: self.productive,
            useful_tokens: self.useful_tokens,
            lost_tokens: self.lost_tokens,
            preemptions: self.preemptions,
            replans: self.replans,
            step_times: self.step_times.clone(),
        }
    }
}

/// Memoized step simulations keyed by `(job, step, nodes)`. A job's context
/// at a given width is a pure function of its spec, so the simulated step
/// time is too — rollback replays and regrown allocations hit the cache.
type StepMemo = BTreeMap<(usize, usize, usize), Result<SimDuration, String>>;

struct Driver<'a> {
    cfg: &'a ClusterConfig,
    scheduler: &'a dyn Scheduler,
    states: BTreeMap<usize, JobState>,
    /// Queue of job ids ordered by (arrival, id) — requeued jobs keep
    /// their arrival-order slot.
    queue: Vec<usize>,
    free_nodes: usize,
    memo: StepMemo,
    events: Vec<ClusterEvent>,
    scheduler_name: String,
}

impl Driver<'_> {
    fn simulate(&mut self, job: usize, step: usize) -> Result<SimDuration, String> {
        let st = &self.states[&job];
        let key = (job, step, st.nodes);
        if let Some(hit) = self.memo.get(&key) {
            return hit.clone();
        }
        let ctx = st.ctx.as_ref().expect("running job has a context");
        let mut scfg = self.cfg.step.clone();
        scfg.seed = st.spec.seed.wrapping_add(step as u64);
        let out = simulate_step(self.scheduler, &st.batches[step], ctx, &scfg)
            .map(|rep| {
                self.scheduler_name = rep.scheduler.clone();
                rep.step_time
            })
            .map_err(|e| e.to_string());
        self.memo.insert(key, out.clone());
        out
    }

    /// Launches the job's next step at `now` after `overhead`; on a step
    /// failure the job terminates as [`Outcome::Failed`].
    fn launch_step(&mut self, job: usize, now: SimTime, overhead: SimDuration) {
        let step = self.states[&job].steps_done;
        match self.simulate(job, step) {
            Ok(step_time) => {
                let st = self.states.get_mut(&job).expect("job exists");
                st.run = Some(InFlight {
                    step,
                    began: now,
                    end: now + overhead + step_time,
                    step_time,
                });
            }
            Err(reason) => {
                let st = self.states.get_mut(&job).expect("job exists");
                self.free_nodes += st.nodes;
                st.nodes = 0;
                st.ctx = None;
                st.run = None;
                st.done = Some((Outcome::Failed(reason), now));
                self.events.push(ClusterEvent::Fail { t: now, job });
            }
        }
    }

    /// Aborts an in-flight attempt at `now`, charging discarded tokens when
    /// any wall time was actually burnt.
    fn abort_attempt(&mut self, job: usize, now: SimTime) {
        let st = self.states.get_mut(&job).expect("job exists");
        if let Some(run) = st.run.take() {
            let elapsed = now - run.began;
            if elapsed > SimDuration::ZERO {
                st.lost_tokens += st.batches[run.step].total_tokens();
            }
        }
    }

    fn enqueue(&mut self, job: usize, now: SimTime) {
        let st = self.states.get_mut(&job).expect("job exists");
        st.queued_since = now;
        let key = (st.spec.arrival, job);
        let pos = self
            .queue
            .partition_point(|&j| (self.states[&j].spec.arrival, j) <= key);
        self.queue.insert(pos, job);
    }

    fn sub_cluster(&self, nodes: usize) -> ClusterSpec {
        // A job's allocation takes the pool's first `nodes` tiers with it
        // (padded at 1.0 if the pool ever over-allocates).
        let mut node_tiers: Vec<f64> = self
            .cfg
            .cluster
            .node_tiers
            .iter()
            .copied()
            .take(nodes)
            .collect();
        if !node_tiers.is_empty() {
            node_tiers.resize(nodes, 1.0);
        }
        ClusterSpec {
            name: self.cfg.cluster.name.clone(),
            nodes,
            node_tiers,
            node: self.cfg.cluster.node.clone(),
        }
    }

    fn bad_action(&self, policy: &dyn ClusterPolicy, detail: String) -> ClusterError {
        ClusterError::BadAction {
            policy: policy.name().to_string(),
            detail,
        }
    }

    fn apply_action(
        &mut self,
        policy: &dyn ClusterPolicy,
        action: Action,
        now: SimTime,
    ) -> Result<(), ClusterError> {
        match action {
            Action::Start { job, nodes } => {
                let Some(pos) = self.queue.iter().position(|&j| j == job) else {
                    return Err(self.bad_action(policy, format!("start of non-queued job {job}")));
                };
                let spec = &self.states[&job].spec;
                if nodes < spec.min_nodes || nodes > spec.max_nodes {
                    return Err(self.bad_action(
                        policy,
                        format!(
                            "start of job {job} on {nodes} nodes outside [{}, {}]",
                            spec.min_nodes, spec.max_nodes
                        ),
                    ));
                }
                if nodes > self.free_nodes {
                    return Err(self.bad_action(
                        policy,
                        format!(
                            "start of job {job} on {nodes} nodes with {} free",
                            self.free_nodes
                        ),
                    ));
                }
                self.queue.remove(pos);
                self.free_nodes -= nodes;
                let sub = self.sub_cluster(nodes);
                let st = self.states.get_mut(&job).expect("job exists");
                st.nodes = nodes;
                st.ctx = Some(SchedulerCtx::new(&sub, &st.model));
                st.first_start.get_or_insert(now);
                st.queueing_delay = st.queueing_delay.saturating_add(now - st.queued_since);
                let overhead = if st.restore_pending {
                    st.restore_pending = false;
                    self.cfg.ckpt.restore_cost
                } else {
                    SimDuration::ZERO
                };
                self.events.push(ClusterEvent::Start { t: now, job, nodes });
                self.launch_step(job, now, overhead);
                Ok(())
            }
            Action::Preempt { job } => {
                if self
                    .states
                    .get(&job)
                    .map(|s| s.run.is_none())
                    .unwrap_or(true)
                {
                    return Err(
                        self.bad_action(policy, format!("preempt of non-running job {job}"))
                    );
                }
                self.abort_attempt(job, now);
                let ckpt = self.cfg.ckpt;
                let st = self.states.get_mut(&job).expect("job exists");
                let floor = ckpt.floor(st.steps_done);
                let rolled = st.steps_done - floor;
                for _ in 0..rolled {
                    let s = st.step_times.pop().expect("rolled-back step exists");
                    let tokens = st.batches[st.step_times.len()].total_tokens();
                    st.productive = SimDuration::from_nanos(
                        st.productive.as_nanos().saturating_sub(s.as_nanos()),
                    );
                    st.useful_tokens -= tokens;
                    st.lost_tokens += tokens;
                }
                st.steps_done = floor;
                st.restore_pending = true;
                st.preemptions += 1;
                self.free_nodes += st.nodes;
                st.nodes = 0;
                st.ctx = None;
                self.events.push(ClusterEvent::Preempt {
                    t: now,
                    job,
                    rolled_back: rolled,
                });
                self.enqueue(job, now);
                Ok(())
            }
            Action::Resize { job, nodes } => {
                let Some(st) = self.states.get(&job) else {
                    return Err(self.bad_action(policy, format!("resize of unknown job {job}")));
                };
                if st.run.is_none() {
                    return Err(self.bad_action(policy, format!("resize of non-running job {job}")));
                }
                let from = st.nodes;
                if nodes == from {
                    return Err(self.bad_action(policy, format!("no-op resize of job {job}")));
                }
                if nodes < st.spec.min_nodes || nodes > st.spec.max_nodes {
                    return Err(self.bad_action(
                        policy,
                        format!(
                            "resize of job {job} to {nodes} nodes outside [{}, {}]",
                            st.spec.min_nodes, st.spec.max_nodes
                        ),
                    ));
                }
                if nodes > from && nodes - from > self.free_nodes {
                    return Err(self.bad_action(
                        policy,
                        format!(
                            "grow of job {job} by {} nodes with {} free",
                            nodes - from,
                            self.free_nodes
                        ),
                    ));
                }
                self.abort_attempt(job, now);
                let st = self.states.get_mut(&job).expect("job exists");
                let ctx = st.ctx.take().expect("running job has a context");
                let resized = ctx
                    .resize_nodes(nodes)
                    .map_err(|e| ClusterError::BadAction {
                        policy: policy.name().to_string(),
                        detail: format!("resize of job {job} failed to replan: {e}"),
                    })?;
                st.ctx = Some(resized);
                if nodes > from {
                    self.free_nodes -= nodes - from;
                } else {
                    self.free_nodes += from - nodes;
                }
                st.nodes = nodes;
                st.replans += 1;
                self.events.push(ClusterEvent::Resize {
                    t: now,
                    job,
                    from,
                    to: nodes,
                });
                let replan = self.cfg.replan_cost;
                self.launch_step(job, now, replan);
                Ok(())
            }
        }
    }

    fn view(&self, now: SimTime) -> ClusterView<'_> {
        let queued = self
            .queue
            .iter()
            .map(|&j| {
                let st = &self.states[&j];
                QueuedView {
                    spec: &st.spec,
                    queued_since: st.queued_since,
                    remaining_steps: st.spec.steps - st.steps_done,
                    restore_pending: st.restore_pending,
                }
            })
            .collect();
        let running = self
            .states
            .values()
            .filter(|st| st.run.is_some())
            .map(|st| RunningView {
                spec: &st.spec,
                nodes: st.nodes,
                remaining_steps: st.spec.steps - st.steps_done,
                started_at: st.run.as_ref().expect("filtered on run").began,
            })
            .collect();
        ClusterView {
            now,
            total_nodes: self.cfg.cluster.nodes,
            free_nodes: self.free_nodes,
            queued,
            running,
        }
    }
}

/// Runs `trace` on the shared cluster under `policy`, planning every job's
/// steps with `scheduler`.
///
/// # Errors
///
/// Returns [`ClusterError::Trace`] for an invalid trace,
/// [`ClusterError::BadAction`] when the policy returns an inapplicable
/// action, [`ClusterError::Stuck`] when queued work can never run, and
/// [`ClusterError::MaxEventsExceeded`] on a runaway event loop. Per-job
/// step failures terminate that job as [`Outcome::Failed`] instead of
/// failing the run.
pub fn run_cluster(
    policy: &dyn ClusterPolicy,
    scheduler: &dyn Scheduler,
    trace: &JobTrace,
    cfg: &ClusterConfig,
) -> Result<ClusterReport, ClusterError> {
    trace.validate()?;

    let mut d = Driver {
        cfg,
        scheduler,
        states: BTreeMap::new(),
        queue: Vec::new(),
        free_nodes: cfg.cluster.nodes,
        memo: StepMemo::new(),
        events: Vec::new(),
        scheduler_name: String::new(),
    };

    let mut next_arrival = 0usize;
    let mut now = SimTime::ZERO;
    let mut busy_node_ns: u128 = 0;
    let mut processed = 0usize;

    loop {
        // Next instant: the earlier of the next arrival and the earliest
        // step completion (ties processed together, completions first).
        let arr = trace.jobs.get(next_arrival).map(|j| j.arrival);
        let end = d
            .states
            .values()
            .filter_map(|st| st.run.as_ref().map(|r| r.end))
            .min();
        let next = match (arr, end) {
            (Some(a), Some(e)) => a.min(e),
            (Some(a), None) => a,
            (None, Some(e)) => e,
            (None, None) => {
                if d.queue.is_empty() {
                    break;
                }
                return Err(ClusterError::Stuck { at: now });
            }
        };

        let allocated = (cfg.cluster.nodes - d.free_nodes) as u128;
        busy_node_ns += allocated * (next - now).as_nanos() as u128;
        now = next;

        processed += 1;
        if processed > cfg.max_events {
            return Err(ClusterError::MaxEventsExceeded);
        }

        // 1. Step completions at `now`, in job-id order.
        let completions: Vec<usize> = d
            .states
            .iter()
            .filter(|(_, st)| st.run.map(|r| r.end == now).unwrap_or(false))
            .map(|(&id, _)| id)
            .collect();
        for job in completions {
            let st = d.states.get_mut(&job).expect("job exists");
            let run = st.run.take().expect("completion implies in-flight");
            st.steps_done += 1;
            st.productive = st.productive.saturating_add(run.step_time);
            st.useful_tokens += st.batches[run.step].total_tokens();
            st.step_times.push(run.step_time);
            d.events.push(ClusterEvent::StepCommit {
                t: now,
                job,
                step: run.step,
            });
            if st.steps_done == st.spec.steps {
                d.free_nodes += st.nodes;
                st.nodes = 0;
                st.ctx = None;
                st.done = Some((Outcome::Completed, now));
                d.events.push(ClusterEvent::Complete { t: now, job });
            } else {
                d.launch_step(job, now, SimDuration::ZERO);
            }
        }

        // 2. Arrivals at `now`.
        while trace
            .jobs
            .get(next_arrival)
            .map(|j| j.arrival == now)
            .unwrap_or(false)
        {
            let spec = trace.jobs[next_arrival].clone();
            next_arrival += 1;
            let job = spec.id;
            let model =
                zeppelin_model::config::by_name(&spec.model).expect("trace validated model names");
            let dist = zeppelin_data::datasets::by_name(&spec.dataset)
                .expect("trace validated dataset names");
            let rejected = spec.min_nodes > cfg.cluster.nodes;
            // Pre-sample all batches from the job seed — the exact stream a
            // standalone `run_training` with this seed draws, which the
            // single-job oracle test pins.
            let batches = if rejected {
                Vec::new()
            } else {
                let mut rng = StdRng::seed_from_u64(spec.seed);
                (0..spec.steps)
                    .map(|_| sample_batch(&dist, &mut rng, spec.tokens_per_step))
                    .collect()
            };
            let mut st = JobState {
                spec,
                model,
                batches,
                steps_done: 0,
                nodes: 0,
                ctx: None,
                run: None,
                queued_since: now,
                restore_pending: false,
                first_start: None,
                queueing_delay: SimDuration::ZERO,
                productive: SimDuration::ZERO,
                useful_tokens: 0,
                lost_tokens: 0,
                preemptions: 0,
                replans: 0,
                step_times: Vec::new(),
                done: None,
            };
            if rejected {
                st.done = Some((Outcome::Rejected, now));
                d.states.insert(job, st);
                d.events.push(ClusterEvent::Reject { t: now, job });
            } else {
                d.states.insert(job, st);
                d.events.push(ClusterEvent::Arrive { t: now, job });
                d.enqueue(job, now);
            }
        }

        // 3. Policy invocations at `now`, repeated until quiescent: a
        // preemption or shrink frees nodes within the instant, and the
        // follow-up invocation lets the policy place work onto them
        // immediately instead of stalling until the next event. The event
        // budget bounds pathological policies that never settle.
        loop {
            processed += 1;
            if processed > cfg.max_events {
                return Err(ClusterError::MaxEventsExceeded);
            }
            let actions = policy.schedule(&d.view(now));
            if actions.is_empty() {
                break;
            }
            for action in actions {
                d.apply_action(policy, action, now)?;
            }
        }
    }

    let outcomes: Vec<JobOutcome> = d.states.values().map(JobState::outcome).collect();
    let makespan = SimDuration::from_nanos(now.as_nanos());
    Ok(ClusterReport::assemble(
        policy.name().to_string(),
        d.scheduler_name.clone(),
        cfg.cluster.nodes,
        makespan,
        busy_node_ns,
        outcomes,
        d.events,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FairShare, Fifo, Srwf};
    use zeppelin_core::zeppelin::Zeppelin;
    use zeppelin_sim::topology::cluster_a;

    fn small_cfg(nodes: usize) -> ClusterConfig {
        ClusterConfig {
            cluster: cluster_a(nodes),
            ..ClusterConfig::default()
        }
    }

    fn job(id: usize, tenant: &str, arrival_ns: u64) -> JobSpec {
        JobSpec {
            id,
            tenant: tenant.into(),
            model: "3b".into(),
            dataset: "stackexchange".into(),
            steps: 2,
            tokens_per_step: 8_192,
            priority: 1,
            min_nodes: 1,
            preferred_nodes: 1,
            max_nodes: 2,
            arrival: SimTime::from_nanos(arrival_ns),
            seed: 40 + id as u64,
        }
    }

    #[test]
    fn every_job_terminates_exactly_once() {
        let trace = JobTrace::random(9, 8, &cluster_a(4));
        let cfg = small_cfg(4);
        for policy in [&Fifo as &dyn ClusterPolicy, &Srwf, &FairShare] {
            let r = run_cluster(policy, &Zeppelin::new(), &trace, &cfg).unwrap();
            assert_eq!(
                r.completed + r.failed + r.rejected,
                8,
                "policy {}",
                policy.name()
            );
            r.check().unwrap();
        }
    }

    #[test]
    fn hetero_schedulers_run_on_tiered_clusters() {
        use zeppelin_core::het::{StragglerRemap, ZeppelinHet};
        use zeppelin_sim::topology::cluster_mixed;
        let trace = JobTrace::random(13, 6, &cluster_mixed(4));
        let cfg = ClusterConfig {
            cluster: cluster_mixed(4),
            ..ClusterConfig::default()
        };
        for s in [
            &ZeppelinHet::new() as &dyn Scheduler,
            &StragglerRemap::new(),
        ] {
            let a = run_cluster(&FairShare, s, &trace, &cfg).unwrap();
            let b = run_cluster(&FairShare, s, &trace, &cfg).unwrap();
            assert_eq!(a.completed + a.failed + a.rejected, 6, "{}", s.name());
            a.check().unwrap();
            // Tier-aware planning stays deterministic (sub-cluster slices
            // carry the surviving tiers with them).
            assert_eq!(a.events, b.events, "{}", s.name());
        }
    }

    #[test]
    fn reruns_are_bit_identical() {
        let trace = JobTrace::random(21, 6, &cluster_a(3));
        let cfg = small_cfg(3);
        let a = run_cluster(&FairShare, &Zeppelin::new(), &trace, &cfg).unwrap();
        let b = run_cluster(&FairShare, &Zeppelin::new(), &trace, &cfg).unwrap();
        assert_eq!(a.events, b.events);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    }

    #[test]
    fn oversized_jobs_are_rejected() {
        let mut big = job(0, "a", 0);
        big.min_nodes = 9;
        big.preferred_nodes = 9;
        big.max_nodes = 9;
        let trace = JobTrace::new().push(big).push(job(1, "b", 10));
        let r = run_cluster(&Fifo, &Zeppelin::new(), &trace, &small_cfg(2)).unwrap();
        assert_eq!(r.rejected, 1);
        assert_eq!(r.completed, 1);
        assert!(r.events.contains(&ClusterEvent::Reject {
            t: SimTime::ZERO,
            job: 0
        }));
    }

    #[test]
    fn queueing_shows_up_in_the_report() {
        // Two jobs, one node: the second waits for the first.
        let trace = JobTrace::new().push(job(0, "a", 0)).push(job(1, "b", 10));
        let r = run_cluster(&Fifo, &Zeppelin::new(), &trace, &small_cfg(1)).unwrap();
        assert_eq!(r.completed, 2);
        assert!(r.queue_p99 > SimDuration::ZERO, "second job queued");
        let o1 = &r.outcomes[1];
        assert!(o1.queueing_delay > SimDuration::ZERO);
        r.check().unwrap();
    }

    #[test]
    fn invalid_trace_is_a_typed_error() {
        let err =
            run_cluster(&Fifo, &Zeppelin::new(), &JobTrace::new(), &small_cfg(2)).unwrap_err();
        assert!(matches!(err, ClusterError::Trace(TraceError::Empty)));
    }

    #[test]
    fn stuck_cluster_is_a_typed_error() {
        /// A policy that never starts anything.
        struct Lazy;
        impl ClusterPolicy for Lazy {
            fn name(&self) -> &'static str {
                "lazy"
            }
            fn schedule(&self, _: &ClusterView) -> Vec<Action> {
                Vec::new()
            }
        }
        let trace = JobTrace::new().push(job(0, "a", 0));
        let err = run_cluster(&Lazy, &Zeppelin::new(), &trace, &small_cfg(2)).unwrap_err();
        assert!(matches!(err, ClusterError::Stuck { .. }), "{err}");
    }

    #[test]
    fn bad_policy_actions_are_typed_errors() {
        /// Starts jobs on more nodes than are free.
        struct Greedy;
        impl ClusterPolicy for Greedy {
            fn name(&self) -> &'static str {
                "greedy"
            }
            fn schedule(&self, view: &ClusterView) -> Vec<Action> {
                view.queued
                    .iter()
                    .map(|q| Action::Start {
                        job: q.spec.id,
                        nodes: view.total_nodes + 1,
                    })
                    .collect()
            }
        }
        let mut wide = job(0, "a", 0);
        wide.max_nodes = 99;
        let trace = JobTrace::new().push(wide);
        let err = run_cluster(&Greedy, &Zeppelin::new(), &trace, &small_cfg(2)).unwrap_err();
        assert!(matches!(err, ClusterError::BadAction { .. }), "got {err}");
    }

    #[test]
    fn fair_share_preemption_rolls_back_and_recovers() {
        // One whale monopolizing 4 nodes with a long job, then an urgent
        // minority job arrives mid-run: fair-share preempts, the whale
        // rolls back to its checkpoint and still completes.
        let whale = JobSpec {
            id: 0,
            tenant: "whale".into(),
            model: "3b".into(),
            dataset: "stackexchange".into(),
            steps: 6,
            tokens_per_step: 16_384,
            priority: 0,
            min_nodes: 4,
            preferred_nodes: 4,
            max_nodes: 4,
            arrival: SimTime::ZERO,
            seed: 1,
        };
        let urgent = JobSpec {
            id: 1,
            tenant: "minnow".into(),
            model: "3b".into(),
            dataset: "stackexchange".into(),
            steps: 1,
            tokens_per_step: 8_192,
            priority: 3,
            min_nodes: 1,
            preferred_nodes: 1,
            max_nodes: 1,
            // Arrives while the whale is mid-flight.
            arrival: SimTime::from_nanos(200 * 1_000_000),
            seed: 2,
        };
        let trace = JobTrace::new().push(whale).push(urgent);
        let r = run_cluster(&FairShare, &Zeppelin::new(), &trace, &small_cfg(4)).unwrap();
        assert_eq!(r.completed, 2, "both jobs finish: {:?}", r.events);
        assert!(r.preemptions >= 1, "events: {:?}", r.events);
        assert!(r.lost_tokens > 0, "rollback discards work");
        assert!(r.goodput < r.throughput);
        r.check().unwrap();
    }

    #[test]
    fn futile_preemption_does_not_livelock() {
        // 12-node cluster, fair share 4 across three tenants. A 9-node
        // priority-3 minnow arrives while a 4-node crux job and a 5-node
        // priority-0 whale job are running. Preempting the whale frees
        // only 3 + 5 = 8 nodes — short of the minnow's minimum — so the
        // preemption must be withheld: a policy that emits it anyway
        // cycles Preempt/Start within the instant (the whale requeues and
        // restarts on its own freed nodes) until the event budget blows
        // with MaxEventsExceeded.
        let crux = JobSpec {
            id: 0,
            tenant: "crux".into(),
            model: "3b".into(),
            dataset: "stackexchange".into(),
            steps: 2,
            tokens_per_step: 8_192,
            priority: 1,
            min_nodes: 4,
            preferred_nodes: 4,
            max_nodes: 4,
            arrival: SimTime::ZERO,
            seed: 1,
        };
        let whale = JobSpec {
            id: 1,
            tenant: "whale".into(),
            model: "3b".into(),
            dataset: "stackexchange".into(),
            steps: 3,
            tokens_per_step: 8_192,
            priority: 0,
            min_nodes: 5,
            preferred_nodes: 5,
            max_nodes: 5,
            arrival: SimTime::ZERO,
            seed: 2,
        };
        let minnow = JobSpec {
            id: 2,
            tenant: "minnow".into(),
            model: "3b".into(),
            dataset: "stackexchange".into(),
            steps: 1,
            tokens_per_step: 8_192,
            priority: 3,
            min_nodes: 9,
            preferred_nodes: 9,
            max_nodes: 9,
            // Arrives while crux and whale are both mid-flight.
            arrival: SimTime::from_nanos(1_000),
            seed: 3,
        };
        let trace = JobTrace::new().push(crux).push(whale).push(minnow);
        let r = run_cluster(&FairShare, &Zeppelin::new(), &trace, &small_cfg(12)).unwrap();
        assert_eq!(r.completed, 3, "events: {:?}", r.events);
        assert_eq!(r.preemptions, 0, "no futile preemption: {:?}", r.events);
        r.check().unwrap();
    }

    #[test]
    fn elastic_growth_happens_on_an_idle_pool() {
        // A single growable job on a 3-node cluster: fair-share grows it
        // onto the idle nodes, paying a replan.
        let mut solo = job(0, "a", 0);
        solo.steps = 4;
        solo.max_nodes = 3;
        let trace = JobTrace::new().push(solo);
        let r = run_cluster(&FairShare, &Zeppelin::new(), &trace, &small_cfg(3)).unwrap();
        assert_eq!(r.completed, 1);
        assert!(r.replans >= 1, "events: {:?}", r.events);
        assert!(r
            .events
            .iter()
            .any(|e| matches!(e, ClusterEvent::Resize { from: 1, .. })));
        r.check().unwrap();
    }
}

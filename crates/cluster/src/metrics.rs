//! Cluster-level reporting: per-job outcomes, per-tenant aggregates, and
//! the [`ClusterReport`] with goodput-vs-throughput, JCT and queueing-delay
//! percentiles, Jain's fairness index, utilization, and the full event log.

use std::collections::BTreeMap;

use zeppelin_core::plan_io::Json;
use zeppelin_data::stats::percentile;
use zeppelin_sim::time::{SimDuration, SimTime};

/// One entry in the deterministic cluster event log. Two runs of the same
/// trace under the same policy must produce identical logs — the replay
/// property suite compares them with `==`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterEvent {
    /// A job entered the queue.
    Arrive {
        /// Instant.
        t: SimTime,
        /// Job id.
        job: usize,
    },
    /// A job was rejected on arrival (its `min_nodes` exceeds the cluster).
    Reject {
        /// Instant.
        t: SimTime,
        /// Job id.
        job: usize,
    },
    /// A job left the queue and started on `nodes` nodes.
    Start {
        /// Instant.
        t: SimTime,
        /// Job id.
        job: usize,
        /// Nodes allocated.
        nodes: usize,
    },
    /// A job committed one training step.
    StepCommit {
        /// Instant.
        t: SimTime,
        /// Job id.
        job: usize,
        /// Zero-based committed step index.
        step: usize,
    },
    /// A running job was checkpointed and requeued, rolling back
    /// `rolled_back` committed steps.
    Preempt {
        /// Instant.
        t: SimTime,
        /// Job id.
        job: usize,
        /// Committed steps discarded by the rollback.
        rolled_back: usize,
    },
    /// A running job was elastically resized.
    Resize {
        /// Instant.
        t: SimTime,
        /// Job id.
        job: usize,
        /// Previous node count.
        from: usize,
        /// New node count.
        to: usize,
    },
    /// A job committed its full step budget.
    Complete {
        /// Instant.
        t: SimTime,
        /// Job id.
        job: usize,
    },
    /// A job's step failed to plan or simulate and the job was abandoned.
    Fail {
        /// Instant.
        t: SimTime,
        /// Job id.
        job: usize,
    },
}

/// How a job's life on the cluster ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// All steps committed.
    Completed,
    /// A step failed to plan or simulate.
    Failed(String),
    /// Turned away at arrival.
    Rejected,
}

/// Everything the simulation learned about one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Job id.
    pub job: usize,
    /// Owning tenant.
    pub tenant: String,
    /// Terminal state.
    pub outcome: Outcome,
    /// Arrival instant.
    pub arrival: SimTime,
    /// First time it left the queue (None if rejected).
    pub first_start: Option<SimTime>,
    /// Terminal instant.
    pub finish: SimTime,
    /// Total time spent queued (including requeues after preemption).
    pub queueing_delay: SimDuration,
    /// Wall time inside committed steps.
    pub productive: SimDuration,
    /// Tokens in committed steps.
    pub useful_tokens: u64,
    /// Tokens of discarded work (aborted attempts, rolled-back steps).
    pub lost_tokens: u64,
    /// Times this job was preempted.
    pub preemptions: u32,
    /// Times this job was elastically resized (each paying a replan).
    pub replans: u32,
    /// Committed step times, in order — the oracle test compares these
    /// bit-identically against a standalone `run_training`.
    pub step_times: Vec<SimDuration>,
}

impl JobOutcome {
    /// Job completion time (terminal instant minus arrival).
    pub fn jct(&self) -> SimDuration {
        self.finish - self.arrival
    }

    /// Fraction of the job's resident time spent in committed steps —
    /// the per-job efficiency that feeds Jain's index. 0 for jobs that
    /// never committed anything.
    pub fn efficiency(&self) -> f64 {
        let jct = self.jct().as_secs_f64();
        if jct <= 0.0 {
            return if self.useful_tokens > 0 { 1.0 } else { 0.0 };
        }
        (self.productive.as_secs_f64() / jct).min(1.0)
    }
}

/// Per-tenant aggregates over completed jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant name.
    pub tenant: String,
    /// Jobs this tenant submitted.
    pub jobs: usize,
    /// Jobs that completed.
    pub completed: usize,
    /// Tenant useful tokens per second of cluster makespan.
    pub goodput: f64,
    /// Mean job completion time over completed jobs, seconds.
    pub mean_jct_s: f64,
    /// Mean per-job efficiency over completed jobs — the tenant's Jain
    /// coordinate.
    pub mean_efficiency: f64,
}

/// Jain's fairness index `(Σx)² / (n · Σx²)` over non-negative allocations;
/// 1.0 when every coordinate is equal (or the input is empty/all-zero,
/// where fairness is vacuous).
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sq)
}

/// The full result of one cluster simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Cluster policy name.
    pub policy: String,
    /// Per-job scheduler name.
    pub scheduler: String,
    /// Cluster size in nodes.
    pub nodes: usize,
    /// Instant the last job terminated.
    pub makespan: SimDuration,
    /// Jobs that committed their full budget.
    pub completed: usize,
    /// Jobs abandoned on a step failure.
    pub failed: usize,
    /// Jobs rejected at arrival.
    pub rejected: usize,
    /// Tokens in committed steps, cluster-wide.
    pub useful_tokens: u64,
    /// Tokens of discarded work, cluster-wide.
    pub lost_tokens: u64,
    /// All processed tokens (useful + lost) per second of makespan.
    pub throughput: f64,
    /// Useful tokens per second of makespan; ≤ throughput, equal only when
    /// nothing was discarded.
    pub goodput: f64,
    /// Allocated node-time over `nodes × makespan`.
    pub utilization: f64,
    /// Job-completion-time p50 over completed jobs.
    pub jct_p50: SimDuration,
    /// Job-completion-time p99 over completed jobs.
    pub jct_p99: SimDuration,
    /// Queueing-delay p50 over completed jobs.
    pub queue_p50: SimDuration,
    /// Queueing-delay p99 over completed jobs.
    pub queue_p99: SimDuration,
    /// Jain's index over per-tenant mean efficiency.
    pub fairness: f64,
    /// Total preemptions.
    pub preemptions: u32,
    /// Total elastic replans.
    pub replans: u32,
    /// Per-tenant aggregates, sorted by tenant name.
    pub tenants: Vec<TenantReport>,
    /// Per-job outcomes, sorted by job id.
    pub outcomes: Vec<JobOutcome>,
    /// The deterministic event log.
    pub events: Vec<ClusterEvent>,
}

impl ClusterReport {
    /// Assembles the derived metrics from per-job outcomes. `busy_node_ns`
    /// is the integral of allocated nodes over time.
    pub(crate) fn assemble(
        policy: String,
        scheduler: String,
        nodes: usize,
        makespan: SimDuration,
        busy_node_ns: u128,
        outcomes: Vec<JobOutcome>,
        events: Vec<ClusterEvent>,
    ) -> ClusterReport {
        let completed = outcomes
            .iter()
            .filter(|o| o.outcome == Outcome::Completed)
            .count();
        let failed = outcomes
            .iter()
            .filter(|o| matches!(o.outcome, Outcome::Failed(_)))
            .count();
        let rejected = outcomes
            .iter()
            .filter(|o| o.outcome == Outcome::Rejected)
            .count();
        let useful_tokens: u64 = outcomes.iter().map(|o| o.useful_tokens).sum();
        let lost_tokens: u64 = outcomes.iter().map(|o| o.lost_tokens).sum();
        let span_s = makespan.as_secs_f64();
        let throughput = if span_s > 0.0 {
            (useful_tokens + lost_tokens) as f64 / span_s
        } else {
            0.0
        };
        let goodput = if span_s > 0.0 {
            useful_tokens as f64 / span_s
        } else {
            0.0
        };
        let utilization = if makespan > SimDuration::ZERO && nodes > 0 {
            busy_node_ns as f64 / (nodes as u128 * makespan.as_nanos() as u128) as f64
        } else {
            0.0
        };

        let done: Vec<&JobOutcome> = outcomes
            .iter()
            .filter(|o| o.outcome == Outcome::Completed)
            .collect();
        let pct = |values: &[u64], p: f64| {
            if values.is_empty() {
                SimDuration::ZERO
            } else {
                SimDuration::from_nanos(percentile(values, p))
            }
        };
        let jcts: Vec<u64> = done.iter().map(|o| o.jct().as_nanos()).collect();
        let queues: Vec<u64> = done.iter().map(|o| o.queueing_delay.as_nanos()).collect();

        let mut by_tenant: BTreeMap<&str, Vec<&JobOutcome>> = BTreeMap::new();
        for o in &outcomes {
            by_tenant.entry(o.tenant.as_str()).or_default().push(o);
        }
        let tenants: Vec<TenantReport> = by_tenant
            .iter()
            .map(|(tenant, jobs)| {
                let comp: Vec<&&JobOutcome> = jobs
                    .iter()
                    .filter(|o| o.outcome == Outcome::Completed)
                    .collect();
                let tokens: u64 = comp.iter().map(|o| o.useful_tokens).sum();
                let n = comp.len().max(1) as f64;
                TenantReport {
                    tenant: tenant.to_string(),
                    jobs: jobs.len(),
                    completed: comp.len(),
                    goodput: if span_s > 0.0 {
                        tokens as f64 / span_s
                    } else {
                        0.0
                    },
                    mean_jct_s: comp.iter().map(|o| o.jct().as_secs_f64()).sum::<f64>() / n,
                    mean_efficiency: comp.iter().map(|o| o.efficiency()).sum::<f64>() / n,
                }
            })
            .collect();
        let fairness = jain_index(
            &tenants
                .iter()
                .map(|t| t.mean_efficiency)
                .collect::<Vec<f64>>(),
        );

        ClusterReport {
            policy,
            scheduler,
            nodes,
            makespan,
            completed,
            failed,
            rejected,
            useful_tokens,
            lost_tokens,
            throughput,
            goodput,
            utilization,
            jct_p50: pct(&jcts, 50.0),
            jct_p99: pct(&jcts, 99.0),
            queue_p50: pct(&queues, 50.0),
            queue_p99: pct(&queues, 99.0),
            fairness,
            preemptions: outcomes.iter().map(|o| o.preemptions).sum(),
            replans: outcomes.iter().map(|o| o.replans).sum(),
            tenants,
            outcomes,
            events,
        }
    }

    /// Checks report invariants — the CI smoke gate: every job terminated
    /// exactly once, utilization and fairness are in range, and goodput
    /// never exceeds throughput.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check(&self) -> Result<(), String> {
        let terminated = self.completed + self.failed + self.rejected;
        if terminated != self.outcomes.len() {
            return Err(format!(
                "{terminated} terminal outcomes for {} jobs",
                self.outcomes.len()
            ));
        }
        if self.goodput > self.throughput + 1e-9 {
            return Err(format!(
                "goodput {} exceeds throughput {}",
                self.goodput, self.throughput
            ));
        }
        if !(0.0..=1.0 + 1e-9).contains(&self.utilization) {
            return Err(format!("utilization {} out of range", self.utilization));
        }
        if !(0.0..=1.0 + 1e-9).contains(&self.fairness) {
            return Err(format!("fairness {} out of range", self.fairness));
        }
        for o in &self.outcomes {
            if o.outcome == Outcome::Completed && o.step_times.is_empty() {
                return Err(format!("completed job {} committed no steps", o.job));
            }
        }
        Ok(())
    }

    /// Renders the report (minus the per-event log) as a JSON tree —
    /// stable across reruns of the same seed, which the exhibit asserts.
    pub fn to_json(&self) -> Json {
        let mut o = BTreeMap::new();
        o.insert("policy".into(), Json::String(self.policy.clone()));
        o.insert("scheduler".into(), Json::String(self.scheduler.clone()));
        o.insert("nodes".into(), Json::Number(self.nodes as f64));
        o.insert(
            "makespan_ms".into(),
            Json::Number(self.makespan.as_millis_f64()),
        );
        o.insert("completed".into(), Json::Number(self.completed as f64));
        o.insert("failed".into(), Json::Number(self.failed as f64));
        o.insert("rejected".into(), Json::Number(self.rejected as f64));
        o.insert(
            "useful_tokens".into(),
            Json::Number(self.useful_tokens as f64),
        );
        o.insert("lost_tokens".into(), Json::Number(self.lost_tokens as f64));
        o.insert("throughput".into(), Json::Number(self.throughput));
        o.insert("goodput".into(), Json::Number(self.goodput));
        o.insert("utilization".into(), Json::Number(self.utilization));
        o.insert(
            "jct_p50_ms".into(),
            Json::Number(self.jct_p50.as_millis_f64()),
        );
        o.insert(
            "jct_p99_ms".into(),
            Json::Number(self.jct_p99.as_millis_f64()),
        );
        o.insert(
            "queue_p50_ms".into(),
            Json::Number(self.queue_p50.as_millis_f64()),
        );
        o.insert(
            "queue_p99_ms".into(),
            Json::Number(self.queue_p99.as_millis_f64()),
        );
        o.insert("fairness".into(), Json::Number(self.fairness));
        o.insert("preemptions".into(), Json::Number(self.preemptions as f64));
        o.insert("replans".into(), Json::Number(self.replans as f64));
        let tenants: Vec<Json> = self
            .tenants
            .iter()
            .map(|t| {
                let mut m = BTreeMap::new();
                m.insert("tenant".into(), Json::String(t.tenant.clone()));
                m.insert("jobs".into(), Json::Number(t.jobs as f64));
                m.insert("completed".into(), Json::Number(t.completed as f64));
                m.insert("goodput".into(), Json::Number(t.goodput));
                m.insert("mean_jct_s".into(), Json::Number(t.mean_jct_s));
                m.insert("mean_efficiency".into(), Json::Number(t.mean_efficiency));
                Json::Object(m)
            })
            .collect();
        o.insert("tenants".into(), Json::Array(tenants));
        Json::Object(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_index_basics() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[0.5, 0.5, 0.5]) - 1.0).abs() < 1e-12);
        // One-hot allocation over n users → 1/n.
        assert!((jain_index(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        let skew = jain_index(&[0.9, 0.1]);
        let even = jain_index(&[0.5, 0.5]);
        assert!(skew < even);
    }

    #[test]
    fn efficiency_is_bounded() {
        let o = JobOutcome {
            job: 0,
            tenant: "a".into(),
            outcome: Outcome::Completed,
            arrival: SimTime::ZERO,
            first_start: Some(SimTime::ZERO),
            finish: SimTime::from_nanos(100),
            queueing_delay: SimDuration::ZERO,
            productive: SimDuration::from_nanos(60),
            useful_tokens: 10,
            lost_tokens: 0,
            preemptions: 0,
            replans: 0,
            step_times: vec![SimDuration::from_nanos(60)],
        };
        assert!((o.efficiency() - 0.6).abs() < 1e-12);
        assert_eq!(o.jct().as_nanos(), 100);
    }
}

//! Pluggable cluster scheduling policies.
//!
//! A [`ClusterPolicy`] observes a read-only [`ClusterView`] (free nodes,
//! queue, running jobs) each time the driver reaches a decision point and
//! returns placement [`Action`]s. The driver validates and applies them;
//! policies never mutate state directly, which keeps them deterministic and
//! trivially comparable on the same trace.

use std::collections::BTreeMap;

use zeppelin_sim::time::SimTime;

use crate::trace::JobSpec;

/// A queued job as the policy sees it.
#[derive(Debug, Clone)]
pub struct QueuedView<'a> {
    /// The job's immutable spec.
    pub spec: &'a JobSpec,
    /// When it (re-)entered the queue.
    pub queued_since: SimTime,
    /// Steps still to commit (less than `spec.steps` after a preemption
    /// that kept some checkpointed progress).
    pub remaining_steps: usize,
    /// Whether a checkpoint restore is owed when it next starts.
    pub restore_pending: bool,
}

impl QueuedView<'_> {
    /// Remaining work in tokens — the shortest-remaining-work-first key.
    pub fn remaining_tokens(&self) -> u64 {
        self.spec.tokens_per_step * self.remaining_steps as u64
    }
}

/// A running job as the policy sees it.
#[derive(Debug, Clone)]
pub struct RunningView<'a> {
    /// The job's immutable spec.
    pub spec: &'a JobSpec,
    /// Nodes currently allocated to it.
    pub nodes: usize,
    /// Steps still to commit.
    pub remaining_steps: usize,
    /// When its current tenancy started.
    pub started_at: SimTime,
}

/// Read-only cluster state at a decision point.
#[derive(Debug, Clone)]
pub struct ClusterView<'a> {
    /// The decision instant.
    pub now: SimTime,
    /// Cluster size in nodes.
    pub total_nodes: usize,
    /// Nodes in the free pool.
    pub free_nodes: usize,
    /// Queued jobs in arrival order (requeued jobs keep their slot by
    /// original arrival).
    pub queued: Vec<QueuedView<'a>>,
    /// Running jobs in job-id order.
    pub running: Vec<RunningView<'a>>,
}

/// A placement decision returned by a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Start a queued job on `nodes` nodes (must satisfy
    /// `min_nodes ≤ nodes ≤ max_nodes` and fit in the free pool).
    Start {
        /// Job id.
        job: usize,
        /// Nodes to allocate.
        nodes: usize,
    },
    /// Checkpoint-and-requeue a running job: progress rolls back to its
    /// last checkpoint, its nodes return to the pool, and it rejoins the
    /// queue owing a restore cost.
    Preempt {
        /// Job id.
        job: usize,
    },
    /// Elastically resize a running job to `nodes` nodes (grow onto free
    /// nodes or shrink to release some), charging a replan cost.
    Resize {
        /// Job id.
        job: usize,
        /// New node count.
        nodes: usize,
    },
}

/// A cluster scheduling policy.
pub trait ClusterPolicy {
    /// Stable name used in reports and tables.
    fn name(&self) -> &'static str;

    /// Decides placements for the current instant; actions are applied in
    /// order. The driver re-invokes this — with the actions applied and
    /// the view refreshed — until it returns an empty list, so nodes freed
    /// by a preemption or shrink can be reassigned within the instant.
    /// Implementations must converge: return no actions once the view
    /// reflects the goal state, or the driver's event budget aborts the
    /// run. In particular, never emit a `Preempt` whose freed nodes cannot
    /// actually start the job it was meant to unblock — the victim would
    /// requeue and restart on its own nodes, cycling forever.
    fn schedule(&self, view: &ClusterView) -> Vec<Action>;
}

/// First-in-first-out with head-of-line blocking: only the head of the
/// queue may start, on `min(preferred, free)` nodes. No preemption, no
/// elasticity — the baseline every other policy is measured against.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl ClusterPolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn schedule(&self, view: &ClusterView) -> Vec<Action> {
        let mut free = view.free_nodes;
        let mut actions = Vec::new();
        for q in &view.queued {
            if q.spec.min_nodes > free {
                break; // head-of-line blocking
            }
            let nodes = q.spec.preferred_nodes.min(free).max(q.spec.min_nodes);
            free -= nodes;
            actions.push(Action::Start {
                job: q.spec.id,
                nodes,
            });
        }
        actions
    }
}

/// Shortest-remaining-work-first with backfill: queued jobs start in
/// ascending order of remaining tokens (ties by id), skipping any that do
/// not fit. No preemption or elasticity.
#[derive(Debug, Clone, Copy, Default)]
pub struct Srwf;

impl ClusterPolicy for Srwf {
    fn name(&self) -> &'static str {
        "srwf"
    }

    fn schedule(&self, view: &ClusterView) -> Vec<Action> {
        let mut order: Vec<&QueuedView> = view.queued.iter().collect();
        order.sort_by_key(|q| (q.remaining_tokens(), q.spec.id));
        let mut free = view.free_nodes;
        let mut actions = Vec::new();
        for q in order {
            if q.spec.min_nodes <= free {
                let nodes = q.spec.preferred_nodes.min(free).max(q.spec.min_nodes);
                free -= nodes;
                actions.push(Action::Start {
                    job: q.spec.id,
                    nodes,
                });
            }
        }
        actions
    }
}

/// Weighted fair share across tenants with priority-based preemption and
/// elastic autoscaling.
///
/// Each tenant with work in the system gets an equal node share. Queued
/// jobs of under-share tenants start first; when the pool is empty, the
/// policy shrinks over-share jobs back toward their preferred width and —
/// if a queued job outranks running ones by priority while its tenant is
/// under share — preempts lowest-priority jobs of over-share tenants
/// (checkpoint-and-requeue), but only when the freed nodes actually reach
/// the blocked job's `min_nodes`; a preemption that cannot unblock anyone
/// is withheld. When the queue is empty, running jobs of under-share
/// tenants grow onto freed nodes up to `max_nodes`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FairShare;

impl ClusterPolicy for FairShare {
    fn name(&self) -> &'static str {
        "fair-share"
    }

    fn schedule(&self, view: &ClusterView) -> Vec<Action> {
        let mut actions = Vec::new();

        // Nodes currently held per tenant.
        let mut usage: BTreeMap<&str, usize> = BTreeMap::new();
        for r in &view.running {
            *usage.entry(r.spec.tenant.as_str()).or_default() += r.nodes;
        }
        // Every tenant with presence (queued or running) owns one share.
        let mut tenants: Vec<&str> = usage.keys().copied().collect();
        for q in &view.queued {
            if !tenants.contains(&q.spec.tenant.as_str()) {
                tenants.push(q.spec.tenant.as_str());
            }
        }
        tenants.sort_unstable();
        if tenants.is_empty() {
            return actions;
        }
        let fair = (view.total_nodes / tenants.len()).max(1);

        let mut free = view.free_nodes;

        // 1. Start queued jobs of under-share tenants, highest priority
        //    first (ties by arrival order, i.e. queue position).
        let mut order: Vec<(usize, &QueuedView)> = view.queued.iter().enumerate().collect();
        order.sort_by_key(|(pos, q)| (std::cmp::Reverse(q.spec.priority), *pos));
        for (_, q) in &order {
            let held = usage.get(q.spec.tenant.as_str()).copied().unwrap_or(0);
            if held >= fair || q.spec.min_nodes > free {
                continue;
            }
            let headroom = (fair - held).max(q.spec.min_nodes);
            let nodes = q
                .spec
                .preferred_nodes
                .min(headroom)
                .min(free)
                .max(q.spec.min_nodes);
            free -= nodes;
            *usage.entry(q.spec.tenant.as_str()).or_default() += nodes;
            actions.push(Action::Start {
                job: q.spec.id,
                nodes,
            });
        }

        // Work still waiting and no pool left: reclaim nodes from
        // over-share tenants.
        let blocked: Vec<&QueuedView> = view
            .queued
            .iter()
            .filter(|q| {
                !actions
                    .iter()
                    .any(|a| matches!(a, Action::Start { job, .. } if *job == q.spec.id))
            })
            .collect();
        if !blocked.is_empty() {
            // 2. Shrink over-share jobs that grew past their preferred
            //    width back down, releasing the surplus.
            let mut reclaimed = 0usize;
            for r in &view.running {
                let held = usage.get(r.spec.tenant.as_str()).copied().unwrap_or(0);
                if held > fair && r.nodes > r.spec.preferred_nodes {
                    let give_back = (r.nodes - r.spec.preferred_nodes).min(held - fair);
                    if give_back > 0 {
                        *usage.entry(r.spec.tenant.as_str()).or_default() -= give_back;
                        reclaimed += give_back;
                        actions.push(Action::Resize {
                            job: r.spec.id,
                            nodes: r.nodes - give_back,
                        });
                    }
                }
            }

            // 3. Priority preemption: the best blocked job outranks
            //    running jobs of over-share tenants. Victims (weakest
            //    priority first, youngest tenancy breaking ties) are
            //    accumulated only until the pool plus their nodes covers
            //    the blocked job's minimum — and emitted only if that
            //    point is reached. Preempting without reaching it could
            //    never unblock the job: the victim would just requeue and
            //    restart on its own freed nodes, cycling Start/Preempt
            //    within one instant until the driver's event budget blows.
            let want = blocked
                .iter()
                .max_by_key(|q| (q.spec.priority, std::cmp::Reverse(q.spec.id)));
            if let Some(want) = want {
                let want_held = usage.get(want.spec.tenant.as_str()).copied().unwrap_or(0);
                if want_held < fair {
                    let mut victims: Vec<&RunningView> = view
                        .running
                        .iter()
                        .filter(|r| r.spec.priority < want.spec.priority)
                        .collect();
                    victims.sort_by_key(|r| (r.spec.priority, std::cmp::Reverse(r.started_at)));
                    let mut available = free + reclaimed;
                    let mut preempts = Vec::new();
                    for victim in victims {
                        if available >= want.spec.min_nodes {
                            break;
                        }
                        let tenant = victim.spec.tenant.as_str();
                        if usage.get(tenant).copied().unwrap_or(0) <= fair {
                            continue;
                        }
                        *usage.entry(tenant).or_default() -= victim.nodes;
                        available += victim.nodes;
                        preempts.push(Action::Preempt {
                            job: victim.spec.id,
                        });
                    }
                    if available >= want.spec.min_nodes {
                        actions.extend(preempts);
                    }
                }
            }
        } else if free > 0 {
            // 4. Queue drained: grow running jobs of under-share tenants
            //    onto the free pool, smallest job first.
            let mut growers: Vec<&RunningView> = view
                .running
                .iter()
                .filter(|r| r.nodes < r.spec.max_nodes)
                .collect();
            growers.sort_by_key(|r| (r.nodes, r.spec.id));
            for r in growers {
                if free == 0 {
                    break;
                }
                let held = usage.get(r.spec.tenant.as_str()).copied().unwrap_or(0);
                if held >= fair {
                    continue;
                }
                let grow = (r.spec.max_nodes - r.nodes).min(free).min(fair - held);
                if grow > 0 {
                    free -= grow;
                    *usage.entry(r.spec.tenant.as_str()).or_default() += grow;
                    actions.push(Action::Resize {
                        job: r.spec.id,
                        nodes: r.nodes + grow,
                    });
                }
            }
        }

        // Safety valve: never deadlock an idle cluster. If nothing runs,
        // nothing was started, and the head job fits the machine, start it
        // regardless of shares.
        if view.running.is_empty()
            && !view.queued.is_empty()
            && !actions.iter().any(|a| matches!(a, Action::Start { .. }))
        {
            let head = &view.queued[0];
            if head.spec.min_nodes <= view.free_nodes {
                actions.push(Action::Start {
                    job: head.spec.id,
                    nodes: head
                        .spec
                        .preferred_nodes
                        .min(view.free_nodes)
                        .max(head.spec.min_nodes),
                });
            }
        }

        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::JobSpec;

    fn spec(id: usize, tenant: &str, min: usize, pref: usize, max: usize) -> JobSpec {
        JobSpec {
            id,
            tenant: tenant.into(),
            model: "3b".into(),
            dataset: "arxiv".into(),
            steps: 4,
            tokens_per_step: 16_384,
            priority: 1,
            min_nodes: min,
            preferred_nodes: pref,
            max_nodes: max,
            arrival: SimTime::ZERO,
            seed: 1,
        }
    }

    fn queued(spec: &JobSpec) -> QueuedView<'_> {
        QueuedView {
            spec,
            queued_since: SimTime::ZERO,
            remaining_steps: spec.steps,
            restore_pending: false,
        }
    }

    #[test]
    fn fifo_blocks_behind_a_big_head() {
        let big = spec(0, "a", 4, 4, 4);
        let small = spec(1, "b", 1, 1, 1);
        let view = ClusterView {
            now: SimTime::ZERO,
            total_nodes: 4,
            free_nodes: 2,
            queued: vec![queued(&big), queued(&small)],
            running: vec![],
        };
        assert!(Fifo.schedule(&view).is_empty(), "head does not fit: block");
    }

    #[test]
    fn srwf_backfills_past_a_big_head() {
        let big = spec(0, "a", 4, 4, 4);
        let small = spec(1, "b", 1, 1, 1);
        let view = ClusterView {
            now: SimTime::ZERO,
            total_nodes: 4,
            free_nodes: 2,
            queued: vec![queued(&big), queued(&small)],
            running: vec![],
        };
        assert_eq!(
            Srwf.schedule(&view),
            vec![Action::Start { job: 1, nodes: 1 }]
        );
    }

    #[test]
    fn fair_share_caps_an_over_share_tenant() {
        let whale2 = spec(1, "whale", 1, 4, 4);
        let minnow = spec(2, "minnow", 1, 1, 1);
        let whale1 = spec(0, "whale", 1, 4, 4);
        let view = ClusterView {
            now: SimTime::ZERO,
            total_nodes: 8,
            free_nodes: 4,
            queued: vec![queued(&whale2), queued(&minnow)],
            running: vec![RunningView {
                spec: &whale1,
                nodes: 4,
                remaining_steps: 4,
                started_at: SimTime::ZERO,
            }],
        };
        let actions = FairShare.schedule(&view);
        // The whale already holds its 4-node share; only the minnow starts.
        assert_eq!(actions, vec![Action::Start { job: 2, nodes: 1 }]);
    }

    #[test]
    fn fair_share_preempts_for_priority() {
        let mut urgent = spec(5, "minnow", 2, 2, 2);
        urgent.priority = 3;
        let w0 = spec(0, "whale", 1, 4, 4);
        let w1 = spec(1, "whale", 1, 4, 4);
        let view = ClusterView {
            now: SimTime::from_nanos(50),
            total_nodes: 8,
            free_nodes: 0,
            queued: vec![queued(&urgent)],
            running: vec![
                RunningView {
                    spec: &w0,
                    nodes: 4,
                    remaining_steps: 3,
                    started_at: SimTime::ZERO,
                },
                RunningView {
                    spec: &w1,
                    nodes: 4,
                    remaining_steps: 4,
                    started_at: SimTime::from_nanos(10),
                },
            ],
        };
        let actions = FairShare.schedule(&view);
        // The youngest low-priority whale job is checkpointed and requeued.
        assert!(actions.contains(&Action::Preempt { job: 1 }), "{actions:?}");
    }

    #[test]
    fn fair_share_withholds_futile_preemption() {
        // 12 nodes, three tenants => fair share 4. A 9-node priority-3
        // minnow is blocked; preempting the over-share whale (5 nodes)
        // would free only 3 + 5 = 8 nodes, so the preemption cannot
        // unblock it and must not be emitted (it would livelock the
        // instant: the whale requeues, restarts on its own nodes, and is
        // preempted again forever).
        let mut big = spec(2, "minnow", 9, 9, 9);
        big.priority = 3;
        let mut whale = spec(0, "whale", 5, 5, 5);
        whale.priority = 0;
        let crux = spec(1, "crux", 4, 4, 4);
        let view = ClusterView {
            now: SimTime::from_nanos(10),
            total_nodes: 12,
            free_nodes: 3,
            queued: vec![queued(&big)],
            running: vec![
                RunningView {
                    spec: &whale,
                    nodes: 5,
                    remaining_steps: 4,
                    started_at: SimTime::ZERO,
                },
                RunningView {
                    spec: &crux,
                    nodes: 4,
                    remaining_steps: 4,
                    started_at: SimTime::ZERO,
                },
            ],
        };
        let actions = FairShare.schedule(&view);
        assert!(
            !actions.iter().any(|a| matches!(a, Action::Preempt { .. })),
            "futile preemption must be withheld: {actions:?}"
        );
    }

    #[test]
    fn fair_share_accumulates_victims_until_unblocked() {
        // Same shape, but the blocked job needs 8 nodes: pool (3) plus the
        // whale's 5 reaches it, so exactly one preemption goes out.
        let mut big = spec(2, "minnow", 8, 8, 8);
        big.priority = 3;
        let mut whale = spec(0, "whale", 5, 5, 5);
        whale.priority = 0;
        let crux = spec(1, "crux", 4, 4, 4);
        let view = ClusterView {
            now: SimTime::from_nanos(10),
            total_nodes: 12,
            free_nodes: 3,
            queued: vec![queued(&big)],
            running: vec![
                RunningView {
                    spec: &whale,
                    nodes: 5,
                    remaining_steps: 4,
                    started_at: SimTime::ZERO,
                },
                RunningView {
                    spec: &crux,
                    nodes: 4,
                    remaining_steps: 4,
                    started_at: SimTime::ZERO,
                },
            ],
        };
        let actions = FairShare.schedule(&view);
        assert_eq!(
            actions
                .iter()
                .filter(|a| matches!(a, Action::Preempt { .. }))
                .count(),
            1,
            "{actions:?}"
        );
        assert!(actions.contains(&Action::Preempt { job: 0 }), "{actions:?}");
    }

    #[test]
    fn fair_share_grows_on_an_idle_pool() {
        let only = spec(0, "a", 1, 1, 4);
        let view = ClusterView {
            now: SimTime::ZERO,
            total_nodes: 4,
            free_nodes: 3,
            queued: vec![],
            running: vec![RunningView {
                spec: &only,
                nodes: 1,
                remaining_steps: 2,
                started_at: SimTime::ZERO,
            }],
        };
        let actions = FairShare.schedule(&view);
        assert_eq!(actions, vec![Action::Resize { job: 0, nodes: 4 }]);
    }
}

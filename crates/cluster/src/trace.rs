//! The workload model: a validated, seeded trace of training-job arrivals.
//!
//! A [`JobTrace`] is the cluster simulation's input — either generated
//! deterministically from a seed ([`JobTrace::random`] for Poisson-style
//! arrivals, [`JobTrace::skewed`] for the skewed-tenant fairness scenario,
//! both in the `FaultSchedule::random` idiom) or loaded from an explicit
//! JSON file ([`trace_from_json`]) with typed parse/schema/invariant errors
//! and no panics on hostile input.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use zeppelin_core::plan_io::{parse_json, Json, PlanIoError};
use zeppelin_sim::time::SimTime;
use zeppelin_sim::topology::ClusterSpec;

/// One training job in the arrival stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Trace-unique job id (also the tiebreaker for deterministic event
    /// ordering inside the driver).
    pub id: usize,
    /// Owning tenant, the unit of fair-share accounting.
    pub tenant: String,
    /// Model preset name, resolved via `zeppelin_model::config::by_name`.
    pub model: String,
    /// Dataset preset name, resolved via `zeppelin_data::datasets::by_name`.
    pub dataset: String,
    /// Step budget: the job completes after committing this many steps.
    pub steps: usize,
    /// Target context tokens per step (batches are sampled to at least
    /// this, exactly as in `run_training`).
    pub tokens_per_step: u64,
    /// Scheduling priority (higher preempts lower under fair-share).
    pub priority: u32,
    /// Minimum nodes the job can run on; it queues until this many are
    /// free and is rejected outright if the cluster is smaller.
    pub min_nodes: usize,
    /// Nodes requested at start (clamped to what is free).
    pub preferred_nodes: usize,
    /// Ceiling for elastic growth onto freed nodes.
    pub max_nodes: usize,
    /// Arrival instant on the cluster clock.
    pub arrival: SimTime,
    /// Per-job RNG seed for batch sampling (the same stream a standalone
    /// `run_training` with this seed would draw).
    pub seed: u64,
}

/// A validated stream of job arrivals, sorted by arrival time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobTrace {
    /// Jobs in non-decreasing arrival order.
    pub jobs: Vec<JobSpec>,
}

/// Why a trace failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The trace holds no jobs.
    Empty,
    /// Two jobs share an id.
    DuplicateId(usize),
    /// A job names an unknown model preset.
    UnknownModel {
        /// Offending job id.
        job: usize,
        /// The unresolved name.
        name: String,
    },
    /// A job names an unknown dataset preset.
    UnknownDataset {
        /// Offending job id.
        job: usize,
        /// The unresolved name.
        name: String,
    },
    /// A job has a zero step budget or zero tokens per step.
    ZeroWork(usize),
    /// A job's node bounds are inconsistent (need
    /// `1 ≤ min ≤ preferred ≤ max`).
    BadNodeBounds {
        /// Offending job id.
        job: usize,
        /// Its minimum nodes.
        min: usize,
        /// Its preferred nodes.
        preferred: usize,
        /// Its maximum nodes.
        max: usize,
    },
    /// Jobs are not sorted by arrival time.
    UnsortedArrivals(usize),
    /// A 64-bit field exceeds 2^53, the largest integer a JSON number
    /// (f64-backed) carries exactly — serializing it would silently
    /// corrupt a save/load round-trip, so validation rejects it loudly.
    UnportableField {
        /// Offending job id.
        job: usize,
        /// The field name (`seed`, `tokens_per_step`, or `arrival_ns`).
        field: &'static str,
        /// The out-of-range value.
        value: u64,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Empty => write!(f, "trace holds no jobs"),
            TraceError::DuplicateId(id) => write!(f, "duplicate job id {id}"),
            TraceError::UnknownModel { job, name } => {
                write!(f, "job {job}: unknown model \"{name}\"")
            }
            TraceError::UnknownDataset { job, name } => {
                write!(f, "job {job}: unknown dataset \"{name}\"")
            }
            TraceError::ZeroWork(id) => {
                write!(f, "job {id}: zero steps or zero tokens per step")
            }
            TraceError::BadNodeBounds {
                job,
                min,
                preferred,
                max,
            } => write!(
                f,
                "job {job}: node bounds must satisfy 1 <= min <= preferred <= max, \
                 got {min}/{preferred}/{max}"
            ),
            TraceError::UnsortedArrivals(id) => {
                write!(f, "job {id} arrives before its predecessor")
            }
            TraceError::UnportableField { job, field, value } => {
                write!(
                    f,
                    "job {job}: {field} = {value} exceeds 2^53 and cannot \
                     survive a JSON round-trip exactly"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Largest integer a JSON number carries exactly (2^53; the backing store
/// is an f64). 64-bit trace fields above this would silently change value
/// on a [`trace_to_json`]/[`trace_from_json`] round-trip, so both
/// [`JobTrace::validate`] and the JSON loader reject them.
pub const MAX_JSON_SAFE_U64: u64 = 1 << 53;

impl JobTrace {
    /// An empty trace (builder entry point).
    pub fn new() -> JobTrace {
        JobTrace::default()
    }

    /// Appends a job (builder style; validate before running).
    #[must_use]
    pub fn push(mut self, job: JobSpec) -> JobTrace {
        self.jobs.push(job);
        self
    }

    /// Checks trace invariants: non-empty, unique ids, resolvable model and
    /// dataset names, positive work, consistent node bounds, sorted
    /// arrivals, and 64-bit fields within [`MAX_JSON_SAFE_U64`] so a
    /// JSON round-trip is bit-exact.
    ///
    /// # Errors
    ///
    /// Returns the first [`TraceError`] found.
    pub fn validate(&self) -> Result<(), TraceError> {
        if self.jobs.is_empty() {
            return Err(TraceError::Empty);
        }
        let mut seen = std::collections::BTreeSet::new();
        let mut prev = SimTime::ZERO;
        for job in &self.jobs {
            if !seen.insert(job.id) {
                return Err(TraceError::DuplicateId(job.id));
            }
            if zeppelin_model::config::by_name(&job.model).is_err() {
                return Err(TraceError::UnknownModel {
                    job: job.id,
                    name: job.model.clone(),
                });
            }
            if zeppelin_data::datasets::by_name(&job.dataset).is_err() {
                return Err(TraceError::UnknownDataset {
                    job: job.id,
                    name: job.dataset.clone(),
                });
            }
            if job.steps == 0 || job.tokens_per_step == 0 {
                return Err(TraceError::ZeroWork(job.id));
            }
            if job.min_nodes == 0
                || job.min_nodes > job.preferred_nodes
                || job.preferred_nodes > job.max_nodes
            {
                return Err(TraceError::BadNodeBounds {
                    job: job.id,
                    min: job.min_nodes,
                    preferred: job.preferred_nodes,
                    max: job.max_nodes,
                });
            }
            if job.arrival < prev {
                return Err(TraceError::UnsortedArrivals(job.id));
            }
            for (field, value) in [
                ("seed", job.seed),
                ("tokens_per_step", job.tokens_per_step),
                ("arrival_ns", job.arrival.as_nanos()),
            ] {
                if value > MAX_JSON_SAFE_U64 {
                    return Err(TraceError::UnportableField {
                        job: job.id,
                        field,
                        value,
                    });
                }
            }
            prev = job.arrival;
        }
        Ok(())
    }

    /// Draws a random `n`-job trace from `seed` sized for `cluster` —
    /// deterministic per seed, which the replay property suite relies on.
    /// Arrivals are Poisson (exponential inter-arrival gaps); tenants,
    /// models, datasets, step budgets, and node bounds are mixed so every
    /// policy feature (queueing, backfill, elasticity) gets exercised.
    pub fn random(seed: u64, n: usize, cluster: &ClusterSpec) -> JobTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let tenants = ["acme", "beta", "crux", "dyne"];
        let models = ["3b", "3b", "3b", "moe", "moe"];
        let datasets = ["arxiv", "stackexchange", "openwebmath"];
        // Mean inter-arrival tuned so a handful of multi-step jobs overlap.
        let mean_gap_s = 1.5;
        let mut at_ns = 0u64;
        let mut jobs = Vec::with_capacity(n);
        for id in 0..n {
            at_ns += exp_gap_ns(&mut rng, mean_gap_s);
            let min_nodes = if rng.random_range(0u64..4) == 0 { 2 } else { 1 };
            let preferred = rng.random_range(min_nodes..min_nodes + 3);
            let max_raw: usize = rng.random_range(preferred..preferred + 4);
            let max_nodes = max_raw.min(cluster.nodes.max(preferred));
            jobs.push(JobSpec {
                id,
                tenant: tenants[rng.random_range(0usize..tenants.len())].to_string(),
                model: models[rng.random_range(0usize..models.len())].to_string(),
                dataset: datasets[rng.random_range(0usize..datasets.len())].to_string(),
                steps: rng.random_range(3usize..9),
                tokens_per_step: rng.random_range(16u64..49) * 1024,
                priority: rng.random_range(0u32..4),
                min_nodes,
                preferred_nodes: preferred,
                max_nodes,
                arrival: SimTime::from_nanos(at_ns),
                seed: rng.random_range(0u64..1_000_000_007),
            });
        }
        JobTrace { jobs }
    }

    /// Draws the skewed-tenant trace the fairness exhibit compares policies
    /// on. One "whale" tenant submits a burst of long, wide jobs — each
    /// demanding an eighth to a quarter of the cluster — while three
    /// minority tenants trickle in tiny, higher-priority jobs inside the
    /// saturated window. The skew is in node-second *demand*, not job
    /// count: under FIFO the blocked whale at the head of the queue
    /// head-of-line-blocks every minnow behind it even when a node or two
    /// sit free; fair-share caps the whale at its tenant share so minnows
    /// start promptly, at the price of stretching the whale's backlog.
    pub fn skewed(seed: u64, n: usize, cluster: &ClusterSpec) -> JobTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let minnows = ["beta", "crux", "dyne"];
        let whale_jobs = (n / 4).max(1);
        let mut jobs: Vec<JobSpec> = Vec::with_capacity(n);
        // Whale demand scales with the cluster so the burst saturates it
        // regardless of size: only a few whale jobs run concurrently and
        // the rest pile up at the head of a FIFO queue.
        let whale_min = (cluster.nodes / 8).max(2);
        let whale_span = (cluster.nodes / 8).max(1);
        let mut whale_at = 0u64;
        for _ in 0..whale_jobs {
            // Dense burst: the whale submits every ~150 ms.
            whale_at += exp_gap_ns(&mut rng, 0.15);
            let spread: usize = rng.random_range(0..whale_span);
            let preferred = whale_min + spread;
            jobs.push(JobSpec {
                id: 0, // renumbered after the merge sort below
                tenant: "whale".to_string(),
                model: "3b".to_string(),
                dataset: "arxiv".to_string(),
                steps: rng.random_range(16usize..28),
                tokens_per_step: rng.random_range(32u64..49) * 1024,
                priority: 0,
                min_nodes: whale_min,
                preferred_nodes: preferred,
                max_nodes: (preferred + whale_span).min(cluster.nodes.max(preferred)),
                arrival: SimTime::from_nanos(whale_at),
                seed: rng.random_range(0u64..1_000_000_007),
            });
        }
        // Minnows trickle inside the whale-saturated window, not after it —
        // a tail of arrivals onto an idle cluster would dilute the very
        // contention the exhibit measures.
        let mut minnow_at = 0u64;
        for i in whale_jobs..n {
            minnow_at += exp_gap_ns(&mut rng, 0.3);
            jobs.push(JobSpec {
                id: 0,
                tenant: minnows[i % minnows.len()].to_string(),
                model: if rng.random_range(0u64..3) == 0 {
                    "moe".to_string()
                } else {
                    "3b".to_string()
                },
                dataset: "stackexchange".to_string(),
                steps: rng.random_range(2usize..5),
                tokens_per_step: rng.random_range(16u64..33) * 1024,
                priority: rng.random_range(1u32..4),
                min_nodes: 1,
                preferred_nodes: 1,
                max_nodes: 2,
                arrival: SimTime::from_nanos(minnow_at),
                seed: rng.random_range(0u64..1_000_000_007),
            });
        }
        jobs.sort_by_key(|j| (j.arrival, j.tenant.clone()));
        for (id, job) in jobs.iter_mut().enumerate() {
            job.id = id;
        }
        JobTrace { jobs }
    }
}

/// One exponential inter-arrival gap in nanoseconds, at least 1 ns so
/// arrival order is strict.
fn exp_gap_ns(rng: &mut StdRng, mean_secs: f64) -> u64 {
    let u: f64 = rng.random_range(0.0..1.0);
    let gap = -(1.0 - u).ln() * mean_secs;
    ((gap * 1e9) as u64).max(1)
}

/// Errors from trace (de)serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceIoError {
    /// The JSON text is malformed.
    Parse {
        /// Byte offset of the error.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// The JSON is valid but not a trace (missing/mistyped fields).
    Schema(String),
    /// The document is a well-formed trace that violates trace invariants.
    Invalid(TraceError),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Parse { offset, message } => {
                write!(f, "JSON parse error at byte {offset}: {message}")
            }
            TraceIoError::Schema(m) => write!(f, "trace schema error: {m}"),
            TraceIoError::Invalid(e) => write!(f, "invalid trace: {e}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

/// Schema version written by [`trace_to_json`].
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// Upper bound on an on-disk trace document, shared with the CLI's bounded
/// file read so hostile inputs cannot balloon memory.
pub const MAX_TRACE_BYTES: u64 = 8 * 1024 * 1024;

/// Serializes a trace to compact JSON (inverse of [`trace_from_json`]).
///
/// JSON numbers are f64-backed, so 64-bit fields are exact only up to
/// [`MAX_JSON_SAFE_U64`]; [`JobTrace::validate`] rejects traces beyond
/// that bound, and on any validated trace the round-trip is bit-exact.
pub fn trace_to_json(trace: &JobTrace) -> String {
    use std::collections::BTreeMap;
    let jobs: Vec<Json> = trace
        .jobs
        .iter()
        .map(|j| {
            let mut o = BTreeMap::new();
            o.insert("id".into(), Json::Number(j.id as f64));
            o.insert("tenant".into(), Json::String(j.tenant.clone()));
            o.insert("model".into(), Json::String(j.model.clone()));
            o.insert("dataset".into(), Json::String(j.dataset.clone()));
            o.insert("steps".into(), Json::Number(j.steps as f64));
            o.insert(
                "tokens_per_step".into(),
                Json::Number(j.tokens_per_step as f64),
            );
            o.insert("priority".into(), Json::Number(j.priority as f64));
            o.insert("min_nodes".into(), Json::Number(j.min_nodes as f64));
            o.insert(
                "preferred_nodes".into(),
                Json::Number(j.preferred_nodes as f64),
            );
            o.insert("max_nodes".into(), Json::Number(j.max_nodes as f64));
            o.insert(
                "arrival_ns".into(),
                Json::Number(j.arrival.as_nanos() as f64),
            );
            o.insert("seed".into(), Json::Number(j.seed as f64));
            Json::Object(o)
        })
        .collect();
    let mut root = BTreeMap::new();
    root.insert(
        "schema_version".into(),
        Json::Number(TRACE_SCHEMA_VERSION as f64),
    );
    root.insert("jobs".into(), Json::Array(jobs));
    Json::Object(root).to_string()
}

fn field_u64(job: &Json, key: &str, idx: usize) -> Result<u64, TraceIoError> {
    let v = job.get(key).and_then(Json::as_u64).ok_or_else(|| {
        TraceIoError::Schema(format!("jobs[{idx}].{key}: expected a whole number"))
    })?;
    // The parser stores numbers as f64, so anything above 2^53 may already
    // have been rounded — reject loudly instead of replaying a trace that
    // silently differs from the file.
    if v > MAX_JSON_SAFE_U64 {
        return Err(TraceIoError::Schema(format!(
            "jobs[{idx}].{key}: {v} exceeds 2^53 and cannot be represented exactly"
        )));
    }
    Ok(v)
}

fn field_str(job: &Json, key: &str, idx: usize) -> Result<String, TraceIoError> {
    job.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| TraceIoError::Schema(format!("jobs[{idx}].{key}: expected a string")))
}

/// Parses and validates a trace document.
///
/// # Errors
///
/// Returns [`TraceIoError::Parse`] for malformed JSON,
/// [`TraceIoError::Schema`] for missing or mistyped fields, and
/// [`TraceIoError::Invalid`] when the well-formed trace violates
/// [`JobTrace::validate`] invariants.
pub fn trace_from_json(text: &str) -> Result<JobTrace, TraceIoError> {
    let root = parse_json(text).map_err(|e| match e {
        PlanIoError::Parse { offset, message } => TraceIoError::Parse { offset, message },
        other => TraceIoError::Schema(other.to_string()),
    })?;
    if let Some(v) = root.get("schema_version").and_then(Json::as_u64) {
        if v != TRACE_SCHEMA_VERSION {
            return Err(TraceIoError::Schema(format!(
                "unsupported schema_version {v} (expected {TRACE_SCHEMA_VERSION})"
            )));
        }
    }
    let jobs = root
        .get("jobs")
        .and_then(Json::as_array)
        .ok_or_else(|| TraceIoError::Schema("top-level \"jobs\" array missing".into()))?;
    let mut trace = JobTrace::new();
    for (idx, job) in jobs.iter().enumerate() {
        trace.jobs.push(JobSpec {
            id: field_u64(job, "id", idx)? as usize,
            tenant: field_str(job, "tenant", idx)?,
            model: field_str(job, "model", idx)?,
            dataset: field_str(job, "dataset", idx)?,
            steps: field_u64(job, "steps", idx)? as usize,
            tokens_per_step: field_u64(job, "tokens_per_step", idx)?,
            priority: field_u64(job, "priority", idx)? as u32,
            min_nodes: field_u64(job, "min_nodes", idx)? as usize,
            preferred_nodes: field_u64(job, "preferred_nodes", idx)? as usize,
            max_nodes: field_u64(job, "max_nodes", idx)? as usize,
            arrival: SimTime::from_nanos(field_u64(job, "arrival_ns", idx)?),
            seed: field_u64(job, "seed", idx)?,
        });
    }
    trace.validate().map_err(TraceIoError::Invalid)?;
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeppelin_sim::topology::cluster_a;

    fn job(id: usize) -> JobSpec {
        JobSpec {
            id,
            tenant: "acme".into(),
            model: "3b".into(),
            dataset: "arxiv".into(),
            steps: 3,
            tokens_per_step: 16_384,
            priority: 1,
            min_nodes: 1,
            preferred_nodes: 2,
            max_nodes: 4,
            arrival: SimTime::from_nanos(id as u64 * 1_000),
            seed: 7,
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let c = cluster_a(8);
        let a = JobTrace::random(11, 20, &c);
        let b = JobTrace::random(11, 20, &c);
        assert_eq!(a, b);
        let other = JobTrace::random(12, 20, &c);
        assert_ne!(a, other);
        a.validate().unwrap();
    }

    #[test]
    fn skewed_trace_validates_and_has_a_whale() {
        let c = cluster_a(16);
        let t = JobTrace::skewed(3, 40, &c);
        t.validate().unwrap();
        let whale = t.jobs.iter().filter(|j| j.tenant == "whale").count();
        assert_eq!(whale, 10);
        assert!(t.jobs.iter().any(|j| j.tenant != "whale"));
    }

    #[test]
    fn validate_rejects_bad_traces() {
        assert_eq!(JobTrace::new().validate(), Err(TraceError::Empty));
        let dup = JobTrace::new().push(job(0)).push(job(0));
        assert_eq!(dup.validate(), Err(TraceError::DuplicateId(0)));
        let mut bad = job(1);
        bad.model = "70b".into();
        assert!(matches!(
            JobTrace::new().push(bad).validate(),
            Err(TraceError::UnknownModel { job: 1, .. })
        ));
        let mut bounds = job(2);
        bounds.min_nodes = 3;
        bounds.preferred_nodes = 2;
        assert!(matches!(
            JobTrace::new().push(bounds).validate(),
            Err(TraceError::BadNodeBounds { job: 2, .. })
        ));
        let mut early = job(3);
        early.arrival = SimTime::ZERO;
        let unsorted = JobTrace::new().push(job(1)).push(early);
        assert_eq!(unsorted.validate(), Err(TraceError::UnsortedArrivals(3)));
    }

    #[test]
    fn json_round_trips() {
        let t = JobTrace::random(5, 8, &cluster_a(8));
        let text = trace_to_json(&t);
        let back = trace_from_json(&text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn json_round_trips_at_the_precision_boundary() {
        // 2^53 is the largest exactly representable integer: it must
        // survive the round-trip bit-identically.
        let mut edge = job(0);
        edge.seed = MAX_JSON_SAFE_U64;
        let t = JobTrace::new().push(edge);
        t.validate().unwrap();
        let back = trace_from_json(&trace_to_json(&t)).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn oversized_u64_fields_are_rejected_loudly() {
        // A seed above 2^53 would come back altered from a JSON
        // round-trip; validation refuses it instead of corrupting it.
        let mut huge = job(0);
        huge.seed = u64::MAX;
        let err = JobTrace::new().push(huge).validate().unwrap_err();
        assert!(
            matches!(
                err,
                TraceError::UnportableField {
                    job: 0,
                    field: "seed",
                    value: u64::MAX,
                }
            ),
            "{err}"
        );
        // The loader applies the same bound to hand-written files.
        let text = format!(
            "{{\"jobs\": [{{\"id\": 0, \"tenant\": \"a\", \"model\": \"3b\", \
             \"dataset\": \"arxiv\", \"steps\": 1, \"tokens_per_step\": 1024, \
             \"priority\": 1, \"min_nodes\": 1, \"preferred_nodes\": 1, \
             \"max_nodes\": 1, \"arrival_ns\": 0, \"seed\": {}}}]}}",
            u64::MAX
        );
        assert!(
            matches!(trace_from_json(&text), Err(TraceIoError::Schema(_))),
            "loader must reject out-of-range seed"
        );
    }

    #[test]
    fn json_errors_are_typed() {
        assert!(matches!(
            trace_from_json("{nope"),
            Err(TraceIoError::Parse { .. })
        ));
        assert!(matches!(
            trace_from_json("{\"jobs\": 3}"),
            Err(TraceIoError::Schema(_))
        ));
        assert!(matches!(
            trace_from_json("{\"jobs\": [{\"id\": \"x\"}]}"),
            Err(TraceIoError::Schema(_))
        ));
        // Well-formed but invalid: duplicate ids surface as Invalid.
        let dup = trace_to_json(&JobTrace::new().push(job(0)).push(job(0)));
        assert!(matches!(
            trace_from_json(&dup),
            Err(TraceIoError::Invalid(TraceError::DuplicateId(0)))
        ));
    }
}
